// E4 — Ehrenfeucht–Fraïssé games and the EVEN-on-sets example (survey §3.2).
//
// Claims reproduced: (a) duplicator wins the n-round game on any two sets
// of size >= n (so EVEN is not FO over sets — A_n = 2n-set vs
// B_n = (2n+1)-set); (b) A ∼Gn B coincides with rank-n type equality (the
// fundamental theorem); (c) exact game search cost explodes with rounds —
// the "combinatorially heavy" warning.

// `--json` skips the google-benchmark harness and emits one
// {"bench":...,"n":...,"wall_ms":...,"nodes":...} line per run, for
// scripted before/after comparisons of the game-engine search cost.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/games/ef_game.h"
#include "core/games/pebble_game.h"
#include "core/types/rank_type.h"
#include "structures/generators.h"

namespace {

using fmtk::EfGameSolver;
using fmtk::EfOptions;
using fmtk::MakeDirectedCycle;
using fmtk::MakeDirectedPath;
using fmtk::MakeLinearOrder;
using fmtk::MakeSet;
using fmtk::PebbleGameSolver;
using fmtk::RankTypeIndex;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E4: EF games on sets (EVEN is not FO) ===\n");
  std::printf(
      "paper: duplicator wins G_n(A,B) whenever |A|,|B| >= n; take 2n vs "
      "2n+1 to kill EVEN\n\n");
  std::printf("%6s %8s %8s %14s %12s\n", "rounds", "|A|", "|B|",
              "duplicator", "positions");
  for (std::size_t n = 1; n <= 4; ++n) {
    for (std::size_t delta = 0; delta <= 1; ++delta) {
      Structure a = MakeSet(2 * n);
      Structure b = MakeSet(2 * n + 1 + delta);
      EfGameSolver solver(a, b);
      bool wins = *solver.DuplicatorWins(n);
      std::printf("%6zu %8zu %8zu %14s %12llu\n", n, a.domain_size(),
                  b.domain_size(), wins ? "wins" : "loses",
                  static_cast<unsigned long long>(solver.nodes_explored()));
    }
  }
  std::printf("\n-- spoiler's exact requirement: sets of sizes s vs s+1 --\n");
  std::printf("%6s %6s %18s\n", "s", "s+1", "spoiler needs");
  for (std::size_t s = 1; s <= 4; ++s) {
    Structure a = MakeSet(s);
    Structure b = MakeSet(s + 1);
    EfGameSolver solver(a, b);
    auto needed = *solver.SpoilerNeeds(6);
    std::printf("%6zu %6zu %18s\n", s, s + 1,
                needed.has_value() ? std::to_string(*needed).c_str() : ">6");
  }
  std::printf(
      "\n-- fundamental theorem cross-check (game == rank types) --\n");
  std::printf("%-28s %7s %7s %7s\n", "pair", "n=1", "n=2", "n=3");
  struct Pair {
    const char* name;
    Structure a;
    Structure b;
  };
  std::vector<Pair> pairs;
  pairs.push_back({"path3 vs path4", MakeDirectedPath(3), MakeDirectedPath(4)});
  pairs.push_back({"cycle3 vs cycle4", MakeDirectedCycle(3),
                   MakeDirectedCycle(4)});
  pairs.push_back({"set4 vs set5", MakeSet(4), MakeSet(5)});
  RankTypeIndex index;
  for (const Pair& p : pairs) {
    std::printf("%-28s", p.name);
    for (std::size_t n = 1; n <= 3; ++n) {
      EfGameSolver solver(p.a, p.b);
      bool game = *solver.DuplicatorWins(n);
      bool types = index.EquivalentUpToRank(p.a, p.b, n);
      std::printf(" %s/%s%s", game ? "D" : "S", types ? "D" : "S",
                  game == types ? "" : "!!");
    }
    std::printf("   (D = duplicator wins, S = spoiler; game/types)\n");
  }
  std::printf("\nshape check: the two letters always agree.\n\n");
}

void BM_EfGameRounds(benchmark::State& state) {
  const std::size_t rounds = static_cast<std::size_t>(state.range(0));
  Structure a = MakeDirectedCycle(5);
  Structure b = MakeDirectedCycle(6);
  for (auto _ : state) {
    EfGameSolver solver(a, b);
    benchmark::DoNotOptimize(solver.DuplicatorWins(rounds));
  }
}
BENCHMARK(BM_EfGameRounds)->DenseRange(1, 4);

void BM_RankTypeEquivalence(benchmark::State& state) {
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  Structure a = MakeDirectedCycle(5);
  Structure b = MakeDirectedCycle(6);
  for (auto _ : state) {
    RankTypeIndex index;
    benchmark::DoNotOptimize(index.EquivalentUpToRank(a, b, rank));
  }
}
BENCHMARK(BM_RankTypeEquivalence)->DenseRange(1, 4);

// --json: one shot per configuration, wall-clock timed by hand, machine
// readable. nodes comes from the solver's GameStats.
void EmitJsonLine(const char* bench, std::size_t n, double wall_ms,
                  unsigned long long nodes) {
  std::printf("{\"bench\":\"%s\",\"n\":%zu,\"wall_ms\":%.3f,\"nodes\":%llu}\n",
              bench, n, wall_ms, nodes);
}

template <typename Fn>
double TimedMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

void RunJsonSuite() {
  // Linear orders at the sharp 2^n - 1 threshold — the headline family for
  // the search-core node counts (n indexes the round count).
  for (std::size_t n = 2; n <= 4; ++n) {
    const std::size_t m = (std::size_t{1} << n) - 1;
    Structure a = MakeLinearOrder(m);
    Structure b = MakeLinearOrder(m + 1);
    EfGameSolver solver(a, b);
    const double ms = TimedMs([&] { (void)*solver.DuplicatorWins(n); });
    EmitJsonLine("ef_linear_order", n, ms, solver.nodes_explored());
  }
  // Cycle family: C5 vs C6 over growing round counts (n indexes rounds).
  for (std::size_t r = 1; r <= 4; ++r) {
    Structure a = MakeDirectedCycle(5);
    Structure b = MakeDirectedCycle(6);
    EfGameSolver solver(a, b);
    const double ms = TimedMs([&] { (void)*solver.DuplicatorWins(r); });
    EmitJsonLine("ef_cycle5v6", r, ms, solver.nodes_explored());
  }
  // Pure sets: the swap-class pruning collapses these almost entirely.
  for (std::size_t n = 1; n <= 4; ++n) {
    Structure a = MakeSet(2 * n);
    Structure b = MakeSet(2 * n + 1);
    EfGameSolver solver(a, b);
    const double ms = TimedMs([&] { (void)*solver.DuplicatorWins(n); });
    EmitJsonLine("ef_sets", n, ms, solver.nodes_explored());
  }
  // 2-pebble game on the cycle pair (n indexes rounds).
  for (std::size_t r = 1; r <= 5; ++r) {
    Structure a = MakeDirectedCycle(5);
    Structure b = MakeDirectedCycle(6);
    PebbleGameSolver solver(a, b, 2);
    const double ms = TimedMs([&] { (void)*solver.DuplicatorWins(r); });
    EmitJsonLine("pebble2_cycle5v6", r, ms, solver.nodes_explored());
  }
  // The largest linear-order instance again with first-round fan-out.
  {
    const std::size_t n = 4;
    Structure a = MakeLinearOrder((std::size_t{1} << n) - 1);
    Structure b = MakeLinearOrder(std::size_t{1} << n);
    EfOptions options;
    options.parallel.enabled = true;
    options.parallel.min_domain = 4;
    EfGameSolver solver(a, b, options);
    const double ms = TimedMs([&] { (void)*solver.DuplicatorWins(n); });
    EmitJsonLine("ef_linear_order_parallel", n, ms, solver.nodes_explored());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonSuite();
      return 0;
    }
  }
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
