// E4 — Ehrenfeucht–Fraïssé games and the EVEN-on-sets example (survey §3.2).
//
// Claims reproduced: (a) duplicator wins the n-round game on any two sets
// of size >= n (so EVEN is not FO over sets — A_n = 2n-set vs
// B_n = (2n+1)-set); (b) A ∼Gn B coincides with rank-n type equality (the
// fundamental theorem); (c) exact game search cost explodes with rounds —
// the "combinatorially heavy" warning.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/games/ef_game.h"
#include "core/types/rank_type.h"
#include "structures/generators.h"

namespace {

using fmtk::EfGameSolver;
using fmtk::MakeDirectedCycle;
using fmtk::MakeDirectedPath;
using fmtk::MakeSet;
using fmtk::RankTypeIndex;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E4: EF games on sets (EVEN is not FO) ===\n");
  std::printf(
      "paper: duplicator wins G_n(A,B) whenever |A|,|B| >= n; take 2n vs "
      "2n+1 to kill EVEN\n\n");
  std::printf("%6s %8s %8s %14s %12s\n", "rounds", "|A|", "|B|",
              "duplicator", "positions");
  for (std::size_t n = 1; n <= 4; ++n) {
    for (std::size_t delta = 0; delta <= 1; ++delta) {
      Structure a = MakeSet(2 * n);
      Structure b = MakeSet(2 * n + 1 + delta);
      EfGameSolver solver(a, b);
      bool wins = *solver.DuplicatorWins(n);
      std::printf("%6zu %8zu %8zu %14s %12llu\n", n, a.domain_size(),
                  b.domain_size(), wins ? "wins" : "loses",
                  static_cast<unsigned long long>(solver.nodes_explored()));
    }
  }
  std::printf("\n-- spoiler's exact requirement: sets of sizes s vs s+1 --\n");
  std::printf("%6s %6s %18s\n", "s", "s+1", "spoiler needs");
  for (std::size_t s = 1; s <= 4; ++s) {
    Structure a = MakeSet(s);
    Structure b = MakeSet(s + 1);
    EfGameSolver solver(a, b);
    auto needed = *solver.SpoilerNeeds(6);
    std::printf("%6zu %6zu %18s\n", s, s + 1,
                needed.has_value() ? std::to_string(*needed).c_str() : ">6");
  }
  std::printf(
      "\n-- fundamental theorem cross-check (game == rank types) --\n");
  std::printf("%-28s %7s %7s %7s\n", "pair", "n=1", "n=2", "n=3");
  struct Pair {
    const char* name;
    Structure a;
    Structure b;
  };
  std::vector<Pair> pairs;
  pairs.push_back({"path3 vs path4", MakeDirectedPath(3), MakeDirectedPath(4)});
  pairs.push_back({"cycle3 vs cycle4", MakeDirectedCycle(3),
                   MakeDirectedCycle(4)});
  pairs.push_back({"set4 vs set5", MakeSet(4), MakeSet(5)});
  RankTypeIndex index;
  for (const Pair& p : pairs) {
    std::printf("%-28s", p.name);
    for (std::size_t n = 1; n <= 3; ++n) {
      EfGameSolver solver(p.a, p.b);
      bool game = *solver.DuplicatorWins(n);
      bool types = index.EquivalentUpToRank(p.a, p.b, n);
      std::printf(" %s/%s%s", game ? "D" : "S", types ? "D" : "S",
                  game == types ? "" : "!!");
    }
    std::printf("   (D = duplicator wins, S = spoiler; game/types)\n");
  }
  std::printf("\nshape check: the two letters always agree.\n\n");
}

void BM_EfGameRounds(benchmark::State& state) {
  const std::size_t rounds = static_cast<std::size_t>(state.range(0));
  Structure a = MakeDirectedCycle(5);
  Structure b = MakeDirectedCycle(6);
  for (auto _ : state) {
    EfGameSolver solver(a, b);
    benchmark::DoNotOptimize(solver.DuplicatorWins(rounds));
  }
}
BENCHMARK(BM_EfGameRounds)->DenseRange(1, 4);

void BM_RankTypeEquivalence(benchmark::State& state) {
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  Structure a = MakeDirectedCycle(5);
  Structure b = MakeDirectedCycle(6);
  for (auto _ : state) {
    RankTypeIndex index;
    benchmark::DoNotOptimize(index.EquivalentUpToRank(a, b, rank));
  }
}
BENCHMARK(BM_RankTypeEquivalence)->DenseRange(1, 4);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
