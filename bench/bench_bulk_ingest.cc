// E18 (extension) — Big-structure backbone: streaming bulk ingest and
// incremental view maintenance.
//
// Claims reproduced: (1) sorted-run bulk construction (RelationBuilder)
// builds a fully indexed million-edge relation several times faster than
// tuple-at-a-time Add(), because run sorts + one k-way merge replace per
// tuple hash-map growth and posting appends; (2) maintaining a materialized
// Datalog fixpoint under a 1k-edge batch with the incremental session
// (delta rules for inserts, DRed for deletes) costs a small fraction of
// recomputing the fixpoint from scratch — the classic IVM win.
//
// The workload graph is a fixed-seed chain forest (chains of 8 edges), so
// transitive closure stays linear in the input and from-scratch
// recomputation is feasible to time; same-generation runs on a forest of
// depth-4 binary trees for the same reason. `--edges N` caps the ingest
// size (default 2^20 ~ 10^6); `--ivm-edges N` caps the maintenance graphs.
// `--json` emits one line per measurement for run_benches.sh.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "datalog/compiled_engine.h"
#include "datalog/ivm.h"
#include "datalog/program.h"
#include "structures/bulk_load.h"
#include "structures/relation.h"
#include "structures/relation_builder.h"
#include "structures/structure.h"

namespace {

using fmtk::CompiledDatalogEngine;
using fmtk::DatalogProgram;
using fmtk::EdgeListOptions;
using fmtk::Element;
using fmtk::IncrementalDatalogSession;
using fmtk::LoadedGraph;
using fmtk::LoadEdgeListText;
using fmtk::ParseStructureBinary;
using fmtk::Relation;
using fmtk::RelationBuilder;
using fmtk::Result;
using fmtk::SerializeStructureBinary;
using fmtk::Structure;
using fmtk::Tuple;

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Workload generation: a chain forest (chains of kChainEdges edges over
// consecutive ids) plus `spare` unused domain elements for insert batches.

constexpr std::size_t kChainEdges = 8;  // 9 nodes per chain.

struct ChainForest {
  std::vector<Tuple> edges;  // Shuffled with a fixed seed.
  std::size_t domain = 0;
  std::size_t chains = 0;
  std::size_t spare_base = 0;  // First unused element id.
};

ChainForest MakeChainForest(std::size_t edge_target, std::size_t spare) {
  ChainForest f;
  f.chains = std::max<std::size_t>(1, edge_target / kChainEdges);
  f.spare_base = f.chains * (kChainEdges + 1);
  f.domain = f.spare_base + spare;
  f.edges.reserve(f.chains * kChainEdges);
  for (std::size_t c = 0; c < f.chains; ++c) {
    const Element base = static_cast<Element>(c * (kChainEdges + 1));
    for (std::size_t i = 0; i < kChainEdges; ++i) {
      f.edges.push_back({static_cast<Element>(base + i),
                         static_cast<Element>(base + i + 1)});
    }
  }
  std::mt19937_64 rng(20260809);
  std::shuffle(f.edges.begin(), f.edges.end(), rng);
  return f;
}

std::string EdgesToText(const std::vector<Tuple>& edges) {
  std::string text;
  text.reserve(edges.size() * 16);
  char line[48];
  for (const Tuple& e : edges) {
    const int len = std::snprintf(line, sizeof(line), "%u %u\n",
                                  static_cast<unsigned>(e[0]),
                                  static_cast<unsigned>(e[1]));
    text.append(line, static_cast<std::size_t>(len));
  }
  return text;
}

// Forest of depth-4 full binary trees (31 nodes, 30 edges each): keeps the
// same-generation fixpoint linear in the number of trees.
ChainForest MakeTreeForest(std::size_t edge_target, std::size_t spare) {
  constexpr std::size_t kTreeNodes = 31;
  constexpr std::size_t kTreeEdges = 30;
  ChainForest f;
  f.chains = std::max<std::size_t>(1, edge_target / kTreeEdges);
  f.spare_base = f.chains * kTreeNodes;
  f.domain = f.spare_base + spare;
  f.edges.reserve(f.chains * kTreeEdges);
  for (std::size_t t = 0; t < f.chains; ++t) {
    const std::size_t base = t * kTreeNodes;
    for (std::size_t i = 0; 2 * i + 2 < kTreeNodes; ++i) {
      f.edges.push_back({static_cast<Element>(base + i),
                         static_cast<Element>(base + 2 * i + 1)});
      f.edges.push_back({static_cast<Element>(base + i),
                         static_cast<Element>(base + 2 * i + 2)});
    }
  }
  std::mt19937_64 rng(977);
  std::shuffle(f.edges.begin(), f.edges.end(), rng);
  return f;
}

Structure LoadForest(const ChainForest& f) {
  EdgeListOptions options;
  options.id_mode = EdgeListOptions::IdMode::kNumeric;
  options.domain_size = f.domain;
  Result<LoadedGraph> graph = LoadEdgeListText(EdgesToText(f.edges), options);
  return std::move(graph->structure);
}

// 1k fresh chains-of-8 edges over spare elements: a pure-growth insert
// batch whose derivations are local to the new chains.
std::vector<Tuple> FreshChainBatch(const ChainForest& f, std::size_t edges) {
  std::vector<Tuple> batch;
  Element next = static_cast<Element>(f.spare_base);
  while (batch.size() < edges) {
    for (std::size_t i = 0; i < kChainEdges && batch.size() < edges; ++i) {
      batch.push_back({next, static_cast<Element>(next + 1)});
      ++next;
    }
    ++next;  // Gap between fresh chains.
  }
  return batch;
}

// Mid-chain cuts in `count` distinct chains: every cut forces DRed to
// retract the chain's downstream closure (nothing is rederivable).
std::vector<Tuple> MidChainCuts(const ChainForest& f, std::size_t count) {
  std::vector<Tuple> batch;
  const std::size_t step = std::max<std::size_t>(1, f.chains / count);
  for (std::size_t c = 0; c < f.chains && batch.size() < count; c += step) {
    const Element base = static_cast<Element>(c * (kChainEdges + 1));
    batch.push_back({static_cast<Element>(base + 3),
                     static_cast<Element>(base + 4)});
  }
  return batch;
}

// ---------------------------------------------------------------------------
// Measurements.

struct Measurement {
  std::string bench;
  std::size_t n = 0;          // Edges (ingest) or batch size (IVM).
  double wall_ms = 0;
  double per_sec = 0;         // Tuples/sec where meaningful.
  double baseline_ms = 0;     // The contrasted slow path, 0 if none.
  std::size_t out_tuples = 0;
};

double Speedup(const Measurement& m) {
  return m.baseline_ms > 0 && m.wall_ms > 0 ? m.baseline_ms / m.wall_ms : 0;
}

std::vector<Measurement> RunIngestSuite(std::size_t edge_target) {
  std::vector<Measurement> out;
  ChainForest forest = MakeChainForest(edge_target, /*spare=*/0);
  const std::size_t edges = forest.edges.size();
  const std::string text = EdgesToText(forest.edges);

  EdgeListOptions options;
  options.id_mode = EdgeListOptions::IdMode::kNumeric;
  options.domain_size = forest.domain;

  Structure loaded = [&] {
    const auto start = Clock::now();
    Result<LoadedGraph> graph = LoadEdgeListText(text, options);
    const double ms = MsSince(start);
    out.push_back({"edge_list_text", edges, ms, edges / (ms / 1e3), 0,
                   graph->structure.relation(0).size()});
    return std::move(graph->structure);
  }();

  {
    const std::string bytes = SerializeStructureBinary(loaded);
    const auto start = Clock::now();
    Result<Structure> parsed = ParseStructureBinary(bytes);
    const double ms = MsSince(start);
    out.push_back({"binary_parse", edges, ms, edges / (ms / 1e3), 0,
                   parsed->relation(0).size()});
  }

  // Bulk build vs tuple-at-a-time, both ending fully column-indexed.
  // Best-of-3 on each side: the builder finishes in tens of milliseconds,
  // where one scheduler preemption would otherwise swing the ratio.
  {
    double add_ms = 0;
    Relation incremental(0);
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = Clock::now();
      Relation built(2);
      for (const Tuple& e : forest.edges) {
        built.AddCopy(e);
      }
      for (std::size_t c = 0; c < 2; ++c) {
        (void)built.column_index(c);
      }
      const double ms = MsSince(start);
      if (rep == 0 || ms < add_ms) {
        add_ms = ms;
      }
      incremental = std::move(built);
    }

    double bulk_ms = 0;
    Relation bulk(0);
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = Clock::now();
      RelationBuilder builder(2);
      for (const Tuple& e : forest.edges) {
        builder.Add(e);
      }
      Relation built = builder.Build(/*build_column_indexes=*/true);
      const double ms = MsSince(start);
      if (rep == 0 || ms < bulk_ms) {
        bulk_ms = ms;
      }
      bulk = std::move(built);
    }
    out.push_back({"relation_builder", edges, bulk_ms, edges / (bulk_ms / 1e3),
                   add_ms, bulk.size()});
    if (!(bulk == incremental)) {
      std::fprintf(stderr, "FATAL: bulk build diverged from Add path\n");
      std::exit(1);
    }
  }
  return out;
}

std::vector<Measurement> RunIvmSuite(std::size_t ivm_edges,
                                     std::size_t batch_edges) {
  std::vector<Measurement> out;
  auto scratch_ms = [](const DatalogProgram& program, const Structure& edb) {
    const auto start = Clock::now();
    Result<CompiledDatalogEngine> engine =
        CompiledDatalogEngine::Create(program, edb);
    (void)*engine->Evaluate();
    return MsSince(start);
  };

  // Transitive closure on the chain forest.
  {
    const DatalogProgram tc = DatalogProgram::TransitiveClosure();
    ChainForest forest = MakeChainForest(ivm_edges, batch_edges + 256);
    Result<IncrementalDatalogSession> session =
        IncrementalDatalogSession::Create(tc, LoadForest(forest));

    const std::vector<Tuple> inserts = FreshChainBatch(forest, batch_edges);
    auto start = Clock::now();
    (void)session->ApplyInsert("E", inserts);
    const double ins_ms = MsSince(start);
    out.push_back({"ivm_tc_insert", batch_edges, ins_ms, 0,
                   scratch_ms(tc, session->edb()),
                   static_cast<std::size_t>(
                       session->last_stats().idb_inserted)});

    const std::vector<Tuple> cuts = MidChainCuts(forest, batch_edges);
    start = Clock::now();
    (void)session->ApplyDelete("E", cuts);
    const double del_ms = MsSince(start);
    out.push_back({"ivm_tc_delete", cuts.size(), del_ms, 0,
                   scratch_ms(tc, session->edb()),
                   static_cast<std::size_t>(
                       session->last_stats().idb_deleted)});
  }

  // Same-generation on the binary-tree forest (exercises fact schemas).
  {
    const DatalogProgram sg = DatalogProgram::SameGeneration();
    ChainForest forest = MakeTreeForest(ivm_edges / 4, 2 * batch_edges + 256);
    Result<IncrementalDatalogSession> session =
        IncrementalDatalogSession::Create(sg, LoadForest(forest));

    // Attach a pair of fresh children to one leaf per tree.
    std::vector<Tuple> inserts;
    Element next = static_cast<Element>(forest.spare_base);
    for (std::size_t t = 0; t < forest.chains && inserts.size() + 2 <= batch_edges;
         ++t) {
      const Element leaf = static_cast<Element>(t * 31 + 15);  // First leaf.
      inserts.push_back({leaf, next++});
      inserts.push_back({leaf, next++});
    }
    auto start = Clock::now();
    (void)session->ApplyInsert("E", inserts);
    const double ins_ms = MsSince(start);
    out.push_back({"ivm_sg_insert", inserts.size(), ins_ms, 0,
                   scratch_ms(sg, session->edb()),
                   static_cast<std::size_t>(
                       session->last_stats().idb_inserted)});

    // Detach one bottom-level leaf per tree: localized churn whose DRed
    // cascade is bounded by the leaf's generation (its cousins keep their
    // same-generation pairs through the surviving arms).
    std::vector<Tuple> cuts;
    for (std::size_t t = 0; t < forest.chains && cuts.size() < batch_edges;
         ++t) {
      // Edge depth-3 node 7 -> first leaf 15.
      cuts.push_back({static_cast<Element>(t * 31 + 7),
                      static_cast<Element>(t * 31 + 15)});
    }
    start = Clock::now();
    (void)session->ApplyDelete("E", cuts);
    const double del_ms = MsSince(start);
    out.push_back({"ivm_sg_delete", cuts.size(), del_ms, 0,
                   scratch_ms(sg, session->edb()),
                   static_cast<std::size_t>(
                       session->last_stats().idb_deleted)});
  }
  return out;
}

void PrintTable(const std::vector<Measurement>& ingest,
                const std::vector<Measurement>& ivm) {
  std::printf("=== E18: bulk ingest & incremental maintenance ===\n");
  std::printf(
      "paper context: big finite structures only matter if you can load "
      "them and keep queries materialized under change\n\n");
  std::printf("-- ingest (chain forest) --\n");
  std::printf("%18s %10s %10s %14s %10s\n", "bench", "edges", "wall_ms",
              "tuples/sec", "vs Add");
  for (const Measurement& m : ingest) {
    if (Speedup(m) > 0) {
      std::printf("%18s %10zu %10.1f %14.0f %9.1fx\n", m.bench.c_str(), m.n,
                  m.wall_ms, m.per_sec, Speedup(m));
    } else {
      std::printf("%18s %10zu %10.1f %14.0f %10s\n", m.bench.c_str(), m.n,
                  m.wall_ms, m.per_sec, "-");
    }
  }
  std::printf("\n-- incremental maintenance (1k-edge batches) --\n");
  std::printf("%18s %10s %12s %12s %10s %12s\n", "bench", "batch",
              "maint_ms", "scratch_ms", "speedup", "idb_delta");
  for (const Measurement& m : ivm) {
    std::printf("%18s %10zu %12.2f %12.1f %9.1fx %12zu\n", m.bench.c_str(),
                m.n, m.wall_ms, m.baseline_ms, Speedup(m), m.out_tuples);
  }
  std::printf(
      "\nshape check: bulk build >= 5x tuple-at-a-time; per-batch "
      "maintenance >= 10x cheaper than from-scratch recomputation.\n\n");
}

void EmitJson(const std::vector<Measurement>& all) {
  for (const Measurement& m : all) {
    std::printf(
        "{\"bench\":\"%s\",\"n\":%zu,\"wall_ms\":%.3f,"
        "\"tuples_per_sec\":%.0f,\"baseline_ms\":%.3f,\"speedup\":%.2f,"
        "\"out_tuples\":%zu}\n",
        m.bench.c_str(), m.n, m.wall_ms, m.per_sec, m.baseline_ms,
        Speedup(m), m.out_tuples);
  }
}

// ---------------------------------------------------------------------------
// google-benchmark section (smaller sizes, steady-state timing).

void BM_RelationBuilderBuild(benchmark::State& state) {
  ChainForest forest =
      MakeChainForest(static_cast<std::size_t>(state.range(0)), 0);
  for (auto _ : state) {
    RelationBuilder builder(2);
    for (const Tuple& e : forest.edges) {
      builder.Add(e);
    }
    Relation r = builder.Build(true);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_RelationBuilderBuild)->RangeMultiplier(4)->Range(1 << 14, 1 << 18);

void BM_RelationIncrementalAdd(benchmark::State& state) {
  ChainForest forest =
      MakeChainForest(static_cast<std::size_t>(state.range(0)), 0);
  for (auto _ : state) {
    Relation r(2);
    for (const Tuple& e : forest.edges) {
      r.AddCopy(e);
    }
    for (std::size_t c = 0; c < 2; ++c) {
      benchmark::DoNotOptimize(&r.column_index(c));
    }
  }
}
BENCHMARK(BM_RelationIncrementalAdd)
    ->RangeMultiplier(4)
    ->Range(1 << 14, 1 << 18);

void BM_ApplyInsertTc(benchmark::State& state) {
  const DatalogProgram tc = DatalogProgram::TransitiveClosure();
  ChainForest forest = MakeChainForest(1 << 16, 1 << 14);
  Structure base = LoadForest(forest);
  const std::vector<Tuple> batch =
      FreshChainBatch(forest, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Result<IncrementalDatalogSession> session =
        IncrementalDatalogSession::Create(tc, base);
    state.ResumeTiming();
    (void)session->ApplyInsert("E", batch);
  }
}
BENCHMARK(BM_ApplyInsertTc)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  std::size_t edge_target = std::size_t{1} << 20;  // ~1.05M edges.
  std::size_t ivm_edges = edge_target;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--edges") == 0 && i + 1 < argc) {
      edge_target = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--ivm-edges") == 0 && i + 1 < argc) {
      ivm_edges = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }
  ivm_edges = std::min(ivm_edges, edge_target);
  std::vector<Measurement> ingest = RunIngestSuite(edge_target);
  std::vector<Measurement> ivm = RunIvmSuite(ivm_edges, 1000);
  if (json) {
    ingest.insert(ingest.end(), ivm.begin(), ivm.end());
    EmitJson(ingest);
    return 0;
  }
  PrintTable(ingest, ivm);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
