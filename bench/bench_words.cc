// X6/E17 (ext) — words as structures: the logic/automata bridge of the
// survey family (Büchi encoding; McNaughton–Papert).
//
// Claims reproduced: the star-free example languages are FO-definable
// (sentence agrees with the DFA on every word up to the bound), and the
// parity language — EVEN in its string guise — is not: a^m and a^(m+1)
// are rank-n equivalent at the 2^n - 1 threshold while parity differs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/types/rank_type.h"
#include "words/dfa.h"
#include "words/fo_language.h"
#include "words/word_structure.h"

namespace {

using fmtk::CompareFoWithDfa;
using fmtk::Dfa;
using fmtk::MakeWordStructure;
using fmtk::RankTypeIndex;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E17 (ext): FO on words vs automata ===\n");
  std::printf(
      "Buchi encoding: words are structures with < and letter predicates; "
      "FO = star-free languages\n\n");
  std::printf("-- star-free languages: sentence vs DFA, all words <= L --\n");
  std::printf("%-16s %6s %14s %10s\n", "language", "L", "words checked",
              "agree");
  for (std::size_t len : {6, 10, 12}) {
    auto asbs =
        *CompareFoWithDfa(*fmtk::AsThenBsSentence(),
                          Dfa::StarFreeAsThenBs(), "ab", len);
    std::printf("%-16s %6zu %14zu %10s\n", "a*b*", len, asbs.words_checked,
                asbs.agree ? "yes" : "NO");
    auto contains = *CompareFoWithDfa(*fmtk::ContainsAbSentence(),
                                      Dfa::ContainsAb(), "ab", len);
    std::printf("%-16s %6zu %14zu %10s\n", "contains-ab", len,
                contains.words_checked, contains.agree ? "yes" : "NO");
  }
  std::printf(
      "\n-- parity (even #a) is not FO: a^m vs a^(m+1) at the 2^n - 1 "
      "threshold --\n");
  std::printf("%4s %6s %12s %14s\n", "n", "m", "rank-n equiv",
              "parity differs");
  RankTypeIndex index;
  for (std::size_t n = 1; n <= 3; ++n) {
    const std::size_t m = (std::size_t{1} << n) - 1;
    Structure a = *MakeWordStructure(std::string(m, 'a'), "ab");
    Structure b = *MakeWordStructure(std::string(m + 1, 'a'), "ab");
    Dfa even = Dfa::EvenNumberOfAs();
    std::printf("%4zu %6zu %12s %14s\n", n, m,
                index.EquivalentUpToRank(a, b, n) ? "yes" : "no",
                *even.Accepts(std::string(m, 'a')) !=
                        *even.Accepts(std::string(m + 1, 'a'))
                    ? "yes"
                    : "no");
  }
  std::printf(
      "\nshape check: star-free rows all agree; every parity row says "
      "yes/yes — indistinguishable but different, so no FO sentence of "
      "rank n defines parity.\n\n");
}

void BM_CompareFoWithDfa(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  fmtk::Formula sentence = *fmtk::AsThenBsSentence();
  Dfa dfa = Dfa::StarFreeAsThenBs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompareFoWithDfa(sentence, dfa, "ab", len));
  }
}
BENCHMARK(BM_CompareFoWithDfa)->DenseRange(4, 10, 2);

void BM_DfaOnly(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  Dfa dfa = Dfa::StarFreeAsThenBs();
  for (auto _ : state) {
    fmtk::ForEachWord("ab", len, [&](const std::string& w) {
      benchmark::DoNotOptimize(dfa.Accepts(w));
      return true;
    });
  }
}
BENCHMARK(BM_DfaOnly)->DenseRange(4, 10, 2);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
