// E1 — Combined complexity of FO model checking (survey §2).
//
// Claim reproduced: the naive recursive algorithm runs in time O(n^k) where
// n is the structure size and k the quantifier depth — polynomial in the
// data for a fixed query, exponential in the query. The table prints the
// work counter (quantifier instantiations) for a domain sweep at fixed
// rank, and for a rank sweep at fixed domain; the timed benchmarks measure
// the same two axes for both evaluators (interpreting ModelChecker and the
// compiled slot-based evaluator).
//
// `--json` skips the google-benchmark harness and emits one
// {"bench":...,"n":...,"wall_ms":...,"node_visits":...} line per run, for
// scripted before/after comparisons.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eval/compiled_eval.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "structures/generators.h"

namespace {

using fmtk::CompiledEvaluator;
using fmtk::Formula;
using fmtk::MakeDirectedCycle;
using fmtk::ModelChecker;
using fmtk::ParseFormula;
using fmtk::Structure;

// ∃x1 ... ∃xk E(x1, x1): the body is false on loop-free graphs, so the
// checker explores all n + n^2 + ... + n^k instantiations — the clean
// O(n^k) worst case without early-termination noise.
Formula FullExplorationSentence(std::size_t rank) {
  std::string text;
  for (std::size_t i = 1; i <= rank; ++i) {
    text += "exists x" + std::to_string(i) + ". ";
  }
  text += "E(x1,x1)";
  return *ParseFormula(text);
}

void PrintTable() {
  std::printf("=== E1: combined complexity of FO model checking ===\n");
  std::printf(
      "paper: time O(n^k); polynomial data complexity, exponential in the "
      "query (PSPACE-complete combined)\n\n");
  std::printf("-- fixed query (rank 3), growing data --\n");
  std::printf("%8s %20s %12s\n", "n", "quant.instantiations", "per n^3");
  for (std::size_t n : {8, 16, 32, 64, 128}) {
    Structure g = MakeDirectedCycle(n);
    ModelChecker checker(g);
    (void)checker.Check(FullExplorationSentence(3));
    const double work =
        static_cast<double>(checker.stats().quantifier_instantiations);
    std::printf("%8zu %20.0f %12.4f\n", n, work,
                work / (static_cast<double>(n) * n * n));
  }
  std::printf("\n-- fixed data (n = 12), growing quantifier rank --\n");
  std::printf("%8s %20s %16s\n", "rank", "quant.instantiations",
              "growth factor");
  double prev = 0;
  for (std::size_t k = 1; k <= 6; ++k) {
    Structure g = MakeDirectedCycle(12);
    ModelChecker checker(g);
    (void)checker.Check(FullExplorationSentence(k));
    const double work =
        static_cast<double>(checker.stats().quantifier_instantiations);
    std::printf("%8zu %20.0f %16.2f\n", k, work,
                prev > 0 ? work / prev : 0.0);
    prev = work;
  }
  std::printf(
      "\nshape check: per-n^3 column flat (poly data complexity); growth "
      "factor ~n per rank (exponential in query).\n\n");
}

void BM_ModelCheckDataSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure g = MakeDirectedCycle(n);
  Formula f = FullExplorationSentence(3);
  for (auto _ : state) {
    ModelChecker checker(g);
    benchmark::DoNotOptimize(checker.Check(f));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_ModelCheckDataSweep)->RangeMultiplier(2)->Range(8, 128)
    ->Complexity();

void BM_ModelCheckRankSweep(benchmark::State& state) {
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  Structure g = MakeDirectedCycle(12);
  Formula f = FullExplorationSentence(rank);
  for (auto _ : state) {
    ModelChecker checker(g);
    benchmark::DoNotOptimize(checker.Check(f));
  }
}
BENCHMARK(BM_ModelCheckRankSweep)->DenseRange(1, 6);

// Same sweeps through the compiled slot-based evaluator. Compilation sits
// outside the timed loop when a formula is reused (the common case in the
// mu / order-invariance / locality pipelines), so bind+evaluate is timed.
void BM_CompiledCheckDataSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure g = MakeDirectedCycle(n);
  Formula f = FullExplorationSentence(3);
  fmtk::Result<fmtk::CompiledFormula> plan =
      fmtk::CompiledFormula::Compile(f, g.signature());
  for (auto _ : state) {
    fmtk::Result<CompiledEvaluator> eval = CompiledEvaluator::Bind(*plan, g);
    benchmark::DoNotOptimize(eval->Evaluate());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_CompiledCheckDataSweep)->RangeMultiplier(2)->Range(8, 128)
    ->Complexity();

void BM_CompiledCheckRankSweep(benchmark::State& state) {
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  Structure g = MakeDirectedCycle(12);
  Formula f = FullExplorationSentence(rank);
  fmtk::Result<fmtk::CompiledFormula> plan =
      fmtk::CompiledFormula::Compile(f, g.signature());
  for (auto _ : state) {
    fmtk::Result<CompiledEvaluator> eval = CompiledEvaluator::Bind(*plan, g);
    benchmark::DoNotOptimize(eval->Evaluate());
  }
}
BENCHMARK(BM_CompiledCheckRankSweep)->DenseRange(1, 6);

void BM_CompiledParallelDataSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure g = MakeDirectedCycle(n);
  Formula f = FullExplorationSentence(3);
  fmtk::ParallelPolicy policy;
  policy.enabled = true;
  fmtk::Result<fmtk::CompiledFormula> plan =
      fmtk::CompiledFormula::Compile(f, g.signature());
  for (auto _ : state) {
    fmtk::Result<CompiledEvaluator> eval =
        CompiledEvaluator::Bind(*plan, g, policy);
    benchmark::DoNotOptimize(eval->Evaluate());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_CompiledParallelDataSweep)->RangeMultiplier(2)->Range(32, 128)
    ->Complexity();

// --json: one shot per configuration, wall-clock timed by hand, machine
// readable. node_visits comes from each evaluator's own EvalStats.
void EmitJsonLine(const std::string& bench, std::size_t n, double wall_ms,
                  std::size_t node_visits) {
  std::printf(
      "{\"bench\":\"%s\",\"n\":%zu,\"wall_ms\":%.3f,\"node_visits\":%zu}\n",
      bench.c_str(), n, wall_ms, node_visits);
}

template <typename Fn>
double TimedMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

void RunJsonSuite() {
  // Fixed rank-3 query, growing data; largest size is the headline number.
  for (std::size_t n : {8, 16, 32, 64, 128, 192, 256}) {
    Structure g = MakeDirectedCycle(n);
    Formula f = FullExplorationSentence(3);
    ModelChecker checker(g);
    const double interp_ms = TimedMs([&] { (void)checker.Check(f); });
    EmitJsonLine("interpreter_rank3", n, interp_ms,
                 checker.stats().node_visits);
    fmtk::Result<CompiledEvaluator> eval = CompiledEvaluator::Compile(g, f);
    const double compiled_ms = TimedMs([&] { (void)eval->Evaluate(); });
    EmitJsonLine("compiled_rank3", n, compiled_ms, eval->stats().node_visits);
  }
  // Fixed data (n = 12), growing rank.
  for (std::size_t rank = 1; rank <= 6; ++rank) {
    Structure g = MakeDirectedCycle(12);
    Formula f = FullExplorationSentence(rank);
    ModelChecker checker(g);
    const double interp_ms = TimedMs([&] { (void)checker.Check(f); });
    EmitJsonLine("interpreter_rank" + std::to_string(rank), 12, interp_ms,
                 checker.stats().node_visits);
    fmtk::Result<CompiledEvaluator> eval = CompiledEvaluator::Compile(g, f);
    const double compiled_ms = TimedMs([&] { (void)eval->Evaluate(); });
    EmitJsonLine("compiled_rank" + std::to_string(rank), 12, compiled_ms,
                 eval->stats().node_visits);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonSuite();
      return 0;
    }
  }
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
