#!/usr/bin/env bash
# Runs every bench binary that speaks --json and collects their output into
# one JSONL file, tagging each line with its suite. The result is the
# before/after artifact the perf work tracks (BENCH_pr9.json at the
# repo root); CI uploads it from the Release bench-smoke job.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_FILE]
#   BUILD_DIR  build tree containing bench/ binaries (default: build-rel,
#              falling back to build if build-rel does not exist)
#   OUT_FILE   output path (default: BENCH_pr9.json in the repo root)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-}"
if [[ -z "${BUILD_DIR}" ]]; then
  if [[ -d "${REPO_ROOT}/build-rel" ]]; then
    BUILD_DIR="${REPO_ROOT}/build-rel"
  else
    BUILD_DIR="${REPO_ROOT}/build"
  fi
fi
OUT="${2:-${REPO_ROOT}/BENCH_pr9.json}"

# The suites with a --json mode (one {"bench":...,"n":...,"wall_ms":...}
# line per configuration).
SUITES=(
  bulk_ingest
  datalog
  ef_games
  gaifman_locality
  hanf_locality
  locality_hierarchy
  model_checking
  planner
  server
  strategies
)

# FMTK_BENCH_INGEST_EDGES caps the bulk-ingest graph (default: the bench
# binary's own ~1M-edge default) so CI smoke runs stay short while local
# sweeps measure at full scale.
ingest_args=()
if [[ -n "${FMTK_BENCH_INGEST_EDGES:-}" ]]; then
  ingest_args=(--edges "${FMTK_BENCH_INGEST_EDGES}")
fi

# FMTK_BENCH_SERVER_REQUESTS caps the closed-loop request counts of the
# server suite the same way (default: the binary's own 150 per client).
server_args=()
if [[ -n "${FMTK_BENCH_SERVER_REQUESTS:-}" ]]; then
  server_args=(--requests "${FMTK_BENCH_SERVER_REQUESTS}")
fi

: > "${OUT}"
for suite in "${SUITES[@]}"; do
  bin="${BUILD_DIR}/bench/bench_${suite}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip: ${bin} not built" >&2
    continue
  fi
  args=()
  if [[ "${suite}" == "bulk_ingest" ]]; then
    args=("${ingest_args[@]+"${ingest_args[@]}"}")
  elif [[ "${suite}" == "server" ]]; then
    args=("${server_args[@]+"${server_args[@]}"}")
  fi
  echo "running bench_${suite} ..." >&2
  # Tag each emitted line with its suite so one file holds them all.
  "${bin}" --json ${args[@]+"${args[@]}"} | \
    sed "s/^{/{\"suite\":\"${suite}\",/" >> "${OUT}"
done

echo "wrote $(wc -l < "${OUT}") bench lines to ${OUT}" >&2
