// E20 — fmtk-as-a-service: the query server on the plan cache.
//
// Closed-loop socket clients (keep-alive, TCP_NODELAY) hammer a live
// QueryServer on an ephemeral loopback port. Claims measured:
//   1. Warm serving beats cold: repeat queries skip parse + analyze +
//      compile via the plan cache, so warm p50 latency is >= 5x lower
//      than the first-contact p50 on a compile-dominated suite.
//   2. Worker-pool scaling: closed-loop throughput with 8 workers vs 1
//      worker on >= 2 query configs (meaningful only with >1 core; the
//      harness reports hardware_concurrency so the artifact is honest).
//   3. Admission control bounds the cheap-request p99: with expensive
//      queries flooding, routing them through the heavy lane (bounded
//      semaphore) keeps cheap requests from queueing behind them.
//
// `--json` emits one line per measurement for run_benches.sh; `--requests N`
// scales the closed-loop request counts (CI smoke passes a small N via
// FMTK_BENCH_SERVER_REQUESTS).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "planner/plan_cache.h"
#include "server/query_server.h"
#include "structures/generators.h"

namespace {

using namespace fmtk;  // NOLINT — bench file, brevity wins.

double UsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  return v[idx];
}

/// A blocking keep-alive client: one connection, many request round trips.
class BenchClient {
 public:
  explicit BenchClient(std::uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    if (connected_) {
      int one = 1;
      setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) close(fd_);
  }
  BenchClient(const BenchClient&) = delete;
  BenchClient& operator=(const BenchClient&) = delete;

  bool connected() const { return connected_; }

  /// Sends `raw`, reads one full response, returns its status code
  /// (0 on transport failure).
  int RoundTrip(const std::string& raw) {
    if (send(fd_, raw.data(), raw.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(raw.size())) {
      return 0;
    }
    response_.clear();
    char chunk[8192];
    std::size_t body_needed = 0;
    std::size_t head_end = std::string::npos;
    while (true) {
      if (head_end != std::string::npos &&
          response_.size() >= head_end + body_needed) {
        break;
      }
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return 0;
      response_.append(chunk, static_cast<std::size_t>(n));
      if (head_end == std::string::npos) {
        const std::size_t pos = response_.find("\r\n\r\n");
        if (pos == std::string::npos) continue;
        head_end = pos + 4;
        const std::size_t cl = response_.find("Content-Length: ");
        if (cl == std::string::npos || cl > pos) break;
        body_needed =
            static_cast<std::size_t>(std::atol(response_.c_str() + cl + 16));
      }
    }
    // "HTTP/1.1 200 OK" — the status code sits at offset 9.
    if (response_.size() < 12) return 0;
    return std::atoi(response_.c_str() + 9);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string response_;
};

std::string PostRequest(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string QueryBody(const std::string& structure, const std::string& query,
                      const char* outputs_json = nullptr) {
  std::string body =
      "{\"structure\":\"" + structure + "\",\"query\":\"" + query + "\"";
  if (outputs_json != nullptr) {
    body += std::string(",\"outputs\":") + outputs_json;
  }
  body += "}";
  return body;
}

/// Starts a server with its own plan cache over the standard bench registry.
struct ServerHandle {
  std::unique_ptr<PlanCache> cache;
  std::unique_ptr<QueryServer> server;
  std::uint16_t port = 0;
};

ServerHandle StartServer(std::size_t workers, const AdmissionPolicy& admission) {
  ServerHandle h;
  h.cache = std::make_unique<PlanCache>();
  QueryServerOptions options;
  options.http.port = 0;  // Ephemeral.
  options.http.worker_threads = workers;
  options.planner.cache = h.cache.get();
  options.admission = admission;
  h.server = std::make_unique<QueryServer>(options);
  h.server->PutStructure("tiny", MakeDirectedCycle(3), "bench");
  h.server->PutStructure("ring", MakeDirectedCycle(64), "bench");
  h.server->PutStructure("mid", MakeDirectedCycle(128), "bench");
  std::mt19937_64 rng(20260809);
  h.server->PutStructure("rand", MakeRandomGraph(48, 0.1, rng), "bench");
  if (!h.server->Start().ok()) {
    std::fprintf(stderr, "bench_server: cannot start server\n");
    std::exit(1);
  }
  h.port = h.server->port();
  return h;
}

// ---------------------------------------------------------------------------
// 1. Cold vs warm p50: K distinct compile-dominated sentences over the tiny
// ring. First contact pays parse + analyze + compile inside admission's
// PlanAuto; repeats are a text-layer cache probe plus a few hundred slot
// ops, so the socket round trip plus probe is the whole warm latency.

std::vector<std::string> CompileDominatedSuite() {
  std::vector<std::string> suite;
  for (int chain = 10; chain <= 25; ++chain) {
    for (int variant = 0; variant < 8; ++variant) {
      std::string body = "E(v0,v1)";
      for (int i = 1; i < chain; ++i) {
        body += " & E(v" + std::to_string(i) + ",v" + std::to_string(i + 1) +
                ")";
      }
      // The guard is true at the very first assignment (no self-loops on a
      // cycle), so evaluation short-circuits at one leaf while parse +
      // analyze + compile still pay for the whole chain — the suite stays
      // compile-dominated at any chain length.
      body = "~E(v0,v0) | (" + body + ")";
      if (variant & 1) body = "(" + body + ") | E(v0,v0)";
      if (variant & 2) body = "(" + body + ") & ~E(v1,v0)";
      std::string text;
      for (int i = 0; i <= chain; ++i) {
        text += ((variant & 4) != 0 && i == chain ? "forall v" : "exists v") +
                std::to_string(i) + ". ";
      }
      suite.push_back(text + body);
    }
  }
  return suite;
}

void BenchColdVsWarm(bool json) {
  // One worker: the experiment is a serial request stream, and on a small
  // core count extra idle workers only add scheduler noise to the p50.
  ServerHandle h = StartServer(/*workers=*/1, AdmissionPolicy{});
  const std::vector<std::string> suite = CompileDominatedSuite();
  std::vector<std::string> requests;
  requests.reserve(suite.size());
  for (const std::string& text : suite) {
    // The tiny 3-cycle keeps evaluation at a few hundred slot ops even at
    // rank 10, so parse + analyze + compile dominates the cold pass.
    requests.push_back(PostRequest("/query", QueryBody("tiny", text)));
  }

  BenchClient client(h.port);
  if (!client.connected()) {
    std::fprintf(stderr, "bench_server: cannot connect\n");
    std::exit(1);
  }

  // Cold: each distinct sentence's first contact with the server.
  std::vector<double> cold_us;
  for (const std::string& raw : requests) {
    const auto start = std::chrono::steady_clock::now();
    if (client.RoundTrip(raw) != 200) std::exit(1);
    cold_us.push_back(UsSince(start));
  }
  // Warm: the same suite, five more rounds on the now-populated cache.
  std::vector<double> warm_us;
  for (int round = 0; round < 5; ++round) {
    for (const std::string& raw : requests) {
      const auto start = std::chrono::steady_clock::now();
      if (client.RoundTrip(raw) != 200) std::exit(1);
      warm_us.push_back(UsSince(start));
    }
  }
  h.server->Stop();

  const double cold_p50 = Percentile(cold_us, 0.5);
  const double cold_p99 = Percentile(cold_us, 0.99);
  const double warm_p50 = Percentile(warm_us, 0.5);
  const double warm_p99 = Percentile(warm_us, 0.99);
  if (json) {
    std::printf(
        "{\"bench\":\"server_cold\",\"n\":%zu,\"p50_us\":%.1f,"
        "\"p99_us\":%.1f}\n",
        cold_us.size(), cold_p50, cold_p99);
    std::printf(
        "{\"bench\":\"server_warm\",\"n\":%zu,\"p50_us\":%.1f,"
        "\"p99_us\":%.1f,\"speedup_p50\":%.1f}\n",
        warm_us.size(), warm_p50, warm_p99, cold_p50 / warm_p50);
  } else {
    std::printf("-- cold vs warm: %zu distinct sentences over HTTP --\n",
                suite.size());
    std::printf("%8s %12s %12s\n", "", "p50_us", "p99_us");
    std::printf("%8s %12.1f %12.1f\n", "cold", cold_p50, cold_p99);
    std::printf("%8s %12.1f %12.1f   (p50 %.1fx lower)\n", "warm", warm_p50,
                warm_p99, cold_p50 / warm_p50);
  }
}

// ---------------------------------------------------------------------------
// 2. Worker-pool throughput: C closed-loop clients, workers in {1, 8}, on
// two query shapes (a sentence and an output-tuple join).

struct ThroughputConfig {
  const char* name;
  std::string request;
};

double RunClosedLoop(std::uint16_t port, const std::string& request,
                     std::size_t clients, int requests_per_client) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      BenchClient client(port);
      if (!client.connected()) {
        failures.fetch_add(requests_per_client);
        return;
      }
      for (int i = 0; i < requests_per_client; ++i) {
        if (client.RoundTrip(request) != 200) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = UsSince(start) / 1000.0;
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_server: %d failed requests\n", failures.load());
    std::exit(1);
  }
  return wall_ms;
}

void BenchThroughput(bool json, int requests_per_client) {
  const std::vector<ThroughputConfig> configs = {
      {"sentence_ring64",
       PostRequest("/query", QueryBody("ring", "forall x. exists y. E(x,y)"))},
      {"join_rand48",
       PostRequest("/query", QueryBody("rand", "E(x,y) & E(y,z)",
                                       "[\"x\",\"y\",\"z\"]"))},
  };
  constexpr std::size_t kClients = 8;
  if (!json) {
    std::printf(
        "-- closed-loop throughput: %zu clients x %d requests "
        "(hardware_concurrency=%u) --\n",
        kClients, requests_per_client, std::thread::hardware_concurrency());
  }
  for (const ThroughputConfig& cfg : configs) {
    double rps1 = 0;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
      ServerHandle h = StartServer(workers, AdmissionPolicy{});
      {
        // Warm the plan cache so the loop measures serving, not compiling.
        BenchClient warmup(h.port);
        (void)warmup.RoundTrip(cfg.request);
      }
      const double wall_ms = RunClosedLoop(h.port, cfg.request, kClients,
                                           requests_per_client);
      h.server->Stop();
      const double total =
          static_cast<double>(kClients) * requests_per_client;
      const double rps = total / (wall_ms / 1000.0);
      if (workers == 1) rps1 = rps;
      if (json) {
        std::printf(
            "{\"bench\":\"server_throughput\",\"config\":\"%s\","
            "\"workers\":%zu,\"clients\":%zu,\"requests\":%d,"
            "\"wall_ms\":%.1f,\"rps\":%.0f",
            cfg.name, workers, kClients, requests_per_client, wall_ms, rps);
        if (workers != 1) {
          std::printf(",\"scaling_vs_1_worker\":%.2f,\"cores\":%u",
                      rps / rps1, std::thread::hardware_concurrency());
        }
        std::printf("}\n");
      } else {
        std::printf("  %16s workers=%zu %10.0f req/s", cfg.name, workers, rps);
        if (workers != 1) std::printf("   (%.2fx vs 1 worker)", rps / rps1);
        std::printf("\n");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Admission control bounds the cheap p99: more heavy rank-3 sentences
// (n^3 scans on the 256-cycle) than workers flood the pool while cheap
// sentences measure their own tail. Without the lane every worker ends up
// inside a heavy scan and cheap requests queue behind multi-ms service
// times. With the lane on, one heavy query executes, one waits, and the
// rest are rejected 429 up front (the *bounded* wait list is the point:
// waiters hold a worker, so admission sheds rather than queues) — workers
// stay free for cheap requests and their p99 drops.

void BenchAdmission(bool json, int requests_per_client) {
  const std::string cheap =
      PostRequest("/query", QueryBody("ring", "exists x. E(x,x)"));
  // TRUE on the cycle (z = x-1 works for every pair), so the scan cannot
  // short-circuit: all n^2 pairs run a witness search averaging n/2 probes
  // — a genuine multi-ms n^3 query, not one that fails fast. Forced onto
  // the compiled engine because the router would otherwise notice the
  // degree-2 cycle and route the Hanf histogram's O(n) pass, deflating the
  // flood (admission prices the *forced* engine, so the lane still fires).
  const std::string heavy = PostRequest(
      "/query",
      "{\"structure\":\"mid\",\"query\":\"forall x. forall y. exists z. "
      "E(z,x) | E(z,y)\",\"engine\":\"compiled\"}");
  constexpr std::size_t kCheapClients = 4;
  constexpr std::size_t kHeavyClients = 6;  // > worker count: a real flood.

  for (const bool lane_on : {false, true}) {
    AdmissionPolicy admission;
    if (lane_on) {
      admission.heavy_cost_units = 1e6;  // 256^3 ~ 1.7e7 >> cheap ~ 1e2.
      admission.heavy_concurrency = 1;
      admission.heavy_max_waiting = 1;
    }
    ServerHandle h = StartServer(/*workers=*/4, admission);
    {
      BenchClient warmup(h.port);
      (void)warmup.RoundTrip(cheap);
      (void)warmup.RoundTrip(heavy);
    }

    std::atomic<bool> stop{false};
    std::atomic<int> heavy_done{0};
    std::atomic<int> heavy_shed{0};
    std::vector<std::thread> heavy_threads;
    for (std::size_t c = 0; c < kHeavyClients; ++c) {
      heavy_threads.emplace_back([&] {
        BenchClient client(h.port);
        while (!stop.load(std::memory_order_relaxed)) {
          const int status = client.RoundTrip(heavy);
          if (status == 0) return;
          if (status == 429) {
            // A real client backs off after "heavy lane saturated".
            heavy_shed.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          } else {
            heavy_done.fetch_add(1);
          }
        }
      });
    }

    std::vector<std::vector<double>> cheap_us(kCheapClients);
    std::vector<std::thread> cheap_threads;
    for (std::size_t c = 0; c < kCheapClients; ++c) {
      cheap_threads.emplace_back([&, c] {
        BenchClient client(h.port);
        for (int i = 0; i < requests_per_client; ++i) {
          const auto start = std::chrono::steady_clock::now();
          if (client.RoundTrip(cheap) != 200) std::exit(1);
          cheap_us[c].push_back(UsSince(start));
        }
      });
    }
    for (std::thread& t : cheap_threads) t.join();
    stop.store(true);
    for (std::thread& t : heavy_threads) t.join();
    const QueryServer::Stats stats = h.server->stats();
    h.server->Stop();

    std::vector<double> all;
    for (const auto& v : cheap_us) all.insert(all.end(), v.begin(), v.end());
    const double p50 = Percentile(all, 0.5);
    const double p99 = Percentile(all, 0.99);
    if (json) {
      std::printf(
          "{\"bench\":\"server_admission\",\"heavy_lane\":%s,"
          "\"cheap_n\":%zu,\"cheap_p50_us\":%.1f,\"cheap_p99_us\":%.1f,"
          "\"heavy_completed\":%d,\"heavy_shed\":%d,"
          "\"heavy_lane_rejected\":%llu}\n",
          lane_on ? "true" : "false", all.size(), p50, p99, heavy_done.load(),
          heavy_shed.load(),
          static_cast<unsigned long long>(stats.heavy_lane_rejected));
    } else {
      if (!lane_on) {
        std::printf(
            "-- admission: cheap p99 under a heavy-query flood "
            "(%zu cheap + %zu heavy clients, 4 workers) --\n",
            kCheapClients, kHeavyClients);
      }
      std::printf("  heavy lane %3s: cheap p50 %9.1f us, p99 %9.1f us "
                  "(%d heavy completed, %d shed)\n",
                  lane_on ? "on" : "off", p50, p99, heavy_done.load(),
                  heavy_shed.load());
    }
  }
}

// ---------------------------------------------------------------------------

void RunJsonSuite(int requests_per_client) {
  BenchColdVsWarm(/*json=*/true);
  BenchThroughput(/*json=*/true, requests_per_client);
  BenchAdmission(/*json=*/true, requests_per_client);
}

void PrintTable(int requests_per_client) {
  std::printf("=== E20: the query server on the plan cache ===\n");
  std::printf(
      "closed-loop socket clients against a live server; warm requests are "
      "a cache probe + engine run, no parse/analyze/compile\n\n");
  BenchColdVsWarm(/*json=*/false);
  std::printf("\n");
  BenchThroughput(/*json=*/false, requests_per_client);
  std::printf("\n");
  BenchAdmission(/*json=*/false, requests_per_client);
  std::printf(
      "\nshape check: warm p50 >= 5x lower than cold; heavy lane keeps the "
      "cheap p99 bounded under flood; worker scaling needs >1 core.\n\n");
}

// Micro-bench: the in-process request path (no sockets) — Handle() on a
// warm cache is the per-request floor the HTTP layer adds onto.
void BM_HandleWarmQuery(benchmark::State& state) {
  PlanCache cache;
  QueryServerOptions options;
  options.planner.cache = &cache;
  QueryServer server(options);
  server.PutStructure("ring", MakeDirectedCycle(64), "bench");
  HttpRequest request;
  request.method = "POST";
  request.target = "/query";
  request.path = "/query";
  request.body = QueryBody("ring", "forall x. exists y. E(x,y)");
  (void)server.Handle(request);  // Warm.
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Handle(request));
  }
}
BENCHMARK(BM_HandleWarmQuery);

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int requests_per_client = 150;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests_per_client = std::atoi(argv[++i]);
    }
  }
  if (json) {
    RunJsonSuite(requests_per_client);
    return 0;
  }
  PrintTable(requests_per_client);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
