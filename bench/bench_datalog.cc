// E14 — Datalog fixed points: the survey's non-FO contrast class.
//
// Claims reproduced: same-generation and transitive closure need a number
// of fixpoint rounds that grows with the input (no FO formula can do
// that), and the compiled, index-driven semi-naive engine beats both the
// seed's per-position semi-naive interpreter and naive iteration — fewer
// derivations (each derivable combination exactly once) and posting-list
// probes instead of relation scans.
//
// `--json` skips the google-benchmark harness and emits one
// {"bench":...,"n":...,"wall_ms":...,"tuples_derived":...} line per
// configuration (wall_ms is the best of a few repetitions), for scripted
// before/after comparisons.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "structures/generators.h"

namespace {

using fmtk::DatalogProgram;
using fmtk::DatalogStats;
using fmtk::DatalogStrategy;
using fmtk::EvaluateDatalog;
using fmtk::MakeDirectedPath;
using fmtk::MakeFullBinaryTree;
using fmtk::ParallelPolicy;
using fmtk::Structure;

DatalogStats RunOnce(const DatalogProgram& program, const Structure& base,
                     DatalogStrategy strategy) {
  DatalogStats stats;
  (void)*EvaluateDatalog(program, base, strategy, &stats);
  return stats;
}

void PrintTable() {
  std::printf("=== E14: Datalog fixed points (TC, same-generation) ===\n");
  std::printf(
      "paper: fixpoint queries iterate to a data-dependent depth — beyond "
      "any fixed FO quantifier rank\n\n");
  std::printf("-- transitive closure on chains --\n");
  std::printf("%6s %6s %15s %15s %15s %15s %15s\n", "n", "iters",
              "derived(comp)", "derived(seed)", "derived(naive)",
              "scanned(comp)", "scanned(seed)");
  for (std::size_t n : {8, 16, 32, 64}) {
    Structure chain = MakeDirectedPath(n);
    const DatalogProgram tc = DatalogProgram::TransitiveClosure();
    DatalogStats comp = RunOnce(tc, chain, DatalogStrategy::kSemiNaive);
    DatalogStats seed = RunOnce(tc, chain, DatalogStrategy::kSeedSemiNaive);
    DatalogStats naive = RunOnce(tc, chain, DatalogStrategy::kNaive);
    std::printf("%6zu %6zu %15llu %15llu %15llu %15llu %15llu\n", n,
                comp.iterations,
                static_cast<unsigned long long>(comp.tuples_derived),
                static_cast<unsigned long long>(seed.tuples_derived),
                static_cast<unsigned long long>(naive.tuples_derived),
                static_cast<unsigned long long>(comp.tuples_scanned),
                static_cast<unsigned long long>(seed.tuples_scanned));
  }
  std::printf("\n-- same-generation on full binary trees --\n");
  std::printf("%6s %6s %6s %10s %15s %15s %15s\n", "depth", "n", "iters",
              "firings", "atom_visits", "scanned(comp)", "scanned(seed)");
  for (std::size_t depth = 2; depth <= 5; ++depth) {
    Structure tree = MakeFullBinaryTree(depth);
    const DatalogProgram sg = DatalogProgram::SameGeneration();
    DatalogStats comp = RunOnce(sg, tree, DatalogStrategy::kSemiNaive);
    DatalogStats seed = RunOnce(sg, tree, DatalogStrategy::kSeedSemiNaive);
    std::printf("%6zu %6zu %6zu %10llu %15llu %15llu %15llu\n", depth,
                tree.domain_size(), comp.iterations,
                static_cast<unsigned long long>(comp.rule_applications),
                static_cast<unsigned long long>(comp.atom_visits),
                static_cast<unsigned long long>(comp.tuples_scanned),
                static_cast<unsigned long long>(seed.tuples_scanned));
  }
  std::printf(
      "\n-- nonlinear TC on a chain (two recursive body atoms) --\n");
  std::printf("%6s %15s %15s %12s\n", "n", "derived(comp)", "derived(seed)",
              "tuples_new");
  for (std::size_t n : {16, 32, 48}) {
    Structure chain = MakeDirectedPath(n);
    const DatalogProgram nltc = DatalogProgram::NonlinearTransitiveClosure();
    DatalogStats comp = RunOnce(nltc, chain, DatalogStrategy::kSemiNaive);
    DatalogStats seed = RunOnce(nltc, chain, DatalogStrategy::kSeedSemiNaive);
    std::printf("%6zu %15llu %15llu %12llu\n", n,
                static_cast<unsigned long long>(comp.tuples_derived),
                static_cast<unsigned long long>(seed.tuples_derived),
                static_cast<unsigned long long>(comp.tuples_new));
  }
  {
    Structure tree = MakeFullBinaryTree(3);
    DatalogStats stats;
    (void)*EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                           DatalogStrategy::kSemiNaive, &stats);
    std::printf("\n-- compiled join orders (same-generation) --\n");
    for (const std::string& line : stats.join_orders) {
      std::printf("  %s\n", line.c_str());
    }
  }
  std::printf(
      "\nshape check: iteration count grows with the input (linearly for "
      "TC-on-chains, with depth for SG); the compiled engine scans orders "
      "of magnitude fewer tuples than the seed interpreter, and on "
      "nonlinear TC derives each tuple combination exactly once where the "
      "per-position scheme re-derives.\n\n");
}

// --json: wall-clock is the best of `reps` runs, counters from the last.
void EmitJsonLine(const std::string& bench, std::size_t n,
                  const DatalogProgram& program, const Structure& base,
                  DatalogStrategy strategy, int reps,
                  ParallelPolicy policy = {}) {
  double best_ms = 0;
  DatalogStats stats;
  for (int r = 0; r < reps; ++r) {
    DatalogStats run_stats;
    const auto start = std::chrono::steady_clock::now();
    (void)*EvaluateDatalog(program, base, strategy, &run_stats, policy);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (r == 0 || ms < best_ms) {
      best_ms = ms;
    }
    stats = run_stats;
  }
  std::printf(
      "{\"bench\":\"%s\",\"n\":%zu,\"wall_ms\":%.3f,\"iterations\":%zu,"
      "\"tuples_derived\":%llu,\"tuples_new\":%llu,\"index_probes\":%llu,"
      "\"tuples_scanned\":%llu}\n",
      bench.c_str(), n, best_ms, stats.iterations,
      static_cast<unsigned long long>(stats.tuples_derived),
      static_cast<unsigned long long>(stats.tuples_new),
      static_cast<unsigned long long>(stats.index_probes),
      static_cast<unsigned long long>(stats.tuples_scanned));
}

void RunJsonSuite() {
  const DatalogProgram tc = DatalogProgram::TransitiveClosure();
  const DatalogProgram sg = DatalogProgram::SameGeneration();
  const DatalogProgram nltc = DatalogProgram::NonlinearTransitiveClosure();
  for (std::size_t n : {8, 16, 32, 64}) {
    Structure chain = MakeDirectedPath(n);
    EmitJsonLine("tc_chain_compiled", n, tc, chain,
                 DatalogStrategy::kSemiNaive, 5);
    EmitJsonLine("tc_chain_seed_semi", n, tc, chain,
                 DatalogStrategy::kSeedSemiNaive, 5);
    EmitJsonLine("tc_chain_naive", n, tc, chain, DatalogStrategy::kNaive, 3);
  }
  for (std::size_t depth = 2; depth <= 6; ++depth) {
    Structure tree = MakeFullBinaryTree(depth);
    const std::size_t n = tree.domain_size();
    EmitJsonLine("sg_tree_compiled", n, sg, tree,
                 DatalogStrategy::kSemiNaive, 3);
    EmitJsonLine("sg_tree_seed_semi", n, sg, tree,
                 DatalogStrategy::kSeedSemiNaive, depth >= 6 ? 1 : 3);
  }
  {
    Structure tree = MakeFullBinaryTree(6);
    ParallelPolicy policy;
    policy.enabled = true;
    EmitJsonLine("sg_tree_compiled_par", tree.domain_size(), sg, tree,
                 DatalogStrategy::kSemiNaive, 3, policy);
  }
  for (std::size_t n : {24, 48}) {
    Structure chain = MakeDirectedPath(n);
    EmitJsonLine("nltc_chain_compiled", n, nltc, chain,
                 DatalogStrategy::kSemiNaive, 3);
    EmitJsonLine("nltc_chain_seed_semi", n, nltc, chain,
                 DatalogStrategy::kSeedSemiNaive, 3);
  }
}

void BM_TcCompiled(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(tc, chain, DatalogStrategy::kSemiNaive));
  }
}
BENCHMARK(BM_TcCompiled)->RangeMultiplier(2)->Range(8, 64);

void BM_TcSeedSemiNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(tc, chain, DatalogStrategy::kSeedSemiNaive));
  }
}
BENCHMARK(BM_TcSeedSemiNaive)->RangeMultiplier(2)->Range(8, 64);

void BM_TcNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(tc, chain, DatalogStrategy::kNaive));
  }
}
BENCHMARK(BM_TcNaive)->RangeMultiplier(2)->Range(8, 64);

void BM_SameGenerationCompiled(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  Structure tree = MakeFullBinaryTree(depth);
  DatalogProgram sg = DatalogProgram::SameGeneration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(sg, tree, DatalogStrategy::kSemiNaive));
  }
}
BENCHMARK(BM_SameGenerationCompiled)->DenseRange(2, 6);

void BM_SameGenerationSeedSemiNaive(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  Structure tree = MakeFullBinaryTree(depth);
  DatalogProgram sg = DatalogProgram::SameGeneration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(sg, tree, DatalogStrategy::kSeedSemiNaive));
  }
}
BENCHMARK(BM_SameGenerationSeedSemiNaive)->DenseRange(2, 5);

void BM_NonlinearTcCompiled(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  DatalogProgram nltc = DatalogProgram::NonlinearTransitiveClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(nltc, chain, DatalogStrategy::kSemiNaive));
  }
}
BENCHMARK(BM_NonlinearTcCompiled)->RangeMultiplier(2)->Range(16, 64);

void BM_NonlinearTcSeedSemiNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  DatalogProgram nltc = DatalogProgram::NonlinearTransitiveClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(nltc, chain, DatalogStrategy::kSeedSemiNaive));
  }
}
BENCHMARK(BM_NonlinearTcSeedSemiNaive)->RangeMultiplier(2)->Range(16, 64);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonSuite();
      return 0;
    }
  }
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
