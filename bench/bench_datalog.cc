// E14 — Datalog fixed points: the survey's non-FO contrast class.
//
// Claims reproduced: same-generation and transitive closure need a number
// of fixpoint rounds that grows with the input (no FO formula can do
// that), and semi-naive evaluation derives far fewer duplicate tuples than
// naive iteration.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "structures/generators.h"

namespace {

using fmtk::DatalogProgram;
using fmtk::DatalogStats;
using fmtk::DatalogStrategy;
using fmtk::EvaluateDatalog;
using fmtk::MakeDirectedPath;
using fmtk::MakeFullBinaryTree;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E14: Datalog fixed points (TC, same-generation) ===\n");
  std::printf(
      "paper: fixpoint queries iterate to a data-dependent depth — beyond "
      "any fixed FO quantifier rank\n\n");
  std::printf("-- transitive closure on chains --\n");
  std::printf("%6s %12s %16s %16s\n", "n", "iterations", "derived(semi)",
              "derived(naive)");
  for (std::size_t n : {8, 16, 32, 64}) {
    Structure chain = MakeDirectedPath(n);
    DatalogStats semi;
    DatalogStats naive;
    (void)*EvaluateDatalog(DatalogProgram::TransitiveClosure(), chain,
                           DatalogStrategy::kSemiNaive, &semi);
    (void)*EvaluateDatalog(DatalogProgram::TransitiveClosure(), chain,
                           DatalogStrategy::kNaive, &naive);
    std::printf("%6zu %12zu %16llu %16llu\n", n, semi.iterations,
                static_cast<unsigned long long>(semi.tuples_derived),
                static_cast<unsigned long long>(naive.tuples_derived));
  }
  std::printf("\n-- same-generation on full binary trees --\n");
  std::printf("%6s %6s %12s %14s\n", "depth", "n", "iterations",
              "|sg| tuples");
  for (std::size_t depth = 2; depth <= 6; ++depth) {
    Structure tree = MakeFullBinaryTree(depth);
    DatalogStats stats;
    auto out = *EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                                DatalogStrategy::kSemiNaive, &stats);
    std::printf("%6zu %6zu %12zu %14zu\n", depth, tree.domain_size(),
                stats.iterations, out.at("sg").size());
  }
  std::printf(
      "\nshape check: iteration count grows with the input (linearly for "
      "TC-on-chains, with depth for SG); semi-naive derives an order of "
      "magnitude fewer duplicates than naive.\n\n");
}

void BM_TcSemiNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(tc, chain, DatalogStrategy::kSemiNaive));
  }
}
BENCHMARK(BM_TcSemiNaive)->RangeMultiplier(2)->Range(8, 64);

void BM_TcNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(tc, chain, DatalogStrategy::kNaive));
  }
}
BENCHMARK(BM_TcNaive)->RangeMultiplier(2)->Range(8, 64);

void BM_SameGeneration(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  Structure tree = MakeFullBinaryTree(depth);
  DatalogProgram sg = DatalogProgram::SameGeneration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateDatalog(sg, tree, DatalogStrategy::kSemiNaive));
  }
}
BENCHMARK(BM_SameGeneration)->DenseRange(2, 6);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
