// E5 — Theorem 3.1: L_m ≡n L_k for all m, k >= 2^n (sharp threshold
// 2^n - 1), hence EVEN is not FO-expressible over linear orders.
//
// The table regenerates the threshold: for each n, the least s such that
// L_s ≡n L_{s+1}, computed three independent ways — closed form,
// composition-method interval DP, and (for small n) the exact rank-type
// solver on the actual order structures.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/games/linear_order.h"
#include "core/types/rank_type.h"
#include "structures/generators.h"

namespace {

using fmtk::LinearOrdersEquivalent;
using fmtk::LinearOrdersEquivalentByComposition;
using fmtk::MakeLinearOrder;
using fmtk::RankTypeIndex;
using fmtk::Structure;

std::size_t ThresholdByClosedForm(std::size_t n) {
  for (std::size_t s = 1;; ++s) {
    if (LinearOrdersEquivalent(s, s + 1, n)) {
      return s;
    }
  }
}

std::size_t ThresholdByComposition(fmtk::LinearOrderGameTable& table,
                                   std::size_t n) {
  for (std::size_t s = 1;; ++s) {
    if (table.Equivalent(s, s + 1, n)) {
      return s;
    }
  }
}

std::size_t ThresholdByTypes(std::size_t n, std::size_t limit) {
  RankTypeIndex index;
  for (std::size_t s = 1; s <= limit; ++s) {
    Structure a = MakeLinearOrder(s);
    Structure b = MakeLinearOrder(s + 1);
    if (index.EquivalentUpToRank(a, b, n)) {
      return s;
    }
  }
  return 0;  // Not found within limit.
}

void PrintTable() {
  std::printf("=== E5: Theorem 3.1 — EF games on linear orders ===\n");
  std::printf(
      "paper: L_m =_n L_k for m,k >= 2^n; the sharp threshold is 2^n - 1\n\n");
  std::printf("%4s %10s %12s %14s %12s\n", "n", "predicted", "closed-form",
              "composition", "rank-types");
  fmtk::LinearOrderGameTable table;
  for (std::size_t n = 1; n <= 10; ++n) {
    const std::size_t predicted = (std::size_t{1} << n) - 1;
    const std::size_t closed = ThresholdByClosedForm(n);
    // The interval DP is polynomial but still heavy at large thresholds;
    // sweep it to n = 6 (threshold 63) and rely on the closed form beyond.
    std::string comp = "-";
    if (n <= 6) {
      comp = std::to_string(ThresholdByComposition(table, n));
    }
    std::string types = "-";
    if (n <= 3) {
      types = std::to_string(ThresholdByTypes(n, 16));
    }
    std::printf("%4zu %10zu %12zu %14s %12s\n", n, predicted, closed,
                comp.c_str(), types.c_str());
  }
  std::printf(
      "\n-- parity witnesses: L_{2^n} vs L_{2^n + 1} are n-equivalent but "
      "differ on EVEN --\n");
  std::printf("%4s %8s %8s %12s\n", "n", "m", "k", "m =_n k");
  for (std::size_t n = 1; n <= 8; ++n) {
    const std::size_t m = std::size_t{1} << n;
    std::printf("%4zu %8zu %8zu %12s\n", n, m, m + 1,
                LinearOrdersEquivalent(m, m + 1, n) ? "yes" : "no");
  }
  std::printf(
      "\nshape check: all three threshold columns equal 2^n - 1; every "
      "parity witness row says yes.\n\n");
}

void BM_CompositionDP(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = (std::size_t{1} << n) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LinearOrdersEquivalentByComposition(m, m + 1, n));
  }
}
BENCHMARK(BM_CompositionDP)->DenseRange(2, 6);

void BM_RankTypesOnOrders(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure a = MakeLinearOrder(7);
  Structure b = MakeLinearOrder(8);
  for (auto _ : state) {
    RankTypeIndex index;
    benchmark::DoNotOptimize(index.EquivalentUpToRank(a, b, n));
  }
}
BENCHMARK(BM_RankTypesOnOrders)->DenseRange(1, 3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
