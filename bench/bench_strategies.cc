// X5/E16 (ext) — the "library of winning strategies" the survey calls for
// (§3.2, citing [10]).
//
// Claims reproduced: the set-mirror and order-gap strategies are verified
// winning strategies exactly where the theory predicts (sets >= n;
// orders at the 2^n - 1 threshold), and verifying a strategy is orders of
// magnitude cheaper than solving the game exactly — one duplicator reply
// per spoiler line instead of minimax over all replies.

// `--json` skips the google-benchmark harness and emits one
// {"bench":...,"n":...,"wall_ms":...,"nodes":...} line per run: the
// strategy referee's visited positions vs the exact solver's, on the same
// linear-order instances.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "core/games/ef_game.h"
#include "core/games/linear_order.h"
#include "core/games/strategy.h"
#include "structures/generators.h"

namespace {

using fmtk::EfGameSolver;
using fmtk::MakeLinearOrder;
using fmtk::MakeSet;
using fmtk::OrderGapStrategy;
using fmtk::SetMirrorStrategy;
using fmtk::StrategySurvives;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E16 (ext): the library of winning strategies ===\n");
  std::printf(
      "paper (3.2): \"[10] suggested that we build a library of winning "
      "strategies for the duplicator\"\n\n");
  std::printf("-- order-gap strategy vs Theorem 3.1, n = 3 (threshold 7) --\n");
  std::printf("%4s %4s %18s %14s\n", "m", "k", "strategy survives",
              "theorem says");
  OrderGapStrategy gap;
  for (std::size_t m : {5, 6, 7, 8, 10}) {
    for (std::size_t k : {7, 8}) {
      Structure a = MakeLinearOrder(m);
      Structure b = MakeLinearOrder(k);
      bool survives = *StrategySurvives(a, b, 3, gap);
      bool theorem = fmtk::LinearOrdersEquivalent(m, k, 3);
      std::printf("%4zu %4zu %18s %14s%s\n", m, k, survives ? "yes" : "no",
                  theorem ? "yes" : "no", survives == theorem ? "" : "  !!");
    }
  }
  std::printf(
      "\n-- verification cost: strategy referee vs exact solver, orders of "
      "size 2^n - 1 --\n");
  std::printf("%4s %20s %20s\n", "n", "referee (positions)",
              "solver (positions)");
  OrderGapStrategy referee_gap;
  for (std::size_t n = 2; n <= 4; ++n) {
    const std::size_t m = (std::size_t{1} << n) - 1;
    Structure a = MakeLinearOrder(m);
    Structure b = MakeLinearOrder(m + 1);
    std::uint64_t referee_nodes = 0;
    (void)*StrategySurvives(a, b, n, referee_gap, 20'000'000, &referee_nodes);
    EfGameSolver solver(a, b);
    (void)*solver.DuplicatorWins(n);
    std::printf("%4zu %20llu %20llu\n", n,
                static_cast<unsigned long long>(referee_nodes),
                static_cast<unsigned long long>(solver.nodes_explored()));
  }
  std::printf(
      "\nshape check: strategy column equals theorem column everywhere; "
      "the timed benchmarks below show the referee scaling far better than "
      "the solver.\n\n");
}

void BM_StrategyReferee(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = (std::size_t{1} << n) - 1;
  Structure a = MakeLinearOrder(m);
  Structure b = MakeLinearOrder(m + 1);
  OrderGapStrategy gap;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrategySurvives(a, b, n, gap));
  }
}
BENCHMARK(BM_StrategyReferee)->DenseRange(2, 3);

void BM_ExactSolver(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = (std::size_t{1} << n) - 1;
  Structure a = MakeLinearOrder(m);
  Structure b = MakeLinearOrder(m + 1);
  for (auto _ : state) {
    EfGameSolver solver(a, b);
    benchmark::DoNotOptimize(solver.DuplicatorWins(n));
  }
}
BENCHMARK(BM_ExactSolver)->DenseRange(2, 3);

void BM_SetMirror(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure a = MakeSet(2 * n);
  Structure b = MakeSet(2 * n + 1);
  SetMirrorStrategy mirror;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrategySurvives(a, b, n, mirror));
  }
}
BENCHMARK(BM_SetMirror)->DenseRange(1, 4);

void EmitJsonLine(const char* bench, std::size_t n, double wall_ms,
                  unsigned long long nodes) {
  std::printf("{\"bench\":\"%s\",\"n\":%zu,\"wall_ms\":%.3f,\"nodes\":%llu}\n",
              bench, n, wall_ms, nodes);
}

template <typename Fn>
double TimedMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

void RunJsonSuite() {
  // Referee vs exact solver on the sharp-threshold linear orders.
  OrderGapStrategy gap;
  for (std::size_t n = 2; n <= 4; ++n) {
    const std::size_t m = (std::size_t{1} << n) - 1;
    Structure a = MakeLinearOrder(m);
    Structure b = MakeLinearOrder(m + 1);
    std::uint64_t referee_nodes = 0;
    const double referee_ms = TimedMs(
        [&] { (void)*StrategySurvives(a, b, n, gap, 20'000'000,
                                      &referee_nodes); });
    EmitJsonLine("referee_linear_order", n, referee_ms, referee_nodes);
    EfGameSolver solver(a, b);
    const double solver_ms = TimedMs([&] { (void)*solver.DuplicatorWins(n); });
    EmitJsonLine("solver_linear_order", n, solver_ms,
                 solver.nodes_explored());
  }
  SetMirrorStrategy mirror;
  for (std::size_t n = 2; n <= 4; ++n) {
    Structure a = MakeSet(2 * n);
    Structure b = MakeSet(2 * n + 1);
    std::uint64_t referee_nodes = 0;
    const double ms = TimedMs(
        [&] { (void)*StrategySurvives(a, b, n, mirror, 20'000'000,
                                      &referee_nodes); });
    EmitJsonLine("referee_sets", n, ms, referee_nodes);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonSuite();
      return 0;
    }
  }
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
