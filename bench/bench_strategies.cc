// X5/E16 (ext) — the "library of winning strategies" the survey calls for
// (§3.2, citing [10]).
//
// Claims reproduced: the set-mirror and order-gap strategies are verified
// winning strategies exactly where the theory predicts (sets >= n;
// orders at the 2^n - 1 threshold), and verifying a strategy is orders of
// magnitude cheaper than solving the game exactly — one duplicator reply
// per spoiler line instead of minimax over all replies.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/games/ef_game.h"
#include "core/games/linear_order.h"
#include "core/games/strategy.h"
#include "structures/generators.h"

namespace {

using fmtk::EfGameSolver;
using fmtk::MakeLinearOrder;
using fmtk::MakeSet;
using fmtk::OrderGapStrategy;
using fmtk::SetMirrorStrategy;
using fmtk::StrategySurvives;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E16 (ext): the library of winning strategies ===\n");
  std::printf(
      "paper (3.2): \"[10] suggested that we build a library of winning "
      "strategies for the duplicator\"\n\n");
  std::printf("-- order-gap strategy vs Theorem 3.1, n = 3 (threshold 7) --\n");
  std::printf("%4s %4s %18s %14s\n", "m", "k", "strategy survives",
              "theorem says");
  OrderGapStrategy gap;
  for (std::size_t m : {5, 6, 7, 8, 10}) {
    for (std::size_t k : {7, 8}) {
      Structure a = MakeLinearOrder(m);
      Structure b = MakeLinearOrder(k);
      bool survives = *StrategySurvives(a, b, 3, gap);
      bool theorem = fmtk::LinearOrdersEquivalent(m, k, 3);
      std::printf("%4zu %4zu %18s %14s%s\n", m, k, survives ? "yes" : "no",
                  theorem ? "yes" : "no", survives == theorem ? "" : "  !!");
    }
  }
  std::printf(
      "\n-- verification cost: strategy referee vs exact solver, orders of "
      "size 2^n - 1 --\n");
  std::printf("%4s %20s %20s\n", "n", "referee (positions)",
              "solver (positions)");
  for (std::size_t n = 2; n <= 4; ++n) {
    const std::size_t m = (std::size_t{1} << n) - 1;
    Structure a = MakeLinearOrder(m);
    Structure b = MakeLinearOrder(m + 1);
    // Referee: count spoiler lines via a node-capped run (it stores the
    // count in nodes; easiest proxy here is timing below, so print the
    // solver side and "1 reply/line" note).
    EfGameSolver solver(a, b);
    (void)*solver.DuplicatorWins(n);
    std::printf("%4zu %20s %20llu\n", n, "1 reply per line",
                static_cast<unsigned long long>(solver.nodes_explored()));
  }
  std::printf(
      "\nshape check: strategy column equals theorem column everywhere; "
      "the timed benchmarks below show the referee scaling far better than "
      "the solver.\n\n");
}

void BM_StrategyReferee(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = (std::size_t{1} << n) - 1;
  Structure a = MakeLinearOrder(m);
  Structure b = MakeLinearOrder(m + 1);
  OrderGapStrategy gap;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrategySurvives(a, b, n, gap));
  }
}
BENCHMARK(BM_StrategyReferee)->DenseRange(2, 3);

void BM_ExactSolver(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = (std::size_t{1} << n) - 1;
  Structure a = MakeLinearOrder(m);
  Structure b = MakeLinearOrder(m + 1);
  for (auto _ : state) {
    EfGameSolver solver(a, b);
    benchmark::DoNotOptimize(solver.DuplicatorWins(n));
  }
}
BENCHMARK(BM_ExactSolver)->DenseRange(2, 3);

void BM_SetMirror(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure a = MakeSet(2 * n);
  Structure b = MakeSet(2 * n + 1);
  SetMirrorStrategy mirror;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrategySurvives(a, b, n, mirror));
  }
}
BENCHMARK(BM_SetMirror)->DenseRange(1, 4);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
