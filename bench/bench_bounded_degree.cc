// E11 — Theorems 3.10/3.11: threshold Hanf equivalence and linear-time FO
// evaluation on bounded-degree graphs (Seese).
//
// Claims reproduced: (a) ⇆*_{m,r} holds across a bounded-degree family and
// licenses answer reuse; (b) the type-based evaluator answers a family of
// growing chains with one slow evaluation plus linear-time passes — its
// per-instance cost curve flattens against the naive O(n^k) checker.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/algorithmic/bounded_degree.h"
#include "core/locality/hanf.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "structures/generators.h"

namespace {

using fmtk::BoundedDegreeEvaluator;
using fmtk::Formula;
using fmtk::MakeDirectedPath;
using fmtk::ModelChecker;
using fmtk::ParseFormula;
using fmtk::Structure;
using fmtk::ThresholdHanfEquivalent;

const char* kSentence = "exists x. !(exists y. E(x,y))";  // "has a sink".

void PrintTable() {
  std::printf("=== E11: bounded-degree linear-time evaluation ===\n");
  std::printf(
      "paper: FO over bounded-degree graphs has linear-time data "
      "complexity (precompute on N(k,r) types, then count)\n\n");
  std::printf("-- threshold Hanf across the chain family (r=2, m=3) --\n");
  std::printf("%8s %8s %14s\n", "n1", "n2", "⇆*_{3,2}");
  for (std::size_t n = 8; n <= 64; n *= 2) {
    Structure a = MakeDirectedPath(n);
    Structure b = MakeDirectedPath(2 * n);
    std::printf("%8zu %8zu %14s\n", n, 2 * n,
                ThresholdHanfEquivalent(a, b, 2, 3) ? "yes" : "no");
  }
  std::printf("\n-- evaluator cache behaviour on chains n = 8..200 --\n");
  Formula f = *ParseFormula(kSentence);
  BoundedDegreeEvaluator evaluator = *BoundedDegreeEvaluator::Create(
      f, {.radius = 2, .threshold = 3, .parallel = {}});
  std::printf("%8s %10s %10s %10s\n", "n", "verdict", "hits", "misses");
  for (std::size_t n = 8; n <= 200; n += 24) {
    bool verdict = *evaluator.Evaluate(MakeDirectedPath(n));
    std::printf("%8zu %10s %10zu %10zu\n", n, verdict ? "true" : "false",
                evaluator.cache_hits(), evaluator.cache_misses());
  }
  std::printf(
      "\n-- per-instance work: naive quantifier instantiations vs the "
      "evaluator's linear pass --\n");
  std::printf("%8s %22s %22s\n", "n", "naive instantiations",
              "type-pass work (n)");
  for (std::size_t n = 16; n <= 256; n *= 2) {
    Structure chain = MakeDirectedPath(n);
    ModelChecker checker(chain);
    (void)checker.Check(f);
    std::printf("%8zu %22llu %22zu\n", n,
                static_cast<unsigned long long>(
                    checker.stats().quantifier_instantiations),
                n);
  }
  std::printf(
      "\nshape check: threshold-Hanf yes across the family; misses stop "
      "growing after the first few sizes; naive work is quadratic while the "
      "type pass is linear.\n\n");
}

void BM_NaiveModelCheck(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  Formula f = *ParseFormula(kSentence);
  for (auto _ : state) {
    ModelChecker checker(chain);
    benchmark::DoNotOptimize(checker.Check(f));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_NaiveModelCheck)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity();

void BM_BoundedDegreeEvaluator(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Formula f = *ParseFormula(kSentence);
  BoundedDegreeEvaluator evaluator = *BoundedDegreeEvaluator::Create(
      f, {.radius = 2, .threshold = 3, .parallel = {}});
  // Warm the cache with one representative so the loop measures the
  // amortized (cache-hit) path — the theorem's linear pass.
  Structure warmup = MakeDirectedPath(n);
  (void)evaluator.Evaluate(warmup);
  Structure chain = MakeDirectedPath(n + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(chain));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_BoundedDegreeEvaluator)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
