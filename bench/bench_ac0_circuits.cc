// E3 — FO is in AC0 data complexity (survey §2).
//
// Claims reproduced: for a fixed FO sentence the compiled circuit family
// has (a) depth constant in n, (b) size polynomial in n, and (c) the n-th
// circuit evaluated on the structure's bit encoding agrees with direct
// model checking.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "circuits/compile.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "structures/generators.h"

namespace {

using fmtk::Circuit;
using fmtk::CompileSentence;
using fmtk::EncodeStructure;
using fmtk::Formula;
using fmtk::MakeRandomStructure;
using fmtk::ParseFormula;
using fmtk::Satisfies;
using fmtk::Signature;
using fmtk::Structure;

struct NamedSentence {
  const char* name;
  const char* text;
};

constexpr NamedSentence kSentences[] = {
    {"has-loop", "exists x. E(x,x)"},
    {"out-regular", "forall x. exists y. E(x,y)"},
    {"sym-pair", "exists x. forall y. E(x,y) -> E(y,x)"},
};

void PrintTable() {
  std::printf("=== E3: FO data complexity in AC0 ===\n");
  std::printf(
      "paper: constant-depth, poly-size circuit families with unbounded "
      "fan-in decide any fixed FO query\n\n");
  std::printf("%-12s %6s %8s %8s %10s\n", "sentence", "n", "depth", "gates",
              "agree");
  std::mt19937_64 rng(99);
  for (const NamedSentence& s : kSentences) {
    Formula f = *ParseFormula(s.text);
    for (std::size_t n : {2, 4, 8, 16, 32}) {
      Circuit circuit = *CompileSentence(f, *Signature::Graph(), n);
      std::size_t agree = 0;
      const int trials = 5;
      for (int t = 0; t < trials; ++t) {
        Structure g = MakeRandomStructure(Signature::Graph(), n, 0.4, rng);
        bool via_circuit = *circuit.Evaluate(*EncodeStructure(g));
        bool direct = *Satisfies(g, f);
        agree += (via_circuit == direct) ? 1 : 0;
      }
      std::printf("%-12s %6zu %8zu %8zu %7zu/%d\n", s.name, n,
                  circuit.Depth(), circuit.gate_count(), agree, trials);
    }
  }
  std::printf(
      "\nshape check: depth column constant per sentence as n grows; gate "
      "count polynomial (~n^rank); agreement 5/5.\n\n");
}

void BM_CompileCircuit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Formula f = *ParseFormula(kSentences[1].text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompileSentence(f, *Signature::Graph(), n));
  }
}
BENCHMARK(BM_CompileCircuit)->RangeMultiplier(2)->Range(4, 64);

void BM_EvaluateCircuit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Formula f = *ParseFormula(kSentences[1].text);
  Circuit circuit = *CompileSentence(f, *Signature::Graph(), n);
  std::mt19937_64 rng(1);
  Structure g = MakeRandomStructure(Signature::Graph(), n, 0.4, rng);
  std::vector<bool> bits = *EncodeStructure(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.Evaluate(bits));
  }
}
BENCHMARK(BM_EvaluateCircuit)->RangeMultiplier(2)->Range(4, 64);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
