// E2 — QBF, the canonical PSPACE-complete problem, and its reduction to FO
// model checking (survey §2, Stockmeyer/Vardi).
//
// Claims reproduced: (a) the reduction is correct — solver verdict equals
// model checking the translated sentence on the fixed 2-element structure;
// (b) solving cost grows exponentially with the number of quantified
// variables (the PSPACE shape) while the reduction itself is linear.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "eval/model_check.h"
#include "qbf/qbf.h"

namespace {

using fmtk::MakeRandomQbf;
using fmtk::Qbf;
using fmtk::QbfAsModelChecking;
using fmtk::QbfStats;
using fmtk::ReduceToModelChecking;
using fmtk::Satisfies;
using fmtk::SolveQbf;

void PrintTable() {
  std::printf("=== E2: QBF and the reduction to FO model checking ===\n");
  std::printf(
      "paper: QBF is PSPACE-complete; QBF <= FO-MC over a fixed 2-element "
      "structure\n\n");
  std::printf("%6s %8s %10s %18s %12s\n", "vars", "clauses", "agree",
              "assignments", "fo-nodes");
  std::mt19937_64 rng(424242);
  for (std::size_t vars = 2; vars <= 12; vars += 2) {
    const std::size_t clauses = vars * 2;
    std::size_t agree = 0;
    std::uint64_t assignments = 0;
    std::size_t fo_nodes = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      Qbf f = MakeRandomQbf(vars, clauses, rng);
      QbfStats stats;
      bool solved = *SolveQbf(f, &stats);
      assignments += stats.assignments_tried;
      QbfAsModelChecking reduced = *ReduceToModelChecking(f);
      fo_nodes = reduced.sentence.NodeCount();
      bool checked = *Satisfies(reduced.structure, reduced.sentence);
      agree += (solved == checked) ? 1 : 0;
    }
    std::printf("%6zu %8zu %9zu/%d %18.1f %12zu\n", vars, clauses, agree,
                trials, static_cast<double>(assignments) / trials, fo_nodes);
  }
  std::printf(
      "\nshape check: agreement 10/10 everywhere; assignment counts grow "
      "exponentially in vars, sentence size linearly.\n\n");
}

void BM_QbfSolve(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  Qbf f = MakeRandomQbf(vars, vars * 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveQbf(f));
  }
}
BENCHMARK(BM_QbfSolve)->DenseRange(4, 14, 2);

void BM_QbfViaFoModelChecking(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  Qbf f = MakeRandomQbf(vars, vars * 2, rng);
  QbfAsModelChecking reduced = *ReduceToModelChecking(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Satisfies(reduced.structure, reduced.sentence));
  }
}
BENCHMARK(BM_QbfViaFoModelChecking)->DenseRange(4, 14, 2);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
