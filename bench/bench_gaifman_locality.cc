// E8 — Theorem 3.6, Gaifman locality, and the canonical TC counterexample.
//
// Claim reproduced: on a long chain with points a, b farther than 2r from
// each other and from the endpoints, N_r(a,b) ≅ N_r(b,a) while only (a,b)
// is in the transitive closure — a Gaifman-locality violation at every
// radius the chain can accommodate. The FO control query stops producing
// violations at its own locality radius.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/locality/gaifman_local.h"
#include "logic/parser.h"
#include "queries/relation_query.h"
#include "structures/generators.h"

namespace {

using fmtk::FindGaifmanViolation;
using fmtk::GaifmanLocalRadiusOn;
using fmtk::MakeDirectedPath;
using fmtk::ParseFormula;
using fmtk::Relation;
using fmtk::RelationQuery;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E8: Gaifman locality (Thm 3.6) ===\n");
  std::printf(
      "paper: FO queries are Gaifman-local; TC is not — the long-chain "
      "(a,b)/(b,a) argument\n\n");
  RelationQuery tc = RelationQuery::TransitiveClosure();
  RelationQuery fo = RelationQuery::FromFormula(
      "two-step", *ParseFormula("exists z. E(x,z) & E(z,y)"), {"x", "y"});
  std::printf("%6s %22s %22s\n", "chain", "TC violation at r=",
              "FO ctl local radius");
  for (std::size_t n : {8, 12, 16, 20, 24}) {
    Structure chain = MakeDirectedPath(n);
    Relation tc_out = *tc.Evaluate(chain);
    Relation fo_out = *fo.Evaluate(chain);
    // Largest radius with a TC violation on this chain.
    std::string violated = "none";
    for (std::size_t r = 0; r <= 4; ++r) {
      auto v = *FindGaifmanViolation(chain, tc_out, r);
      if (v.has_value()) {
        violated = "0.." + std::to_string(r) + "+";
      } else {
        break;
      }
    }
    auto fo_radius = *GaifmanLocalRadiusOn(chain, fo_out, 4);
    std::printf("%6zu %22s %22s\n", n, violated.c_str(),
                fo_radius.has_value() ? std::to_string(*fo_radius).c_str()
                                      : ">4");
  }
  std::printf("\n-- the witness pair on a 20-chain at r = 2 --\n");
  Structure chain = MakeDirectedPath(20);
  Relation tc_out = *tc.Evaluate(chain);
  auto v = *FindGaifmanViolation(chain, tc_out, 2);
  if (v.has_value()) {
    std::printf("in TC: (%u,%u)   not in TC: (%u,%u)\n", v->in_output[0],
                v->in_output[1], v->not_in_output[0], v->not_in_output[1]);
  }
  std::printf(
      "\nshape check: TC violations persist to larger radii as chains grow; "
      "the FO control is local at a fixed small radius.\n\n");
}

void BM_FindViolation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  Relation tc_out = *RelationQuery::TransitiveClosure().Evaluate(chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindGaifmanViolation(chain, tc_out, 2));
  }
}
BENCHMARK(BM_FindViolation)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
