// E8 — Theorem 3.6, Gaifman locality, and the canonical TC counterexample.
//
// Claim reproduced: on a long chain with points a, b farther than 2r from
// each other and from the endpoints, N_r(a,b) ≅ N_r(b,a) while only (a,b)
// is in the transitive closure — a Gaifman-locality violation at every
// radius the chain can accommodate. The FO control query stops producing
// violations at its own locality radius.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/locality/gaifman_local.h"
#include "core/locality/locality_engine.h"
#include "core/locality/neighborhood.h"
#include "logic/parser.h"
#include "queries/relation_query.h"
#include "structures/generators.h"
#include "structures/graph.h"
#include "structures/isomorphism.h"

namespace {

using fmtk::Adjacency;
using fmtk::Element;
using fmtk::FindGaifmanViolation;
using fmtk::GaifmanAdjacency;
using fmtk::GaifmanLocalRadiusOn;
using fmtk::GaifmanViolation;
using fmtk::IsomorphismInvariant;
using fmtk::LocalityEngine;
using fmtk::LocalityStats;
using fmtk::MakeDirectedPath;
using fmtk::Neighborhood;
using fmtk::NeighborhoodOf;
using fmtk::NeighborhoodsIsomorphic;
using fmtk::ParseFormula;
using fmtk::Relation;
using fmtk::RelationQuery;
using fmtk::Structure;
using fmtk::Tuple;

void PrintTable() {
  std::printf("=== E8: Gaifman locality (Thm 3.6) ===\n");
  std::printf(
      "paper: FO queries are Gaifman-local; TC is not — the long-chain "
      "(a,b)/(b,a) argument\n\n");
  RelationQuery tc = RelationQuery::TransitiveClosure();
  RelationQuery fo = RelationQuery::FromFormula(
      "two-step", *ParseFormula("exists z. E(x,z) & E(z,y)"), {"x", "y"});
  std::printf("%6s %22s %22s\n", "chain", "TC violation at r=",
              "FO ctl local radius");
  for (std::size_t n : {8, 12, 16, 20, 24}) {
    Structure chain = MakeDirectedPath(n);
    Relation tc_out = *tc.Evaluate(chain);
    Relation fo_out = *fo.Evaluate(chain);
    // Largest radius with a TC violation on this chain.
    std::string violated = "none";
    for (std::size_t r = 0; r <= 4; ++r) {
      auto v = *FindGaifmanViolation(chain, tc_out, r);
      if (v.has_value()) {
        violated = "0.." + std::to_string(r) + "+";
      } else {
        break;
      }
    }
    auto fo_radius = *GaifmanLocalRadiusOn(chain, fo_out, 4);
    std::printf("%6zu %22s %22s\n", n, violated.c_str(),
                fo_radius.has_value() ? std::to_string(*fo_radius).c_str()
                                      : ">4");
  }
  std::printf("\n-- the witness pair on a 20-chain at r = 2 --\n");
  Structure chain = MakeDirectedPath(20);
  Relation tc_out = *tc.Evaluate(chain);
  auto v = *FindGaifmanViolation(chain, tc_out, 2);
  if (v.has_value()) {
    std::printf("in TC: (%u,%u)   not in TC: (%u,%u)\n", v->in_output[0],
                v->in_output[1], v->not_in_output[0], v->not_in_output[1]);
  }
  std::printf(
      "\nshape check: TC violations persist to larger radii as chains grow; "
      "the FO control is local at a fixed small radius.\n\n");
}

// --- --json mode: engine path vs a replica of the seed algorithm ----------
//
// The seed rebuilt the Gaifman adjacency on every call, materialized every
// tuple's neighborhood by scanning the whole structure, and compared
// neighborhoods through invariant buckets with pairwise isomorphism tests.
// The engine overload shares one adjacency across radii and compares by
// canonical code.

void AllTuplesOver(std::size_t n, std::size_t m, std::vector<Tuple>& out) {
  Tuple t(m, 0);
  if (m == 0 || n == 0) {
    return;
  }
  while (true) {
    out.push_back(t);
    std::size_t pos = m;
    while (pos > 0) {
      --pos;
      if (t[pos] + 1 < n) {
        ++t[pos];
        break;
      }
      t[pos] = 0;
      if (pos == 0) {
        return;
      }
    }
  }
}

std::optional<GaifmanViolation> SeedFindViolation(const Structure& s,
                                                  const Relation& output,
                                                  std::size_t radius) {
  Adjacency gaifman = GaifmanAdjacency(s);
  std::vector<Tuple> tuples;
  AllTuplesOver(s.domain_size(), output.arity(), tuples);
  struct Entry {
    Tuple tuple;
    Neighborhood neighborhood;
    bool in_output;
  };
  std::unordered_map<std::size_t, std::vector<Entry>> buckets;
  for (const Tuple& t : tuples) {
    Neighborhood n = NeighborhoodOf(s, gaifman, t, radius);
    std::size_t invariant =
        IsomorphismInvariant(n.structure, n.distinguished);
    std::vector<Entry>& bucket = buckets[invariant];
    const bool in_output = output.Contains(t);
    for (const Entry& other : bucket) {
      if (other.in_output != in_output &&
          NeighborhoodsIsomorphic(other.neighborhood, n)) {
        return in_output ? GaifmanViolation{t, other.tuple}
                         : GaifmanViolation{other.tuple, t};
      }
    }
    bucket.push_back(Entry{t, std::move(n), in_output});
  }
  return std::nullopt;
}

// Scans radii 0..max_radius, counting how many have a violation — the
// E8 "largest violated radius" loop both modes run identically.
template <typename FindFn>
std::size_t CountViolatedRadii(std::size_t max_radius, const FindFn& find) {
  std::size_t violated = 0;
  for (std::size_t r = 0; r <= max_radius; ++r) {
    if (find(r).has_value()) {
      ++violated;
    } else {
      break;
    }
  }
  return violated;
}

void EmitJsonLine(const char* bench, const char* mode, std::size_t n,
                  double wall_ms, std::size_t result,
                  const LocalityStats& stats) {
  std::printf(
      "{\"bench\":\"%s\",\"mode\":\"%s\",\"n\":%zu,\"wall_ms\":%.3f,"
      "\"result\":%zu,\"balls_extracted\":%llu,\"bfs_node_visits\":%llu,"
      "\"canon_codes\":%llu,\"canon_hits\":%llu,\"iso_tests\":%llu,"
      "\"frontier_reuses\":%llu}\n",
      bench, mode, n, wall_ms, result,
      static_cast<unsigned long long>(stats.balls_extracted),
      static_cast<unsigned long long>(stats.bfs_node_visits),
      static_cast<unsigned long long>(stats.canon_codes),
      static_cast<unsigned long long>(stats.canon_hits),
      static_cast<unsigned long long>(stats.iso_tests),
      static_cast<unsigned long long>(stats.frontier_reuses));
}

template <typename Fn>
void TimeAndEmit(const char* bench, const char* mode, std::size_t n,
                 int reps, const Fn& fn) {
  double best_ms = 0;
  std::size_t result = 0;
  LocalityStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    LocalityStats run_stats;
    const auto start = std::chrono::steady_clock::now();
    result = fn(&run_stats);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;
    }
    stats = run_stats;
  }
  EmitJsonLine(bench, mode, n, best_ms, result, stats);
}

void RunJsonSuite() {
  RelationQuery tc = RelationQuery::TransitiveClosure();
  for (std::size_t n : {8, 16, 24, 32}) {
    Structure chain = MakeDirectedPath(n);
    Relation tc_out = *tc.Evaluate(chain);
    TimeAndEmit("gaifman_tc_chain", "engine", n, 5,
                [&](LocalityStats* stats) {
                  LocalityEngine engine(chain);
                  std::size_t violated =
                      CountViolatedRadii(2, [&](std::size_t r) {
                        return *FindGaifmanViolation(engine, tc_out, r);
                      });
                  *stats = engine.stats();
                  return violated;
                });
    TimeAndEmit("gaifman_tc_chain", "seed", n, 3, [&](LocalityStats* stats) {
      (void)stats;
      return CountViolatedRadii(2, [&](std::size_t r) {
        return SeedFindViolation(chain, tc_out, r);
      });
    });
  }
}

void BM_FindViolation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  Relation tc_out = *RelationQuery::TransitiveClosure().Evaluate(chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindGaifmanViolation(chain, tc_out, 2));
  }
}
BENCHMARK(BM_FindViolation)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonSuite();
      return 0;
    }
  }
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
