// E6 — The §3.3 tricks: EVEN(<) reduces to connectivity and acyclicity,
// connectivity reduces to transitive closure (Corollary 3.2).
//
// The table regenerates the parity correlation of the survey's picture:
// the FO-definable 2nd-successor construction is connected exactly on odd
// orders (two components on even ones); the back-edge construction is
// acyclic exactly on even orders; and CONN computed through symmetrize +
// TC + completeness agrees with direct connectivity.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>
#include <vector>

#include "core/interp/reductions.h"
#include "queries/boolean_query.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace {

using fmtk::BooleanQuery;
using fmtk::ConnectedComponents;
using fmtk::ConnectivityViaTransitiveClosure;
using fmtk::EvenToAcyclicity;
using fmtk::EvenToConnectivity;
using fmtk::Interpretation;
using fmtk::MakeDirectedCycle;
using fmtk::MakeDisjointCycles;
using fmtk::MakeFullBinaryTree;
using fmtk::MakeLinearOrder;
using fmtk::Structure;
using fmtk::UndirectedAdjacency;

void PrintTable() {
  std::printf("=== E6: trick reductions (Cor. 3.2) ===\n");
  std::printf(
      "paper: EVEN <= CONN via the 2nd-successor graph; EVEN <= ACYCL via a "
      "back edge; CONN <= TC\n\n");
  Interpretation to_conn = EvenToConnectivity();
  Interpretation to_acycl = EvenToAcyclicity();
  BooleanQuery conn = BooleanQuery::Connectivity();
  BooleanQuery dag = BooleanQuery::DirectedAcyclicity();
  std::printf("%4s %8s %12s %12s %12s\n", "n", "parity", "connected?",
              "components", "acyclic?");
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t n = 2; n <= 16; ++n) {
    Structure g1 = *to_conn.Apply(MakeLinearOrder(n));
    Structure g2 = *to_acycl.Apply(MakeLinearOrder(n));
    const bool connected = *conn.Evaluate(g1);
    const bool acyclic = *dag.Evaluate(g2);
    std::vector<std::size_t> comp =
        ConnectedComponents(UndirectedAdjacency(g1, 0));
    std::set<std::size_t> ids(comp.begin(), comp.end());
    std::printf("%4zu %8s %12s %12zu %12s\n", n, n % 2 == 0 ? "even" : "odd",
                connected ? "yes" : "no", ids.size(),
                acyclic ? "yes" : "no");
    correct += (connected == (n % 2 == 1)) ? 1 : 0;
    correct += (acyclic == (n % 2 == 0)) ? 1 : 0;
    total += 2;
  }
  std::printf("\nparity correlation: %zu/%zu rows as predicted\n", correct,
              total);

  std::printf("\n-- CONN <= TC: symmetrize, close, test completeness --\n");
  std::printf("%-24s %10s %10s\n", "graph", "via TC", "direct");
  struct Case {
    const char* name;
    Structure g;
  };
  std::vector<Case> cases;
  cases.push_back({"cycle(9)", MakeDirectedCycle(9)});
  cases.push_back({"2 x cycle(5)", MakeDisjointCycles(2, 5)});
  cases.push_back({"binary tree d=3", MakeFullBinaryTree(3)});
  for (const Case& c : cases) {
    bool via_tc = *ConnectivityViaTransitiveClosure(c.g);
    bool direct = *BooleanQuery::Connectivity().Evaluate(c.g);
    std::printf("%-24s %10s %10s\n", c.name, via_tc ? "conn" : "disc",
                direct ? "conn" : "disc");
  }
  std::printf(
      "\nshape check: connected iff odd; acyclic iff even; TC route agrees "
      "with direct connectivity.\n\n");
}

void BM_EvenToConnectivity(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Interpretation interp = EvenToConnectivity();
  Structure order = MakeLinearOrder(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Apply(order));
  }
}
BENCHMARK(BM_EvenToConnectivity)->RangeMultiplier(2)->Range(8, 64);

void BM_ConnectivityViaTc(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure g = MakeDirectedCycle(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConnectivityViaTransitiveClosure(g));
  }
}
BENCHMARK(BM_ConnectivityViaTc)->RangeMultiplier(2)->Range(8, 64);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
