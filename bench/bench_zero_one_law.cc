// E13 — The 0-1 law for FO (survey's last section).
//
// Claims reproduced: μ_n(Q1) -> 0 and μ_n(Q2) -> 1 (the survey's two
// example queries); μ_n(EVEN) alternates 1, 0, 1, ... so EVEN has no limit
// and is not FO; the exact almost-sure decision procedure agrees with the
// sampled limits; extension axioms are almost surely true.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "core/zeroone/almost_sure.h"
#include "core/zeroone/mu.h"
#include "logic/parser.h"
#include "structures/signature.h"

namespace {

using fmtk::AlmostSurelyTrue;
using fmtk::ExactMu;
using fmtk::ExtensionAxiom;
using fmtk::ExtensionPattern;
using fmtk::Formula;
using fmtk::MonteCarloMu;
using fmtk::MuEstimate;
using fmtk::ParseFormula;
using fmtk::Signature;

const char* kQ1 = "forall x. forall y. E(x,y)";
const char* kQ2 = "forall x. forall y. x = y | (exists z. E(z,x) & !E(z,y))";

void PrintTable() {
  std::printf("=== E13: the 0-1 law for FO ===\n");
  std::printf(
      "paper: mu(Q1) = 0 (complete graphs), mu(Q2) = 1; mu_n(EVEN) "
      "alternates, so EVEN is not FO\n\n");
  Formula q1 = *ParseFormula(kQ1);
  Formula q2 = *ParseFormula(kQ2);
  std::mt19937_64 rng(11);
  std::printf("%6s %14s %14s %12s\n", "n", "mu_n(Q1)", "mu_n(Q2)", "method");
  for (std::size_t n : {1, 2, 3}) {
    MuEstimate m1 = *ExactMu(q1, Signature::Graph(), n);
    MuEstimate m2 = *ExactMu(q2, Signature::Graph(), n);
    std::printf("%6zu %14.6f %14.6f %12s\n", n, m1.value, m2.value, "exact");
  }
  for (std::size_t n : {6, 12, 24, 48}) {
    MuEstimate m1 = *MonteCarloMu(q1, Signature::Graph(), n, 300, rng);
    MuEstimate m2 = *MonteCarloMu(q2, Signature::Graph(), n, 300, rng);
    std::printf("%6zu %14.6f %14.6f %12s\n", n, m1.value, m2.value,
                "sampled");
  }
  std::printf("\nexact almost-sure verdicts: Q1 = %s, Q2 = %s\n",
              *AlmostSurelyTrue(q1) ? "1" : "0",
              *AlmostSurelyTrue(q2) ? "1" : "0");

  std::printf("\n-- mu_n(EVEN) has no limit --\n");
  std::printf("%6s %12s\n", "n", "mu_n(EVEN)");
  for (std::size_t n = 1; n <= 8; ++n) {
    // Over the empty vocabulary there is exactly one structure per n.
    std::printf("%6zu %12s\n", n, n % 2 == 0 ? "1" : "0");
  }

  std::printf("\n-- extension axioms are almost surely true --\n");
  std::printf("%-26s %10s %16s\n", "pattern (k=1)", "exact", "mu_40 sampled");
  for (bool in : {false, true}) {
    for (bool out : {false, true}) {
      ExtensionPattern pattern;
      pattern.rows = {{in, out}};
      pattern.loop = false;
      Formula axiom = ExtensionAxiom(pattern);
      MuEstimate sampled =
          *MonteCarloMu(axiom, Signature::Graph(), 40, 100, rng);
      std::printf("  in=%d out=%d loop=0        %10s %16.2f\n", in ? 1 : 0,
                  out ? 1 : 0, *AlmostSurelyTrue(axiom) ? "1" : "0",
                  sampled.value);
    }
  }
  std::printf(
      "\nshape check: Q1 column collapses to 0, Q2 column rises to 1, both "
      "matching the exact verdicts; EVEN alternates forever.\n\n");
}

void BM_MonteCarloMu(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Formula q2 = *ParseFormula(kQ2);
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MonteCarloMu(q2, Signature::Graph(), n, 20, rng));
  }
}
BENCHMARK(BM_MonteCarloMu)->RangeMultiplier(2)->Range(8, 64);

void BM_AlmostSureDecision(benchmark::State& state) {
  Formula q2 = *ParseFormula(kQ2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AlmostSurelyTrue(q2));
  }
}
BENCHMARK(BM_AlmostSureDecision);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
