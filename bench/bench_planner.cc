// E19 (extension) — the cost-based meta-planner and compiled-plan cache.
//
// Claims measured:
//   1. Warm plan-cache serving beats cold compile-per-call by >= 5x on a
//      compile-dominated suite (many distinct small queries over a tiny
//      structure: parse + analyze + canonicalize + compile dwarfs the
//      domain scan).
//   2. EvaluateAuto's routed engine is never materially worse than the
//      best single engine's steady-state direct use (<= 1.2x on every
//      benched config), and beats the worst engine by >= 10x on a
//      bounded-degree config (Hanf histogram vs the naive interpreter —
//      survey Thm 3.10/3.11).
//
// `--json` emits one {"bench":...,"engine":...,"wall_ms":...} line per
// (config, engine) plus the cold/warm cache lines; steady-state per-engine
// numbers are best-of-N after one untimed warmup (plan caches, Datalog
// engine memo and Hanf verdict cache seeded — the serving regime the plan
// cache exists for).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/algorithmic/bounded_degree.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "eval/compiled_eval.h"
#include "eval/model_check.h"
#include "eval/query_eval.h"
#include "logic/parser.h"
#include "planner/fo_to_datalog.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "structures/generators.h"

namespace {

using namespace fmtk;  // NOLINT — bench file, brevity wins.

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Best-of-reps wall time of `fn` (one untimed warmup first).
template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  fn();
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms = MsSince(start);
    if (r == 0 || ms < best) {
      best = ms;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// 1. Cold vs warm plan cache on a compile-dominated suite: K distinct
// rank-<=5 sentences over a 3-cycle. Evaluation is a few hundred slot ops;
// parse + analyze + canonicalize + compile dominates a cold pass.

std::vector<std::string> CompileDominatedSuite() {
  std::vector<std::string> suite;
  for (int chain = 2; chain <= 5; ++chain) {
    for (int variant = 0; variant < 8; ++variant) {
      std::string body = "E(v0,v1)";
      for (int i = 1; i < chain; ++i) {
        body += " & E(v" + std::to_string(i) + ",v" + std::to_string(i + 1) +
                ")";
      }
      if (variant & 1) {
        body = "(" + body + ") | E(v0,v0)";
      }
      if (variant & 2) {
        body = "(" + body + ") & ~E(v1,v0)";
      }
      std::string text;
      for (int i = 0; i <= chain; ++i) {
        text += ((variant & 4) != 0 && i == chain ? "forall v" : "exists v") +
                std::to_string(i) + ". ";
      }
      suite.push_back(text + body);
    }
  }
  return suite;
}

void BenchPlanCache(bool json) {
  const Structure tiny = MakeDirectedCycle(3);
  const std::vector<std::string> suite = CompileDominatedSuite();
  constexpr int kReps = 20;

  // Cold: a fresh cache every pass — every sentence recompiles.
  double cold_best = 0;
  for (int r = 0; r < kReps; ++r) {
    PlanCache fresh;
    PlannerOptions opts;
    opts.cache = &fresh;
    const auto start = std::chrono::steady_clock::now();
    for (const std::string& text : suite) {
      (void)*EvaluateAuto(tiny, text, opts);
    }
    const double ms = MsSince(start);
    if (r == 0 || ms < cold_best) {
      cold_best = ms;
    }
  }

  // Warm: one persistent cache, same passes — text-layer hits throughout.
  PlanCache persistent;
  PlannerOptions warm_opts;
  warm_opts.cache = &persistent;
  const double warm_best = BestOf(kReps, [&] {
    for (const std::string& text : suite) {
      (void)*EvaluateAuto(tiny, text, warm_opts);
    }
  });

  const PlanCacheStats stats = persistent.formula_stats();
  if (json) {
    std::printf(
        "{\"bench\":\"plan_cache_cold\",\"n\":%zu,\"wall_ms\":%.3f}\n",
        suite.size(), cold_best);
    std::printf(
        "{\"bench\":\"plan_cache_warm\",\"n\":%zu,\"wall_ms\":%.3f,"
        "\"speedup\":%.1f,\"cache_hits\":%llu,\"cache_misses\":%llu}\n",
        suite.size(), warm_best, cold_best / warm_best,
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses));
  } else {
    std::printf("-- plan cache: %zu distinct sentences on a 3-cycle --\n",
                suite.size());
    std::printf("%18s %12s\n", "config", "wall_ms");
    std::printf("%18s %12.3f\n", "cold (recompile)", cold_best);
    std::printf("%18s %12.3f   (%.1fx; %s)\n", "warm (cache)", warm_best,
                cold_best / warm_best, stats.ToString().c_str());
  }
}

// ---------------------------------------------------------------------------
// 2. Routing grid: steady-state per-call latency of each engine's direct
// use vs the routed EvaluateAuto, per config.

struct SentenceConfig {
  std::string name;
  std::string text;
  Structure structure;
  int reps;
  // Large complements make the direct relational evaluator materialize
  // n^2-sized intermediates (seconds + GBs on the big configs); the router
  // prices that out, the grid skips measuring it.
  bool skip_relational = false;
  int naive_reps = 0;  // 0 = same as reps
};

void EmitEngineLine(const std::string& config, const char* engine,
                    double wall_ms, const char* chosen = nullptr) {
  std::printf("{\"bench\":\"route_%s\",\"engine\":\"%s\",\"wall_ms\":%.4f",
              config.c_str(), engine, wall_ms);
  if (chosen != nullptr) {
    std::printf(",\"chosen\":\"%s\"", chosen);
  }
  std::printf("}\n");
}

void BenchSentenceConfig(const SentenceConfig& cfg, bool json) {
  const Structure& s = cfg.structure;
  const Formula f = *ParseFormula(cfg.text, &s.signature());
  std::vector<std::pair<std::string, double>> rows;

  // naive: the interpreter, per call.
  rows.emplace_back("naive",
                    BestOf(cfg.naive_reps > 0 ? cfg.naive_reps : cfg.reps,
                           [&] {
                             ModelChecker checker(s);
                             (void)*checker.Check(f);
                           }));
  // compiled: plan compiled once (steady state), bind + evaluate per call.
  {
    const CompiledFormula plan = *CompiledFormula::Compile(f, s.signature());
    rows.emplace_back("compiled", BestOf(cfg.reps, [&] {
                        CompiledEvaluator ev = *CompiledEvaluator::Bind(plan, s);
                        (void)*ev.Evaluate();
                      }));
  }
  // relational: bottom-up algebra per call.
  if (!cfg.skip_relational) {
    rows.emplace_back("relational", BestOf(cfg.reps, [&] {
                        (void)*EvaluateQuery(s, f, {});
                      }));
  }
  // datalog: lowering + engine bound once, evaluate per call.
  if (auto tr = TranslateToDatalog(f, s.signature()); tr.ok()) {
    CompiledDatalogEngine engine =
        *CompiledDatalogEngine::Create(tr->program, s);
    const std::string pred = tr->output_predicate;
    rows.emplace_back("datalog", BestOf(cfg.reps, [&] {
                        (void)(*engine.Evaluate()).at(pred).size();
                      }));
  }
  // bounded-degree: evaluator built once, histogram pass per call (the
  // verdict cache is warm after BestOf's warmup call).
  {
    BoundedDegreeEvaluator::Options options;
    options.threshold = 256;
    auto evaluator = BoundedDegreeEvaluator::Create(f, options);
    if (evaluator.ok()) {
      rows.emplace_back("bounded-degree", BestOf(cfg.reps, [&] {
                          (void)*evaluator->Evaluate(s);
                        }));
    }
  }
  // auto: the routed text front door against a warm cache.
  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  PlanExplanation explain;
  (void)*EvaluateAuto(s, cfg.text, opts, &explain);  // warm + capture route
  const double auto_ms = BestOf(cfg.reps, [&] {
    (void)*EvaluateAuto(s, cfg.text, opts);
  });

  if (json) {
    for (const auto& [engine, ms] : rows) {
      EmitEngineLine(cfg.name, engine.c_str(), ms);
    }
    EmitEngineLine(cfg.name, "auto", auto_ms,
                   EngineKindName(explain.chosen));
  } else {
    std::printf("-- %s (n=%zu): %s --\n", cfg.name.c_str(), s.domain_size(),
                cfg.text.c_str());
    for (const auto& [engine, ms] : rows) {
      std::printf("  %16s %12.4f ms\n", engine.c_str(), ms);
    }
    std::printf("  %16s %12.4f ms  -> %s\n", "auto", auto_ms,
                EngineKindName(explain.chosen));
  }
}

void BenchQueryConfig(bool json) {
  std::mt19937_64 rng(20260809);
  const Structure s = MakeRandomGraph(48, 0.08, rng);
  const std::string text = "E(x,y) & E(y,z)";
  const std::vector<std::string> outputs = {"x", "y", "z"};
  const Formula f = *ParseFormula(text, &s.signature());
  constexpr int kReps = 5;
  std::vector<std::pair<std::string, double>> rows;

  rows.emplace_back("naive", BestOf(kReps, [&] {
                      (void)*EvaluateQueryNaive(s, f, outputs);
                    }));
  rows.emplace_back("relational", BestOf(kReps, [&] {
                      (void)*EvaluateQuery(s, f, outputs);
                    }));
  if (auto tr = TranslateToDatalog(f, s.signature()); tr.ok()) {
    CompiledDatalogEngine engine =
        *CompiledDatalogEngine::Create(tr->program, s);
    const std::string pred = tr->output_predicate;
    rows.emplace_back("datalog", BestOf(kReps, [&] {
                        (void)(*engine.Evaluate()).at(pred).size();
                      }));
  }
  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  PlanExplanation explain;
  (void)*EvaluateQueryAuto(s, text, outputs, opts, &explain);
  const double auto_ms = BestOf(kReps, [&] {
    (void)*EvaluateQueryAuto(s, text, outputs, opts);
  });

  if (json) {
    for (const auto& [engine, ms] : rows) {
      EmitEngineLine("join_query", engine.c_str(), ms);
    }
    EmitEngineLine("join_query", "auto", auto_ms,
                   EngineKindName(explain.chosen));
  } else {
    std::printf("-- join_query (n=%zu): %s -> (x,y,z) --\n", s.domain_size(),
                text.c_str());
    for (const auto& [engine, ms] : rows) {
      std::printf("  %16s %12.4f ms\n", engine.c_str(), ms);
    }
    std::printf("  %16s %12.4f ms  -> %s\n", "auto", auto_ms,
                EngineKindName(explain.chosen));
  }
}

// Datalog serving: cached engine binding vs full per-call evaluation.
void BenchDatalogServing(bool json) {
  const Structure chain = MakeDirectedPath(96);
  const DatalogProgram tc = DatalogProgram::TransitiveClosure();
  constexpr int kReps = 5;

  const double direct_ms = BestOf(kReps, [&] {
    (void)*EvaluateDatalog(tc, chain, DatalogStrategy::kSemiNaive);
  });
  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  const double auto_ms = BestOf(kReps, [&] {
    (void)*EvaluateDatalogAuto(chain, tc, opts);
  });

  if (json) {
    std::printf(
        "{\"bench\":\"datalog_serving\",\"engine\":\"direct\","
        "\"wall_ms\":%.4f}\n",
        direct_ms);
    std::printf(
        "{\"bench\":\"datalog_serving\",\"engine\":\"auto\","
        "\"wall_ms\":%.4f}\n",
        auto_ms);
  } else {
    std::printf("-- datalog serving (TC on a 96-chain) --\n");
    std::printf("  %16s %12.4f ms\n", "direct", direct_ms);
    std::printf("  %16s %12.4f ms\n", "auto (memo)", auto_ms);
  }
}

std::vector<SentenceConfig> RoutingConfigs() {
  std::mt19937_64 rng(4242);
  std::vector<SentenceConfig> configs;
  // Bounded-degree showcase: a TRUE universal-universal sentence on a big
  // degree-2 cycle. No short-circuit escape for the compiled scan (n^2
  // pairs must all pass), the relational route materializes the ~E
  // complement (16M rows at this size), the naive interpreter crawls —
  // the Hanf histogram pass is ~n (Thm 3.10/3.11).
  configs.push_back({"bd_cycle",
                     "forall x. forall y. ~E(x,y) | (exists z. E(y,z))",
                     MakeDirectedCycle(4096), 3,
                     /*skip_relational=*/true, /*naive_reps=*/1});
  // Existential-positive, FALSE (no triangle on a cycle): the compiled
  // scan must exhaust n^3 candidates, the materializing engines join two
  // n-sized relations.
  configs.push_back({"ep_triangle",
                     "exists x. exists y. exists z. E(x,y) & E(y,z) & "
                     "E(z,x)",
                     MakeDirectedCycle(128), 5,
                     /*skip_relational=*/false, /*naive_reps=*/2});
  // Diameter-2 check on a dense random digraph: TRUE forall-forall with a
  // cheap inner witness — compiled territory (n^2 with tiny constants),
  // complements price relational out.
  configs.push_back({"dense_diam2",
                     "forall x. forall y. (x = y) | E(x,y) | "
                     "(exists z. E(x,z) & E(z,y))",
                     MakeRandomGraph(96, 0.6, rng), 5});
  return configs;
}

void RunJsonSuite() {
  BenchPlanCache(/*json=*/true);
  for (const SentenceConfig& cfg : RoutingConfigs()) {
    BenchSentenceConfig(cfg, /*json=*/true);
  }
  BenchQueryConfig(/*json=*/true);
  BenchDatalogServing(/*json=*/true);
}

void PrintTable() {
  std::printf("=== E19: meta-planner routing & compiled-plan cache ===\n");
  std::printf(
      "paper: route by the survey's complexity map — bounded degree => "
      "Hanf histogram (Thm 3.10/3.11), EP => Datalog (Sec. 4), else "
      "compiled O(n^qr) (Sec. 2.2)\n\n");
  BenchPlanCache(/*json=*/false);
  std::printf("\n");
  for (const SentenceConfig& cfg : RoutingConfigs()) {
    BenchSentenceConfig(cfg, /*json=*/false);
  }
  BenchQueryConfig(/*json=*/false);
  BenchDatalogServing(/*json=*/false);
  std::printf(
      "\nshape check: warm cache >= 5x cold; auto tracks the best engine "
      "(<= 1.2x) on every config and beats the worst by >= 10x on the "
      "bounded-degree config.\n\n");
}

void BM_EvaluateAutoWarm(benchmark::State& state) {
  const Structure cycle = MakeDirectedCycle(
      static_cast<std::size_t>(state.range(0)));
  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  const std::string text = "forall x. exists y. E(x,y)";
  (void)*EvaluateAuto(cycle, text, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAuto(cycle, text, opts));
  }
}
BENCHMARK(BM_EvaluateAutoWarm)->RangeMultiplier(4)->Range(16, 256);

void BM_CompileUncached(benchmark::State& state) {
  const Structure cycle = MakeDirectedCycle(3);
  const std::string text = "forall x. exists y. E(x,y)";
  PlannerOptions opts;
  opts.use_cache = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAuto(cycle, text, opts));
  }
}
BENCHMARK(BM_CompileUncached);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonSuite();
      return 0;
    }
  }
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
