// E12 — Theorem 3.12, Gaifman's normal form: basic local sentences.
//
// Claims reproduced: the semantic evaluator (scattered-witness search over
// neighborhood evaluations) agrees with the generated plain FO sentence on
// structure panels, and the semantic route is dramatically cheaper — the
// algorithmic payoff of locality that the survey's "algorithmic model
// theory" pointer is about.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/algorithmic/basic_local.h"
#include "eval/model_check.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "structures/generators.h"

namespace {

using fmtk::BasicLocalSentence;
using fmtk::BasicLocalToSentence;
using fmtk::EvaluateBasicLocal;
using fmtk::Formula;
using fmtk::LocallySatisfyingElements;
using fmtk::MakeDirectedCycle;
using fmtk::MakeDirectedPath;
using fmtk::MakeDisjointCycles;
using fmtk::MakeFullBinaryTree;
using fmtk::ParseFormula;
using fmtk::Satisfies;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E12: Gaifman normal form — basic local sentences ===\n");
  std::printf(
      "paper: every FO sentence is a Boolean combination of sentences "
      "asserting n scattered points with r-local properties\n\n");
  // "There are `count` points, pairwise > 2r apart, each with an
  // out-neighbor."
  BasicLocalSentence sentence{2, 1, *ParseFormula("exists y. E(x,y)"), "x"};
  Formula fo = *BasicLocalToSentence(sentence);
  std::printf("generated FO sentence: %zu AST nodes, quantifier rank %zu\n\n",
              fo.NodeCount(), fmtk::QuantifierRank(fo));
  std::printf("%-22s %10s %12s %12s\n", "structure", "|S_psi|", "semantic",
              "plain FO");
  struct Case {
    const char* name;
    Structure g;
  };
  std::vector<Case> cases;
  cases.push_back({"chain(3)", MakeDirectedPath(3)});
  cases.push_back({"chain(8)", MakeDirectedPath(8)});
  cases.push_back({"cycle(8)", MakeDirectedCycle(8)});
  cases.push_back({"2 x cycle(4)", MakeDisjointCycles(2, 4)});
  cases.push_back({"binary tree d=3", MakeFullBinaryTree(3)});
  for (const Case& c : cases) {
    std::vector<fmtk::Element> satisfying =
        *LocallySatisfyingElements(c.g, sentence);
    bool semantic = *EvaluateBasicLocal(c.g, sentence);
    bool direct = *Satisfies(c.g, fo);
    std::printf("%-22s %10zu %12s %12s%s\n", c.name, satisfying.size(),
                semantic ? "true" : "false", direct ? "true" : "false",
                semantic == direct ? "" : "   MISMATCH");
  }
  std::printf(
      "\nshape check: semantic and plain-FO columns agree on every row.\n\n");
}

void BM_SemanticBasicLocal(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  BasicLocalSentence sentence{2, 1, *ParseFormula("exists y. E(x,y)"), "x"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateBasicLocal(chain, sentence));
  }
}
BENCHMARK(BM_SemanticBasicLocal)->RangeMultiplier(2)->Range(8, 128);

void BM_PlainFoBasicLocal(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  BasicLocalSentence sentence{2, 1, *ParseFormula("exists y. E(x,y)"), "x"};
  Formula fo = *BasicLocalToSentence(sentence);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Satisfies(chain, fo));
  }
}
BENCHMARK(BM_PlainFoBasicLocal)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
