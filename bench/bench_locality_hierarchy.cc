// E10 — Theorem 3.9: Hanf-local ⊆ Gaifman-local ⊆ BNDP.
//
// The table exercises the three tools on the same witnesses and shows the
// containment empirically: whenever the Hanf tool separates a pair of
// structures that a query distinguishes, the downstream tools "agree" in
// the sense the hierarchy predicts — a query failing BNDP also fails
// Gaifman locality on suitable inputs, and a Boolean query distinguishing
// ⇆r-equivalent pairs is not Hanf-local at r.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/locality/bndp.h"
#include "core/locality/gaifman_local.h"
#include "core/locality/hanf.h"
#include "core/locality/locality_engine.h"
#include "core/locality/neighborhood.h"
#include "queries/boolean_query.h"
#include "queries/relation_query.h"
#include "structures/generators.h"
#include "structures/graph.h"
#include "structures/isomorphism.h"

namespace {

using fmtk::Adjacency;
using fmtk::BooleanQuery;
using fmtk::DegreeCount;
using fmtk::Element;
using fmtk::FindGaifmanViolation;
using fmtk::GaifmanAdjacency;
using fmtk::GaifmanViolation;
using fmtk::IsomorphismInvariant;
using fmtk::LargestHanfRadius;
using fmtk::LocalityEngine;
using fmtk::LocalityStats;
using fmtk::MakeDirectedCycle;
using fmtk::MakeDirectedPath;
using fmtk::MakeDisjointCycles;
using fmtk::Neighborhood;
using fmtk::NeighborhoodOf;
using fmtk::NeighborhoodsIsomorphic;
using fmtk::NeighborhoodSweep;
using fmtk::NeighborhoodTypeIndex;
using fmtk::Relation;
using fmtk::RelationQuery;
using fmtk::Structure;
using fmtk::Tuple;

void PrintTable() {
  std::printf("=== E10: the tool hierarchy (Thm 3.9) ===\n");
  std::printf("paper: Hanf-local => Gaifman-local => BNDP (strictly)\n\n");
  std::printf(
      "transitive closure on chains of length n — all three tools fire:\n");
  std::printf("%6s %14s %18s %16s\n", "n", "|degs(TC)|",
              "Gaifman viol. r<=2", "BNDP bound 8?");
  RelationQuery tc = RelationQuery::TransitiveClosure();
  for (std::size_t n : {8, 12, 16, 24}) {
    Structure chain = MakeDirectedPath(n);
    Relation out = *tc.Evaluate(chain);
    const std::size_t degrees = DegreeCount(out, n);
    bool violation = (*FindGaifmanViolation(chain, out, 2)).has_value();
    std::printf("%6zu %14zu %18s %16s\n", n, degrees,
                violation ? "yes" : "no", degrees <= 8 ? "yes" : "NO");
  }
  std::printf(
      "\nconnectivity on the cycle pairs — the Hanf tool fires where the "
      "finer tools cannot see a Boolean query:\n");
  std::printf("%4s %16s %18s\n", "m", "largest Hanf r", "CONN separates?");
  BooleanQuery conn = BooleanQuery::Connectivity();
  for (std::size_t m = 5; m <= 11; m += 2) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    auto r = LargestHanfRadius(g1, g2, m);
    const bool separates = *conn.Evaluate(g1) != *conn.Evaluate(g2);
    std::printf("%4zu %16s %18s\n", m,
                r.has_value() ? std::to_string(*r).c_str() : "none",
                separates ? "yes" : "no");
  }
  std::printf(
      "\nshape check: TC violates BNDP and Gaifman locality simultaneously "
      "(hierarchy is consistent); CONN separates ⇆r-equivalent pairs for "
      "every r, so it is not Hanf-local — the weakest tool already "
      "suffices, as the hierarchy predicts.\n\n");
}

// --- --json mode ----------------------------------------------------------
//
// The CI smoke suite: the full E10 hierarchy pass (Hanf radius search on
// the cycle pairs, Gaifman violation scan on TC chains, BNDP profiling) in
// "engine" mode against a replica of the seed algorithms — per-call
// Gaifman adjacency, full-structure neighborhood scans, invariant buckets
// with pairwise isomorphism tests, a fresh BFS per radius.

std::map<NeighborhoodTypeIndex::TypeId, std::size_t> SeedHistogram(
    const Structure& s, std::size_t radius, NeighborhoodTypeIndex& index) {
  Adjacency gaifman = GaifmanAdjacency(s);
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> histogram;
  for (Element v = 0; v < s.domain_size(); ++v) {
    ++histogram[index.TypeOf(NeighborhoodOf(s, gaifman, {v}, radius))];
  }
  return histogram;
}

std::optional<std::size_t> SeedLargestHanfRadius(const Structure& a,
                                                const Structure& b,
                                                std::size_t max_radius) {
  NeighborhoodTypeIndex::Options options;
  options.use_canonical_codes = false;  // the seed's bucket-only regime
  NeighborhoodTypeIndex index(options);
  std::optional<std::size_t> best;
  for (std::size_t r = 0; r <= max_radius; ++r) {
    if (SeedHistogram(a, r, index) != SeedHistogram(b, r, index)) {
      break;
    }
    best = r;
  }
  return best;
}

std::optional<std::size_t> EngineLargestHanfRadius(const Structure& a,
                                                  const Structure& b,
                                                  std::size_t max_radius,
                                                  LocalityStats* stats) {
  NeighborhoodTypeIndex index;
  LocalityEngine engine_a(a);
  LocalityEngine engine_b(b);
  NeighborhoodSweep sweep_a = engine_a.NewSweep();
  NeighborhoodSweep sweep_b = engine_b.NewSweep();
  std::optional<std::size_t> best;
  for (std::size_t r = 0; r <= max_radius; ++r) {
    if (sweep_a.HistogramAt(r, index) != sweep_b.HistogramAt(r, index)) {
      break;
    }
    best = r;
  }
  *stats += engine_a.stats();
  *stats += engine_b.stats();
  return best;
}

void AllTuplesOver(std::size_t n, std::size_t m, std::vector<Tuple>& out) {
  Tuple t(m, 0);
  if (m == 0 || n == 0) {
    return;
  }
  while (true) {
    out.push_back(t);
    std::size_t pos = m;
    while (pos > 0) {
      --pos;
      if (t[pos] + 1 < n) {
        ++t[pos];
        break;
      }
      t[pos] = 0;
      if (pos == 0) {
        return;
      }
    }
  }
}

std::optional<GaifmanViolation> SeedFindViolation(const Structure& s,
                                                  const Relation& output,
                                                  std::size_t radius) {
  Adjacency gaifman = GaifmanAdjacency(s);
  std::vector<Tuple> tuples;
  AllTuplesOver(s.domain_size(), output.arity(), tuples);
  struct Entry {
    Tuple tuple;
    Neighborhood neighborhood;
    bool in_output;
  };
  std::unordered_map<std::size_t, std::vector<Entry>> buckets;
  for (const Tuple& t : tuples) {
    Neighborhood n = NeighborhoodOf(s, gaifman, t, radius);
    std::size_t invariant =
        IsomorphismInvariant(n.structure, n.distinguished);
    std::vector<Entry>& bucket = buckets[invariant];
    const bool in_output = output.Contains(t);
    for (const Entry& other : bucket) {
      if (other.in_output != in_output &&
          NeighborhoodsIsomorphic(other.neighborhood, n)) {
        return in_output ? GaifmanViolation{t, other.tuple}
                         : GaifmanViolation{other.tuple, t};
      }
    }
    bucket.push_back(Entry{t, std::move(n), in_output});
  }
  return std::nullopt;
}

void EmitJsonLine(const char* bench, const char* mode, std::size_t n,
                  double wall_ms, std::size_t result,
                  const LocalityStats& stats) {
  std::printf(
      "{\"bench\":\"%s\",\"mode\":\"%s\",\"n\":%zu,\"wall_ms\":%.3f,"
      "\"result\":%zu,\"balls_extracted\":%llu,\"bfs_node_visits\":%llu,"
      "\"canon_codes\":%llu,\"canon_hits\":%llu,\"iso_tests\":%llu,"
      "\"frontier_reuses\":%llu}\n",
      bench, mode, n, wall_ms, result,
      static_cast<unsigned long long>(stats.balls_extracted),
      static_cast<unsigned long long>(stats.bfs_node_visits),
      static_cast<unsigned long long>(stats.canon_codes),
      static_cast<unsigned long long>(stats.canon_hits),
      static_cast<unsigned long long>(stats.iso_tests),
      static_cast<unsigned long long>(stats.frontier_reuses));
}

template <typename Fn>
void TimeAndEmit(const char* bench, const char* mode, std::size_t n,
                 int reps, const Fn& fn) {
  double best_ms = 0;
  std::size_t result = 0;
  LocalityStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    LocalityStats run_stats;
    const auto start = std::chrono::steady_clock::now();
    result = fn(&run_stats);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;
    }
    stats = run_stats;
  }
  EmitJsonLine(bench, mode, n, best_ms, result, stats);
}

void RunJsonSuite() {
  // Hanf leg: largest radius where the cycle pair is ⇆r-equivalent.
  for (std::size_t m : {9, 13, 17, 21}) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    TimeAndEmit("hierarchy_hanf", "engine", 2 * m, 9,
                [&](LocalityStats* stats) {
                  auto r = EngineLargestHanfRadius(g1, g2, m, stats);
                  return r.has_value() ? *r + 1 : 0;  // 0 = none
                });
    TimeAndEmit("hierarchy_hanf", "seed", 2 * m, 5,
                [&](LocalityStats* stats) {
                  (void)stats;
                  auto r = SeedLargestHanfRadius(g1, g2, m);
                  return r.has_value() ? *r + 1 : 0;
                });
  }
  // Gaifman leg: violation scan for TC on chains, radii 0..2.
  RelationQuery tc = RelationQuery::TransitiveClosure();
  for (std::size_t n : {16, 24, 32}) {
    Structure chain = MakeDirectedPath(n);
    Relation tc_out = *tc.Evaluate(chain);
    TimeAndEmit("hierarchy_gaifman", "engine", n, 9,
                [&](LocalityStats* stats) {
                  LocalityEngine engine(chain);
                  std::size_t violated = 0;
                  for (std::size_t r = 0; r <= 2; ++r) {
                    if ((*FindGaifmanViolation(engine, tc_out, r))
                            .has_value()) {
                      ++violated;
                    }
                  }
                  *stats = engine.stats();
                  return violated;
                });
    TimeAndEmit("hierarchy_gaifman", "seed", n, 5,
                [&](LocalityStats* stats) {
                  (void)stats;
                  std::size_t violated = 0;
                  for (std::size_t r = 0; r <= 2; ++r) {
                    if (SeedFindViolation(chain, tc_out, r).has_value()) {
                      ++violated;
                    }
                  }
                  return violated;
                });
  }
}

void BM_AllThreeToolsOnTc(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  RelationQuery tc = RelationQuery::TransitiveClosure();
  for (auto _ : state) {
    Relation out = *tc.Evaluate(chain);
    benchmark::DoNotOptimize(DegreeCount(out, n));
    benchmark::DoNotOptimize(FindGaifmanViolation(chain, out, 1));
  }
}
BENCHMARK(BM_AllThreeToolsOnTc)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonSuite();
      return 0;
    }
  }
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
