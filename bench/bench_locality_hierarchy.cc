// E10 — Theorem 3.9: Hanf-local ⊆ Gaifman-local ⊆ BNDP.
//
// The table exercises the three tools on the same witnesses and shows the
// containment empirically: whenever the Hanf tool separates a pair of
// structures that a query distinguishes, the downstream tools "agree" in
// the sense the hierarchy predicts — a query failing BNDP also fails
// Gaifman locality on suitable inputs, and a Boolean query distinguishing
// ⇆r-equivalent pairs is not Hanf-local at r.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/locality/bndp.h"
#include "core/locality/gaifman_local.h"
#include "core/locality/hanf.h"
#include "queries/boolean_query.h"
#include "queries/relation_query.h"
#include "structures/generators.h"

namespace {

using fmtk::BooleanQuery;
using fmtk::DegreeCount;
using fmtk::FindGaifmanViolation;
using fmtk::LargestHanfRadius;
using fmtk::MakeDirectedCycle;
using fmtk::MakeDirectedPath;
using fmtk::MakeDisjointCycles;
using fmtk::Relation;
using fmtk::RelationQuery;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E10: the tool hierarchy (Thm 3.9) ===\n");
  std::printf("paper: Hanf-local => Gaifman-local => BNDP (strictly)\n\n");
  std::printf(
      "transitive closure on chains of length n — all three tools fire:\n");
  std::printf("%6s %14s %18s %16s\n", "n", "|degs(TC)|",
              "Gaifman viol. r<=2", "BNDP bound 8?");
  RelationQuery tc = RelationQuery::TransitiveClosure();
  for (std::size_t n : {8, 12, 16, 24}) {
    Structure chain = MakeDirectedPath(n);
    Relation out = *tc.Evaluate(chain);
    const std::size_t degrees = DegreeCount(out, n);
    bool violation = (*FindGaifmanViolation(chain, out, 2)).has_value();
    std::printf("%6zu %14zu %18s %16s\n", n, degrees,
                violation ? "yes" : "no", degrees <= 8 ? "yes" : "NO");
  }
  std::printf(
      "\nconnectivity on the cycle pairs — the Hanf tool fires where the "
      "finer tools cannot see a Boolean query:\n");
  std::printf("%4s %16s %18s\n", "m", "largest Hanf r", "CONN separates?");
  BooleanQuery conn = BooleanQuery::Connectivity();
  for (std::size_t m = 5; m <= 11; m += 2) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    auto r = LargestHanfRadius(g1, g2, m);
    const bool separates = *conn.Evaluate(g1) != *conn.Evaluate(g2);
    std::printf("%4zu %16s %18s\n", m,
                r.has_value() ? std::to_string(*r).c_str() : "none",
                separates ? "yes" : "no");
  }
  std::printf(
      "\nshape check: TC violates BNDP and Gaifman locality simultaneously "
      "(hierarchy is consistent); CONN separates ⇆r-equivalent pairs for "
      "every r, so it is not Hanf-local — the weakest tool already "
      "suffices, as the hierarchy predicts.\n\n");
}

void BM_AllThreeToolsOnTc(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  RelationQuery tc = RelationQuery::TransitiveClosure();
  for (auto _ : state) {
    Relation out = *tc.Evaluate(chain);
    benchmark::DoNotOptimize(DegreeCount(out, n));
    benchmark::DoNotOptimize(FindGaifmanViolation(chain, out, 1));
  }
}
BENCHMARK(BM_AllThreeToolsOnTc)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
