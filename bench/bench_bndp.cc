// E7 — Theorem 3.4, the bounded number of degrees property.
//
// Claims reproduced: TC of an n-chain realizes n distinct degrees from
// degree-<=2 inputs, and same-generation on a depth-d full binary tree
// realizes degrees 1, 2, 4, ..., 2^d from degree-<=3 inputs — both violate
// the BNDP, so neither is FO. An FO control query's degree count stays
// flat.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/locality/bndp.h"
#include "logic/parser.h"
#include "queries/relation_query.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace {

using fmtk::BndpProfile;
using fmtk::DegreeCount;
using fmtk::MakeDirectedPath;
using fmtk::MakeFullBinaryTree;
using fmtk::ParseFormula;
using fmtk::Relation;
using fmtk::RelationQuery;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E7: the bounded number of degrees property ===\n");
  std::printf(
      "paper: FO queries have the BNDP; TC and Datalog same-generation "
      "violate it\n\n");
  RelationQuery tc = RelationQuery::TransitiveClosure();
  RelationQuery sg = RelationQuery::SameGeneration();
  RelationQuery fo = RelationQuery::FromFormula(
      "two-step", *ParseFormula("exists z. E(x,z) & E(z,y)"), {"x", "y"});
  std::printf("-- chains (input degrees <= 2) --\n");
  std::printf("%6s %14s %14s\n", "n", "|degs(TC)|", "|degs(FO ctl)|");
  for (std::size_t n : {4, 8, 16, 32, 64, 128}) {
    Structure chain = MakeDirectedPath(n);
    Relation tc_out = *tc.Evaluate(chain);
    Relation fo_out = *fo.Evaluate(chain);
    std::printf("%6zu %14zu %14zu\n", n, DegreeCount(tc_out, n),
                DegreeCount(fo_out, n));
  }
  std::printf("\n-- full binary trees (input degrees <= 3) --\n");
  std::printf("%6s %6s %14s %20s\n", "depth", "n", "|degs(SG)|",
              "max degree in SG");
  for (std::size_t depth = 2; depth <= 7; ++depth) {
    Structure tree = MakeFullBinaryTree(depth);
    Relation sg_out = *sg.Evaluate(tree);
    std::set<std::size_t> degs =
        fmtk::DegreeSet(sg_out, tree.domain_size());
    std::printf("%6zu %6zu %14zu %20zu\n", depth, tree.domain_size(),
                degs.size(), *degs.rbegin());
  }
  std::printf(
      "\nshape check: |degs(TC)| = n and max SG degree = 2^depth (both "
      "unbounded); the FO control stays at <= 3.\n\n");
}

void BM_TcDegreeSpectrum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure chain = MakeDirectedPath(n);
  RelationQuery tc = RelationQuery::TransitiveClosure();
  for (auto _ : state) {
    Relation out = *tc.Evaluate(chain);
    benchmark::DoNotOptimize(DegreeCount(out, n));
  }
}
BENCHMARK(BM_TcDegreeSpectrum)->RangeMultiplier(2)->Range(16, 256);

void BM_SameGenerationOnTrees(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  Structure tree = MakeFullBinaryTree(depth);
  RelationQuery sg = RelationQuery::SameGeneration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sg.Evaluate(tree));
  }
}
BENCHMARK(BM_SameGenerationOnTrees)->DenseRange(2, 7);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
