// X2/E15 — Structures with order (survey §3.6).
//
// Claims reproduced: a pure-σ sentence is trivially order-invariant; a
// sentence using < as more than cardinality information is caught with a
// witness pair of orders; order-invariant use of < (threshold counting) is
// certified exhaustively on small structures. The timed benchmarks show
// the n! blow-up of exhaustive certification vs sampling.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "core/order/order_invariance.h"
#include "logic/parser.h"
#include "structures/generators.h"

namespace {

using fmtk::CheckOrderInvariance;
using fmtk::Formula;
using fmtk::MakeDirectedCycle;
using fmtk::MakeSet;
using fmtk::OrderInvarianceReport;
using fmtk::ParseFormula;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E15 (ext): order-invariance on (A, <) ===\n");
  std::printf(
      "paper (3.6): database domains are ordered; only order-invariant "
      "sentences define queries on plain structures\n\n");
  struct Case {
    const char* name;
    const char* formula;
  };
  const Case cases[] = {
      {"pure sigma", "forall x. exists y. E(x,y)"},
      {"cardinality via <", "exists x y. x < y"},
      {"min has a loop", "exists x. (!(exists y. y < x)) & E(x,x)"},
  };
  std::printf("%-18s %10s %12s %10s %12s\n", "sentence", "|A|", "orders",
              "invariant", "mode");
  std::mt19937_64 rng(77);
  for (const Case& c : cases) {
    Formula f = *ParseFormula(c.formula);
    for (std::size_t n : {3, 5, 8}) {
      Structure g(fmtk::Signature::Graph(), n);
      g.AddTuple(0, {0, 0});  // One loop, to make "min has a loop" biased.
      OrderInvarianceReport report = *CheckOrderInvariance(g, f, rng, 5, 20);
      std::printf("%-18s %10zu %12zu %10s %12s\n", c.name, n,
                  report.orders_checked, report.invariant ? "yes" : "NO",
                  n <= 5 ? "exhaustive" : "sampled");
    }
  }
  std::printf(
      "\nshape check: rows 1-2 invariant everywhere; row 3 caught with a "
      "witness at every size.\n\n");
}

void BM_ExhaustiveInvariance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure g = MakeSet(n);
  Formula f = *ParseFormula("exists x y. x < y");
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckOrderInvariance(g, f, rng, /*max_exhaustive=*/8, 0));
  }
}
BENCHMARK(BM_ExhaustiveInvariance)->DenseRange(3, 7);

void BM_SampledInvariance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Structure g = MakeDirectedCycle(n);
  Formula f = *ParseFormula("forall x. exists y. E(x,y)");
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckOrderInvariance(g, f, rng, /*max_exhaustive=*/2, 10));
  }
}
BENCHMARK(BM_SampledInvariance)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
