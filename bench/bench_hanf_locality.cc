// E9 — Theorem 3.8, Hanf locality, and the cycles example.
//
// Claim reproduced: G1 = two m-cycles and G2 = one 2m-cycle satisfy
// G1 ⇆r G2 exactly while m > 2r + 1, yet they differ on connectivity — so
// connectivity is not FO. Same shape for the tree variant (2m-chain vs
// m-chain ⊎ m-cycle).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/locality/hanf.h"
#include "queries/boolean_query.h"
#include "structures/generators.h"

namespace {

using fmtk::BooleanQuery;
using fmtk::HanfEquivalent;
using fmtk::LargestHanfRadius;
using fmtk::MakeDirectedCycle;
using fmtk::MakeDirectedPath;
using fmtk::MakeDisjointCycles;
using fmtk::MakePathPlusCycle;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E9: Hanf locality (Thm 3.8) — the cycles example ===\n");
  std::printf(
      "paper: two m-cycles vs one 2m-cycle agree up to radius r while "
      "m > 2r+1, but differ on CONN\n\n");
  BooleanQuery conn = BooleanQuery::Connectivity();
  std::printf("%4s %12s %16s %10s %10s\n", "m", "predicted r*",
              "measured r*", "CONN(G1)", "CONN(G2)");
  for (std::size_t m = 3; m <= 13; m += 2) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    // Predicted: largest r with m > 2r+1, i.e. r* = ceil(m/2) - 1 ... for
    // integer arithmetic: r* = (m - 2) / 2.
    const std::size_t predicted = (m - 2) / 2;
    auto measured = LargestHanfRadius(g1, g2, m);
    std::printf("%4zu %12zu %16s %10s %10s\n", m, predicted,
                measured.has_value() ? std::to_string(*measured).c_str()
                                     : "none",
                *conn.Evaluate(g1) ? "yes" : "no",
                *conn.Evaluate(g2) ? "yes" : "no");
  }
  std::printf("\n-- tree variant: chain(2m) vs chain(m) + cycle(m) --\n");
  BooleanQuery tree = BooleanQuery::Tree();
  std::printf("%4s %16s %10s %10s\n", "m", "measured r*", "TREE(G1)",
              "TREE(G2)");
  for (std::size_t m = 4; m <= 12; m += 2) {
    Structure g1 = MakeDirectedPath(2 * m);
    Structure g2 = MakePathPlusCycle(m);
    auto measured = LargestHanfRadius(g1, g2, m);
    std::printf("%4zu %16s %10s %10s\n", m,
                measured.has_value() ? std::to_string(*measured).c_str()
                                     : "none",
                *tree.Evaluate(g1) ? "yes" : "no",
                *tree.Evaluate(g2) ? "yes" : "no");
  }
  std::printf(
      "\nshape check: measured r* tracks (m-2)/2 — the 2r+1 crossover; the "
      "query columns always differ.\n\n");
}

void BM_HanfEquivalence(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Structure g1 = MakeDisjointCycles(2, m);
  Structure g2 = MakeDirectedCycle(2 * m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HanfEquivalent(g1, g2, (m - 2) / 2));
  }
}
BENCHMARK(BM_HanfEquivalence)->DenseRange(5, 13, 2);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
