// E9 — Theorem 3.8, Hanf locality, and the cycles example.
//
// Claim reproduced: G1 = two m-cycles and G2 = one 2m-cycle satisfy
// G1 ⇆r G2 exactly while m > 2r + 1, yet they differ on connectivity — so
// connectivity is not FO. Same shape for the tree variant (2m-chain vs
// m-chain ⊎ m-cycle).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "core/locality/hanf.h"
#include "core/locality/locality_engine.h"
#include "core/locality/neighborhood.h"
#include "queries/boolean_query.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace {

using fmtk::Adjacency;
using fmtk::BooleanQuery;
using fmtk::Element;
using fmtk::GaifmanAdjacency;
using fmtk::HanfEquivalent;
using fmtk::LargestHanfRadius;
using fmtk::LocalityEngine;
using fmtk::LocalityStats;
using fmtk::MakeDirectedCycle;
using fmtk::MakeDirectedPath;
using fmtk::MakeDisjointCycles;
using fmtk::MakePathPlusCycle;
using fmtk::NeighborhoodOf;
using fmtk::NeighborhoodSweep;
using fmtk::NeighborhoodTypeIndex;
using fmtk::Structure;

void PrintTable() {
  std::printf("=== E9: Hanf locality (Thm 3.8) — the cycles example ===\n");
  std::printf(
      "paper: two m-cycles vs one 2m-cycle agree up to radius r while "
      "m > 2r+1, but differ on CONN\n\n");
  BooleanQuery conn = BooleanQuery::Connectivity();
  std::printf("%4s %12s %16s %10s %10s\n", "m", "predicted r*",
              "measured r*", "CONN(G1)", "CONN(G2)");
  for (std::size_t m = 3; m <= 13; m += 2) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    // Predicted: largest r with m > 2r+1, i.e. r* = ceil(m/2) - 1 ... for
    // integer arithmetic: r* = (m - 2) / 2.
    const std::size_t predicted = (m - 2) / 2;
    auto measured = LargestHanfRadius(g1, g2, m);
    std::printf("%4zu %12zu %16s %10s %10s\n", m, predicted,
                measured.has_value() ? std::to_string(*measured).c_str()
                                     : "none",
                *conn.Evaluate(g1) ? "yes" : "no",
                *conn.Evaluate(g2) ? "yes" : "no");
  }
  std::printf("\n-- tree variant: chain(2m) vs chain(m) + cycle(m) --\n");
  BooleanQuery tree = BooleanQuery::Tree();
  std::printf("%4s %16s %10s %10s\n", "m", "measured r*", "TREE(G1)",
              "TREE(G2)");
  for (std::size_t m = 4; m <= 12; m += 2) {
    Structure g1 = MakeDirectedPath(2 * m);
    Structure g2 = MakePathPlusCycle(m);
    auto measured = LargestHanfRadius(g1, g2, m);
    std::printf("%4zu %16s %10s %10s\n", m,
                measured.has_value() ? std::to_string(*measured).c_str()
                                     : "none",
                *tree.Evaluate(g1) ? "yes" : "no",
                *tree.Evaluate(g2) ? "yes" : "no");
  }
  std::printf(
      "\nshape check: measured r* tracks (m-2)/2 — the 2r+1 crossover; the "
      "query columns always differ.\n\n");
}

// --- --json mode: engine sweeps vs a replica of the seed algorithm --------
//
// The seed computed each radius from scratch: one GaifmanAdjacency per
// histogram call, one full-structure scan per neighborhood, and type
// resolution through invariant buckets plus pairwise isomorphism tests.
// The engine shares one adjacency, extends balls radius-incrementally, and
// resolves types by canonical code.

std::map<NeighborhoodTypeIndex::TypeId, std::size_t> SeedHistogram(
    const Structure& s, std::size_t radius, NeighborhoodTypeIndex& index) {
  Adjacency gaifman = GaifmanAdjacency(s);
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> histogram;
  for (Element v = 0; v < s.domain_size(); ++v) {
    ++histogram[index.TypeOf(NeighborhoodOf(s, gaifman, {v}, radius))];
  }
  return histogram;
}

std::optional<std::size_t> SeedLargestHanfRadius(const Structure& a,
                                                const Structure& b,
                                                std::size_t max_radius) {
  if (!(a.signature() == b.signature()) ||
      a.domain_size() != b.domain_size()) {
    return std::nullopt;
  }
  NeighborhoodTypeIndex::Options options;
  options.use_canonical_codes = false;  // the seed's bucket-only regime
  NeighborhoodTypeIndex index(options);
  std::optional<std::size_t> best;
  for (std::size_t r = 0; r <= max_radius; ++r) {
    if (SeedHistogram(a, r, index) != SeedHistogram(b, r, index)) {
      break;
    }
    best = r;
  }
  return best;
}

std::optional<std::size_t> EngineLargestHanfRadius(const Structure& a,
                                                  const Structure& b,
                                                  std::size_t max_radius,
                                                  LocalityStats* stats) {
  if (!(a.signature() == b.signature()) ||
      a.domain_size() != b.domain_size()) {
    return std::nullopt;
  }
  NeighborhoodTypeIndex index;
  LocalityEngine engine_a(a);
  LocalityEngine engine_b(b);
  NeighborhoodSweep sweep_a = engine_a.NewSweep();
  NeighborhoodSweep sweep_b = engine_b.NewSweep();
  std::optional<std::size_t> best;
  for (std::size_t r = 0; r <= max_radius; ++r) {
    if (sweep_a.HistogramAt(r, index) != sweep_b.HistogramAt(r, index)) {
      break;
    }
    best = r;
  }
  if (stats != nullptr) {
    *stats = engine_a.stats();
    *stats += engine_b.stats();
  }
  return best;
}

void EmitJsonLine(const char* bench, const char* mode, std::size_t n,
                  double wall_ms, std::size_t result,
                  const LocalityStats& stats) {
  std::printf(
      "{\"bench\":\"%s\",\"mode\":\"%s\",\"n\":%zu,\"wall_ms\":%.3f,"
      "\"result\":%zu,\"balls_extracted\":%llu,\"bfs_node_visits\":%llu,"
      "\"canon_codes\":%llu,\"canon_hits\":%llu,\"iso_tests\":%llu,"
      "\"frontier_reuses\":%llu}\n",
      bench, mode, n, wall_ms, result,
      static_cast<unsigned long long>(stats.balls_extracted),
      static_cast<unsigned long long>(stats.bfs_node_visits),
      static_cast<unsigned long long>(stats.canon_codes),
      static_cast<unsigned long long>(stats.canon_hits),
      static_cast<unsigned long long>(stats.iso_tests),
      static_cast<unsigned long long>(stats.frontier_reuses));
}

// Wall-clock is the best of `reps` runs; counters come from the last run.
template <typename Fn>
void TimeAndEmit(const char* bench, const char* mode, std::size_t n,
                 int reps, const Fn& fn) {
  double best_ms = 0;
  std::size_t result = 0;
  LocalityStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    LocalityStats run_stats;
    const auto start = std::chrono::steady_clock::now();
    result = fn(&run_stats);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;
    }
    stats = run_stats;
  }
  EmitJsonLine(bench, mode, n, best_ms, result, stats);
}

void RunJsonSuite() {
  for (std::size_t m : {5, 9, 13, 17, 21}) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    TimeAndEmit("hanf_cycles", "engine", 2 * m, 5,
                [&](LocalityStats* stats) {
                  auto r = EngineLargestHanfRadius(g1, g2, m, stats);
                  return r.has_value() ? *r + 1 : 0;  // 0 = none
                });
    TimeAndEmit("hanf_cycles", "seed", 2 * m, 3, [&](LocalityStats* stats) {
      (void)stats;
      auto r = SeedLargestHanfRadius(g1, g2, m);
      return r.has_value() ? *r + 1 : 0;
    });
  }
  for (std::size_t m : {8, 12, 16}) {
    Structure g1 = MakeDirectedPath(2 * m);
    Structure g2 = MakePathPlusCycle(m);
    TimeAndEmit("hanf_chain_vs_lollipop", "engine", 2 * m, 5,
                [&](LocalityStats* stats) {
                  auto r = EngineLargestHanfRadius(g1, g2, m, stats);
                  return r.has_value() ? *r + 1 : 0;
                });
    TimeAndEmit("hanf_chain_vs_lollipop", "seed", 2 * m, 3,
                [&](LocalityStats* stats) {
                  (void)stats;
                  auto r = SeedLargestHanfRadius(g1, g2, m);
                  return r.has_value() ? *r + 1 : 0;
                });
  }
}

void BM_HanfEquivalence(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Structure g1 = MakeDisjointCycles(2, m);
  Structure g2 = MakeDirectedCycle(2 * m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HanfEquivalent(g1, g2, (m - 2) / 2));
  }
}
BENCHMARK(BM_HanfEquivalence)->DenseRange(5, 13, 2);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RunJsonSuite();
      return 0;
    }
  }
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
