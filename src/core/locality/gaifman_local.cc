#include "core/locality/gaifman_local.h"

#include <cstddef>

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/hash.h"
#include "core/locality/neighborhood.h"
#include "structures/isomorphism.h"

namespace fmtk {

namespace {

// Enumerates all tuples in {0..n-1}^m.
void AllTuples(std::size_t n, std::size_t m, std::vector<Tuple>& out) {
  Tuple t(m, 0);
  if (m == 0 || n == 0) {
    return;
  }
  while (true) {
    out.push_back(t);
    std::size_t pos = m;
    while (pos > 0) {
      --pos;
      if (t[pos] + 1 < n) {
        ++t[pos];
        break;
      }
      t[pos] = 0;
      if (pos == 0) {
        return;
      }
    }
  }
}

}  // namespace

Result<std::optional<GaifmanViolation>> FindGaifmanViolation(
    const Structure& s, const Relation& output, std::size_t radius) {
  LocalityEngine engine(s);
  return FindGaifmanViolation(engine, output, radius);
}

Result<std::optional<GaifmanViolation>> FindGaifmanViolation(
    const LocalityEngine& engine, const Relation& output, std::size_t radius) {
  const Structure& s = engine.structure();
  const std::size_t m = output.arity();
  if (m == 0) {
    return Status::InvalidArgument(
        "Gaifman locality concerns m-ary queries with m > 0");
  }
  for (const Tuple& t : output.tuples()) {
    for (Element e : t) {
      if (e >= s.domain_size()) {
        return Status::InvalidArgument(
            "output relation contains elements outside the structure");
      }
    }
  }
  std::vector<Tuple> tuples;
  AllTuples(s.domain_size(), m, tuples);
  // Key each tuple's neighborhood by canonical code: isomorphic tuples land
  // in one slot, and the earliest in-output / not-in-output representatives
  // per slot reproduce exactly the pair the seed's pairwise bucket scan
  // reported first. Canonicalizability is isomorphism-invariant, so a slot
  // never has an isomorphic partner hiding in the fallback pool.
  struct Slot {
    std::optional<Tuple> in_rep;
    std::optional<Tuple> out_rep;
  };
  std::unordered_map<CanonicalCode, Slot, CanonicalCodeHash> coded;
  // Fallback pool for uncanonicalizable neighborhoods: invariant buckets
  // plus the exact pairwise test, as in the seed.
  struct Entry {
    Tuple tuple;
    const Neighborhood* neighborhood;  // into the memo, stable
    bool in_output;
  };
  std::unordered_map<std::size_t, std::vector<Entry>> buckets;
  // Shifted tuples of regular structures yield literally identical
  // neighborhoods; the memo dedupes them before materialization, and the
  // canonical code / bucket invariant — both functions of content — are
  // computed once per distinct content (a repeated canonicalization failure
  // would burn the whole pass budget again just to fail identically).
  LocalityEngine::ContentMemo memo;
  std::vector<std::optional<CanonicalCode>> entry_code;
  std::vector<std::size_t> entry_invariant;
  for (const Tuple& t : tuples) {
    const bool in_output = output.Contains(t);
    const LocalityEngine::DedupResult res =
        engine.DedupNeighborhoodAt(memo, t, radius);
    const Neighborhood& n = memo.exemplar(res.entry);
    if (res.was_new) {
      entry_code.push_back(engine.CodeOf(n));
      entry_invariant.push_back(
          entry_code.back().has_value()
              ? 0
              : IsomorphismInvariant(n.structure, n.distinguished));
    }
    const std::optional<CanonicalCode>& code = entry_code[res.entry];
    if (code.has_value()) {
      Slot& slot = coded[*code];
      std::optional<Tuple>& opposite = in_output ? slot.out_rep : slot.in_rep;
      if (opposite.has_value()) {
        return std::optional<GaifmanViolation>(
            in_output ? GaifmanViolation{t, *opposite}
                      : GaifmanViolation{*opposite, t});
      }
      std::optional<Tuple>& same = in_output ? slot.in_rep : slot.out_rep;
      if (!same.has_value()) {
        same = t;
      }
    } else {
      std::vector<Entry>& bucket = buckets[entry_invariant[res.entry]];
      for (const Entry& other : bucket) {
        // A shared memo entry means identical content — isomorphic without
        // the exact search.
        if (other.in_output != in_output &&
            (other.neighborhood == &n ||
             NeighborhoodsIsomorphic(*other.neighborhood, n))) {
          return std::optional<GaifmanViolation>(
              in_output ? GaifmanViolation{t, other.tuple}
                        : GaifmanViolation{other.tuple, t});
        }
      }
      bucket.push_back(Entry{t, &n, in_output});
    }
  }
  return std::optional<GaifmanViolation>(std::nullopt);
}

Result<std::optional<std::size_t>> GaifmanLocalRadiusOn(
    const Structure& s, const Relation& output, std::size_t max_radius) {
  LocalityEngine engine(s);
  for (std::size_t r = 0; r <= max_radius; ++r) {
    FMTK_ASSIGN_OR_RETURN(std::optional<GaifmanViolation> violation,
                          FindGaifmanViolation(engine, output, r));
    if (!violation.has_value()) {
      return std::optional<std::size_t>(r);
    }
  }
  return std::optional<std::size_t>(std::nullopt);
}

}  // namespace fmtk
