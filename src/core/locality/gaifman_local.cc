#include "core/locality/gaifman_local.h"

#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "core/locality/neighborhood.h"
#include "structures/graph.h"
#include "structures/isomorphism.h"

namespace fmtk {

namespace {

// Enumerates all tuples in {0..n-1}^m.
void AllTuples(std::size_t n, std::size_t m, std::vector<Tuple>& out) {
  Tuple t(m, 0);
  if (m == 0 || n == 0) {
    return;
  }
  while (true) {
    out.push_back(t);
    std::size_t pos = m;
    while (pos > 0) {
      --pos;
      if (t[pos] + 1 < n) {
        ++t[pos];
        break;
      }
      t[pos] = 0;
      if (pos == 0) {
        return;
      }
    }
  }
}

}  // namespace

Result<std::optional<GaifmanViolation>> FindGaifmanViolation(
    const Structure& s, const Relation& output, std::size_t radius) {
  const std::size_t m = output.arity();
  if (m == 0) {
    return Status::InvalidArgument(
        "Gaifman locality concerns m-ary queries with m > 0");
  }
  for (const Tuple& t : output.tuples()) {
    for (Element e : t) {
      if (e >= s.domain_size()) {
        return Status::InvalidArgument(
            "output relation contains elements outside the structure");
      }
    }
  }
  Adjacency gaifman = GaifmanAdjacency(s);
  std::vector<Tuple> tuples;
  AllTuples(s.domain_size(), m, tuples);
  // Bucket tuples by neighborhood invariant; compare in/out pairs within a
  // bucket with the exact isomorphism test.
  struct Entry {
    Tuple tuple;
    Neighborhood neighborhood;
    bool in_output;
  };
  std::unordered_map<std::size_t, std::vector<Entry>> buckets;
  for (const Tuple& t : tuples) {
    Neighborhood n = NeighborhoodOf(s, gaifman, t, radius);
    std::size_t invariant = IsomorphismInvariant(n.structure, n.distinguished);
    std::vector<Entry>& bucket = buckets[invariant];
    const bool in_output = output.Contains(t);
    for (const Entry& other : bucket) {
      if (other.in_output != in_output &&
          NeighborhoodsIsomorphic(other.neighborhood, n)) {
        return std::optional<GaifmanViolation>(
            in_output ? GaifmanViolation{t, other.tuple}
                      : GaifmanViolation{other.tuple, t});
      }
    }
    bucket.push_back(Entry{t, std::move(n), in_output});
  }
  return std::optional<GaifmanViolation>(std::nullopt);
}

Result<std::optional<std::size_t>> GaifmanLocalRadiusOn(
    const Structure& s, const Relation& output, std::size_t max_radius) {
  for (std::size_t r = 0; r <= max_radius; ++r) {
    FMTK_ASSIGN_OR_RETURN(std::optional<GaifmanViolation> violation,
                          FindGaifmanViolation(s, output, r));
    if (!violation.has_value()) {
      return std::optional<std::size_t>(r);
    }
  }
  return std::optional<std::size_t>(std::nullopt);
}

}  // namespace fmtk
