#ifndef FMTK_CORE_LOCALITY_GAIFMAN_LOCAL_H_
#define FMTK_CORE_LOCALITY_GAIFMAN_LOCAL_H_

#include <cstddef>
#include <optional>

#include "base/result.h"
#include "core/locality/locality_engine.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// A witness that an m-ary query output violates Gaifman-locality at radius
/// r on a structure: two m-tuples with isomorphic r-neighborhoods, one in
/// the output and one not (Definition 3.5's "cannot be distinguished"
/// broken).
struct GaifmanViolation {
  Tuple in_output;
  Tuple not_in_output;
};

/// Searches all |A|^m tuple pairs for a violation at radius r. `output`
/// must have arity >= 1; its tuples are over s's domain. Exponential in the
/// arity — meant for the small structures of locality experiments.
Result<std::optional<GaifmanViolation>> FindGaifmanViolation(
    const Structure& s, const Relation& output, std::size_t radius);

/// The same search over a prebuilt engine context — radius loops
/// (GaifmanLocalRadiusOn, the benches) reuse one Gaifman adjacency and BFS
/// scratch across every radius. Neighborhood types are keyed by canonical
/// code (isomorphic tuples collide in one hash slot, replacing the pairwise
/// isomorphism scan); neighborhoods the canonicalizer declines fall back to
/// invariant buckets with exact tests, exactly as the seed did.
Result<std::optional<GaifmanViolation>> FindGaifmanViolation(
    const LocalityEngine& engine, const Relation& output, std::size_t radius);

/// The least radius <= max_radius at which the output looks Gaifman-local
/// on this structure (no violation), or nullopt when even max_radius has
/// violations. For a query that is Gaifman-local with radius r*, every
/// structure reports a radius <= r*; a query like transitive closure keeps
/// producing violations at every radius as the structure grows — the E8
/// experiment.
Result<std::optional<std::size_t>> GaifmanLocalRadiusOn(
    const Structure& s, const Relation& output, std::size_t max_radius);

}  // namespace fmtk

#endif  // FMTK_CORE_LOCALITY_GAIFMAN_LOCAL_H_
