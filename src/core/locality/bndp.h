#ifndef FMTK_CORE_LOCALITY_BNDP_H_
#define FMTK_CORE_LOCALITY_BNDP_H_

#include <cstddef>
#include <map>
#include <set>

#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

class LocalityEngine;

/// Bookkeeping for the bounded-number-of-degrees property (Definition 3.3):
/// a binary-output query Q has the BNDP when there is f_Q with
/// |degs(Q(G))| <= f_Q(k) for every G of max degree <= k. Feed observations
/// (one per evaluated structure) and read off the empirical f_Q: the max
/// output degree-count per input degree bound. An FO query's profile stays
/// flat as structures grow; TC and same-generation grow without bound — the
/// E7 experiment.
class BndpProfile {
 public:
  BndpProfile() = default;

  /// Records one evaluation: `input` (with its graph relation index) and
  /// the query's binary output over the same domain.
  void Observe(const Structure& input, std::size_t input_rel_index,
               const Relation& output);

  /// The same observation through a shared engine context: the input's max
  /// degree is read from the engine's per-relation cache instead of being
  /// rescanned, so profiling many query outputs against one input costs
  /// one degree pass total.
  void Observe(const LocalityEngine& input_context,
               std::size_t input_rel_index, const Relation& output);

  /// max |degs(Q(G))| over observed inputs with max degree exactly k.
  const std::map<std::size_t, std::size_t>& profile() const {
    return max_output_degrees_;
  }

  /// Does the recorded data stay within `bound` for every input degree?
  bool WithinBound(std::size_t bound) const;

  /// The largest output degree count seen anywhere.
  std::size_t MaxObserved() const;

  std::size_t observations() const { return observations_; }

 private:
  std::map<std::size_t, std::size_t> max_output_degrees_;
  std::size_t observations_ = 0;
};

/// |degs(R)| over a given domain size — the quantity the BNDP bounds.
std::size_t DegreeCount(const Relation& relation, std::size_t domain_size);

}  // namespace fmtk

#endif  // FMTK_CORE_LOCALITY_BNDP_H_
