#include "core/locality/bndp.h"

#include <algorithm>

#include "core/locality/locality_engine.h"
#include "structures/graph.h"

namespace fmtk {

void BndpProfile::Observe(const Structure& input, std::size_t input_rel_index,
                          const Relation& output) {
  const std::size_t k = MaxDegree(input, input_rel_index);
  const std::size_t degrees = DegreeCount(output, input.domain_size());
  std::size_t& slot = max_output_degrees_[k];
  slot = std::max(slot, degrees);
  ++observations_;
}

void BndpProfile::Observe(const LocalityEngine& input_context,
                          std::size_t input_rel_index,
                          const Relation& output) {
  const std::size_t k = input_context.CachedMaxDegree(input_rel_index);
  const std::size_t degrees =
      DegreeCount(output, input_context.structure().domain_size());
  std::size_t& slot = max_output_degrees_[k];
  slot = std::max(slot, degrees);
  ++observations_;
}

bool BndpProfile::WithinBound(std::size_t bound) const {
  for (const auto& [k, degrees] : max_output_degrees_) {
    if (degrees > bound) {
      return false;
    }
  }
  return true;
}

std::size_t BndpProfile::MaxObserved() const {
  std::size_t best = 0;
  for (const auto& [k, degrees] : max_output_degrees_) {
    best = std::max(best, degrees);
  }
  return best;
}

std::size_t DegreeCount(const Relation& relation, std::size_t domain_size) {
  return DegreeSet(relation, domain_size).size();
}

}  // namespace fmtk
