#ifndef FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_
#define FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "structures/graph.h"
#include "structures/structure.h"

namespace fmtk {

/// B_r(ā): the elements at Gaifman distance <= r from any component of ā,
/// sorted ascending. `gaifman` must be GaifmanAdjacency(s).
std::vector<Element> Ball(const Adjacency& gaifman, const Tuple& center,
                          std::size_t radius);

/// N_r(s, ā): the substructure induced by B_r(ā), with ā as distinguished
/// elements (renumbered into the ball's numbering).
struct Neighborhood {
  Structure structure;
  Tuple distinguished;
};

Neighborhood NeighborhoodOf(const Structure& s, const Adjacency& gaifman,
                            const Tuple& center, std::size_t radius);

/// N ≅ N' respecting the distinguished tuples (h(ā_i) = b̄_i).
bool NeighborhoodsIsomorphic(const Neighborhood& a, const Neighborhood& b);

/// Interns isomorphism types of neighborhoods: equal ids iff isomorphic
/// (exact). Ids are comparable across structures through the same index
/// instance.
///
/// TypeOf resolves through three levels, each strictly cheaper than the
/// next: (1) an exact-content cache answering literally identical
/// neighborhoods (histograms produce many — e.g. every interior point of a
/// path) without any isomorphism work; (2) buckets keyed by
/// IsomorphismInvariant whose entries carry a cheap atomic-signature
/// pre-filter, rejecting most non-isomorphic hash collisions without the
/// exact search; (3) the exact AreIsomorphic test.
class NeighborhoodTypeIndex {
 public:
  using TypeId = std::size_t;

  NeighborhoodTypeIndex() = default;

  TypeId TypeOf(const Neighborhood& n);

  /// Number of distinct types seen.
  std::size_t size() const { return reps_.size(); }

  /// A representative neighborhood of a type. The reference stays valid for
  /// the lifetime of the index (representatives live in a deque, which
  /// never relocates elements as it grows).
  const Neighborhood& representative(TypeId id) const;

  /// Counters for the three-level TypeOf pipeline.
  struct Stats {
    std::uint64_t exact_hits = 0;         // answered by the content cache
    std::uint64_t signature_rejects = 0;  // pre-filtered bucket candidates
    std::uint64_t iso_tests = 0;          // exact AreIsomorphic runs
  };
  const Stats& stats() const { return stats_; }

 private:
  struct BucketEntry {
    TypeId id;
    // Cheap isomorphism-invariant signature of the representative; a
    // mismatch disproves isomorphism without the exact search.
    std::vector<std::size_t> signature;
  };

  // TypeId -> representative, indexed positionally.
  std::deque<Neighborhood> reps_;
  // IsomorphismInvariant hash -> candidate types.
  std::unordered_map<std::size_t, std::vector<BucketEntry>> buckets_;
  // Exact-content fast path: content hash -> exemplars seen with that
  // content and their resolved types. Exemplar storage is capped; past the
  // cap lookups still work but new contents are not cached.
  std::deque<Neighborhood> exemplars_;
  std::unordered_map<std::size_t,
                     std::vector<std::pair<const Neighborhood*, TypeId>>>
      exact_cache_;
  Stats stats_;
};

/// Multiset of the r-neighborhood types of all single points of `s`
/// (type id -> count). The survey's ⇆r comparisons reduce to comparing
/// these histograms.
std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
NeighborhoodTypeHistogram(const Structure& s, std::size_t radius,
                          NeighborhoodTypeIndex& index);

}  // namespace fmtk

#endif  // FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_
