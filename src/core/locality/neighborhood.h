#ifndef FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_
#define FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "structures/graph.h"
#include "structures/structure.h"

namespace fmtk {

/// B_r(ā): the elements at Gaifman distance <= r from any component of ā,
/// sorted ascending. `gaifman` must be GaifmanAdjacency(s).
std::vector<Element> Ball(const Adjacency& gaifman, const Tuple& center,
                          std::size_t radius);

/// N_r(s, ā): the substructure induced by B_r(ā), with ā as distinguished
/// elements (renumbered into the ball's numbering).
struct Neighborhood {
  Structure structure;
  Tuple distinguished;
};

Neighborhood NeighborhoodOf(const Structure& s, const Adjacency& gaifman,
                            const Tuple& center, std::size_t radius);

/// N ≅ N' respecting the distinguished tuples (h(ā_i) = b̄_i).
bool NeighborhoodsIsomorphic(const Neighborhood& a, const Neighborhood& b);

/// Interns isomorphism types of neighborhoods: equal ids iff isomorphic
/// (exact — candidates are bucketed by IsomorphismInvariant, then confirmed
/// with the exact search). Ids are comparable across structures through the
/// same index instance.
class NeighborhoodTypeIndex {
 public:
  using TypeId = std::size_t;

  NeighborhoodTypeIndex() = default;

  TypeId TypeOf(const Neighborhood& n);

  /// Number of distinct types seen.
  std::size_t size() const { return count_; }

  /// A representative neighborhood of a type.
  const Neighborhood& representative(TypeId id) const;

 private:
  std::size_t count_ = 0;
  // Invariant hash -> representatives in that bucket.
  std::unordered_map<std::size_t, std::vector<std::pair<Neighborhood, TypeId>>>
      buckets_;
  std::map<TypeId, const Neighborhood*> representatives_;
};

/// Multiset of the r-neighborhood types of all single points of `s`
/// (type id -> count). The survey's ⇆r comparisons reduce to comparing
/// these histograms.
std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
NeighborhoodTypeHistogram(const Structure& s, std::size_t radius,
                          NeighborhoodTypeIndex& index);

}  // namespace fmtk

#endif  // FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_
