#ifndef FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_
#define FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "base/flat_hash.h"
#include "base/hash.h"
#include "structures/graph.h"
#include "structures/structure.h"

namespace fmtk {

/// B_r(ā): the elements at Gaifman distance <= r from any component of ā,
/// sorted ascending. `gaifman` must be GaifmanAdjacency(s).
std::vector<Element> Ball(const Adjacency& gaifman, const Tuple& center,
                          std::size_t radius);

/// N_r(s, ā): the substructure induced by B_r(ā), with ā as distinguished
/// elements (renumbered into the ball's numbering).
struct Neighborhood {
  Structure structure;
  Tuple distinguished;
};

Neighborhood NeighborhoodOf(const Structure& s, const Adjacency& gaifman,
                            const Tuple& center, std::size_t radius);

/// N ≅ N' respecting the distinguished tuples (h(ā_i) = b̄_i).
bool NeighborhoodsIsomorphic(const Neighborhood& a, const Neighborhood& b);

/// An exact canonical form of a neighborhood, serialized as a word vector:
/// two codes are equal iff the neighborhoods are isomorphic (respecting
/// distinguished tuples and constants). Computed by iterative color
/// refinement plus individualization-refinement backtracking; comparing
/// codes replaces the exact AreIsomorphic search with a vector compare.
using CanonicalCode = std::vector<std::uint32_t>;
using CanonicalCodeHash = VectorHash<std::uint32_t>;

/// Computes the canonical code of `n`, or nullopt when the neighborhood is
/// too large (domain above an internal cap) or too symmetric (the
/// individualization search exceeds its refinement-pass budget — e.g. near-
/// complete graphs, whose automorphism groups blow the branch count up).
/// Both bail-outs depend only on the isomorphism class, never on the
/// element numbering, so isomorphic neighborhoods either all produce codes
/// or all fall back to the invariant-bucket path — an index never sees one
/// class split across the two regimes.
std::optional<CanonicalCode> CanonicalNeighborhoodCode(const Neighborhood& n);

namespace internal {
/// Hash / equality of literal neighborhood content (same relations, tuples,
/// constants, and distinguished elements under the same numbering) — the
/// level the exact-content cache works at. Identical content trivially
/// implies isomorphism, and canonicalization is a function of content, so
/// content-equal neighborhoods share their canonical code. Exposed for the
/// locality engine, which dedupes by content before canonicalizing.
std::size_t NeighborhoodContentHash(const Neighborhood& n);
bool NeighborhoodContentEqual(const Neighborhood& a, const Neighborhood& b);
}  // namespace internal

/// Interns isomorphism types of neighborhoods: equal ids iff isomorphic
/// (exact). Ids are comparable across structures through the same index
/// instance.
///
/// TypeOf resolves through three levels, each strictly cheaper than the
/// next: (1) an exact-content cache answering literally identical
/// neighborhoods (histograms produce many — e.g. every interior point of a
/// path) without any isomorphism work; (2) a canonical-code probe — one
/// hash-map lookup resolving any isomorphic (not just identical)
/// neighborhood exactly; (3) for neighborhoods the canonicalizer declines,
/// buckets keyed by IsomorphismInvariant whose entries carry a cheap
/// atomic-signature pre-filter in front of the exact AreIsomorphic test.
/// Level (3) with canonicalization disabled is also the differential
/// oracle the tests compare the code path against.
class NeighborhoodTypeIndex {
 public:
  using TypeId = std::size_t;

  struct Options {
    /// Caps exemplar storage in the exact-content cache; correctness does
    /// not depend on it (missed contents fall through to the other levels).
    std::size_t max_exemplars = 4096;
    /// Disable to force every miss through the invariant-bucket path — the
    /// seed behavior, kept as the differential oracle.
    bool use_canonical_codes = true;
  };

  NeighborhoodTypeIndex() = default;
  explicit NeighborhoodTypeIndex(const Options& options) : options_(options) {}

  TypeId TypeOf(const Neighborhood& n);

  /// Interns a type by its precomputed canonical code. `exemplar` must be a
  /// neighborhood whose CanonicalNeighborhoodCode is `code`; it becomes the
  /// type representative when the code is new. Used by LocalityEngine's
  /// histogram merge, which computes codes in parallel and interns them in
  /// one deterministic pass.
  struct Resolution {
    TypeId id;
    bool was_new;
  };
  Resolution Resolve(const CanonicalCode& code, const Neighborhood& exemplar);

  bool canonical_enabled() const { return options_.use_canonical_codes; }

  /// Number of distinct types seen.
  std::size_t size() const { return reps_.size(); }

  /// A representative neighborhood of a type. The reference stays valid for
  /// the lifetime of the index (representatives live in a deque, which
  /// never relocates elements as it grows).
  const Neighborhood& representative(TypeId id) const;

  /// Number of distinct content hashes with cached exemplars. Bounded by
  /// Options::max_exemplars plus the number of types (regression guard for
  /// a seed bug that grew empty rows without bound once the cap was hit).
  std::size_t exact_cache_rows() const { return exact_cache_.size(); }

  /// Counters for the TypeOf pipeline.
  struct Stats {
    std::uint64_t exact_hits = 0;         // answered by the content cache
    std::uint64_t canon_codes = 0;        // canonicalizations performed
    std::uint64_t canon_hits = 0;         // answered by a code probe
    std::uint64_t signature_rejects = 0;  // pre-filtered bucket candidates
    std::uint64_t iso_tests = 0;          // exact AreIsomorphic runs
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class LocalityEngine;

  // Levels (1) and (3) only — for callers that already know the
  // canonicalizer declines this neighborhood (re-attempting would burn the
  // whole refinement budget again just to fail identically).
  TypeId FallbackTypeOf(const Neighborhood& n);

  // Records `exemplar` (an instance of type `id`) in the exact-content
  // cache, so later literally-identical neighborhoods — including histogram
  // balls the engine probes before materializing — resolve with no
  // isomorphism work at all. Idempotent per content; capped by
  // max_exemplars. `content_hash` must be ContentHash(exemplar) (the engine
  // already streamed it off the ball). The engine registers every distinct
  // content of a histogram pass, not just the type representatives Resolve
  // stores, and hands over ownership — registration is the content's last
  // use in the merge.
  void RegisterContent(Neighborhood&& exemplar, TypeId id,
                       std::size_t content_hash);

  struct BucketEntry {
    TypeId id;
    // Cheap isomorphism-invariant signature of the representative; a
    // mismatch disproves isomorphism without the exact search.
    std::vector<std::size_t> signature;
  };

  // TypeId -> representative, indexed positionally.
  std::deque<Neighborhood> reps_;
  // Canonical code -> type. Exact: no verification needed on a hit.
  FlatHashMap<CanonicalCode, TypeId, CanonicalCodeHash> code_map_;
  // IsomorphismInvariant hash -> candidate types (fallback regime only).
  FlatU64Map<std::vector<BucketEntry>> buckets_;
  // Exact-content fast path: content hash -> exemplars seen with that
  // content and their resolved types. Representatives double as exemplars;
  // additional exemplar storage is capped, and past the cap lookups still
  // work but new contents are not cached.
  std::deque<Neighborhood> exemplars_;
  FlatU64Map<std::vector<std::pair<const Neighborhood*, TypeId>>>
      exact_cache_;
  Options options_;
  Stats stats_;
};

/// Multiset of the r-neighborhood types of all single points of `s`
/// (type id -> count). The survey's ⇆r comparisons reduce to comparing
/// these histograms.
///
/// One-shot convenience over a throwaway engine context; loops that
/// histogram the same structure repeatedly (Hanf comparisons, threshold
/// searches) should hold a LocalityEngine and call its TypeHistogram, which
/// reuses the Gaifman adjacency and BFS scratch across calls.
std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
NeighborhoodTypeHistogram(const Structure& s, std::size_t radius,
                          NeighborhoodTypeIndex& index);

}  // namespace fmtk

#endif  // FMTK_CORE_LOCALITY_NEIGHBORHOOD_H_
