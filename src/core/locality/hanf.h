#ifndef FMTK_CORE_LOCALITY_HANF_H_
#define FMTK_CORE_LOCALITY_HANF_H_

#include <cstddef>
#include <optional>

#include "base/parallel.h"
#include "core/locality/neighborhood.h"
#include "structures/structure.h"

namespace fmtk {

/// G ⇆r G' (Definition 3.7's premise): a bijection f between the domains
/// with N_r(a) ≅ N_r(f(a)) for every a. Equivalently — and this is how it's
/// decided here — the two structures have the same multiset of
/// r-neighborhood types (Hall's theorem collapses the bijection search,
/// since "same type" is an equivalence relation). One LocalityEngine per
/// structure computes both histograms; `policy` fans the per-element work
/// out without changing any verdict, id, or counter.
bool HanfEquivalent(const Structure& a, const Structure& b,
                    std::size_t radius, NeighborhoodTypeIndex& index,
                    const ParallelPolicy& policy = {});

/// Convenience overload with a throwaway type index.
bool HanfEquivalent(const Structure& a, const Structure& b,
                    std::size_t radius);

/// G ⇆*_{m,r} G' (Theorem 3.10's premise, for bounded-degree classes): for
/// every r-neighborhood type, the two structures either realize it equally
/// often or both at least `threshold` times. Unlike ⇆r this does not force
/// equal cardinalities.
bool ThresholdHanfEquivalent(const Structure& a, const Structure& b,
                             std::size_t radius, std::size_t threshold,
                             NeighborhoodTypeIndex& index,
                             const ParallelPolicy& policy = {});

bool ThresholdHanfEquivalent(const Structure& a, const Structure& b,
                             std::size_t radius, std::size_t threshold);

/// The largest radius r <= max_radius with a ⇆r b, or nullopt when even
/// r = 0 fails. Balls grow with r, so ⇆r is antitone in r; this is the
/// crossover the survey's cycle example makes vivid (two m-cycles vs one
/// 2m-cycle satisfy ⇆r exactly while m > 2r + 1). Radius-incremental
/// sweeps extend each saved ball by one BFS layer per radius step instead
/// of recomputing every ball from scratch.
std::optional<std::size_t> LargestHanfRadius(const Structure& a,
                                             const Structure& b,
                                             std::size_t max_radius);

}  // namespace fmtk

#endif  // FMTK_CORE_LOCALITY_HANF_H_
