#include "core/locality/neighborhood.h"

#include <algorithm>

#include "base/check.h"
#include "base/hash.h"
#include "structures/isomorphism.h"

namespace fmtk {

namespace {

// Caps total exemplar storage in the exact-content cache; correctness does
// not depend on it (missed contents fall through to the invariant path).
constexpr std::size_t kMaxExemplars = 4096;

// Hash of the literal content of a neighborhood. Tuples are folded
// additively so the hash is insertion-order independent, matching
// Structure's set-semantics equality.
std::size_t ContentHash(const Neighborhood& n) {
  std::size_t h = n.structure.domain_size();
  VectorHash<Element> tuple_hash;
  for (std::size_t r = 0; r < n.structure.signature().relation_count(); ++r) {
    std::size_t folded = n.structure.relation(r).size();
    for (const Tuple& t : n.structure.relation(r).tuples()) {
      folded += tuple_hash(t);
    }
    HashCombine(h, folded);
  }
  for (std::size_t c = 0; c < n.structure.signature().constant_count(); ++c) {
    std::optional<Element> e = n.structure.constant(c);
    HashCombine(h, e.has_value() ? static_cast<std::size_t>(*e) + 1 : 0);
  }
  HashCombine(h, tuple_hash(n.distinguished));
  return h;
}

bool IdenticalContent(const Neighborhood& a, const Neighborhood& b) {
  return a.distinguished == b.distinguished && a.structure == b.structure;
}

// Cheap isomorphism-invariant signature: sizes, the atomic invariants of
// the distinguished elements in order, and the sorted multiset of all
// per-element atomic-invariant hashes. Much cheaper than the WL refinement
// inside IsomorphismInvariant and independent of it, so it catches
// different collisions.
std::vector<std::size_t> CheapSignature(const Neighborhood& n) {
  const Structure& s = n.structure;
  std::vector<std::size_t> sig;
  sig.push_back(s.domain_size());
  sig.push_back(n.distinguished.size());
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    sig.push_back(s.relation(r).size());
  }
  std::vector<std::size_t> element_hashes(s.domain_size());
  for (Element e = 0; e < s.domain_size(); ++e) {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t v : AtomicInvariantOf(s, e)) {
      HashCombine(h, v);
    }
    element_hashes[e] = h;
  }
  for (Element d : n.distinguished) {
    sig.push_back(d < s.domain_size() ? element_hashes[d] : 0);
  }
  std::sort(element_hashes.begin(), element_hashes.end());
  sig.insert(sig.end(), element_hashes.begin(), element_hashes.end());
  return sig;
}

}  // namespace

std::vector<Element> Ball(const Adjacency& gaifman, const Tuple& center,
                          std::size_t radius) {
  std::vector<Element> sources;
  sources.reserve(center.size());
  for (Element e : center) {
    FMTK_CHECK(e < gaifman.size()) << "ball center outside domain";
    sources.push_back(e);
  }
  std::vector<std::size_t> dist = BfsDistances(gaifman, sources);
  std::vector<Element> ball;
  for (Element v = 0; v < gaifman.size(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= radius) {
      ball.push_back(v);
    }
  }
  return ball;
}

Neighborhood NeighborhoodOf(const Structure& s, const Adjacency& gaifman,
                            const Tuple& center, std::size_t radius) {
  std::vector<Element> ball = Ball(gaifman, center, radius);
  Structure induced = InducedSubstructure(s, ball);
  // Renumber the distinguished tuple into ball coordinates.
  Tuple distinguished;
  distinguished.reserve(center.size());
  for (Element e : center) {
    auto it = std::lower_bound(ball.begin(), ball.end(), e);
    FMTK_CHECK(it != ball.end() && *it == e) << "center must lie in its ball";
    distinguished.push_back(static_cast<Element>(it - ball.begin()));
  }
  return Neighborhood{std::move(induced), std::move(distinguished)};
}

bool NeighborhoodsIsomorphic(const Neighborhood& a, const Neighborhood& b) {
  return AreIsomorphic(a.structure, b.structure, a.distinguished,
                       b.distinguished);
}

NeighborhoodTypeIndex::TypeId NeighborhoodTypeIndex::TypeOf(
    const Neighborhood& n) {
  // Level 1: literal-content hits skip all isomorphism machinery.
  const std::size_t content = ContentHash(n);
  std::vector<std::pair<const Neighborhood*, TypeId>>& exact_row =
      exact_cache_[content];
  for (const auto& [exemplar, id] : exact_row) {
    if (IdenticalContent(*exemplar, n)) {
      ++stats_.exact_hits;
      return id;
    }
  }
  // Level 2: bucket by the expensive invariant, pre-filter candidates by
  // the cheap signature. Level 3: exact isomorphism test.
  const std::size_t invariant =
      IsomorphismInvariant(n.structure, n.distinguished);
  std::vector<std::size_t> signature = CheapSignature(n);
  std::vector<BucketEntry>& bucket = buckets_[invariant];
  TypeId resolved = reps_.size();
  bool found = false;
  for (const BucketEntry& entry : bucket) {
    if (entry.signature != signature) {
      ++stats_.signature_rejects;
      continue;
    }
    ++stats_.iso_tests;
    if (NeighborhoodsIsomorphic(reps_[entry.id], n)) {
      resolved = entry.id;
      found = true;
      break;
    }
  }
  if (!found) {
    reps_.push_back(n);
    bucket.push_back(BucketEntry{resolved, std::move(signature)});
  }
  if (exemplars_.size() < kMaxExemplars) {
    exemplars_.push_back(n);
    exact_row.emplace_back(&exemplars_.back(), resolved);
  }
  return resolved;
}

const Neighborhood& NeighborhoodTypeIndex::representative(TypeId id) const {
  FMTK_CHECK(id < reps_.size()) << "unknown neighborhood type id";
  return reps_[id];
}

std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
NeighborhoodTypeHistogram(const Structure& s, std::size_t radius,
                          NeighborhoodTypeIndex& index) {
  Adjacency gaifman = GaifmanAdjacency(s);
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> histogram;
  for (Element v = 0; v < s.domain_size(); ++v) {
    Neighborhood n = NeighborhoodOf(s, gaifman, {v}, radius);
    ++histogram[index.TypeOf(n)];
  }
  return histogram;
}

}  // namespace fmtk
