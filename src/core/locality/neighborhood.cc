#include "core/locality/neighborhood.h"

#include <algorithm>
#include <deque>

#include "base/check.h"
#include "structures/isomorphism.h"

namespace fmtk {

std::vector<Element> Ball(const Adjacency& gaifman, const Tuple& center,
                          std::size_t radius) {
  std::vector<Element> sources;
  sources.reserve(center.size());
  for (Element e : center) {
    FMTK_CHECK(e < gaifman.size()) << "ball center outside domain";
    sources.push_back(e);
  }
  std::vector<std::size_t> dist = BfsDistances(gaifman, sources);
  std::vector<Element> ball;
  for (Element v = 0; v < gaifman.size(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= radius) {
      ball.push_back(v);
    }
  }
  return ball;
}

Neighborhood NeighborhoodOf(const Structure& s, const Adjacency& gaifman,
                            const Tuple& center, std::size_t radius) {
  std::vector<Element> ball = Ball(gaifman, center, radius);
  Structure induced = InducedSubstructure(s, ball);
  // Renumber the distinguished tuple into ball coordinates.
  Tuple distinguished;
  distinguished.reserve(center.size());
  for (Element e : center) {
    auto it = std::lower_bound(ball.begin(), ball.end(), e);
    FMTK_CHECK(it != ball.end() && *it == e) << "center must lie in its ball";
    distinguished.push_back(static_cast<Element>(it - ball.begin()));
  }
  return Neighborhood{std::move(induced), std::move(distinguished)};
}

bool NeighborhoodsIsomorphic(const Neighborhood& a, const Neighborhood& b) {
  return AreIsomorphic(a.structure, b.structure, a.distinguished,
                       b.distinguished);
}

NeighborhoodTypeIndex::TypeId NeighborhoodTypeIndex::TypeOf(
    const Neighborhood& n) {
  const std::size_t invariant =
      IsomorphismInvariant(n.structure, n.distinguished);
  std::vector<std::pair<Neighborhood, TypeId>>& bucket = buckets_[invariant];
  for (const auto& [rep, id] : bucket) {
    if (NeighborhoodsIsomorphic(rep, n)) {
      return id;
    }
  }
  TypeId id = count_++;
  bucket.emplace_back(n, id);
  representatives_.emplace(id, &bucket.back().first);
  // Note: vector growth may invalidate pointers from this bucket; refresh
  // all entries of this bucket in the map.
  for (const auto& [rep, rep_id] : bucket) {
    representatives_[rep_id] = &rep;
  }
  return id;
}

const Neighborhood& NeighborhoodTypeIndex::representative(TypeId id) const {
  auto it = representatives_.find(id);
  FMTK_CHECK(it != representatives_.end()) << "unknown neighborhood type id";
  return *it->second;
}

std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
NeighborhoodTypeHistogram(const Structure& s, std::size_t radius,
                          NeighborhoodTypeIndex& index) {
  Adjacency gaifman = GaifmanAdjacency(s);
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> histogram;
  for (Element v = 0; v < s.domain_size(); ++v) {
    Neighborhood n = NeighborhoodOf(s, gaifman, {v}, radius);
    ++histogram[index.TypeOf(n)];
  }
  return histogram;
}

}  // namespace fmtk
