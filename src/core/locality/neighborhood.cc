#include "core/locality/neighborhood.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "base/hash.h"
#include "core/locality/locality_engine.h"
#include "structures/isomorphism.h"

namespace fmtk {

namespace {

// Hash of the literal content of a neighborhood. Tuples are folded
// additively so the hash is insertion-order independent, matching
// Structure's set-semantics equality.
std::size_t ContentHash(const Neighborhood& n) {
  std::size_t h = n.structure.domain_size();
  VectorHash<Element> tuple_hash;
  for (std::size_t r = 0; r < n.structure.signature().relation_count(); ++r) {
    std::size_t folded = n.structure.relation(r).size();
    for (const Tuple& t : n.structure.relation(r).tuples()) {
      folded += tuple_hash(t);
    }
    HashCombine(h, folded);
  }
  for (std::size_t c = 0; c < n.structure.signature().constant_count(); ++c) {
    std::optional<Element> e = n.structure.constant(c);
    HashCombine(h, e.has_value() ? static_cast<std::size_t>(*e) + 1 : 0);
  }
  HashCombine(h, tuple_hash(n.distinguished));
  return h;
}

bool IdenticalContent(const Neighborhood& a, const Neighborhood& b) {
  return a.distinguished == b.distinguished && a.structure == b.structure;
}

// Cheap isomorphism-invariant signature: sizes, the atomic invariants of
// the distinguished elements in order, and the sorted multiset of all
// per-element atomic-invariant hashes. Much cheaper than the WL refinement
// inside IsomorphismInvariant and independent of it, so it catches
// different collisions.
std::vector<std::size_t> CheapSignature(const Neighborhood& n) {
  const Structure& s = n.structure;
  std::vector<std::size_t> sig;
  sig.push_back(s.domain_size());
  sig.push_back(n.distinguished.size());
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    sig.push_back(s.relation(r).size());
  }
  std::vector<std::size_t> element_hashes(s.domain_size());
  for (Element e = 0; e < s.domain_size(); ++e) {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t v : AtomicInvariantOf(s, e)) {
      HashCombine(h, v);
    }
    element_hashes[e] = h;
  }
  for (Element d : n.distinguished) {
    sig.push_back(d < s.domain_size() ? element_hashes[d] : 0);
  }
  std::sort(element_hashes.begin(), element_hashes.end());
  sig.insert(sig.end(), element_hashes.begin(), element_hashes.end());
  return sig;
}

// ---------------------------------------------------------------------------
// Canonical codes.
//
// Exact graph-canonicalization specialized to the small structures that
// arise as neighborhoods: iterative color refinement over the Gaifman graph
// assigns dense ranks; when the coloring is not discrete, the search
// individualizes every element of the first non-singleton cell in turn and
// takes the lexicographic minimum certificate over all branches. No
// best-so-far pruning: the total work (counted in refinement passes) is
// then a function of the isomorphism class alone, so the budget bail-out
// below is itself isomorphism-invariant.
// ---------------------------------------------------------------------------

// Neighborhoods above this domain size skip canonicalization (the fallback
// invariant-bucket path handles them); bounded-degree balls stay far below.
constexpr std::size_t kCanonMaxDomain = 128;
// Total refinement passes allowed across the whole individualization
// search. Exhaustion means the neighborhood is too symmetric (near-complete
// graphs: factorial branch counts) and falls back, deterministically for
// the entire isomorphism class.
constexpr std::size_t kCanonPassBudget = 4096;

// Reassigns `color` to dense ranks 0..k-1 of the lexicographic order of
// `keys` and returns k (the class count). Elements with equal keys get
// equal ranks.
template <typename Key>
std::size_t DenseRank(const std::vector<Key>& keys,
                      std::vector<std::uint32_t>& color) {
  const std::size_t b = keys.size();
  std::vector<std::uint32_t> order(b);
  for (std::uint32_t i = 0; i < b; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return keys[x] < keys[y];
  });
  std::size_t classes = 0;
  for (std::size_t i = 0; i < b; ++i) {
    if (i > 0 && keys[order[i]] != keys[order[i - 1]]) {
      ++classes;
    }
    color[order[i]] = static_cast<std::uint32_t>(classes);
  }
  return b == 0 ? 0 : classes + 1;
}

// Reused buffers for refinement passes: one flat arena of concatenated
// (color, sorted neighbor colors) keys instead of a vector-of-vectors per
// pass — the individualization search runs many passes over the same small
// adjacency and the allocations dominated the refinement cost.
struct RefineScratch {
  std::vector<std::uint32_t> flat;
  std::vector<std::uint32_t> start;  // b + 1 offsets into flat
  std::vector<std::uint32_t> order;
};

// One refinement pass: recolor by (color, sorted neighbor-color multiset).
// Dense ranks mean the new partition refines the old one, so the class
// count is nondecreasing and "count unchanged" is exact stability.
std::size_t CanonRefinePass(const Adjacency& adj,
                            std::vector<std::uint32_t>& color,
                            RefineScratch& scr) {
  const std::size_t b = adj.size();
  scr.flat.clear();
  scr.start.resize(b + 1);
  for (Element e = 0; e < b; ++e) {
    scr.start[e] = static_cast<std::uint32_t>(scr.flat.size());
    scr.flat.push_back(color[e]);
    for (Element w : adj[e]) {
      scr.flat.push_back(color[w]);
    }
    std::sort(scr.flat.begin() + scr.start[e] + 1, scr.flat.end());
  }
  scr.start[b] = static_cast<std::uint32_t>(scr.flat.size());
  scr.order.resize(b);
  for (std::uint32_t i = 0; i < b; ++i) {
    scr.order[i] = i;
  }
  auto key_less = [&scr](std::uint32_t x, std::uint32_t y) {
    return std::lexicographical_compare(
        scr.flat.begin() + scr.start[x], scr.flat.begin() + scr.start[x + 1],
        scr.flat.begin() + scr.start[y], scr.flat.begin() + scr.start[y + 1]);
  };
  std::sort(scr.order.begin(), scr.order.end(), key_less);
  std::size_t classes = 0;
  for (std::size_t i = 0; i < b; ++i) {
    if (i > 0 && key_less(scr.order[i - 1], scr.order[i])) {
      ++classes;
    }
    color[scr.order[i]] = static_cast<std::uint32_t>(classes);
  }
  return b == 0 ? 0 : classes + 1;
}

struct CanonContext {
  const Structure* s = nullptr;
  const Tuple* distinguished = nullptr;
  const Adjacency* adj = nullptr;
  std::size_t budget = kCanonPassBudget;
  bool exhausted = false;
  CanonicalCode best;
  bool have_best = false;
  RefineScratch scratch;
};

std::size_t RefineToStable(CanonContext& ctx, std::vector<std::uint32_t>& color,
                           std::size_t classes) {
  while (true) {
    if (ctx.budget == 0) {
      ctx.exhausted = true;
      return classes;
    }
    --ctx.budget;
    const std::size_t next = CanonRefinePass(*ctx.adj, color, ctx.scratch);
    if (next == classes) {
      return classes;
    }
    classes = next;
  }
}

// Serializes the structure under the relabeling e -> label[e] (a discrete
// coloring, i.e. a bijection onto 0..b-1). Relabeled tuples are sorted, so
// the words depend only on the abstract structure and the relabeling.
CanonicalCode SerializeUnder(const Structure& s, const Tuple& distinguished,
                             const std::vector<std::uint32_t>& label) {
  CanonicalCode code;
  code.push_back(static_cast<std::uint32_t>(s.domain_size()));
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const Relation& rel = s.relation(r);
    const std::size_t a = rel.arity();
    code.push_back(static_cast<std::uint32_t>(a));
    code.push_back(static_cast<std::uint32_t>(rel.size()));
    if (a <= 8) {
      // Labels are < kCanonMaxDomain <= 256, so a whole tuple packs into
      // one u64 word (most-significant component first); numeric order of
      // the words is the lexicographic order of the relabeled tuples, and
      // sorting words skips the per-tuple vector allocations.
      std::vector<std::uint64_t> packed;
      packed.reserve(rel.size());
      for (const Tuple& t : rel.tuples()) {
        std::uint64_t w = 0;
        for (Element x : t) {
          w = (w << 8) | label[x];
        }
        packed.push_back(w);
      }
      std::sort(packed.begin(), packed.end());
      for (std::uint64_t w : packed) {
        for (std::size_t i = 0; i < a; ++i) {
          code.push_back(
              static_cast<std::uint32_t>((w >> (8 * (a - 1 - i))) & 0xff));
        }
      }
    } else {
      std::vector<Tuple> mapped;
      mapped.reserve(rel.size());
      for (const Tuple& t : rel.tuples()) {
        Tuple m(t.size());
        for (std::size_t i = 0; i < t.size(); ++i) {
          m[i] = label[t[i]];
        }
        mapped.push_back(std::move(m));
      }
      std::sort(mapped.begin(), mapped.end());
      for (const Tuple& t : mapped) {
        for (Element v : t) {
          code.push_back(v);
        }
      }
    }
  }
  for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
    std::optional<Element> v = s.constant(c);
    code.push_back(v.has_value() ? label[*v] + 1 : 0);
  }
  code.push_back(static_cast<std::uint32_t>(distinguished.size()));
  for (Element d : distinguished) {
    code.push_back(label[d]);
  }
  return code;
}

void CanonSearch(CanonContext& ctx, std::vector<std::uint32_t> color,
                 std::size_t classes) {
  if (ctx.exhausted) {
    return;
  }
  const std::size_t b = color.size();
  if (classes == b) {
    CanonicalCode code = SerializeUnder(*ctx.s, *ctx.distinguished, color);
    if (!ctx.have_best || code < ctx.best) {
      ctx.best = std::move(code);
      ctx.have_best = true;
    }
    return;
  }
  // Individualize each member of the first (lowest-color) non-singleton
  // cell. Exploring every branch keeps the certificate — and the total
  // pass count — independent of the input's element numbering.
  std::vector<std::uint32_t> count(b, 0);
  for (std::uint32_t c : color) {
    ++count[c];
  }
  std::uint32_t cell = 0;
  while (count[cell] <= 1) {
    ++cell;
  }
  for (Element e = 0; e < b; ++e) {
    if (color[e] != cell) {
      continue;
    }
    std::vector<std::uint32_t> child = color;
    for (Element x = 0; x < b; ++x) {
      if (child[x] > cell || (child[x] == cell && x != e)) {
        ++child[x];
      }
    }
    const std::size_t child_classes = RefineToStable(ctx, child, classes + 1);
    if (ctx.exhausted) {
      return;
    }
    CanonSearch(ctx, std::move(child), child_classes);
    if (ctx.exhausted) {
      return;
    }
  }
}

// Initial coloring: one-pass atomic profile (per relation/position
// occurrence counts plus a repeated-entry count), constant marks, and the
// Gaifman distance to each distinguished element. All isomorphism-invariant
// and — thanks to the distance components — already discrete on many
// neighborhoods (every singleton-center ball of a path or cycle).
// Dense-ranks the rows of a b x width row-major matrix after folding each
// row to a scalar hash — the sort compares one word per element instead of
// a width-long lexicographic walk. The hash is a function of the row, so
// the resulting partition (and its order) is as isomorphism-invariant as
// the rows themselves; a hash collision can only merge two classes, which
// coarsens the initial coloring identically on isomorphic inputs and is
// repaired by refinement and the individualization search.
std::size_t RankFlatRows(const std::vector<std::size_t>& flat, std::size_t b,
                         std::size_t width, std::vector<std::uint32_t>& color) {
  std::vector<std::size_t> key(b);
  for (std::size_t e = 0; e < b; ++e) {
    std::size_t h = width;
    for (std::size_t i = 0; i < width; ++i) {
      HashCombine(h, flat[e * width + i]);
    }
    key[e] = h;
  }
  return DenseRank(key, color);
}

std::size_t InitialColors(const Structure& s, const Tuple& distinguished,
                          const Adjacency& adj,
                          std::vector<std::uint32_t>& color) {
  const std::size_t b = s.domain_size();
  // One flat row of key components per element: per relation an occurrence
  // count per position plus a repeated-entry count, one mark per constant,
  // and three distance columns per distinguished element.
  std::size_t width = s.signature().constant_count() + 3 * distinguished.size();
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    width += s.relation(r).arity() + 1;
  }
  std::vector<std::size_t> flat(b * width, 0);
  std::size_t col = 0;
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const Relation& rel = s.relation(r);
    for (const Tuple& t : rel.tuples()) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        ++flat[t[i] * width + col + i];
        for (std::size_t j = 0; j < i; ++j) {
          if (t[j] == t[i]) {
            ++flat[t[i] * width + col + rel.arity()];
            break;
          }
        }
      }
    }
    col += rel.arity() + 1;
  }
  for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
    std::optional<Element> v = s.constant(c);
    if (v.has_value()) {
      flat[*v * width + col] = 1;
    }
    ++col;
  }
  // Directed reachability distances, forward and backward: tuple positions
  // orient edges (earlier component -> later component), which the
  // undirected Gaifman adjacency erases. Both orientations are preserved
  // by isomorphisms, and on directed paths and cycles they split the
  // distance-symmetric pairs {v-k, v+k} that undirected refinement can
  // only separate with a pass per layer plus individualization branches.
  Adjacency fwd(b), bwd(b);
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    for (const Tuple& t : s.relation(r).tuples()) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (t[i] != t[j]) {
            fwd[t[i]].push_back(t[j]);
            bwd[t[j]].push_back(t[i]);
          }
        }
      }
    }
  }
  for (Element d : distinguished) {
    std::vector<std::size_t> dist = BfsDistances(adj, {d});
    std::vector<std::size_t> dist_fwd = BfsDistances(fwd, {d});
    std::vector<std::size_t> dist_bwd = BfsDistances(bwd, {d});
    for (Element e = 0; e < b; ++e) {
      std::size_t* row = flat.data() + e * width + col;
      row[0] = dist[e];
      row[1] = dist_fwd[e];
      row[2] = dist_bwd[e];
    }
    col += 3;
  }
  std::size_t classes = RankFlatRows(flat, b, width, color);
  // Seed with BFS distances from singleton classes (lowest colors first,
  // capped): an isomorphism maps a singleton class's member to its
  // counterpart's, so these distances are isomorphism-invariant — and they
  // make e.g. truncated path balls discrete immediately, where plain
  // refinement needs a pass per layer to propagate the endpoint asymmetry.
  // Re-ranking (current color, seed distances) rows gives exactly the rank
  // of the extended key rows: dense ranks are order-preserving, so the
  // color column orders like the full original row.
  if (classes > 0 && classes < b) {
    constexpr std::size_t kMaxSingletonSeeds = 4;
    std::vector<std::uint32_t> size_of(classes, 0);
    for (std::uint32_t c : color) {
      ++size_of[c];
    }
    std::vector<Element> member(classes, 0);
    for (Element e = 0; e < b; ++e) {
      member[color[e]] = e;
    }
    std::vector<Element> seed_elems;
    for (std::size_t c = 0;
         c < classes && seed_elems.size() < kMaxSingletonSeeds; ++c) {
      if (size_of[c] != 1) {
        continue;
      }
      // Distances from distinguished elements are already key components.
      if (std::find(distinguished.begin(), distinguished.end(), member[c]) !=
          distinguished.end()) {
        continue;
      }
      seed_elems.push_back(member[c]);
    }
    if (!seed_elems.empty()) {
      const std::size_t w2 = 1 + seed_elems.size();
      std::vector<std::size_t> flat2(b * w2, 0);
      for (Element e = 0; e < b; ++e) {
        flat2[e * w2] = color[e];
      }
      for (std::size_t k = 0; k < seed_elems.size(); ++k) {
        std::vector<std::size_t> dist = BfsDistances(adj, {seed_elems[k]});
        for (Element e = 0; e < b; ++e) {
          flat2[e * w2 + 1 + k] = dist[e];
        }
      }
      classes = RankFlatRows(flat2, b, w2, color);
    }
  }
  return classes;
}

}  // namespace

std::optional<CanonicalCode> CanonicalNeighborhoodCode(const Neighborhood& n) {
  const Structure& s = n.structure;
  const std::size_t b = s.domain_size();
  if (b > kCanonMaxDomain) {
    return std::nullopt;
  }
  Adjacency adj = GaifmanAdjacency(s);
  CanonContext ctx;
  ctx.s = &s;
  ctx.distinguished = &n.distinguished;
  ctx.adj = &adj;
  std::vector<std::uint32_t> color(b, 0);
  std::size_t classes = InitialColors(s, n.distinguished, adj, color);
  classes = RefineToStable(ctx, color, classes);
  if (!ctx.exhausted) {
    CanonSearch(ctx, std::move(color), classes);
  }
  if (ctx.exhausted) {
    return std::nullopt;
  }
  // Prefix the certificate with a vocabulary fingerprint: codes are only
  // comparable between structures over equal signatures, and the index maps
  // are keyed by the code alone.
  std::size_t fp = s.signature().relation_count();
  for (const RelationSymbol& sym : s.signature().relations()) {
    HashCombine(fp, sym.name);
    HashCombine(fp, sym.arity);
  }
  for (const std::string& name : s.signature().constant_names()) {
    HashCombine(fp, name);
  }
  CanonicalCode out;
  out.reserve(ctx.best.size() + 2);
  out.push_back(static_cast<std::uint32_t>(fp));
  out.push_back(static_cast<std::uint32_t>(fp >> 32));
  out.insert(out.end(), ctx.best.begin(), ctx.best.end());
  return out;
}

std::vector<Element> Ball(const Adjacency& gaifman, const Tuple& center,
                          std::size_t radius) {
  std::vector<Element> sources;
  sources.reserve(center.size());
  for (Element e : center) {
    FMTK_CHECK(e < gaifman.size()) << "ball center outside domain";
    sources.push_back(e);
  }
  std::vector<std::size_t> dist = BfsDistances(gaifman, sources);
  std::vector<Element> ball;
  for (Element v = 0; v < gaifman.size(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= radius) {
      ball.push_back(v);
    }
  }
  return ball;
}

Neighborhood NeighborhoodOf(const Structure& s, const Adjacency& gaifman,
                            const Tuple& center, std::size_t radius) {
  std::vector<Element> ball = Ball(gaifman, center, radius);
  Structure induced = InducedSubstructure(s, ball);
  // Renumber the distinguished tuple into ball coordinates.
  Tuple distinguished;
  distinguished.reserve(center.size());
  for (Element e : center) {
    auto it = std::lower_bound(ball.begin(), ball.end(), e);
    FMTK_CHECK(it != ball.end() && *it == e) << "center must lie in its ball";
    distinguished.push_back(static_cast<Element>(it - ball.begin()));
  }
  return Neighborhood{std::move(induced), std::move(distinguished)};
}

namespace internal {

std::size_t NeighborhoodContentHash(const Neighborhood& n) {
  return ContentHash(n);
}

bool NeighborhoodContentEqual(const Neighborhood& a, const Neighborhood& b) {
  return IdenticalContent(a, b);
}

}  // namespace internal

bool NeighborhoodsIsomorphic(const Neighborhood& a, const Neighborhood& b) {
  return AreIsomorphic(a.structure, b.structure, a.distinguished,
                       b.distinguished);
}

NeighborhoodTypeIndex::TypeId NeighborhoodTypeIndex::TypeOf(
    const Neighborhood& n) {
  // Level 1: literal-content hits skip all isomorphism machinery. A plain
  // find — operator[] would grow an empty row per novel content even once
  // the exemplar cap stops anything from being cached under it.
  const std::size_t content = ContentHash(n);
  if (const auto* row = exact_cache_.Find(content)) {
    for (const auto& [exemplar, id] : *row) {
      if (IdenticalContent(*exemplar, n)) {
        ++stats_.exact_hits;
        return id;
      }
    }
  }
  // Level 2: exact resolution through the canonical code, one map probe.
  if (options_.use_canonical_codes) {
    if (std::optional<CanonicalCode> code = CanonicalNeighborhoodCode(n)) {
      ++stats_.canon_codes;
      auto [slot, inserted] =
          code_map_.TryEmplace(std::move(*code), reps_.size());
      const TypeId id = *slot;
      if (!inserted) {
        ++stats_.canon_hits;
        // Novel literal content of a known type: seed the content cache so
        // re-presenting this exact neighborhood is a level-1 hit. One copy
        // per distinct content, bounded by the exemplar cap.
        if (exemplars_.size() < options_.max_exemplars) {
          exemplars_.push_back(n);
          exact_cache_[content].emplace_back(&exemplars_.back(), id);
        }
        return id;
      }
      reps_.push_back(n);
      // The stored representative doubles as the content exemplar — no
      // second deep copy into exemplars_.
      exact_cache_[content].emplace_back(&reps_.back(), id);
      return id;
    }
  }
  return FallbackTypeOf(n);
}

NeighborhoodTypeIndex::TypeId NeighborhoodTypeIndex::FallbackTypeOf(
    const Neighborhood& n) {
  const std::size_t content = ContentHash(n);
  if (const auto* row = exact_cache_.Find(content)) {
    for (const auto& [exemplar, id] : *row) {
      if (IdenticalContent(*exemplar, n)) {
        ++stats_.exact_hits;
        return id;
      }
    }
  }
  // Bucket by the expensive invariant, pre-filter candidates by the cheap
  // signature, then the exact isomorphism test.
  const std::size_t invariant =
      IsomorphismInvariant(n.structure, n.distinguished);
  std::vector<std::size_t> signature = CheapSignature(n);
  std::vector<BucketEntry>& bucket = buckets_[invariant];
  TypeId resolved = reps_.size();
  bool found = false;
  for (const BucketEntry& entry : bucket) {
    if (entry.signature != signature) {
      ++stats_.signature_rejects;
      continue;
    }
    ++stats_.iso_tests;
    if (NeighborhoodsIsomorphic(reps_[entry.id], n)) {
      resolved = entry.id;
      found = true;
      break;
    }
  }
  if (!found) {
    reps_.push_back(n);
    bucket.push_back(BucketEntry{resolved, std::move(signature)});
  }
  if (exemplars_.size() < options_.max_exemplars) {
    exemplars_.push_back(n);
    exact_cache_[content].emplace_back(&exemplars_.back(), resolved);
  }
  return resolved;
}

NeighborhoodTypeIndex::Resolution NeighborhoodTypeIndex::Resolve(
    const CanonicalCode& code, const Neighborhood& exemplar) {
  FMTK_CHECK(options_.use_canonical_codes)
      << "Resolve requires canonical codes to be enabled";
  auto [slot, inserted] = code_map_.TryEmplace(code, reps_.size());
  const TypeId id = *slot;
  if (inserted) {
    reps_.push_back(exemplar);
    exact_cache_[ContentHash(exemplar)].emplace_back(&reps_.back(), id);
  }
  return Resolution{id, inserted};
}

void NeighborhoodTypeIndex::RegisterContent(Neighborhood&& exemplar, TypeId id,
                                            std::size_t content_hash) {
  if (exemplars_.size() >= options_.max_exemplars) {
    return;
  }
  std::vector<std::pair<const Neighborhood*, TypeId>>& row =
      exact_cache_[content_hash];
  for (const auto& [cached, cached_id] : row) {
    if (IdenticalContent(*cached, exemplar)) {
      return;
    }
  }
  exemplars_.push_back(std::move(exemplar));
  row.emplace_back(&exemplars_.back(), id);
}

const Neighborhood& NeighborhoodTypeIndex::representative(TypeId id) const {
  FMTK_CHECK(id < reps_.size()) << "unknown neighborhood type id";
  return reps_[id];
}

std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
NeighborhoodTypeHistogram(const Structure& s, std::size_t radius,
                          NeighborhoodTypeIndex& index) {
  LocalityEngine engine(s);
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> histogram;
  for (Element v = 0; v < s.domain_size(); ++v) {
    Neighborhood n = engine.NeighborhoodAt({v}, radius);
    ++histogram[index.TypeOf(n)];
  }
  return histogram;
}

}  // namespace fmtk
