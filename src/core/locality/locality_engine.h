#ifndef FMTK_CORE_LOCALITY_LOCALITY_ENGINE_H_
#define FMTK_CORE_LOCALITY_LOCALITY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/flat_hash.h"
#include "base/parallel.h"
#include "core/locality/neighborhood.h"
#include "structures/structure.h"

namespace fmtk {

/// Counters for the locality engine, in the style of EvalStats / GameStats /
/// DatalogStats. Deterministic: a parallel histogram run reports exactly the
/// numbers of the sequential run.
struct LocalityStats {
  /// Balls extracted by a fresh bounded BFS (radius-incremental extensions
  /// are counted under frontier_reuses instead).
  std::uint64_t balls_extracted = 0;
  /// Nodes discovered across all bounded-BFS work (stamped first visits).
  std::uint64_t bfs_node_visits = 0;
  /// Canonical codes computed.
  std::uint64_t canon_codes = 0;
  /// Types resolved by a canonical-code probe (no isomorphism search).
  std::uint64_t canon_hits = 0;
  /// Exact AreIsomorphic runs on the fallback path.
  std::uint64_t iso_tests = 0;
  /// Balls grown from the saved frontier of the previous radius instead of
  /// being recomputed from scratch.
  std::uint64_t frontier_reuses = 0;

  LocalityStats& operator+=(const LocalityStats& other);

  /// e.g. "balls_extracted=12 bfs_node_visits=40 ... frontier_reuses=0".
  std::string ToString() const;
};

class LocalityEngine;

/// Per-element saved balls and frontiers for radius-incremental histogram
/// sweeps: HistogramAt(r+1) extends each ball by one BFS layer from the
/// frontier saved at radius r — every node and edge is still visited at
/// most once across the whole sweep, so a loop over radii 0..R costs what a
/// single radius-R histogram pass costs in BFS work. Radii must be
/// nondecreasing. Valid only while its engine (and the engine's structure)
/// is alive.
class NeighborhoodSweep {
 public:
  std::size_t radius() const { return radius_; }

  /// The r-neighborhood type histogram at `radius` (>= the current radius).
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> HistogramAt(
      std::size_t radius, NeighborhoodTypeIndex& index,
      const ParallelPolicy& policy = {});

  /// The current-radius ball of `v`, sorted ascending.
  const std::vector<Element>& BallOf(Element v) const;

 private:
  friend class LocalityEngine;
  explicit NeighborhoodSweep(const LocalityEngine* engine);

  const LocalityEngine* engine_;
  std::size_t radius_ = 0;
  std::vector<std::vector<Element>> balls_;      // sorted
  std::vector<std::vector<Element>> frontiers_;  // nodes at distance radius_
};

/// Shared per-structure context for the locality toolbox: the Gaifman
/// adjacency CSR-packed once, tuple-occurrence lists for O(|ball|)
/// neighborhood materialization, and generation-stamped BFS scratch so ball
/// extraction touches only O(|ball|) memory with no per-call O(n)
/// allocations. The referenced structure must outlive the engine.
///
/// Thread-safety: const methods are safe to call from one thread at a time
/// (they share the internal scratch); TypeHistogram fans out internally
/// with per-thread scratch when given an enabled ParallelPolicy.
class LocalityEngine {
 public:
  explicit LocalityEngine(const Structure& s);

  const Structure& structure() const { return *s_; }
  std::size_t domain_size() const { return domain_size_; }

  /// B_r(ā), sorted ascending. Bounded BFS over the cached adjacency.
  std::vector<Element> Ball(const Tuple& center, std::size_t radius) const;

  /// N_r(ā): materialized from occurrence lists in O(|ball| + local tuples)
  /// rather than a scan of every tuple of the structure. Equal (as a
  /// structure, set semantics) to NeighborhoodOf on the same inputs.
  Neighborhood NeighborhoodAt(const Tuple& center, std::size_t radius) const;

  /// Multiset of the r-neighborhood types of all single points. With an
  /// enabled policy the per-element work (ball extraction, neighborhood
  /// materialization, canonicalization) fans out across threads into
  /// thread-local code->count maps which are then merged and interned in
  /// one deterministic pass ordered by first realizing element — TypeIds,
  /// histograms, and stats are bit-identical to the sequential run.
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> TypeHistogram(
      std::size_t radius, NeighborhoodTypeIndex& index,
      const ParallelPolicy& policy = {}) const;

  /// Ball-size histograms for every radius r = 0..radius in one pass:
  /// result[r][s] = number of elements v with |B_r(v)| == s. Cheaper than a
  /// type histogram (no canonicalization — size is the coarsest
  /// neighborhood invariant, a quick first look at how homogeneous a
  /// structure is before paying for types). Per element the BFS marks a
  /// word-packed visited bitset and each level's size is one vectorized
  /// PopcountWords sweep over the word range the ball has touched (AVX2
  /// nibble-LUT under the simd.h dispatch, scalar popcount under
  /// FMTK_SIMD=0); the reset between elements clears only the ball's own
  /// bits, so the whole pass costs O(ball edges + touched words), not
  /// O(n^2/64).
  std::vector<std::map<std::size_t, std::size_t>> BallSizeHistogram(
      std::size_t radius) const;

  /// A radius-incremental sweep positioned at radius 0.
  NeighborhoodSweep NewSweep() const;

  /// Canonical code of a neighborhood, counted in stats(). Convenience for
  /// callers that intern codes themselves (the Gaifman-locality search).
  std::optional<CanonicalCode> CodeOf(const Neighborhood& n) const;

  /// The distinct literal neighborhood contents seen by DedupNeighborhoodAt
  /// calls sharing this memo. Exemplar references stay valid for the memo's
  /// lifetime (entries live in a deque).
  class ContentMemo {
   public:
    std::size_t size() const { return entries_.size(); }
    const Neighborhood& exemplar(std::size_t entry) const {
      return entries_[entry];
    }

   private:
    friend class LocalityEngine;
    std::deque<Neighborhood> entries_;
    // Content hash -> entry indices with that hash.
    FlatU64Map<std::vector<std::uint32_t>> by_hash_;
  };

  struct DedupResult {
    std::size_t entry;  // index into the memo
    bool was_new;       // first occurrence of this content
  };

  /// NeighborhoodAt deduplicated by literal content. The r-ball of `center`
  /// is hashed and compared against the memo's entries by streaming the
  /// would-be induced tuples straight off the occurrence lists — a repeat
  /// content (shifted tuples of a regular structure produce long runs of
  /// them) costs one allocation-free comparison instead of a Structure
  /// build; only a novel content is materialized.
  DedupResult DedupNeighborhoodAt(ContentMemo& memo, const Tuple& center,
                                  std::size_t radius) const;

  /// MaxDegree(structure, rel_index), computed once per engine and cached;
  /// the BNDP profiler calls this once per observation.
  std::size_t CachedMaxDegree(std::size_t rel_index) const;

  const LocalityStats& stats() const { return stats_; }

 private:
  friend class NeighborhoodSweep;

  struct Scratch {
    explicit Scratch(std::size_t n)
        : stamp(n, 0), local_stamp(n, 0), local(n, 0) {}
    std::vector<std::uint64_t> stamp;
    std::uint64_t generation = 0;
    std::vector<Element> queue;  // discovery order of the current ball
    // O(1) global element -> local ball index, filled by IndexBall for the
    // most recently indexed ball (stamped, so no clearing between balls).
    std::vector<std::uint64_t> local_stamp;
    std::uint64_t local_generation = 0;
    std::vector<std::uint32_t> local;
  };

  // Publishes `ball` (sorted) as the current ball of `scratch`: afterwards
  // the streaming probes and MaterializeFromBall resolve membership and
  // local indices in O(1) instead of a binary search per tuple component.
  static void IndexBall(Scratch& scratch, const std::vector<Element>& ball);

  // Bounded BFS from `center` into `ball` (sorted on return). When
  // `frontier` is non-null it receives the nodes at distance exactly
  // `radius` (discovery order) — the seed for a later one-layer extension.
  void BallInto(Scratch& scratch, const Tuple& center, std::size_t radius,
                std::vector<Element>& ball, std::vector<Element>* frontier,
                LocalityStats& stats) const;

  // Grows a sorted ball by one BFS layer from `frontier` (replaced by the
  // new layer). Members of `ball` must be exactly the nodes within the
  // current radius.
  void ExtendBall(Scratch& scratch, std::vector<Element>& ball,
                  std::vector<Element>& frontier, LocalityStats& stats) const;

  // Induced substructure of a sorted ball with `center` distinguished.
  // `scratch` must have the ball indexed (IndexBall).
  Neighborhood MaterializeFromBall(Scratch& scratch,
                                   const std::vector<Element>& ball,
                                   const Tuple& center) const;

  // Streaming content probes computed directly from a sorted ball + center
  // via the occurrence lists, with no materialization: BallContentHash
  // equals internal::NeighborhoodContentHash of the neighborhood
  // MaterializeFromBall would build, and BallContentMatches compares that
  // would-be neighborhood against `n` tuple-by-tuple in insertion order.
  // `scratch` must have the ball indexed (IndexBall).
  std::size_t BallContentHash(Scratch& scratch,
                              const std::vector<Element>& ball,
                              const Tuple& center) const;
  bool BallContentMatches(Scratch& scratch, const std::vector<Element>& ball,
                          const Tuple& center, const Neighborhood& n) const;

  // DedupNeighborhoodAt on an already-extracted sorted ball (indexes it
  // into `scratch` itself).
  DedupResult DedupBall(Scratch& scratch, ContentMemo& memo,
                        const std::vector<Element>& ball,
                        const Tuple& center) const;

  // Shared implementation of TypeHistogram / NeighborhoodSweep::HistogramAt:
  // balls either come from `stored_balls` or from a fresh bounded BFS at
  // `radius`.
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> HistogramCore(
      std::size_t radius,
      const std::vector<std::vector<Element>>* stored_balls,
      NeighborhoodTypeIndex& index, const ParallelPolicy& policy) const;

  const Structure* s_;
  std::size_t domain_size_;
  // Gaifman adjacency, CSR-packed: neighbors of v are
  // csr_neighbors_[csr_offsets_[v] .. csr_offsets_[v + 1]).
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<Element> csr_neighbors_;
  // Per relation: CSR of tuple indices by member element, each tuple listed
  // once per *distinct* member (repeated components recorded once).
  struct Occurrences {
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> tuple_index;
  };
  std::vector<Occurrences> occurrences_;
  mutable std::vector<std::optional<std::size_t>> max_degree_cache_;
  mutable Scratch scratch_;
  mutable LocalityStats stats_;
};

}  // namespace fmtk

#endif  // FMTK_CORE_LOCALITY_LOCALITY_ENGINE_H_
