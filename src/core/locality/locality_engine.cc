#include "core/locality/locality_engine.h"

#include <algorithm>
#include <deque>
#include <string>
#include <thread>
#include <utility>

#include "base/bitset.h"
#include "base/check.h"
#include "base/flat_hash.h"
#include "base/hash.h"
#include "base/popcount.h"
#include "structures/graph.h"

namespace fmtk {

LocalityStats& LocalityStats::operator+=(const LocalityStats& other) {
  balls_extracted += other.balls_extracted;
  bfs_node_visits += other.bfs_node_visits;
  canon_codes += other.canon_codes;
  canon_hits += other.canon_hits;
  iso_tests += other.iso_tests;
  frontier_reuses += other.frontier_reuses;
  return *this;
}

std::string LocalityStats::ToString() const {
  return "balls_extracted=" + std::to_string(balls_extracted) +
         " bfs_node_visits=" + std::to_string(bfs_node_visits) +
         " canon_codes=" + std::to_string(canon_codes) +
         " canon_hits=" + std::to_string(canon_hits) +
         " iso_tests=" + std::to_string(iso_tests) +
         " frontier_reuses=" + std::to_string(frontier_reuses);
}

LocalityEngine::LocalityEngine(const Structure& s)
    : s_(&s),
      domain_size_(s.domain_size()),
      max_degree_cache_(s.signature().relation_count()),
      scratch_(s.domain_size()) {
  // CSR-pack the Gaifman adjacency; the nested vectors are dropped after.
  Adjacency adj = GaifmanAdjacency(s);
  csr_offsets_.resize(domain_size_ + 1, 0);
  std::size_t total = 0;
  for (Element v = 0; v < domain_size_; ++v) {
    total += adj[v].size();
  }
  csr_neighbors_.reserve(total);
  for (Element v = 0; v < domain_size_; ++v) {
    csr_offsets_[v] = static_cast<std::uint32_t>(csr_neighbors_.size());
    csr_neighbors_.insert(csr_neighbors_.end(), adj[v].begin(), adj[v].end());
  }
  csr_offsets_[domain_size_] = static_cast<std::uint32_t>(csr_neighbors_.size());
  // Occurrence lists: tuple indices by member element, one entry per
  // distinct member so the min-member rule in MaterializeFromBall emits
  // every contained tuple exactly once.
  occurrences_.resize(s.signature().relation_count());
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const Relation& rel = s.relation(r);
    const std::size_t arity = rel.arity();
    const std::size_t rows = rel.size();
    Occurrences& occ = occurrences_[r];
    occ.offsets.assign(domain_size_ + 1, 0);
    auto for_each_distinct_member = [arity](const Element* row, auto&& fn) {
      for (std::size_t i = 0; i < arity; ++i) {
        bool repeated = false;
        for (std::size_t j = 0; j < i; ++j) {
          if (row[j] == row[i]) {
            repeated = true;
            break;
          }
        }
        if (!repeated) {
          fn(row[i]);
        }
      }
    };
    for (std::size_t idx = 0; idx < rows; ++idx) {
      for_each_distinct_member(rel.TupleData(idx),
                               [&](Element e) { ++occ.offsets[e + 1]; });
    }
    for (Element v = 0; v < domain_size_; ++v) {
      occ.offsets[v + 1] += occ.offsets[v];
    }
    occ.tuple_index.resize(occ.offsets[domain_size_]);
    std::vector<std::uint32_t> cursor(occ.offsets.begin(),
                                      occ.offsets.end() - 1);
    for (std::size_t idx = 0; idx < rows; ++idx) {
      for_each_distinct_member(rel.TupleData(idx), [&](Element e) {
        occ.tuple_index[cursor[e]++] = static_cast<std::uint32_t>(idx);
      });
    }
  }
}

void LocalityEngine::BallInto(Scratch& scratch, const Tuple& center,
                              std::size_t radius, std::vector<Element>& ball,
                              std::vector<Element>* frontier,
                              LocalityStats& stats) const {
  const std::uint64_t gen = ++scratch.generation;
  scratch.queue.clear();
  for (Element e : center) {
    FMTK_CHECK(e < domain_size_) << "ball center outside domain";
    if (scratch.stamp[e] == gen) {
      continue;
    }
    scratch.stamp[e] = gen;
    scratch.queue.push_back(e);
    ++stats.bfs_node_visits;
  }
  std::size_t layer_begin = 0;
  std::size_t layer_end = scratch.queue.size();
  for (std::size_t d = 0; d < radius && layer_begin < layer_end; ++d) {
    for (std::size_t i = layer_begin; i < layer_end; ++i) {
      const Element e = scratch.queue[i];
      for (std::uint32_t k = csr_offsets_[e]; k < csr_offsets_[e + 1]; ++k) {
        const Element w = csr_neighbors_[k];
        if (scratch.stamp[w] != gen) {
          scratch.stamp[w] = gen;
          scratch.queue.push_back(w);
          ++stats.bfs_node_visits;
        }
      }
    }
    layer_begin = layer_end;
    layer_end = scratch.queue.size();
  }
  if (frontier != nullptr) {
    frontier->assign(scratch.queue.begin() + layer_begin,
                     scratch.queue.begin() + layer_end);
  }
  ball.assign(scratch.queue.begin(), scratch.queue.end());
  std::sort(ball.begin(), ball.end());
  ++stats.balls_extracted;
}

void LocalityEngine::ExtendBall(Scratch& scratch, std::vector<Element>& ball,
                                std::vector<Element>& frontier,
                                LocalityStats& stats) const {
  const std::uint64_t gen = ++scratch.generation;
  for (Element e : ball) {
    scratch.stamp[e] = gen;
  }
  std::vector<Element>& next = scratch.queue;  // reused, no per-call alloc
  next.clear();
  for (Element e : frontier) {
    for (std::uint32_t k = csr_offsets_[e]; k < csr_offsets_[e + 1]; ++k) {
      const Element w = csr_neighbors_[k];
      if (scratch.stamp[w] != gen) {
        scratch.stamp[w] = gen;
        next.push_back(w);
        ++stats.bfs_node_visits;
      }
    }
  }
  ++stats.frontier_reuses;
  if (!next.empty()) {
    const std::size_t old_size = ball.size();
    ball.insert(ball.end(), next.begin(), next.end());
    std::sort(ball.begin() + old_size, ball.end());
    std::inplace_merge(ball.begin(), ball.begin() + old_size, ball.end());
  }
  frontier.assign(next.begin(), next.end());
}

void LocalityEngine::IndexBall(Scratch& scratch,
                               const std::vector<Element>& ball) {
  const std::uint64_t gen = ++scratch.local_generation;
  for (std::size_t i = 0; i < ball.size(); ++i) {
    scratch.local_stamp[ball[i]] = gen;
    scratch.local[ball[i]] = static_cast<std::uint32_t>(i);
  }
}

Neighborhood LocalityEngine::MaterializeFromBall(
    Scratch& scratch, const std::vector<Element>& ball,
    const Tuple& center) const {
  Structure induced(s_->signature_ptr(), ball.size());
  const std::uint64_t gen = scratch.local_generation;
  auto local_of = [&scratch, gen](Element e) -> std::optional<Element> {
    if (scratch.local_stamp[e] != gen) {
      return std::nullopt;
    }
    return static_cast<Element>(scratch.local[e]);
  };
  Tuple mapped;
  for (std::size_t r = 0; r < s_->signature().relation_count(); ++r) {
    const Relation& rel = s_->relation(r);
    if (rel.arity() == 0) {
      // Propositional flags have no members and thus no occurrence entries;
      // they survive induction verbatim.
      for (const Tuple& t : rel.tuples()) {
        induced.AddTuple(r, t);
      }
      continue;
    }
    const Occurrences& occ = occurrences_[r];
    const std::size_t arity = rel.arity();
    for (Element e : ball) {
      for (std::uint32_t k = occ.offsets[e]; k < occ.offsets[e + 1]; ++k) {
        const Element* t = rel.TupleData(occ.tuple_index[k]);
        // One pass: track the minimum (each fully-contained tuple is added
        // exactly once, when e is its minimum element) while relabeling.
        mapped.clear();
        Element mn = t[0];
        bool inside = true;
        for (std::size_t i = 0; i < arity; ++i) {
          const Element x = t[i];
          if (x < mn) {
            mn = x;
          }
          if (inside) {
            if (scratch.local_stamp[x] != gen) {
              inside = false;
            } else {
              mapped.push_back(static_cast<Element>(scratch.local[x]));
            }
          }
        }
        if (inside && mn == e) {
          induced.AddTuple(r, mapped);
        }
      }
    }
  }
  for (std::size_t c = 0; c < s_->signature().constant_count(); ++c) {
    std::optional<Element> v = s_->constant(c);
    if (v.has_value()) {
      std::optional<Element> lv = local_of(*v);
      if (lv.has_value()) {
        induced.SetConstant(c, *lv);
      }
    }
  }
  Tuple distinguished;
  distinguished.reserve(center.size());
  for (Element e : center) {
    std::optional<Element> le = local_of(e);
    FMTK_CHECK(le.has_value()) << "center must lie in its ball";
    distinguished.push_back(*le);
  }
  return Neighborhood{std::move(induced), std::move(distinguished)};
}

std::size_t LocalityEngine::BallContentHash(Scratch& scratch,
                                            const std::vector<Element>& ball,
                                            const Tuple& center) const {
  // Mirrors the content hash in neighborhood.cc on the materialization this
  // ball would produce. The per-relation fold is an order-independent sum,
  // so streaming the induced tuples in occurrence order lands on the exact
  // value NeighborhoodContentHash would report — no Structure is built.
  std::size_t h = ball.size();
  VectorHash<Element> tuple_hash;
  const std::uint64_t gen = scratch.local_generation;
  auto local_of = [&scratch, gen](Element e) -> std::optional<Element> {
    if (scratch.local_stamp[e] != gen) {
      return std::nullopt;
    }
    return static_cast<Element>(scratch.local[e]);
  };
  Tuple mapped;
  for (std::size_t r = 0; r < s_->signature().relation_count(); ++r) {
    const Relation& rel = s_->relation(r);
    std::size_t folded = 0;
    std::size_t count = 0;
    if (rel.arity() == 0) {
      count = rel.size();
      for (const Tuple& t : rel.tuples()) {
        folded += tuple_hash(t);
      }
    } else {
      const Occurrences& occ = occurrences_[r];
      const std::size_t arity = rel.arity();
      for (Element e : ball) {
        for (std::uint32_t k = occ.offsets[e]; k < occ.offsets[e + 1]; ++k) {
          const Element* t = rel.TupleData(occ.tuple_index[k]);
          // One fused pass: track the minimum member (the tuple is emitted
          // only at its minimum), membership of every member, and the
          // VectorHash of the relabeled tuple (seed = size, then each local
          // index combined in position order — bit-identical to hashing the
          // materialized tuple).
          Element mn = t[0];
          bool inside = true;
          std::size_t th = arity;
          for (std::size_t i = 0; i < arity; ++i) {
            const Element x = t[i];
            if (x < mn) {
              mn = x;
            }
            if (inside) {
              if (scratch.local_stamp[x] != gen) {
                inside = false;
              } else {
                HashCombine(th, static_cast<Element>(scratch.local[x]));
              }
            }
          }
          if (mn != e || !inside) {
            continue;
          }
          ++count;
          folded += th;
        }
      }
    }
    HashCombine(h, folded + count);
  }
  for (std::size_t c = 0; c < s_->signature().constant_count(); ++c) {
    std::optional<Element> v = s_->constant(c);
    std::optional<Element> lv;
    if (v.has_value()) {
      lv = local_of(*v);
    }
    HashCombine(h, lv.has_value() ? static_cast<std::size_t>(*lv) + 1 : 0);
  }
  mapped.clear();
  for (Element e : center) {
    std::optional<Element> le = local_of(e);
    FMTK_CHECK(le.has_value()) << "center must lie in its ball";
    mapped.push_back(*le);
  }
  HashCombine(h, tuple_hash(mapped));
  return h;
}

bool LocalityEngine::BallContentMatches(Scratch& scratch,
                                        const std::vector<Element>& ball,
                                        const Tuple& center,
                                        const Neighborhood& n) const {
  // Compares the materialization this ball would produce against `n`.
  // MaterializeFromBall inserts tuples relation-major, ball-ascending,
  // occurrence-ascending, and Relation preserves insertion order, so a
  // sequential walk in that same order is an exact content comparison.
  if (n.structure.domain_size() != ball.size() ||
      n.distinguished.size() != center.size()) {
    return false;
  }
  const std::uint64_t gen = scratch.local_generation;
  auto local_of = [&scratch, gen](Element e) -> std::optional<Element> {
    if (scratch.local_stamp[e] != gen) {
      return std::nullopt;
    }
    return static_cast<Element>(scratch.local[e]);
  };
  for (std::size_t i = 0; i < center.size(); ++i) {
    std::optional<Element> le = local_of(center[i]);
    FMTK_CHECK(le.has_value()) << "center must lie in its ball";
    if (n.distinguished[i] != *le) {
      return false;
    }
  }
  for (std::size_t r = 0; r < s_->signature().relation_count(); ++r) {
    const Relation& rel = s_->relation(r);
    const std::vector<Tuple>& out = n.structure.relation(r).tuples();
    if (rel.arity() == 0) {
      if (out.size() != rel.size()) {
        return false;
      }
      continue;
    }
    const Occurrences& occ = occurrences_[r];
    const std::size_t arity = rel.arity();
    std::size_t idx = 0;
    for (Element e : ball) {
      for (std::uint32_t k = occ.offsets[e]; k < occ.offsets[e + 1]; ++k) {
        const Element* t = rel.TupleData(occ.tuple_index[k]);
        // Fused min + membership pass; only fully-contained tuples at their
        // minimum member take part in the sequential comparison, exactly as
        // in MaterializeFromBall.
        Element mn = t[0];
        bool inside = true;
        for (std::size_t i = 0; i < arity; ++i) {
          const Element x = t[i];
          if (x < mn) {
            mn = x;
          }
          if (scratch.local_stamp[x] != gen) {
            inside = false;
          }
        }
        if (mn != e || !inside) {
          continue;
        }
        if (idx == out.size()) {
          return false;
        }
        const Tuple& o = out[idx];
        for (std::size_t i = 0; i < arity; ++i) {
          if (o[i] != static_cast<Element>(scratch.local[t[i]])) {
            return false;
          }
        }
        ++idx;
      }
    }
    if (idx != out.size()) {
      return false;
    }
  }
  for (std::size_t c = 0; c < s_->signature().constant_count(); ++c) {
    std::optional<Element> v = s_->constant(c);
    std::optional<Element> lv;
    if (v.has_value()) {
      lv = local_of(*v);
    }
    if (n.structure.constant(c) != lv) {
      return false;
    }
  }
  return true;
}

LocalityEngine::DedupResult LocalityEngine::DedupBall(
    Scratch& scratch, ContentMemo& memo, const std::vector<Element>& ball,
    const Tuple& center) const {
  IndexBall(scratch, ball);
  const std::size_t h = BallContentHash(scratch, ball, center);
  std::vector<std::uint32_t>& row = memo.by_hash_[h];
  for (std::uint32_t idx : row) {
    if (BallContentMatches(scratch, ball, center, memo.entries_[idx])) {
      return DedupResult{idx, false};
    }
  }
  const auto idx = static_cast<std::uint32_t>(memo.entries_.size());
  memo.entries_.push_back(MaterializeFromBall(scratch, ball, center));
  row.push_back(idx);
  return DedupResult{idx, true};
}

LocalityEngine::DedupResult LocalityEngine::DedupNeighborhoodAt(
    ContentMemo& memo, const Tuple& center, std::size_t radius) const {
  std::vector<Element> ball;
  BallInto(scratch_, center, radius, ball, nullptr, stats_);
  return DedupBall(scratch_, memo, ball, center);
}

std::vector<Element> LocalityEngine::Ball(const Tuple& center,
                                          std::size_t radius) const {
  std::vector<Element> ball;
  BallInto(scratch_, center, radius, ball, nullptr, stats_);
  return ball;
}

Neighborhood LocalityEngine::NeighborhoodAt(const Tuple& center,
                                            std::size_t radius) const {
  std::vector<Element> ball;
  BallInto(scratch_, center, radius, ball, nullptr, stats_);
  IndexBall(scratch_, ball);
  return MaterializeFromBall(scratch_, ball, center);
}

std::optional<CanonicalCode> LocalityEngine::CodeOf(
    const Neighborhood& n) const {
  std::optional<CanonicalCode> code = CanonicalNeighborhoodCode(n);
  if (code.has_value()) {
    ++stats_.canon_codes;
  }
  return code;
}

std::size_t LocalityEngine::CachedMaxDegree(std::size_t rel_index) const {
  FMTK_CHECK(rel_index < max_degree_cache_.size())
      << "relation index out of range";
  if (!max_degree_cache_[rel_index].has_value()) {
    max_degree_cache_[rel_index] = MaxDegree(*s_, rel_index);
  }
  return *max_degree_cache_[rel_index];
}

std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
LocalityEngine::TypeHistogram(std::size_t radius, NeighborhoodTypeIndex& index,
                              const ParallelPolicy& policy) const {
  return HistogramCore(radius, nullptr, index, policy);
}

NeighborhoodSweep LocalityEngine::NewSweep() const {
  return NeighborhoodSweep(this);
}

std::vector<std::map<std::size_t, std::size_t>>
LocalityEngine::BallSizeHistogram(std::size_t radius) const {
  std::vector<std::map<std::size_t, std::size_t>> out(radius + 1);
  if (domain_size_ == 0) {
    return out;
  }
  ElementBitset visited(domain_size_);
  const std::uint64_t* words = visited.words();
  std::vector<Element> members;   // every node of the current ball
  std::size_t layer_begin = 0;    // members[layer_begin, end) = frontier
  for (Element v = 0; v < domain_size_; ++v) {
    visited.Set(v);
    members.assign(1, v);
    layer_begin = 0;
    std::size_t lo_word = static_cast<std::size_t>(v) >> 6;
    std::size_t hi_word = lo_word;
    ++stats_.balls_extracted;
    ++stats_.bfs_node_visits;
    ++out[0][1];
    for (std::size_t r = 1; r <= radius; ++r) {
      const std::size_t layer_end = members.size();
      for (std::size_t i = layer_begin; i < layer_end; ++i) {
        const Element e = members[i];
        for (std::uint32_t k = csr_offsets_[e]; k < csr_offsets_[e + 1];
             ++k) {
          const Element w = csr_neighbors_[k];
          if (!visited.Test(w)) {
            visited.Set(w);
            members.push_back(w);
            const std::size_t wi = static_cast<std::size_t>(w) >> 6;
            lo_word = std::min(lo_word, wi);
            hi_word = std::max(hi_word, wi);
            ++stats_.bfs_node_visits;
          }
        }
      }
      layer_begin = layer_end;
      // The level's ball size in one bulk popcount over the touched word
      // range — the measurement kernel the per-node counter would
      // serialize.
      const std::size_t size = static_cast<std::size_t>(
          PopcountWords(words + lo_word, hi_word - lo_word + 1));
      ++out[r][size];
    }
    // O(|ball|) reset: clear exactly the bits this ball set.
    for (const Element e : members) {
      visited.Clear(e);
    }
  }
  return out;
}

std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
LocalityEngine::HistogramCore(
    std::size_t radius, const std::vector<std::vector<Element>>* stored_balls,
    NeighborhoodTypeIndex& index, const ParallelPolicy& policy) const {
  // Phase A: per-element balls deduplicated by literal content BEFORE any
  // materialization — each ball is stream-hashed off the occurrence lists
  // and compared against (1) the chunk's own entries and (2) the index's
  // exact-content cache, which previous histogram passes populated with
  // every distinct content they saw. A cache hit resolves straight to a
  // TypeId with no Structure build and no canonicalization (the second
  // structure of a Hanf comparison shares almost all its ball contents
  // with the first); only genuinely novel contents are materialized and
  // canonicalized, once each. The index is only read here — it is mutated
  // exclusively in the merge phase, after every chunk has joined — so
  // concurrent chunk probes are safe. Chunks are contiguous element
  // ranges, so every per-chunk "first element" is a chunk-local minimum
  // and the merge below recovers the global one.
  struct LocalEntry {
    const Neighborhood* exemplar = nullptr;  // owned or index-owned
    Neighborhood* owned = nullptr;  // set when this chunk materialized it
    std::optional<NeighborhoodTypeIndex::TypeId> direct;  // content-cache hit
    std::optional<CanonicalCode> code;
    std::size_t content_hash = 0;
    std::size_t count = 0;
    Element first_elem = 0;
  };
  struct ChunkResult {
    std::deque<Neighborhood> owned;  // deque: stable exemplar addresses
    std::vector<LocalEntry> entries;
    LocalityStats stats;
  };
  const bool canon = index.canonical_enabled();
  auto run_chunk = [&](Element begin, Element end, ChunkResult& out) {
    Scratch scratch(domain_size_);
    std::vector<Element> fresh_ball;
    Tuple center(1);
    FlatU64Map<std::vector<std::uint32_t>> by_hash;
    constexpr std::uint32_t kNoPrev = static_cast<std::uint32_t>(-1);
    std::uint32_t prev = kNoPrev;
    for (Element v = begin; v < end; ++v) {
      center[0] = v;
      const std::vector<Element>* ball;
      if (stored_balls != nullptr) {
        ball = &(*stored_balls)[v];
      } else {
        BallInto(scratch, center, radius, fresh_ball, nullptr, out.stats);
        ball = &fresh_ball;
      }
      IndexBall(scratch, *ball);
      // Identical contents come in element-contiguous runs (shifted interior
      // balls of a regular structure), so one streaming compare against the
      // previous element's entry usually replaces the hash + probe. A hit
      // lands in the exact entry the by_hash probe would have found, so the
      // outcome is unchanged.
      if (prev != kNoPrev && BallContentMatches(scratch, *ball, center,
                                                *out.entries[prev].exemplar)) {
        ++out.entries[prev].count;
        continue;
      }
      const std::size_t h = BallContentHash(scratch, *ball, center);
      std::vector<std::uint32_t>& row = by_hash[h];
      bool merged = false;
      for (std::uint32_t idx : row) {
        if (BallContentMatches(scratch, *ball, center,
                               *out.entries[idx].exemplar)) {
          ++out.entries[idx].count;
          prev = idx;
          merged = true;
          break;
        }
      }
      if (merged) {
        continue;
      }
      LocalEntry entry;
      entry.count = 1;
      entry.first_elem = v;
      entry.content_hash = h;
      if (const auto* cache_row = index.exact_cache_.Find(h)) {
        for (const auto& [cached, cached_id] : *cache_row) {
          if (BallContentMatches(scratch, *ball, center, *cached)) {
            entry.exemplar = cached;
            entry.direct = cached_id;
            break;
          }
        }
      }
      if (!entry.direct.has_value()) {
        out.owned.push_back(MaterializeFromBall(scratch, *ball, center));
        entry.owned = &out.owned.back();
        entry.exemplar = entry.owned;
      }
      prev = static_cast<std::uint32_t>(out.entries.size());
      row.push_back(prev);
      out.entries.push_back(std::move(entry));
    }
    // Canonicalization is a function of content, so once per distinct
    // content suffices; the counters stay element-based (the entry count),
    // which keeps them independent of the chunking.
    for (LocalEntry& en : out.entries) {
      if (en.direct.has_value()) {
        continue;
      }
      en.code = canon ? CanonicalNeighborhoodCode(*en.exemplar) : std::nullopt;
      if (en.code.has_value()) {
        out.stats.canon_codes += en.count;
      }
    }
  };
  std::size_t threads = 1;
  if (policy.enabled && domain_size_ >= policy.min_domain) {
    threads = policy.num_threads != 0 ? policy.num_threads
                                      : std::thread::hardware_concurrency();
    threads = std::max<std::size_t>(1, std::min(threads, domain_size_));
  }
  std::vector<ChunkResult> chunks(threads);
  if (threads == 1) {
    run_chunk(0, static_cast<Element>(domain_size_), chunks[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (std::size_t t = 1; t < threads; ++t) {
      const Element begin = static_cast<Element>(domain_size_ * t / threads);
      const Element end =
          static_cast<Element>(domain_size_ * (t + 1) / threads);
      workers.emplace_back(
          [&run_chunk, begin, end, &chunks, t] { run_chunk(begin, end, chunks[t]); });
    }
    run_chunk(0, static_cast<Element>(domain_size_ / threads), chunks[0]);
    for (std::thread& w : workers) {
      w.join();
    }
  }
  // Phase B: deterministic merge. Counts add up, the first realizing
  // element is the minimum over chunks, and processing in element order
  // makes TypeId assignment — and every counter — identical to the
  // sequential (single-chunk) run regardless of thread count. Chunks cover
  // ascending contiguous ranges, so iterating chunk entries in order also
  // reproduces the sequential content-registration order exactly.
  struct Pending {
    Element first_elem;
    const CanonicalCode* code;  // null marks a fallback entry
    std::size_t count;
    const Neighborhood* exemplar;
  };
  FlatHashMap<CanonicalCode, std::size_t, CanonicalCodeHash> slot_of;
  std::vector<Pending> pendings;
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> histogram;
  std::uint64_t direct_hits = 0;
  for (ChunkResult& chunk : chunks) {
    for (const LocalEntry& en : chunk.entries) {
      if (en.direct.has_value()) {
        histogram[*en.direct] += en.count;
        direct_hits += en.count;
      } else if (en.code.has_value()) {
        auto [slot, inserted] = slot_of.TryEmplace(*en.code, pendings.size());
        if (inserted) {
          // Point at the chunk-owned code, not into the map: the flat map
          // relocates its keys on rehash, and the entry vectors are frozen
          // for the rest of the merge.
          pendings.push_back(
              Pending{en.first_elem, &*en.code, en.count, en.exemplar});
        } else {
          Pending& p = pendings[*slot];
          p.count += en.count;
          if (en.first_elem < p.first_elem) {
            p.first_elem = en.first_elem;
            p.exemplar = en.exemplar;
          }
        }
      } else {
        pendings.push_back(
            Pending{en.first_elem, nullptr, en.count, en.exemplar});
      }
    }
  }
  std::vector<std::size_t> order(pendings.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&pendings](std::size_t a,
                                                    std::size_t b) {
    return pendings[a].first_elem < pendings[b].first_elem;
  });
  std::vector<NeighborhoodTypeIndex::TypeId> id_of(pendings.size(), 0);
  LocalityStats merge_stats;
  for (std::size_t i : order) {
    const Pending& p = pendings[i];
    if (p.code != nullptr) {
      NeighborhoodTypeIndex::Resolution res = index.Resolve(*p.code,
                                                            *p.exemplar);
      merge_stats.canon_hits += (res.was_new ? 0 : 1) + (p.count - 1);
      histogram[res.id] += p.count;
      id_of[i] = res.id;
    } else {
      const std::uint64_t before = index.stats().iso_tests;
      const NeighborhoodTypeIndex::TypeId id =
          index.FallbackTypeOf(*p.exemplar);
      merge_stats.iso_tests += index.stats().iso_tests - before;
      histogram[id] += p.count;
      id_of[i] = id;
    }
  }
  // Register every distinct coded content so later passes — in particular
  // the other structure of a Hanf comparison sharing this index — resolve
  // it by content probe alone. This is the chunk exemplars' last use, so
  // ownership moves into the index instead of copying.
  for (ChunkResult& chunk : chunks) {
    for (LocalEntry& en : chunk.entries) {
      if (en.code.has_value() && en.owned != nullptr) {
        const std::size_t* slot = slot_of.Find(*en.code);
        FMTK_CHECK(slot != nullptr) << "coded content missing from the merge";
        index.RegisterContent(std::move(*en.owned), id_of[*slot],
                              en.content_hash);
      }
    }
  }
  index.stats_.exact_hits += direct_hits;
  for (const ChunkResult& chunk : chunks) {
    stats_ += chunk.stats;
  }
  stats_ += merge_stats;
  return histogram;
}

NeighborhoodSweep::NeighborhoodSweep(const LocalityEngine* engine)
    : engine_(engine),
      balls_(engine->domain_size()),
      frontiers_(engine->domain_size()) {
  for (Element v = 0; v < engine_->domain_size(); ++v) {
    balls_[v] = {v};
    frontiers_[v] = {v};
  }
  engine_->stats_.balls_extracted += engine_->domain_size();
  engine_->stats_.bfs_node_visits += engine_->domain_size();
}

const std::vector<Element>& NeighborhoodSweep::BallOf(Element v) const {
  FMTK_CHECK(v < balls_.size()) << "element outside domain";
  return balls_[v];
}

std::map<NeighborhoodTypeIndex::TypeId, std::size_t>
NeighborhoodSweep::HistogramAt(std::size_t radius,
                               NeighborhoodTypeIndex& index,
                               const ParallelPolicy& policy) {
  FMTK_CHECK(radius >= radius_) << "sweep radii must be nondecreasing";
  while (radius_ < radius) {
    for (Element v = 0; v < engine_->domain_size(); ++v) {
      engine_->ExtendBall(engine_->scratch_, balls_[v], frontiers_[v],
                          engine_->stats_);
    }
    ++radius_;
  }
  return engine_->HistogramCore(radius_, &balls_, index, policy);
}

}  // namespace fmtk
