#include "core/locality/hanf.h"

#include <algorithm>
#include <map>

#include "core/locality/locality_engine.h"

namespace fmtk {

bool HanfEquivalent(const Structure& a, const Structure& b,
                    std::size_t radius, NeighborhoodTypeIndex& index,
                    const ParallelPolicy& policy) {
  if (!(a.signature() == b.signature()) ||
      a.domain_size() != b.domain_size()) {
    return false;
  }
  LocalityEngine engine_a(a);
  LocalityEngine engine_b(b);
  return engine_a.TypeHistogram(radius, index, policy) ==
         engine_b.TypeHistogram(radius, index, policy);
}

bool HanfEquivalent(const Structure& a, const Structure& b,
                    std::size_t radius) {
  NeighborhoodTypeIndex index;
  return HanfEquivalent(a, b, radius, index);
}

bool ThresholdHanfEquivalent(const Structure& a, const Structure& b,
                             std::size_t radius, std::size_t threshold,
                             NeighborhoodTypeIndex& index,
                             const ParallelPolicy& policy) {
  if (!(a.signature() == b.signature())) {
    return false;
  }
  LocalityEngine engine_a(a);
  LocalityEngine engine_b(b);
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> ha =
      engine_a.TypeHistogram(radius, index, policy);
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> hb =
      engine_b.TypeHistogram(radius, index, policy);
  auto count = [](const std::map<NeighborhoodTypeIndex::TypeId, std::size_t>&
                      h,
                  NeighborhoodTypeIndex::TypeId id) -> std::size_t {
    auto it = h.find(id);
    return it == h.end() ? 0 : it->second;
  };
  for (const auto& [id, ca] : ha) {
    const std::size_t cb = count(hb, id);
    if (ca != cb && (ca < threshold || cb < threshold)) {
      return false;
    }
  }
  for (const auto& [id, cb] : hb) {
    // A type realized in b only has counts cb (>= 1 by construction of the
    // histogram) vs 0, and min(cb, 0) = 0 clears the threshold only when
    // it is 0 — so the whole check collapses to `threshold > 0`.
    if (threshold > 0 && ha.find(id) == ha.end()) {
      return false;
    }
  }
  return true;
}

bool ThresholdHanfEquivalent(const Structure& a, const Structure& b,
                             std::size_t radius, std::size_t threshold) {
  NeighborhoodTypeIndex index;
  return ThresholdHanfEquivalent(a, b, radius, threshold, index);
}

std::optional<std::size_t> LargestHanfRadius(const Structure& a,
                                             const Structure& b,
                                             std::size_t max_radius) {
  if (!(a.signature() == b.signature()) ||
      a.domain_size() != b.domain_size()) {
    return std::nullopt;  // even ⇆0 needs a bijection over equal domains
  }
  NeighborhoodTypeIndex index;
  LocalityEngine engine_a(a);
  LocalityEngine engine_b(b);
  NeighborhoodSweep sweep_a = engine_a.NewSweep();
  NeighborhoodSweep sweep_b = engine_b.NewSweep();
  std::optional<std::size_t> largest;
  for (std::size_t r = 0; r <= max_radius; ++r) {
    if (sweep_a.HistogramAt(r, index) == sweep_b.HistogramAt(r, index)) {
      largest = r;
    } else {
      break;  // ⇆r is antitone in r.
    }
  }
  return largest;
}

}  // namespace fmtk
