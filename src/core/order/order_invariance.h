#ifndef FMTK_CORE_ORDER_ORDER_INVARIANCE_H_
#define FMTK_CORE_ORDER_ORDER_INVARIANCE_H_

#include <cstddef>
#include <optional>
#include <random>
#include <vector>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

/// §3.6 of the survey: database domains are ordered, so the right
/// expressiveness question is about structures (A, <). A sentence over
/// σ ∪ {<} defines a query on plain σ-structures only if its verdict does
/// not depend on which order was chosen — order-invariance. (Famously,
/// order-invariant FO is strictly more expressive than FO, but
/// order-invariant queries still cannot count: EVEN stays out of reach.)

/// Expands `s` with the linear order that ranks `permutation[0]` first,
/// `permutation[1]` second, ... The permutation must enumerate the domain
/// exactly once; the signature must not already contain "<".
Result<Structure> ExpandWithOrder(const Structure& s,
                                  const std::vector<Element>& permutation);

/// The identity permutation on s's domain.
std::vector<Element> IdentityOrder(const Structure& s);

/// Outcome of an order-invariance check on one structure.
struct OrderInvarianceReport {
  bool invariant = true;
  /// Verdict under the first order checked (meaningful when invariant).
  bool value = false;
  std::size_t orders_checked = 0;
  /// When not invariant: two orders with different verdicts.
  std::optional<std::pair<std::vector<Element>, std::vector<Element>>>
      witness;
};

/// Checks whether `sentence` (over σ ∪ {<}) gives the same verdict on
/// (s, <) for every order <. Exhaustive over all |A|! permutations when
/// |A| <= max_exhaustive; otherwise samples `samples` random permutations
/// (plus the identity). Exhaustive mode is a proof for this structure;
/// sampling is only a refutation search.
Result<OrderInvarianceReport> CheckOrderInvariance(
    const Structure& s, const Formula& sentence, std::mt19937_64& rng,
    std::size_t max_exhaustive = 6, std::size_t samples = 30);

}  // namespace fmtk

#endif  // FMTK_CORE_ORDER_ORDER_INVARIANCE_H_
