#include "core/order/order_invariance.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include "eval/compiled_eval.h"

namespace fmtk {

Result<Structure> ExpandWithOrder(const Structure& s,
                                  const std::vector<Element>& permutation) {
  if (s.signature().FindRelation("<").has_value()) {
    return Status::InvalidArgument(
        "structure already interprets '<'; cannot expand");
  }
  if (permutation.size() != s.domain_size()) {
    return Status::InvalidArgument("permutation size does not match domain");
  }
  std::vector<bool> seen(s.domain_size(), false);
  for (Element e : permutation) {
    if (e >= s.domain_size() || seen[e]) {
      return Status::InvalidArgument("not a permutation of the domain");
    }
    seen[e] = true;
  }
  auto expanded_sig = std::make_shared<Signature>();
  for (const RelationSymbol& r : s.signature().relations()) {
    expanded_sig->AddRelation(r.name, r.arity);
  }
  expanded_sig->AddRelation("<", 2);
  for (const std::string& c : s.signature().constant_names()) {
    expanded_sig->AddConstant(c);
  }
  Structure out(expanded_sig, s.domain_size());
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    for (const Tuple& t : s.relation(r).tuples()) {
      out.AddTuple(r, t);
    }
  }
  const std::size_t less = *expanded_sig->FindRelation("<");
  for (std::size_t i = 0; i < permutation.size(); ++i) {
    for (std::size_t j = i + 1; j < permutation.size(); ++j) {
      out.AddTuple(less, {permutation[i], permutation[j]});
    }
  }
  for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
    std::optional<Element> value = s.constant(c);
    if (value.has_value()) {
      out.SetConstant(c, *value);
    }
  }
  return out;
}

std::vector<Element> IdentityOrder(const Structure& s) {
  std::vector<Element> order(s.domain_size());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

Result<OrderInvarianceReport> CheckOrderInvariance(
    const Structure& s, const Formula& sentence, std::mt19937_64& rng,
    std::size_t max_exhaustive, std::size_t samples) {
  OrderInvarianceReport report;
  std::vector<Element> first_order = IdentityOrder(s);
  FMTK_ASSIGN_OR_RETURN(Structure first, ExpandWithOrder(s, first_order));
  // Every order expansion shares the same (σ ∪ {<}) signature, so the
  // sentence compiles once and is rebound per expanded structure.
  FMTK_ASSIGN_OR_RETURN(CompiledFormula plan,
                        CompiledFormula::Compile(sentence, first.signature()));
  FMTK_ASSIGN_OR_RETURN(CompiledEvaluator first_eval,
                        CompiledEvaluator::Bind(plan, first));
  FMTK_ASSIGN_OR_RETURN(bool baseline, first_eval.Evaluate());
  report.value = baseline;
  report.orders_checked = 1;

  auto check_order =
      [&](const std::vector<Element>& order) -> Result<bool> {
    FMTK_ASSIGN_OR_RETURN(Structure expanded, ExpandWithOrder(s, order));
    FMTK_ASSIGN_OR_RETURN(CompiledEvaluator eval,
                          CompiledEvaluator::Bind(plan, expanded));
    FMTK_ASSIGN_OR_RETURN(bool verdict, eval.Evaluate());
    ++report.orders_checked;
    if (verdict != baseline) {
      report.invariant = false;
      report.witness = std::make_pair(first_order, order);
    }
    return verdict;
  };

  if (s.domain_size() <= max_exhaustive) {
    std::vector<Element> order = first_order;
    while (std::next_permutation(order.begin(), order.end())) {
      FMTK_ASSIGN_OR_RETURN(bool verdict, check_order(order));
      (void)verdict;
      if (!report.invariant) {
        return report;
      }
    }
    return report;
  }
  std::vector<Element> order = first_order;
  for (std::size_t i = 0; i < samples; ++i) {
    std::shuffle(order.begin(), order.end(), rng);
    FMTK_ASSIGN_OR_RETURN(bool verdict, check_order(order));
    (void)verdict;
    if (!report.invariant) {
      return report;
    }
  }
  return report;
}

}  // namespace fmtk
