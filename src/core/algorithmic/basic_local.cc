#include "core/algorithmic/basic_local.h"

#include <set>
#include <utility>

#include "core/algorithmic/local_formula.h"
#include "core/locality/neighborhood.h"
#include "eval/compiled_eval.h"
#include "logic/analysis.h"
#include "structures/graph.h"

namespace fmtk {

namespace {

Status ValidateSentence(const BasicLocalSentence& sentence) {
  std::set<std::string> free = FreeVariables(sentence.local);
  if (free.size() > 1 ||
      (free.size() == 1 && *free.begin() != sentence.variable)) {
    return Status::InvalidArgument(
        "the local formula must have at most the declared free variable " +
        sentence.variable);
  }
  if (sentence.count == 0) {
    return Status::InvalidArgument("witness count must be positive");
  }
  return Status::OK();
}

// Backtracking search for `need` elements of `candidates`, pairwise at
// distance > 2r. `dist[i][j]` gives pairwise distances between candidates.
bool FindScattered(const std::vector<std::vector<std::size_t>>& dist,
                   std::size_t threshold, std::size_t need,
                   std::size_t start, std::vector<std::size_t>& chosen) {
  if (chosen.size() == need) {
    return true;
  }
  for (std::size_t i = start; i < dist.size(); ++i) {
    bool compatible = true;
    for (std::size_t j : chosen) {
      if (dist[i][j] <= threshold) {
        compatible = false;
        break;
      }
    }
    if (!compatible) {
      continue;
    }
    chosen.push_back(i);
    if (FindScattered(dist, threshold, need, i + 1, chosen)) {
      return true;
    }
    chosen.pop_back();
  }
  return false;
}

}  // namespace

Result<std::vector<Element>> LocallySatisfyingElements(
    const Structure& s, const BasicLocalSentence& sentence) {
  FMTK_RETURN_IF_ERROR(ValidateSentence(sentence));
  Adjacency gaifman = GaifmanAdjacency(s);
  // ψ is checked once per element against its r-ball: compile it once
  // against the shared signature and rebind per neighborhood structure.
  FMTK_ASSIGN_OR_RETURN(
      CompiledFormula plan,
      CompiledFormula::Compile(sentence.local, s.signature()));
  std::vector<Element> satisfying;
  for (Element a = 0; a < s.domain_size(); ++a) {
    Neighborhood n = NeighborhoodOf(s, gaifman, {a}, sentence.radius);
    FMTK_ASSIGN_OR_RETURN(CompiledEvaluator eval,
                          CompiledEvaluator::Bind(plan, n.structure));
    FMTK_ASSIGN_OR_RETURN(
        bool holds,
        eval.Evaluate({{sentence.variable, n.distinguished[0]}}));
    if (holds) {
      satisfying.push_back(a);
    }
  }
  return satisfying;
}

Result<bool> EvaluateBasicLocal(const Structure& s,
                                const BasicLocalSentence& sentence) {
  FMTK_ASSIGN_OR_RETURN(std::vector<Element> candidates,
                        LocallySatisfyingElements(s, sentence));
  if (candidates.size() < sentence.count) {
    return false;
  }
  // Pairwise Gaifman distances between candidates.
  Adjacency gaifman = GaifmanAdjacency(s);
  std::vector<std::vector<std::size_t>> dist(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::vector<std::size_t> all = BfsDistances(gaifman, {candidates[i]});
    dist[i].resize(candidates.size());
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      dist[i][j] = all[candidates[j]];  // kUnreachable > any threshold.
    }
  }
  std::vector<std::size_t> chosen;
  return FindScattered(dist, 2 * sentence.radius, sentence.count, 0, chosen);
}

Result<Formula> BasicLocalToSentence(const BasicLocalSentence& sentence) {
  FMTK_RETURN_IF_ERROR(ValidateSentence(sentence));
  std::vector<std::string> witnesses;
  std::vector<Formula> parts;
  for (std::size_t i = 0; i < sentence.count; ++i) {
    witnesses.push_back("w" + std::to_string(i + 1));
  }
  for (std::size_t i = 0; i < sentence.count; ++i) {
    // ψ^{(r)}(w_i): rename the free variable, then relativize.
    Formula renamed = SubstituteVariable(sentence.local, sentence.variable,
                                         Term::Var(witnesses[i]));
    FMTK_ASSIGN_OR_RETURN(
        Formula local,
        RelativizeToBall(renamed, witnesses[i], sentence.radius));
    parts.push_back(std::move(local));
  }
  for (std::size_t i = 0; i < sentence.count; ++i) {
    for (std::size_t j = i + 1; j < sentence.count; ++j) {
      parts.push_back(DistanceGreaterFormula(witnesses[i], witnesses[j],
                                             2 * sentence.radius));
    }
  }
  return Formula::Exists(witnesses, Formula::And(std::move(parts)));
}

}  // namespace fmtk
