#include "core/algorithmic/basic_local.h"

#include <algorithm>
#include <set>
#include <utility>

#include "core/algorithmic/local_formula.h"
#include "core/locality/locality_engine.h"
#include "eval/compiled_eval.h"
#include "logic/analysis.h"

namespace fmtk {

namespace {

Status ValidateSentence(const BasicLocalSentence& sentence) {
  std::set<std::string> free = FreeVariables(sentence.local);
  if (free.size() > 1 ||
      (free.size() == 1 && *free.begin() != sentence.variable)) {
    return Status::InvalidArgument(
        "the local formula must have at most the declared free variable " +
        sentence.variable);
  }
  if (sentence.count == 0) {
    return Status::InvalidArgument("witness count must be positive");
  }
  return Status::OK();
}

// Backtracking search for `need` elements of the candidate set, pairwise at
// distance > 2r. `close[i][j]` says whether candidates i and j are within
// the threshold distance.
bool FindScattered(const std::vector<std::vector<bool>>& close,
                   std::size_t need, std::size_t start,
                   std::vector<std::size_t>& chosen) {
  if (chosen.size() == need) {
    return true;
  }
  for (std::size_t i = start; i < close.size(); ++i) {
    bool compatible = true;
    for (std::size_t j : chosen) {
      if (close[i][j]) {
        compatible = false;
        break;
      }
    }
    if (!compatible) {
      continue;
    }
    chosen.push_back(i);
    if (FindScattered(close, need, i + 1, chosen)) {
      return true;
    }
    chosen.pop_back();
  }
  return false;
}

// The S = { a : N_r(a) ⊨ ψ[a] } computation over a caller-owned engine, so
// EvaluateBasicLocal's scatter phase reuses the same Gaifman context.
Result<std::vector<Element>> LocallySatisfying(
    const LocalityEngine& engine, const BasicLocalSentence& sentence) {
  FMTK_RETURN_IF_ERROR(ValidateSentence(sentence));
  const Structure& s = engine.structure();
  // ψ is checked once per element against its r-ball: compile it once
  // against the shared signature and rebind per neighborhood structure.
  FMTK_ASSIGN_OR_RETURN(
      CompiledFormula plan,
      CompiledFormula::Compile(sentence.local, s.signature()));
  std::vector<Element> satisfying;
  for (Element a = 0; a < s.domain_size(); ++a) {
    Neighborhood n = engine.NeighborhoodAt({a}, sentence.radius);
    FMTK_ASSIGN_OR_RETURN(CompiledEvaluator eval,
                          CompiledEvaluator::Bind(plan, n.structure));
    FMTK_ASSIGN_OR_RETURN(
        bool holds,
        eval.Evaluate({{sentence.variable, n.distinguished[0]}}));
    if (holds) {
      satisfying.push_back(a);
    }
  }
  return satisfying;
}

}  // namespace

Result<std::vector<Element>> LocallySatisfyingElements(
    const Structure& s, const BasicLocalSentence& sentence) {
  LocalityEngine engine(s);
  return LocallySatisfying(engine, sentence);
}

Result<bool> EvaluateBasicLocal(const Structure& s,
                                const BasicLocalSentence& sentence) {
  LocalityEngine engine(s);
  FMTK_ASSIGN_OR_RETURN(std::vector<Element> candidates,
                        LocallySatisfying(engine, sentence));
  if (candidates.size() < sentence.count) {
    return false;
  }
  // Pairwise closeness between candidates: candidate j is within 2r of
  // candidate i iff it lies in i's 2r-ball — bounded BFS instead of a full
  // per-candidate distance pass.
  std::vector<std::vector<bool>> close(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::vector<Element> ball =
        engine.Ball({candidates[i]}, 2 * sentence.radius);
    close[i].resize(candidates.size());
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      close[i][j] =
          std::binary_search(ball.begin(), ball.end(), candidates[j]);
    }
  }
  std::vector<std::size_t> chosen;
  return FindScattered(close, sentence.count, 0, chosen);
}

Result<Formula> BasicLocalToSentence(const BasicLocalSentence& sentence) {
  FMTK_RETURN_IF_ERROR(ValidateSentence(sentence));
  std::vector<std::string> witnesses;
  std::vector<Formula> parts;
  for (std::size_t i = 0; i < sentence.count; ++i) {
    witnesses.push_back("w" + std::to_string(i + 1));
  }
  for (std::size_t i = 0; i < sentence.count; ++i) {
    // ψ^{(r)}(w_i): rename the free variable, then relativize.
    Formula renamed = SubstituteVariable(sentence.local, sentence.variable,
                                         Term::Var(witnesses[i]));
    FMTK_ASSIGN_OR_RETURN(
        Formula local,
        RelativizeToBall(renamed, witnesses[i], sentence.radius));
    parts.push_back(std::move(local));
  }
  for (std::size_t i = 0; i < sentence.count; ++i) {
    for (std::size_t j = i + 1; j < sentence.count; ++j) {
      parts.push_back(DistanceGreaterFormula(witnesses[i], witnesses[j],
                                             2 * sentence.radius));
    }
  }
  return Formula::Exists(witnesses, Formula::And(std::move(parts)));
}

}  // namespace fmtk
