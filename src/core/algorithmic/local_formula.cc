#include "core/algorithmic/local_formula.h"

#include <map>
#include <utility>
#include <vector>

#include "base/check.h"
#include "logic/analysis.h"

namespace fmtk {

namespace {

// Fresh midpoint variables are generated per nesting depth so the formula
// is safe under any later transformation.
Formula DistanceAtMost(const std::string& x, const std::string& y,
                       std::size_t d, std::size_t& counter) {
  if (d == 0) {
    return Formula::Equal(V(x), V(y));
  }
  if (d == 1) {
    return Formula::Or({Formula::Equal(V(x), V(y)),
                        Formula::Atom("E", {V(x), V(y)}),
                        Formula::Atom("E", {V(y), V(x)})});
  }
  const std::size_t half = d / 2;
  const std::size_t rest = d - half;
  std::string mid = "m" + std::to_string(counter++);
  Formula left = DistanceAtMost(x, mid, half, counter);
  Formula right = DistanceAtMost(mid, y, rest, counter);
  return Formula::Exists(mid,
                         Formula::And(std::move(left), std::move(right)));
}

}  // namespace

Formula DistanceAtMostFormula(const std::string& x, const std::string& y,
                              std::size_t d) {
  std::size_t counter = 0;
  return DistanceAtMost(x, y, d, counter);
}

Formula DistanceGreaterFormula(const std::string& x, const std::string& y,
                               std::size_t d) {
  return Formula::Not(DistanceAtMostFormula(x, y, d));
}

namespace {

// Guard formulas depend only on the quantified variable (center and radius
// are fixed per top-level call), and formulas share subtrees on copy — so a
// variable quantified many times gets one guard built and cheap copies
// after. The guard's midpoint variables are bound inside it, making reuse
// capture-safe.
using GuardCache = std::map<std::string, Formula>;

Result<Formula> Relativize(const Formula& f, const std::string& center,
                           std::size_t radius, GuardCache& guards) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      return f;
    case FormulaKind::kNot: {
      FMTK_ASSIGN_OR_RETURN(Formula inner,
                            Relativize(f.child(0), center, radius, guards));
      return Formula::Not(std::move(inner));
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      children.reserve(f.child_count());
      for (const Formula& c : f.children()) {
        FMTK_ASSIGN_OR_RETURN(Formula rc,
                              Relativize(c, center, radius, guards));
        children.push_back(std::move(rc));
      }
      return f.kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kImplies: {
      FMTK_ASSIGN_OR_RETURN(Formula a,
                            Relativize(f.child(0), center, radius, guards));
      FMTK_ASSIGN_OR_RETURN(Formula b,
                            Relativize(f.child(1), center, radius, guards));
      return Formula::Implies(std::move(a), std::move(b));
    }
    case FormulaKind::kIff: {
      FMTK_ASSIGN_OR_RETURN(Formula a,
                            Relativize(f.child(0), center, radius, guards));
      FMTK_ASSIGN_OR_RETURN(Formula b,
                            Relativize(f.child(1), center, radius, guards));
      return Formula::Iff(std::move(a), std::move(b));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists: {
      if (f.variable() == center) {
        return Status::InvalidArgument(
            "formula rebinds the center variable " + center);
      }
      FMTK_ASSIGN_OR_RETURN(Formula body,
                            Relativize(f.body(), center, radius, guards));
      auto guard_it = guards.find(f.variable());
      if (guard_it == guards.end()) {
        guard_it = guards
                       .emplace(f.variable(),
                                DistanceAtMostFormula(center, f.variable(),
                                                      radius))
                       .first;
      }
      Formula guard = guard_it->second;
      if (f.kind() == FormulaKind::kExists) {
        return Formula::Exists(f.variable(),
                               Formula::And(std::move(guard),
                                            std::move(body)));
      }
      if (f.kind() == FormulaKind::kCountExists) {
        return Formula::CountExists(
            f.count(), f.variable(),
            Formula::And(std::move(guard), std::move(body)));
      }
      return Formula::Forall(
          f.variable(), Formula::Implies(std::move(guard), std::move(body)));
    }
  }
  return Status::Internal("unreachable formula kind");
}

}  // namespace

Result<Formula> RelativizeToBall(const Formula& f, const std::string& center,
                                 std::size_t radius) {
  GuardCache guards;
  return Relativize(f, center, radius, guards);
}

}  // namespace fmtk
