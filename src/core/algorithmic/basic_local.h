#ifndef FMTK_CORE_ALGORITHMIC_BASIC_LOCAL_H_
#define FMTK_CORE_ALGORITHMIC_BASIC_LOCAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// A basic local sentence in Gaifman's normal form (Theorem 3.12):
///
///   ∃x1...∃xn ( ∧_i ψ^{(r)}(x_i)  ∧  ∧_{i≠j} d(x_i, x_j) > 2r )
///
/// — there are n points, pairwise 2r-scattered, each satisfying ψ inside
/// its own r-ball. Every FO sentence is a Boolean combination of these.
struct BasicLocalSentence {
  std::size_t count = 1;   // n witnesses.
  std::size_t radius = 0;  // r.
  Formula local;           // ψ with exactly one free variable...
  std::string variable;    // ...named here.
};

/// Semantic evaluation: compute S = { a : N_r(a) ⊨ ψ[a] } by evaluating ψ
/// on each neighborhood substructure, then search S for a 2r-scattered
/// subset of size n (backtracking over distance-filtered candidates).
Result<bool> EvaluateBasicLocal(const Structure& s,
                                const BasicLocalSentence& sentence);

/// The elements satisfying ψ locally (the S above) — useful for
/// diagnostics and the scattered-witness reports in benches.
Result<std::vector<Element>> LocallySatisfyingElements(
    const Structure& s, const BasicLocalSentence& sentence);

/// The equivalent plain FO sentence (graph vocabulary only: the scatter
/// constraints and the relativization need distance formulas over E). Its
/// evaluation by the generic model checker must agree with
/// EvaluateBasicLocal — the test suite checks this on structure panels.
Result<Formula> BasicLocalToSentence(const BasicLocalSentence& sentence);

}  // namespace fmtk

#endif  // FMTK_CORE_ALGORITHMIC_BASIC_LOCAL_H_
