#include "core/algorithmic/bounded_degree.h"

#include <algorithm>
#include <utility>

#include "eval/compiled_eval.h"
#include "logic/analysis.h"

namespace fmtk {

HanfParameters HanfParametersForRank(std::size_t rank) {
  HanfParameters params;
  std::size_t power = 1;  // 3^rank, capped to keep the radius sane.
  for (std::size_t i = 0; i < rank && power < (std::size_t{1} << 40); ++i) {
    power *= 3;
  }
  params.radius = (power - 1) / 2;
  params.threshold = rank + 1;
  return params;
}

Result<BoundedDegreeEvaluator> BoundedDegreeEvaluator::Create(
    Formula sentence, Options options) {
  if (!FreeVariables(sentence).empty()) {
    return Status::InvalidArgument(
        "bounded-degree evaluation takes a sentence (no free variables)");
  }
  HanfParameters params = HanfParametersForRank(QuantifierRank(sentence));
  const std::size_t radius = options.radius.value_or(params.radius);
  const std::size_t threshold = options.threshold.value_or(params.threshold);
  return BoundedDegreeEvaluator(std::move(sentence), radius, threshold,
                                options.parallel);
}

BoundedDegreeEvaluator::BoundedDegreeEvaluator(Formula sentence,
                                               std::size_t radius,
                                               std::size_t threshold,
                                               ParallelPolicy parallel)
    : sentence_(std::move(sentence)),
      radius_(radius),
      threshold_(threshold),
      parallel_(parallel) {}

Result<bool> BoundedDegreeEvaluator::Evaluate(const Structure& g) {
  LocalityEngine engine(g);
  std::map<NeighborhoodTypeIndex::TypeId, std::size_t> histogram =
      engine.TypeHistogram(radius_, index_, parallel_);
  locality_stats_ += engine.stats();
  std::vector<std::pair<std::size_t, std::size_t>> key;
  key.reserve(histogram.size());
  for (const auto& [type, count] : histogram) {
    key.emplace_back(type, std::min(count, threshold_));
  }
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  // Cache miss: fall back to full compiled model checking on this graph.
  FMTK_ASSIGN_OR_RETURN(CompiledEvaluator eval,
                        CompiledEvaluator::Compile(g, sentence_));
  FMTK_ASSIGN_OR_RETURN(bool verdict, eval.Evaluate());
  cache_.emplace(std::move(key), verdict);
  return verdict;
}

}  // namespace fmtk
