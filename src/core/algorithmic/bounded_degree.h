#ifndef FMTK_CORE_ALGORITHMIC_BOUNDED_DEGREE_H_
#define FMTK_CORE_ALGORITHMIC_BOUNDED_DEGREE_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "base/result.h"
#include "core/locality/locality_engine.h"
#include "core/locality/neighborhood.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

/// The Hanf parameters the toolkit uses for a sentence of quantifier rank
/// n: locality radius r = (3^n - 1) / 2 (the Hanf locality rank bound,
/// Libkin EFMT Thm 4.24 / FSV) and threshold m = n + 1.
///
/// The radius bound is the textbook one. The threshold default grows with
/// the rank only; the fully conservative FSV threshold also grows with the
/// size of the largest r-ball (i.e., with the degree bound). The default is
/// validated by the test suite on the families the experiments use; pass an
/// explicit Options::threshold of rank * max-ball-size + 1 when working
/// with unfamiliar bounded-degree classes.
struct HanfParameters {
  std::size_t radius = 0;
  std::size_t threshold = 1;
};
HanfParameters HanfParametersForRank(std::size_t rank);

/// Theorem 3.11's evaluator: FO sentences over bounded-degree graphs with
/// (amortized) linear-time data complexity.
///
/// The precomputation of the theorem — deciding the sentence for every
/// possible threshold-vector of N(k,r) — is materialized lazily: the
/// evaluator computes the structure's r-neighborhood-type histogram (one
/// linear pass with constant-size ball extraction under a degree bound),
/// clips counts at the threshold, and looks the vector up in its cache. A
/// hit answers without touching the sentence again (Theorem 3.10
/// guarantees structures with equal clipped vectors agree); a miss falls
/// back to the O(n^q) model checker once and caches the verdict for the
/// entire equivalence class.
class BoundedDegreeEvaluator {
 public:
  struct Options {
    /// Override the radius / threshold derived from the quantifier rank.
    std::optional<std::size_t> radius;
    std::optional<std::size_t> threshold;
    /// Fans the per-element histogram work out across threads; verdicts,
    /// type ids, and counters are identical to the sequential run.
    ParallelPolicy parallel;
  };

  /// `sentence` must be a sentence (no free variables).
  static Result<BoundedDegreeEvaluator> Create(Formula sentence,
                                               Options options = {});

  /// Evaluates the sentence on `g`.
  Result<bool> Evaluate(const Structure& g);

  std::size_t cache_hits() const { return hits_; }
  std::size_t cache_misses() const { return misses_; }
  std::size_t radius() const { return radius_; }
  std::size_t threshold() const { return threshold_; }

  /// Accumulated locality-engine counters across all Evaluate calls.
  const LocalityStats& locality_stats() const { return locality_stats_; }

 private:
  BoundedDegreeEvaluator(Formula sentence, std::size_t radius,
                         std::size_t threshold, ParallelPolicy parallel);

  Formula sentence_;
  std::size_t radius_;
  std::size_t threshold_;
  ParallelPolicy parallel_;
  LocalityStats locality_stats_;
  NeighborhoodTypeIndex index_;
  // Clipped histogram (type id -> min(count, threshold)) -> verdict.
  std::map<std::vector<std::pair<std::size_t, std::size_t>>, bool> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace fmtk

#endif  // FMTK_CORE_ALGORITHMIC_BOUNDED_DEGREE_H_
