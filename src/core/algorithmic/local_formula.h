#ifndef FMTK_CORE_ALGORITHMIC_LOCAL_FORMULA_H_
#define FMTK_CORE_ALGORITHMIC_LOCAL_FORMULA_H_

#include <cstddef>
#include <string>

#include "base/result.h"
#include "logic/formula.h"

namespace fmtk {

/// δ_{<=d}(x, y): Gaifman distance at most d, over the graph vocabulary
/// {E/2} (orientation forgotten, per the survey's definition of distance).
/// Built by halving, so quantifier rank is O(log d). Free variables are the
/// two given names.
Formula DistanceAtMostFormula(const std::string& x, const std::string& y,
                              std::size_t d);

/// d(x, y) > d as a formula: ¬δ_{<=d}.
Formula DistanceGreaterFormula(const std::string& x, const std::string& y,
                               std::size_t d);

/// Relativizes φ to the radius-r ball around `center`: every quantifier
/// ∃y ψ becomes ∃y (δ_{<=r}(center, y) ∧ ψ), and ∀y ψ becomes
/// ∀y (δ_{<=r}(center, y) → ψ). The result is an r-local formula in
/// Gaifman's sense (Theorem 3.12's building block). Graph vocabulary only.
/// Fails if φ rebinds the center variable.
Result<Formula> RelativizeToBall(const Formula& f, const std::string& center,
                                 std::size_t radius);

}  // namespace fmtk

#endif  // FMTK_CORE_ALGORITHMIC_LOCAL_FORMULA_H_
