#include "core/interp/reductions.h"

#include "base/check.h"
#include "logic/parser.h"
#include "structures/graph.h"

namespace fmtk {

namespace {

Formula Parse(const char* text) {
  Result<Formula> f = ParseFormula(text);
  FMTK_CHECK(f.ok()) << "builtin formula failed to parse: " << text << ": "
                     << f.status().ToString();
  return *f;
}

// Definable predicates over the order vocabulary, written out once:
//   succ(x,y)   : y is the immediate successor of x
//   first(x)    : x is the minimum
//   last(x)     : x is the maximum
// The E-definitions below inline them.
constexpr char kSecondSuccessor[] =
    "exists z. (x < z & !(exists w. x < w & w < z))"
    " & (z < y & !(exists w. z < w & w < y))";

constexpr char kLastToSecond[] =
    "!(exists w. x < w)"                                 // x is last
    " & (exists f. !(exists w. w < f)"                   // f is first
    "   & (f < y & !(exists w. f < w & w < y)))";        // y = succ(first)

constexpr char kPenultimateToFirst[] =
    "(exists l. (x < l & !(exists w. x < w & w < l))"    // l = succ(x)...
    "   & !(exists w. l < w))"                           // ...and l is last
    " & !(exists w. w < y)";                             // y is first

constexpr char kLastToFirst[] =
    "!(exists w. x < w) & !(exists w. w < y)";

}  // namespace

Interpretation EvenToConnectivity() {
  Interpretation interp(Signature::Graph());
  Formula e = Formula::Or(
      {Parse(kSecondSuccessor), Parse(kLastToSecond),
       Parse(kPenultimateToFirst)});
  Status s = interp.DefineRelation("E", std::move(e), {"x", "y"});
  FMTK_CHECK(s.ok()) << s.ToString();
  return interp;
}

Interpretation EvenToAcyclicity() {
  Interpretation interp(Signature::Graph());
  Formula e =
      Formula::Or(Parse(kSecondSuccessor), Parse(kLastToFirst));
  Status s = interp.DefineRelation("E", std::move(e), {"x", "y"});
  FMTK_CHECK(s.ok()) << s.ToString();
  return interp;
}

Interpretation SymmetricClosure() {
  Interpretation interp(Signature::Graph());
  Status s = interp.DefineRelation("E", Parse("E(x,y) | E(y,x)"),
                                   {"x", "y"});
  FMTK_CHECK(s.ok()) << s.ToString();
  return interp;
}

Result<bool> ConnectivityViaTransitiveClosure(const Structure& graph) {
  Interpretation symmetrize = SymmetricClosure();
  FMTK_ASSIGN_OR_RETURN(Structure sym, symmetrize.Apply(graph));
  FMTK_ASSIGN_OR_RETURN(std::size_t rel, sym.RelationIndex("E"));
  Relation closure = TransitiveClosure(sym, rel);
  const std::size_t n = graph.domain_size();
  for (Element a = 0; a < n; ++a) {
    for (Element b = 0; b < n; ++b) {
      if (a != b && !closure.Contains({a, b})) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace fmtk
