#include "core/interp/interpretation.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "base/check.h"
#include "eval/query_eval.h"
#include "logic/analysis.h"

namespace fmtk {

Interpretation::Interpretation(
    std::shared_ptr<const Signature> output_signature)
    : output_signature_(std::move(output_signature)) {
  FMTK_CHECK(output_signature_ != nullptr) << "null output signature";
  FMTK_CHECK(output_signature_->constant_count() == 0)
      << "interpretations with output constants are not supported";
  definitions_.resize(output_signature_->relation_count());
}

Status Interpretation::DefineRelation(const std::string& name, Formula f,
                                      std::vector<std::string> variables) {
  std::optional<std::size_t> index = output_signature_->FindRelation(name);
  if (!index.has_value()) {
    return Status::SignatureMismatch("unknown output relation: " + name);
  }
  if (variables.size() != output_signature_->relation(*index).arity) {
    return Status::InvalidArgument(
        "variable list does not match the arity of " + name);
  }
  std::set<std::string> unique(variables.begin(), variables.end());
  if (unique.size() != variables.size()) {
    return Status::InvalidArgument("output variables must be distinct");
  }
  for (const std::string& v : FreeVariables(f)) {
    if (unique.find(v) == unique.end()) {
      return Status::InvalidArgument("free variable " + v +
                                     " of the defining formula is not an "
                                     "output variable");
    }
  }
  definitions_[*index] = RelationDef{std::move(f), std::move(variables)};
  return Status::OK();
}

void Interpretation::SetDomainFormula(Formula f, std::string variable) {
  domain_ = RelationDef{std::move(f), {std::move(variable)}};
}

Result<Structure> Interpretation::Apply(const Structure& input) const {
  for (std::size_t r = 0; r < definitions_.size(); ++r) {
    if (!definitions_[r].has_value()) {
      return Status::InvalidArgument(
          "output relation " + output_signature_->relation(r).name +
          " has no defining formula");
    }
  }
  // Output domain.
  std::vector<Element> domain_elements;
  if (domain_.has_value()) {
    FMTK_ASSIGN_OR_RETURN(
        Relation rows,
        EvaluateQuery(input, domain_->formula, domain_->variables));
    for (const Tuple& t : rows.tuples()) {
      domain_elements.push_back(t[0]);
    }
    std::sort(domain_elements.begin(), domain_elements.end());
  } else {
    domain_elements.resize(input.domain_size());
    for (Element e = 0; e < input.domain_size(); ++e) {
      domain_elements[e] = e;
    }
  }
  std::unordered_map<Element, Element> renumber;
  renumber.reserve(domain_elements.size());
  for (std::size_t i = 0; i < domain_elements.size(); ++i) {
    renumber.emplace(domain_elements[i], static_cast<Element>(i));
  }
  Structure output(output_signature_, domain_elements.size());
  for (std::size_t r = 0; r < definitions_.size(); ++r) {
    const RelationDef& def = *definitions_[r];
    FMTK_ASSIGN_OR_RETURN(Relation rows,
                          EvaluateQuery(input, def.formula, def.variables));
    for (const Tuple& t : rows.tuples()) {
      Tuple mapped;
      mapped.reserve(t.size());
      bool keep = true;
      for (Element e : t) {
        auto it = renumber.find(e);
        if (it == renumber.end()) {
          keep = false;  // Component outside the output domain.
          break;
        }
        mapped.push_back(it->second);
      }
      if (keep) {
        output.AddTuple(r, std::move(mapped));
      }
    }
  }
  return output;
}

}  // namespace fmtk
