#ifndef FMTK_CORE_INTERP_INTERPRETATION_H_
#define FMTK_CORE_INTERP_INTERPRETATION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

/// A (one-dimensional) FO interpretation: an FO-definable structure
/// transformation, the formal device behind the survey's §3.3 "tricks".
/// Each output relation is defined by a formula over the input signature;
/// an optional domain formula restricts the output domain.
///
/// If Q is not FO-definable but I(·) is an interpretation with
/// Q(I(A)) = P(A), then P is not FO-definable either — interpretations
/// compose with FO, which is why one reduction (EVEN over orders) kills
/// connectivity, acyclicity and transitive closure in one stroke.
class Interpretation {
 public:
  /// `output_signature` must be relational without constants.
  explicit Interpretation(std::shared_ptr<const Signature> output_signature);

  /// Defines output relation `name` by φ(vars): a tuple d̄ is in the output
  /// iff the input satisfies φ[vars/d̄]. `vars` must list exactly arity many
  /// distinct variables covering φ's free variables.
  Status DefineRelation(const std::string& name, Formula f,
                        std::vector<std::string> variables);

  /// Restricts the output domain to elements satisfying δ(variable);
  /// omitted = the full input domain. Output elements are renumbered in
  /// increasing input order.
  void SetDomainFormula(Formula f, std::string variable);

  const Signature& output_signature() const { return *output_signature_; }

  /// Applies the interpretation. Every output relation must have been
  /// defined.
  Result<Structure> Apply(const Structure& input) const;

 private:
  struct RelationDef {
    Formula formula;
    std::vector<std::string> variables;
  };

  std::shared_ptr<const Signature> output_signature_;
  std::vector<std::optional<RelationDef>> definitions_;
  std::optional<RelationDef> domain_;
};

}  // namespace fmtk

#endif  // FMTK_CORE_INTERP_INTERPRETATION_H_
