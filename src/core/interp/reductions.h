#ifndef FMTK_CORE_INTERP_REDUCTIONS_H_
#define FMTK_CORE_INTERP_REDUCTIONS_H_

#include "base/result.h"
#include "core/interp/interpretation.h"
#include "structures/structure.h"

namespace fmtk {

/// The §3.3 trick reductions, exactly as the survey draws them.

/// EVEN(<) ≤ CONN: from a linear order, build the graph with an edge from
/// each element to its 2nd successor, plus an edge from the last element to
/// the 2nd element and from the penultimate element to the first. The
/// result is connected iff the order has odd size (and has two components
/// otherwise). Defined for orders of size >= 2.
Interpretation EvenToConnectivity();

/// EVEN(<) ≤ ACYCL: the 2nd-successor edges plus one back edge from the
/// last element to the first. Acyclic iff the order has even size.
Interpretation EvenToAcyclicity();

/// CONN ≤ TC, step 1: the symmetric closure E(x,y) ∨ E(y,x) of a graph.
/// Composing with transitive closure and the completeness test decides
/// connectivity — so TC is not FO-definable either.
Interpretation SymmetricClosure();

/// The full CONN-via-TC pipeline of the survey: symmetrize, take the
/// transitive closure, check completeness (all x != y pairs present).
/// Semantically equal to BooleanQuery::Connectivity() for n >= 1.
Result<bool> ConnectivityViaTransitiveClosure(const Structure& graph);

}  // namespace fmtk

#endif  // FMTK_CORE_INTERP_REDUCTIONS_H_
