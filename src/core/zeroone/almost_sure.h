#ifndef FMTK_CORE_ZEROONE_ALMOST_SURE_H_
#define FMTK_CORE_ZEROONE_ALMOST_SURE_H_

#include <cstddef>
#include <vector>

#include "base/result.h"
#include "logic/formula.h"

namespace fmtk {

/// The k-th extension axioms for directed graphs (with loops): for every
/// "row pattern" — which of E(z, x_i), E(x_i, z) hold for each of k
/// pairwise-distinct named points, plus E(z, z) — there is a fresh z
/// realizing exactly that pattern. Every extension axiom is almost surely
/// true, and together they axiomatize the almost-sure theory (the theory of
/// the random graph), which is how the 0-1 law is proved.
struct ExtensionPattern {
  /// Per named point: (edge z -> x_i, edge x_i -> z).
  std::vector<std::pair<bool, bool>> rows;
  bool loop = false;  // E(z, z).
};

/// Builds the extension axiom for `pattern` over the graph vocabulary:
/// ∀x1..xk (distinct -> ∃z (z ≠ x_i ∧ exact pattern)).
Formula ExtensionAxiom(const ExtensionPattern& pattern);

/// Decides whether a graph sentence is ALMOST SURELY TRUE — μ(φ) = 1 — or
/// almost surely false (the 0-1 law guarantees one of the two for FO).
///
/// Exact decision procedure, no sampling: the sentence is evaluated in the
/// countable random directed graph by structural recursion. A state is the
/// full atomic diagram of the named points; ∃z ranges over the named points
/// plus every one-point diagram extension — all of which the extension
/// axioms realize. Doubly exponential in the quantifier rank; meant for
/// the survey's example sentences. Graph vocabulary {E/2} only.
Result<bool> AlmostSurelyTrue(const Formula& sentence);

}  // namespace fmtk

#endif  // FMTK_CORE_ZEROONE_ALMOST_SURE_H_
