#include "core/zeroone/mu.h"

#include <utility>
#include <vector>

#include "base/check.h"
#include "eval/compiled_eval.h"
#include "logic/analysis.h"
#include "structures/generators.h"
#include "structures/structure.h"

namespace fmtk {

namespace {

// All tuples over {0..n-1}^arity in odometer order (the bit layout of the
// exact enumeration).
std::vector<Tuple> AllTuplesOf(std::size_t n, std::size_t arity) {
  std::vector<Tuple> out;
  if (arity == 0) {
    out.push_back({});
    return out;
  }
  if (n == 0) {
    return out;
  }
  Tuple t(arity, 0);
  while (true) {
    out.push_back(t);
    std::size_t pos = arity;
    while (pos > 0) {
      --pos;
      if (t[pos] + 1 < n) {
        ++t[pos];
        break;
      }
      t[pos] = 0;
      if (pos == 0) {
        return out;
      }
    }
  }
}

}  // namespace

Result<MuEstimate> ExactMu(const Formula& sentence,
                           std::shared_ptr<const Signature> signature,
                           std::size_t n, std::size_t max_bits) {
  FMTK_CHECK(signature != nullptr) << "null signature";
  if (!FreeVariables(sentence).empty()) {
    return Status::InvalidArgument("mu takes a sentence");
  }
  // Slots: one bit per potential tuple, across relations.
  std::vector<std::pair<std::size_t, Tuple>> slots;  // (relation, tuple)
  for (std::size_t r = 0; r < signature->relation_count(); ++r) {
    for (Tuple& t : AllTuplesOf(n, signature->relation(r).arity)) {
      slots.emplace_back(r, std::move(t));
    }
  }
  if (slots.size() > max_bits) {
    return Status::Unsupported(
        "exact enumeration needs 2^" + std::to_string(slots.size()) +
        " structures; raise max_bits to force it");
  }
  if (signature->constant_count() > 0 && n == 0) {
    return Status::InvalidArgument(
        "constants cannot be interpreted over an empty domain");
  }
  // Constant assignments multiply the count.
  std::vector<Element> constants(signature->constant_count(), 0);
  // The sentence is fixed across the 2^bits structures: compile it once and
  // rebind the plan to each enumerated structure.
  FMTK_ASSIGN_OR_RETURN(CompiledFormula plan,
                        CompiledFormula::Compile(sentence, *signature));
  MuEstimate estimate;
  estimate.exact = true;
  const std::size_t num_masks = std::size_t{1} << slots.size();
  while (true) {
    for (std::size_t mask = 0; mask < num_masks; ++mask) {
      Structure s(signature, n);
      for (std::size_t b = 0; b < slots.size(); ++b) {
        if ((mask >> b) & 1) {
          s.AddTuple(slots[b].first, slots[b].second);
        }
      }
      for (std::size_t c = 0; c < constants.size(); ++c) {
        s.SetConstant(c, constants[c]);
      }
      FMTK_ASSIGN_OR_RETURN(CompiledEvaluator eval,
                            CompiledEvaluator::Bind(plan, s));
      FMTK_ASSIGN_OR_RETURN(bool holds, eval.Evaluate());
      ++estimate.total;
      if (holds) {
        ++estimate.satisfied;
      }
    }
    // Advance the constant odometer.
    std::size_t pos = constants.size();
    bool done = true;
    while (pos > 0) {
      --pos;
      if (constants[pos] + 1 < n) {
        ++constants[pos];
        done = false;
        break;
      }
      constants[pos] = 0;
    }
    if (done) {
      break;
    }
  }
  estimate.value = estimate.total == 0
                       ? 0.0
                       : static_cast<double>(estimate.satisfied) /
                             static_cast<double>(estimate.total);
  return estimate;
}

Result<MuEstimate> MonteCarloMu(const Formula& sentence,
                                std::shared_ptr<const Signature> signature,
                                std::size_t n, std::size_t samples,
                                std::mt19937_64& rng) {
  FMTK_CHECK(signature != nullptr) << "null signature";
  if (!FreeVariables(sentence).empty()) {
    return Status::InvalidArgument("mu takes a sentence");
  }
  FMTK_ASSIGN_OR_RETURN(CompiledFormula plan,
                        CompiledFormula::Compile(sentence, *signature));
  MuEstimate estimate;
  estimate.exact = false;
  for (std::size_t i = 0; i < samples; ++i) {
    Structure s = MakeRandomStructure(signature, n, 0.5, rng);
    FMTK_ASSIGN_OR_RETURN(CompiledEvaluator eval,
                          CompiledEvaluator::Bind(plan, s));
    FMTK_ASSIGN_OR_RETURN(bool holds, eval.Evaluate());
    ++estimate.total;
    if (holds) {
      ++estimate.satisfied;
    }
  }
  estimate.value = estimate.total == 0
                       ? 0.0
                       : static_cast<double>(estimate.satisfied) /
                             static_cast<double>(estimate.total);
  return estimate;
}

}  // namespace fmtk
