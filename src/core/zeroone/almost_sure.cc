#include "core/zeroone/almost_sure.h"

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "base/check.h"
#include "logic/analysis.h"

namespace fmtk {

Formula ExtensionAxiom(const ExtensionPattern& pattern) {
  const std::size_t k = pattern.rows.size();
  std::vector<std::string> xs;
  for (std::size_t i = 0; i < k; ++i) {
    xs.push_back("x" + std::to_string(i + 1));
  }
  std::vector<Formula> body;
  for (std::size_t i = 0; i < k; ++i) {
    body.push_back(Formula::Not(Formula::Equal(V("z"), V(xs[i]))));
    Formula in = Formula::Atom("E", {V("z"), V(xs[i])});
    Formula out = Formula::Atom("E", {V(xs[i]), V("z")});
    body.push_back(pattern.rows[i].first ? in : Formula::Not(in));
    body.push_back(pattern.rows[i].second ? out : Formula::Not(out));
  }
  Formula loop = Formula::Atom("E", {V("z"), V("z")});
  body.push_back(pattern.loop ? loop : Formula::Not(loop));
  Formula exists_z = Formula::Exists("z", Formula::And(std::move(body)));
  if (k == 0) {
    return exists_z;
  }
  Formula guarded =
      Formula::Implies(Formula::AllDistinct(xs), std::move(exists_z));
  return Formula::Forall(xs, std::move(guarded));
}

namespace {

// The named-points diagram: edges[i][j] for i,j < size (loops included).
class Diagram {
 public:
  std::size_t size() const { return n_; }

  bool edge(std::size_t i, std::size_t j) const { return edges_[i][j]; }

  // Adds a point with the given row: to[i] = edge(new, i),
  // from[i] = edge(i, new), loop = edge(new, new).
  void Push(const std::vector<bool>& to, const std::vector<bool>& from,
            bool loop) {
    for (std::size_t i = 0; i < n_; ++i) {
      edges_[i].push_back(from[i]);
    }
    std::vector<bool> row = to;
    row.push_back(loop);
    edges_.push_back(std::move(row));
    ++n_;
  }

  void Pop() {
    FMTK_CHECK(n_ > 0) << "pop on empty diagram";
    edges_.pop_back();
    --n_;
    for (std::size_t i = 0; i < n_; ++i) {
      edges_[i].pop_back();
    }
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::vector<bool>> edges_;
};

class RandomGraphEvaluator {
 public:
  Result<bool> Eval(const Formula& f,
                    std::map<std::string, std::size_t>& env) {
    switch (f.kind()) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kAtom: {
        if (f.relation_name() != "E" || f.terms().size() != 2) {
          return Status::Unsupported(
              "almost-sure decision supports the graph vocabulary {E/2}");
        }
        FMTK_ASSIGN_OR_RETURN(std::size_t a, Lookup(f.terms()[0], env));
        FMTK_ASSIGN_OR_RETURN(std::size_t b, Lookup(f.terms()[1], env));
        return diagram_.edge(a, b);
      }
      case FormulaKind::kEqual: {
        FMTK_ASSIGN_OR_RETURN(std::size_t a, Lookup(f.terms()[0], env));
        FMTK_ASSIGN_OR_RETURN(std::size_t b, Lookup(f.terms()[1], env));
        return a == b;
      }
      case FormulaKind::kNot: {
        FMTK_ASSIGN_OR_RETURN(bool inner, Eval(f.child(0), env));
        return !inner;
      }
      case FormulaKind::kAnd: {
        for (const Formula& c : f.children()) {
          FMTK_ASSIGN_OR_RETURN(bool v, Eval(c, env));
          if (!v) {
            return false;
          }
        }
        return true;
      }
      case FormulaKind::kOr: {
        for (const Formula& c : f.children()) {
          FMTK_ASSIGN_OR_RETURN(bool v, Eval(c, env));
          if (v) {
            return true;
          }
        }
        return false;
      }
      case FormulaKind::kImplies: {
        FMTK_ASSIGN_OR_RETURN(bool a, Eval(f.child(0), env));
        if (!a) {
          return true;
        }
        return Eval(f.child(1), env);
      }
      case FormulaKind::kIff: {
        FMTK_ASSIGN_OR_RETURN(bool a, Eval(f.child(0), env));
        FMTK_ASSIGN_OR_RETURN(bool b, Eval(f.child(1), env));
        return a == b;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        // TryWitnesses already returns the truth value: it searches for an
        // ∃-witness / ∀-counterexample and folds the polarity in.
        const bool is_exists = f.kind() == FormulaKind::kExists;
        return TryWitnesses(f, env, is_exists);
      }
      case FormulaKind::kCountExists:
        // In the random graph each realizable 1-type over the named points
        // is realized infinitely often, so a single fresh witness already
        // yields >= k of them; otherwise only named points can witness.
        return CountWitnesses(f, env);
    }
    return Status::Internal("unreachable formula kind");
  }

 private:
  Result<std::size_t> Lookup(const Term& t,
                             const std::map<std::string, std::size_t>& env) {
    if (t.is_constant()) {
      return Status::Unsupported(
          "almost-sure decision does not support constants");
    }
    auto it = env.find(t.name);
    if (it == env.end()) {
      return Status::InvalidArgument("unbound variable " + t.name);
    }
    return it->second;
  }

  // Returns is_exists when some witness makes the body == is_exists (i.e.,
  // finds an ∃-witness / a ∀-counterexample); otherwise !is_exists.
  // Witness candidates: every named point, then every possible one-point
  // diagram extension (all realized in the random graph by the extension
  // axioms).
  Result<bool> TryWitnesses(const Formula& f,
                            std::map<std::string, std::size_t>& env,
                            bool is_exists) {
    // Save shadowed binding.
    auto it = env.find(f.variable());
    std::optional<std::size_t> shadowed;
    if (it != env.end()) {
      shadowed = it->second;
    }
    auto restore = [&]() {
      if (shadowed.has_value()) {
        env[f.variable()] = *shadowed;
      } else {
        env.erase(f.variable());
      }
    };
    // Existing points.
    for (std::size_t p = 0; p < diagram_.size(); ++p) {
      env[f.variable()] = p;
      Result<bool> v = Eval(f.body(), env);
      if (!v.ok()) {
        restore();
        return v;
      }
      if (*v == is_exists) {
        restore();
        return is_exists;
      }
    }
    // Fresh points: every row pattern over the current diagram.
    const std::size_t n = diagram_.size();
    const std::size_t combos = std::size_t{1} << (2 * n + 1);
    for (std::size_t mask = 0; mask < combos; ++mask) {
      std::vector<bool> to(n);
      std::vector<bool> from(n);
      for (std::size_t i = 0; i < n; ++i) {
        to[i] = (mask >> (2 * i)) & 1;
        from[i] = (mask >> (2 * i + 1)) & 1;
      }
      const bool loop = (mask >> (2 * n)) & 1;
      diagram_.Push(to, from, loop);
      env[f.variable()] = n;
      Result<bool> v = Eval(f.body(), env);
      diagram_.Pop();
      if (!v.ok()) {
        restore();
        return v;
      }
      if (*v == is_exists) {
        restore();
        return is_exists;
      }
    }
    restore();
    return !is_exists;
  }

  // ∃^{>=k}: named witnesses are counted individually; any satisfying
  // fresh extension contributes infinitely many witnesses at once.
  Result<bool> CountWitnesses(const Formula& f,
                              std::map<std::string, std::size_t>& env) {
    auto it = env.find(f.variable());
    std::optional<std::size_t> shadowed;
    if (it != env.end()) {
      shadowed = it->second;
    }
    auto restore = [&]() {
      if (shadowed.has_value()) {
        env[f.variable()] = *shadowed;
      } else {
        env.erase(f.variable());
      }
    };
    std::size_t named_witnesses = 0;
    for (std::size_t p = 0; p < diagram_.size(); ++p) {
      env[f.variable()] = p;
      Result<bool> v = Eval(f.body(), env);
      if (!v.ok()) {
        restore();
        return v;
      }
      if (*v) {
        ++named_witnesses;
      }
    }
    const std::size_t n = diagram_.size();
    const std::size_t combos = std::size_t{1} << (2 * n + 1);
    for (std::size_t mask = 0; mask < combos; ++mask) {
      std::vector<bool> to(n);
      std::vector<bool> from(n);
      for (std::size_t i = 0; i < n; ++i) {
        to[i] = (mask >> (2 * i)) & 1;
        from[i] = (mask >> (2 * i + 1)) & 1;
      }
      const bool loop = (mask >> (2 * n)) & 1;
      diagram_.Push(to, from, loop);
      env[f.variable()] = n;
      Result<bool> v = Eval(f.body(), env);
      diagram_.Pop();
      if (!v.ok()) {
        restore();
        return v;
      }
      if (*v) {
        restore();
        return true;  // Infinitely many witnesses of this fresh type.
      }
    }
    restore();
    return named_witnesses >= f.count();
  }

  Diagram diagram_;
};

}  // namespace

Result<bool> AlmostSurelyTrue(const Formula& sentence) {
  if (!FreeVariables(sentence).empty()) {
    return Status::InvalidArgument(
        "almost-sure decision takes a sentence (no free variables)");
  }
  RandomGraphEvaluator evaluator;
  std::map<std::string, std::size_t> env;
  return evaluator.Eval(sentence, env);
}

}  // namespace fmtk
