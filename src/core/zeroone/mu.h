#ifndef FMTK_CORE_ZEROONE_MU_H_
#define FMTK_CORE_ZEROONE_MU_H_

#include <cstddef>
#include <memory>
#include <random>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/signature.h"

namespace fmtk {

/// μ_n(Q): the fraction of the labelled structures on {0,...,n-1} over a
/// relational signature that satisfy the sentence — the quantity whose limit
/// the 0-1 law constrains.
struct MuEstimate {
  double value = 0.0;
  std::size_t satisfied = 0;
  std::size_t total = 0;     // Structures counted (samples for Monte Carlo).
  bool exact = false;
};

/// Exact μ_n by enumerating all 2^(Σ n^arity) structures (constants multiply
/// by n^#constants). Returns Unsupported when more than `max_bits` tuple
/// bits would have to be enumerated (default 2^24 structures).
Result<MuEstimate> ExactMu(const Formula& sentence,
                           std::shared_ptr<const Signature> signature,
                           std::size_t n, std::size_t max_bits = 24);

/// Monte-Carlo μ_n: samples uniformly random structures (every tuple
/// present independently with probability 1/2 — the uniform measure on
/// labelled structures).
Result<MuEstimate> MonteCarloMu(const Formula& sentence,
                                std::shared_ptr<const Signature> signature,
                                std::size_t n, std::size_t samples,
                                std::mt19937_64& rng);

}  // namespace fmtk

#endif  // FMTK_CORE_ZEROONE_MU_H_
