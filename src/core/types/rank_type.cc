#include "core/types/rank_type.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "base/check.h"
#include "base/hash.h"
#include "core/types/atom_enumeration.h"

namespace fmtk {

namespace {

// Memoization key for a single TypeOf computation: (rank, tuple).
struct RankTupleKey {
  std::size_t rank;
  Tuple tuple;

  bool operator==(const RankTupleKey&) const = default;
};

struct RankTupleKeyHash {
  std::size_t operator()(const RankTupleKey& k) const {
    std::size_t seed = k.rank;
    for (Element e : k.tuple) {
      HashCombine(seed, e);
    }
    return seed;
  }
};

}  // namespace

RankTypeIndex::TypeId RankTypeIndex::InternAtomic(
    std::size_t tuple_length, std::vector<std::uint8_t> bits) {
  auto key = std::make_pair(tuple_length, bits);
  auto it = atomic_ids_.find(key);
  if (it != atomic_ids_.end()) {
    return it->second;
  }
  TypeId id = next_id_++;
  atomic_ids_.emplace(std::move(key), id);
  atomic_info_.emplace(id, AtomicInfo{tuple_length, std::move(bits)});
  return id;
}

RankTypeIndex::TypeId RankTypeIndex::InternComposite(
    std::size_t rank, TypeId atomic, std::vector<TypeId> extensions) {
  std::vector<TypeId> key;
  key.reserve(extensions.size() + 2);
  key.push_back(static_cast<TypeId>(rank));
  key.push_back(atomic);
  key.insert(key.end(), extensions.begin(), extensions.end());
  auto it = composite_ids_.find(key);
  if (it != composite_ids_.end()) {
    return it->second;
  }
  TypeId id = next_id_++;
  composite_ids_.emplace(std::move(key), id);
  composite_info_.emplace(id,
                          CompositeInfo{rank, atomic, std::move(extensions)});
  return id;
}

RankTypeIndex::TypeId RankTypeIndex::AtomicTypeOf(const Structure& s,
                                                  const Tuple& tuple) {
  // Extended tuple: the tuple followed by the interpreted constants.
  // Interpretedness markers are appended to the bits so structures that
  // interpret different constants get different types.
  const std::size_t num_constants = s.signature().constant_count();
  Tuple extended = tuple;
  std::vector<std::uint8_t> interpreted(num_constants, 0);
  for (std::size_t c = 0; c < num_constants; ++c) {
    std::optional<Element> value = s.constant(c);
    if (value.has_value()) {
      interpreted[c] = 1;
      extended.push_back(*value);
    } else {
      // Placeholder; atoms touching it evaluate to false deterministically.
      extended.push_back(0);
    }
  }
  const std::size_t length = extended.size();
  std::vector<AtomSlot> slots = EnumerateAtomSlots(s.signature(), length);
  std::vector<std::uint8_t> bits;
  bits.reserve(slots.size() + num_constants);
  auto position_live = [&](std::size_t p) {
    return p < tuple.size() || interpreted[p - tuple.size()] != 0;
  };
  for (const AtomSlot& slot : slots) {
    bool value = false;
    bool live = true;
    for (std::size_t p : slot.positions) {
      if (!position_live(p)) {
        live = false;
        break;
      }
    }
    if (live) {
      if (slot.kind == AtomSlot::Kind::kRelation) {
        Tuple atom_tuple;
        atom_tuple.reserve(slot.positions.size());
        for (std::size_t p : slot.positions) {
          atom_tuple.push_back(extended[p]);
        }
        value = s.relation(slot.relation_index).Contains(atom_tuple);
      } else {
        value = extended[slot.positions[0]] == extended[slot.positions[1]];
      }
    }
    bits.push_back(value ? 1 : 0);
  }
  bits.insert(bits.end(), interpreted.begin(), interpreted.end());
  return InternAtomic(tuple.size(), std::move(bits));
}

RankTypeIndex::TypeId RankTypeIndex::TypeOf(const Structure& s,
                                            const Tuple& tuple,
                                            std::size_t rank) {
  for (Element e : tuple) {
    FMTK_CHECK(e < s.domain_size()) << "tuple element outside domain";
  }
  std::unordered_map<RankTupleKey, TypeId, RankTupleKeyHash> cache;
  // Iterative-deepening via explicit recursion (lambda).
  auto compute = [&](auto&& self, const Tuple& t,
                     std::size_t k) -> TypeId {
    RankTupleKey key{k, t};
    auto it = cache.find(key);
    if (it != cache.end()) {
      return it->second;
    }
    TypeId id;
    if (k == 0) {
      id = AtomicTypeOf(s, t);
    } else {
      TypeId atomic = AtomicTypeOf(s, t);
      std::set<TypeId> extensions;
      Tuple extended = t;
      extended.push_back(0);
      for (Element a = 0; a < s.domain_size(); ++a) {
        extended.back() = a;
        extensions.insert(self(self, extended, k - 1));
      }
      id = InternComposite(
          k, atomic,
          std::vector<TypeId>(extensions.begin(), extensions.end()));
    }
    cache.emplace(std::move(key), id);
    return id;
  };
  return compute(compute, tuple, rank);
}

bool RankTypeIndex::EquivalentUpToRank(const Structure& a, const Structure& b,
                                       std::size_t rank) {
  if (!(a.signature() == b.signature())) {
    return false;
  }
  return TypeOf(a, {}, rank) == TypeOf(b, {}, rank);
}

std::optional<std::size_t> RankTypeIndex::DistinguishingRank(
    const Structure& a, const Structure& b, std::size_t max_rank) {
  for (std::size_t k = 0; k <= max_rank; ++k) {
    if (!EquivalentUpToRank(a, b, k)) {
      return k;
    }
  }
  return std::nullopt;
}

bool RankTypeIndex::IsAtomic(TypeId id) const {
  return atomic_info_.find(id) != atomic_info_.end();
}

const RankTypeIndex::AtomicInfo& RankTypeIndex::atomic_info(TypeId id) const {
  auto it = atomic_info_.find(id);
  FMTK_CHECK(it != atomic_info_.end()) << "not an atomic type id";
  return it->second;
}

const RankTypeIndex::CompositeInfo& RankTypeIndex::composite_info(
    TypeId id) const {
  auto it = composite_info_.find(id);
  FMTK_CHECK(it != composite_info_.end()) << "not a composite type id";
  return it->second;
}

}  // namespace fmtk
