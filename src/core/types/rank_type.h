#ifndef FMTK_CORE_TYPES_RANK_TYPE_H_
#define FMTK_CORE_TYPES_RANK_TYPE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// Interns rank-k types τ_k(A, ā) — the Fraïssé/Hintikka back-and-forth
/// types:
///
///   τ_0(A, ā)  = the atomic type of ā (which atoms and equalities hold
///                among ā's components and the interpreted constants),
///   τ_k(A, ā)  = (τ_0(A, ā), { τ_{k-1}(A, ā·a) : a ∈ A }).
///
/// The fundamental theorem (the survey's "A ∼Gn B iff A ≡n B") becomes
/// computable through types: A, ā and B, b̄ agree on all FO formulas of
/// quantifier rank ≤ k iff τ_k(A, ā) = τ_k(B, b̄). Ids are comparable across
/// structures as long as they come from the same index instance.
///
/// Cost: computing τ_k(A, ā) touches every extension tuple, i.e.
/// O(Σ_{i≤k} |A|^i) atomic-type computations — exact but exponential in the
/// rank, which is precisely the blow-up the survey warns about.
class RankTypeIndex {
 public:
  using TypeId = std::uint32_t;

  RankTypeIndex() = default;

  /// τ_rank(s, tuple). Tuple elements must lie in the domain.
  TypeId TypeOf(const Structure& s, const Tuple& tuple, std::size_t rank);

  /// A ≡rank B (sentences of quantifier rank ≤ rank).
  bool EquivalentUpToRank(const Structure& a, const Structure& b,
                          std::size_t rank);

  /// The least rank at which `a` and `b` disagree on some sentence, i.e. the
  /// number of rounds the spoiler needs; nullopt when a ≡max_rank b.
  std::optional<std::size_t> DistinguishingRank(const Structure& a,
                                                const Structure& b,
                                                std::size_t max_rank);

  // --- Introspection for Hintikka-formula construction ---------------------

  /// True when `id` is an atomic (rank-0) type.
  bool IsAtomic(TypeId id) const;

  /// For an atomic type: the tuple length and the atom truth bits in
  /// canonical atom order (see AtomEnumeration in hintikka.cc).
  struct AtomicInfo {
    std::size_t tuple_length = 0;
    std::vector<std::uint8_t> bits;
  };
  const AtomicInfo& atomic_info(TypeId id) const;

  /// For a composite (rank >= 1) type: its rank, its atomic part, and the
  /// sorted distinct set of one-extension types.
  struct CompositeInfo {
    std::size_t rank = 0;
    TypeId atomic = 0;
    std::vector<TypeId> extensions;
  };
  const CompositeInfo& composite_info(TypeId id) const;

  /// Total number of interned types (for diagnostics).
  std::size_t size() const { return next_id_; }

 private:
  TypeId InternAtomic(std::size_t tuple_length, std::vector<std::uint8_t> bits);
  TypeId InternComposite(std::size_t rank, TypeId atomic,
                         std::vector<TypeId> extensions);

  TypeId AtomicTypeOf(const Structure& s, const Tuple& tuple);

  TypeId next_id_ = 0;
  // Atomic side.
  std::map<std::pair<std::size_t, std::vector<std::uint8_t>>, TypeId>
      atomic_ids_;
  // Composite side, keyed by (rank, atomic, extensions).
  std::map<std::vector<TypeId>, TypeId> composite_ids_;
  // Reverse tables, indexed by id.
  std::map<TypeId, AtomicInfo> atomic_info_;
  std::map<TypeId, CompositeInfo> composite_info_;
};

}  // namespace fmtk

#endif  // FMTK_CORE_TYPES_RANK_TYPE_H_
