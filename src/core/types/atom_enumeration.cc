#include "core/types/atom_enumeration.h"

namespace fmtk {

std::vector<AtomSlot> EnumerateAtomSlots(const Signature& signature,
                                         std::size_t extended_length) {
  std::vector<AtomSlot> slots;
  for (std::size_t r = 0; r < signature.relation_count(); ++r) {
    const std::size_t arity = signature.relation(r).arity;
    if (arity == 0) {
      slots.push_back({AtomSlot::Kind::kRelation, r, {}});
      continue;
    }
    if (extended_length == 0) {
      continue;  // No positions to fill.
    }
    std::vector<std::size_t> positions(arity, 0);
    while (true) {
      slots.push_back({AtomSlot::Kind::kRelation, r, positions});
      std::size_t pos = arity;
      bool done = false;
      while (pos > 0) {
        --pos;
        if (positions[pos] + 1 < extended_length) {
          ++positions[pos];
          break;
        }
        positions[pos] = 0;
        if (pos == 0) {
          done = true;
        }
      }
      if (done) {
        break;
      }
    }
  }
  for (std::size_t i = 0; i < extended_length; ++i) {
    for (std::size_t j = i + 1; j < extended_length; ++j) {
      slots.push_back({AtomSlot::Kind::kEquality, 0, {i, j}});
    }
  }
  return slots;
}

}  // namespace fmtk
