#ifndef FMTK_CORE_TYPES_ATOM_ENUMERATION_H_
#define FMTK_CORE_TYPES_ATOM_ENUMERATION_H_

#include <cstddef>
#include <vector>

#include "structures/signature.h"

namespace fmtk {

/// One slot in the canonical enumeration of atomic facts about an (extended)
/// tuple of length L: either R(p_1,...,p_r) for positions p_i < L, or an
/// equality p_i = p_j with i < j. The enumeration fixes the bit layout of
/// atomic types (rank_type) and the atom order of Hintikka formulas, so both
/// must use this single definition.
struct AtomSlot {
  enum class Kind { kRelation, kEquality };
  Kind kind = Kind::kRelation;
  std::size_t relation_index = 0;          // kRelation only.
  std::vector<std::size_t> positions;      // arity many / exactly two.
};

/// All slots for tuples of length `extended_length` over `signature`:
/// relations in signature order, each with position tuples in odometer
/// order, followed by all equalities (i, j) with i < j.
std::vector<AtomSlot> EnumerateAtomSlots(const Signature& signature,
                                         std::size_t extended_length);

}  // namespace fmtk

#endif  // FMTK_CORE_TYPES_ATOM_ENUMERATION_H_
