#ifndef FMTK_CORE_GAMES_GAME_ENGINE_H_
#define FMTK_CORE_GAMES_GAME_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "base/bitset.h"
#include "base/flat_hash.h"
#include "base/result.h"
#include "structures/isomorphism.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// Search counters shared by the EF and pebble game solvers. Cumulative
/// across queries on one solver (like nodes_explored always was).
struct GameStats {
  /// Game positions actually expanded by the minimax search. Transposition
  /// hits and moves rejected before expansion are counted separately.
  std::uint64_t nodes_explored = 0;
  /// Positions answered from the transposition table.
  std::uint64_t table_hits = 0;
  /// Moves skipped without expanding a child: symmetry-collapsed spoiler
  /// moves and duplicator responses, replays of pinned elements, and
  /// responses rejected by the incremental partial-isomorphism check.
  std::uint64_t moves_pruned = 0;
};

namespace game_engine {

inline constexpr Element kUnmapped = static_cast<Element>(-1);

/// occ[r][e] = pointers into relation r's tuple store for the tuples
/// containing element e (each tuple listed once per distinct element).
/// Pointers stay valid while the structure is unmodified.
using OccurrenceLists = std::vector<std::vector<std::vector<const Tuple*>>>;
OccurrenceLists BuildOccurrenceLists(const Structure& s);

/// Hash of AtomicInvariantOf(s, e) per element: equal for elements matched
/// by any isomorphism, comparable across structures over one signature.
std::vector<std::size_t> ElementSignatures(const Structure& s);

/// signature hash -> bitset of the elements carrying it. The duplicator
/// response loops walk the spoiler element's bucket first (word-packed,
/// ascending) instead of re-scanning the whole domain per move, then the
/// complement via a bucket-membership test.
using SignatureBuckets = FlatU64Map<ElementBitset>;
SignatureBuckets BuildSignatureBuckets(const std::vector<std::size_t>& sigs);

/// Partitions the domain into *swap classes*: e and f share a class iff the
/// transposition (e f) is an automorphism of `s` and neither element
/// interprets a constant. Transpositions conjugate — (a c) = (a b)(b c)(a b)
/// — so this is a genuine equivalence relation. Elements interpreting
/// constants get singleton classes. Returns class ids in [0, class count);
/// `num_classes` (when non-null) receives the count.
std::vector<std::uint32_t> SwapClasses(const Structure& s,
                                       const OccurrenceLists& occ,
                                       std::uint32_t* num_classes = nullptr);

/// Deterministic per-pair 64-bit hash codes (Zobrist table) for positions of
/// a game on structures of the given domain sizes. Position hashes are the
/// *sum* of the codes of the distinct pairs on the board, so they are
/// insensitive to play order and cheap to update incrementally. (Sum, not
/// xor: the pebble game also needs "multiset with duplicates collapsed"
/// semantics, and additive hashing composes with reference counting.)
class ZobristTable {
 public:
  ZobristTable(std::size_t a_domain, std::size_t b_domain);

  std::uint64_t PairCode(Element x, Element y) const {
    return codes_[static_cast<std::size_t>(x) * b_domain_ + y];
  }

 private:
  std::size_t b_domain_;
  std::vector<std::uint64_t> codes_;
};

/// Packs (position hash, rounds remaining) into one well-mixed 64-bit
/// transposition-table key. Rounds participate in full width — the seed
/// solver's one-char key famously wrapped at 256 rounds.
std::uint64_t TranspositionKey(std::uint64_t position_hash,
                               std::size_t rounds);

/// A game position (partial map A → B) maintained incrementally: O(1)
/// pinned-element lookup, reference counts for replayed pairs, a running
/// Zobrist hash, and pair insertion that validates only the tuples touching
/// the new pair (everything else was checked when it was added).
///
/// Nullary relations are invisible to the incremental check (no tuple
/// contains a new element); solvers must pre-check them once via
/// NullaryRelationsAgree. Copyable — parallel workers copy the root
/// position and diverge.
class PositionState {
 public:
  /// All referenced objects must outlive the state.
  PositionState(const Structure& a, const Structure& b,
                const OccurrenceLists* occ_a, const OccurrenceLists* occ_b,
                const ZobristTable* zobrist);

  /// Adds one instance of the pair (x, y) if the extended map is still a
  /// partial isomorphism; returns false (state unchanged) otherwise.
  /// Replaying an existing pair always succeeds and only bumps its count.
  bool TryAdd(Element x, Element y);

  /// Removes one instance of (x, y); the pair must be present.
  void Remove(Element x, Element y);

  bool PinnedInA(Element x) const { return a_map_[x] != kUnmapped; }
  bool PinnedInB(Element y) const { return b_map_[y] != kUnmapped; }
  /// kUnmapped when x is not pinned.
  Element ImageOf(Element x) const { return a_map_[x]; }
  Element PreimageOf(Element y) const { return b_map_[y]; }
  /// How many instances of the pair containing x (on the A side) are on the
  /// board; 0 when x is unpinned.
  std::uint32_t CountOfA(Element x) const { return a_count_[x]; }

  /// Order-insensitive hash of the distinct-pair set.
  std::uint64_t hash() const { return hash_; }
  std::size_t distinct_pairs() const { return distinct_; }

 private:
  bool NewPairRespectsRelations(Element x, Element y) const;

  const Structure* a_;
  const Structure* b_;
  const OccurrenceLists* occ_a_;
  const OccurrenceLists* occ_b_;
  const ZobristTable* zobrist_;
  std::vector<Element> a_map_;   // a_map_[x] = image of x, or kUnmapped
  std::vector<Element> b_map_;   // b_map_[y] = preimage of y, or kUnmapped
  std::vector<std::uint32_t> a_count_;  // instances of x's pair
  std::vector<std::uint32_t> b_count_;  // instances of y's pair
  std::uint64_t hash_ = 0;
  std::size_t distinct_ = 0;
};

/// True when every nullary (arity-0) relation holds in `a` iff it holds in
/// `b`. A mismatch breaks *every* position, including the empty one; the
/// incremental check above cannot see it, so solvers test this once.
bool NullaryRelationsAgree(const Structure& a, const Structure& b);

/// Resolves a requested thread count against the number of work items:
/// 0 means hardware_concurrency, and never more threads than items.
inline std::size_t ResolveThreadCount(std::size_t requested,
                                      std::size_t num_items) {
  std::size_t threads =
      requested != 0 ? requested : std::thread::hardware_concurrency();
  threads = std::max<std::size_t>(threads, 1);
  return std::min(threads, num_items);
}

/// Fans `num_moves` first-round spoiler moves across `num_threads` workers
/// (strided assignment). make_ctx() builds one worker's search context,
/// eval_move(ctx, i) decides whether move i is survivable for the
/// duplicator, merge_ctx(ctx) folds the worker's table and counters back
/// into the caller — it runs under the fan-out mutex. Workers stop early
/// once any move is refuted or any error is recorded; completed subgame
/// results are still merged. Returns true iff every move evaluated
/// survivable; the first recorded error wins over a racing refutation.
template <typename Ctx, typename MakeCtx, typename EvalMove,
          typename MergeCtx>
Result<bool> FanOutFirstRound(std::size_t num_moves, std::size_t num_threads,
                              MakeCtx&& make_ctx, EvalMove&& eval_move,
                              MergeCtx&& merge_ctx) {
  std::atomic<bool> spoiler_wins{false};
  std::atomic<bool> failed{false};
  std::mutex mu;
  Status first_error = Status::OK();
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Ctx ctx = make_ctx();
      for (std::size_t j = t; j < num_moves; j += num_threads) {
        if (spoiler_wins.load(std::memory_order_relaxed) ||
            failed.load(std::memory_order_relaxed)) {
          break;
        }
        Result<bool> survivable = eval_move(ctx, j);
        if (!survivable.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          if (first_error.ok()) {
            first_error = survivable.status();
          }
          failed.store(true, std::memory_order_relaxed);
          break;
        }
        if (!*survivable) {
          spoiler_wins.store(true, std::memory_order_relaxed);
          break;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      merge_ctx(ctx);
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  if (!first_error.ok()) {
    return first_error;
  }
  return !spoiler_wins.load(std::memory_order_relaxed);
}

}  // namespace game_engine
}  // namespace fmtk

#endif  // FMTK_CORE_GAMES_GAME_ENGINE_H_
