#ifndef FMTK_CORE_GAMES_HINTIKKA_H_
#define FMTK_CORE_GAMES_HINTIKKA_H_

#include <optional>

#include "base/result.h"
#include "core/types/rank_type.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

/// Builds the Hintikka formula φ_τ(x1,...,xm) of an interned type τ: the
/// canonical rank-k formula with
///
///   B ⊨ φ_τ[b̄]  iff  τ_k(B, b̄) = τ.
///
/// For a rank-0 type this is the full atomic diagram of the tuple; for rank
/// k it conjoins "every one-extension type is realized" (∃ of each child
/// formula) with "no other extension type occurs" (∀ over the disjunction).
/// The formula uses variables x1..xm free and xm+1.. bound; quantifier rank
/// is exactly the type's rank. Formulas grow exponentially in rank — the
/// blow-up Theorem 3.1's discussion attributes to game arguments — so use
/// small ranks.
///
/// The signature must match the one the type was computed against.
/// Uninterpreted constants are not supported here (signatures without
/// constants always work).
Result<Formula> HintikkaFormula(const RankTypeIndex& index,
                                RankTypeIndex::TypeId type,
                                const Signature& signature);

/// A sentence of quantifier rank ≤ `rank` with a ⊨ φ and b ⊭ φ, when the
/// structures are distinguishable at that rank; nullopt when a ≡rank b.
/// This is the constructive content of "A ∼Gn B iff A ≡n B": the spoiler's
/// winning strategy turned into a concrete separating sentence.
Result<std::optional<Formula>> DistinguishingSentence(const Structure& a,
                                                      const Structure& b,
                                                      std::size_t rank,
                                                      RankTypeIndex& index);

}  // namespace fmtk

#endif  // FMTK_CORE_GAMES_HINTIKKA_H_
