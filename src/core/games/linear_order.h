#ifndef FMTK_CORE_GAMES_LINEAR_ORDER_H_
#define FMTK_CORE_GAMES_LINEAR_ORDER_H_

#include <cstddef>
#include <map>
#include <tuple>

namespace fmtk {

/// Theorem 3.1 of the survey, in its sharp form (Libkin, *Elements of Finite
/// Model Theory*, Thm 3.6): L_m ≡n L_k iff m = k or both m, k >= 2^n - 1.
/// Closed-form predicate — the "library of winning strategies" entry for
/// linear orders.
bool LinearOrdersEquivalent(std::size_t m, std::size_t k, std::size_t n);

/// The same game value computed by the composition method: a position in
/// the game on two orders splits them into left/right intervals, and the
/// duplicator wins iff she can answer every split with recursively
/// n-1-equivalent interval pairs. Memoized interval DP, O(m²k²n) worst
/// case — polynomial, unlike the general EF search. Used to cross-validate
/// both the closed form and the general solver.
bool LinearOrdersEquivalentByComposition(std::size_t m, std::size_t k,
                                         std::size_t n);

/// The composition method with a memo that persists across queries — use
/// this for sweeps (thresholds, tables); repeated interval subgames are
/// shared between calls.
class LinearOrderGameTable {
 public:
  LinearOrderGameTable() = default;

  /// Duplicator survives n rounds on L_m vs L_k?
  bool Equivalent(std::size_t m, std::size_t k, std::size_t n);

  std::size_t memo_size() const { return memo_.size(); }

 private:
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, bool> memo_;
};

}  // namespace fmtk

#endif  // FMTK_CORE_GAMES_LINEAR_ORDER_H_
