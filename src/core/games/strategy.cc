#include "core/games/strategy.h"

#include <algorithm>
#include <vector>

#include "base/check.h"

namespace fmtk {

namespace {

// The image of `element` under the position map (or preimage, when
// in_a == false side lookups are swapped by the caller).
std::optional<Element> MirrorLookup(const PartialMap& position, bool in_a,
                                    Element element) {
  for (const auto& [x, y] : position) {
    if ((in_a ? x : y) == element) {
      return in_a ? y : x;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Element> SetMirrorStrategy::Respond(
    const Structure& a, const Structure& b, const PartialMap& position,
    bool spoiler_in_a, Element element, std::size_t rounds_remaining) {
  (void)rounds_remaining;
  std::optional<Element> mirrored =
      MirrorLookup(position, spoiler_in_a, element);
  if (mirrored.has_value()) {
    return mirrored;
  }
  // Any fresh element of the other structure.
  const Structure& other = spoiler_in_a ? b : a;
  for (Element d = 0; d < other.domain_size(); ++d) {
    if (!MirrorLookup(position, !spoiler_in_a, d).has_value()) {
      return d;
    }
  }
  return std::nullopt;  // The other structure ran out of elements.
}

std::optional<Element> OrderGapStrategy::Respond(
    const Structure& a, const Structure& b, const PartialMap& position,
    bool spoiler_in_a, Element element, std::size_t rounds_remaining) {
  std::optional<Element> mirrored =
      MirrorLookup(position, spoiler_in_a, element);
  if (mirrored.has_value()) {
    return mirrored;
  }
  // Orient so the spoiler played in X and we answer in Y.
  const Structure& x_struct = spoiler_in_a ? a : b;
  const Structure& y_struct = spoiler_in_a ? b : a;
  // Pinned points, sorted on the X side; the map must be order-preserving
  // (elements of MakeLinearOrder are numbered in order).
  std::vector<std::pair<Element, Element>> pins;
  pins.reserve(position.size());
  for (const auto& [pa, pb] : position) {
    pins.emplace_back(spoiler_in_a ? pa : pb, spoiler_in_a ? pb : pa);
  }
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  for (std::size_t i = 1; i < pins.size(); ++i) {
    if (pins[i].second <= pins[i - 1].second) {
      return std::nullopt;  // Not order-preserving: invariant broken.
    }
  }
  // Locate the spoiler's interval (l, r) with virtual endpoints -1 and n.
  long long l = -1;
  long long r = static_cast<long long>(x_struct.domain_size());
  long long l_image = -1;
  long long r_image = static_cast<long long>(y_struct.domain_size());
  for (const auto& [px, py] : pins) {
    if (px < element && static_cast<long long>(px) > l) {
      l = px;
      l_image = py;
    }
    if (px > element && static_cast<long long>(px) < r) {
      r = px;
      r_image = py;
    }
  }
  const long long s = element;
  const long long dl = s - l;          // Distance to the left pin.
  const long long dr = r - s;          // Distance to the right pin.
  const long long threshold =
      rounds_remaining >= 62 ? (1LL << 62)
                             : (1LL << rounds_remaining);
  long long d;
  if (dl <= threshold) {
    d = l_image + dl;                  // Copy the small left gap exactly.
    if (d >= r_image) {
      return std::nullopt;
    }
  } else if (dr <= threshold) {
    d = r_image - dr;                  // Copy the small right gap exactly.
    if (d <= l_image) {
      return std::nullopt;
    }
  } else {
    // Both gaps large: split the target interval in half, leaving both
    // sides >= 2^k when the interval invariant holds.
    d = l_image + (r_image - l_image) / 2;
    if (d <= l_image || d >= r_image) {
      return std::nullopt;
    }
  }
  return static_cast<Element>(d);
}

namespace {

Result<bool> Explore(const Structure& a, const Structure& b,
                     DuplicatorStrategy& strategy, PartialMap& position,
                     std::size_t rounds, std::uint64_t& nodes,
                     std::uint64_t max_nodes) {
  if (++nodes > max_nodes) {
    return Status::ResourceExhausted("strategy verification node cap hit");
  }
  if (!IsPartialIsomorphism(a, b, position)) {
    return false;
  }
  if (rounds == 0) {
    return true;
  }
  for (int side = 0; side < 2; ++side) {
    const bool in_a = (side == 0);
    const Structure& from = in_a ? a : b;
    for (Element s = 0; s < from.domain_size(); ++s) {
      std::optional<Element> d =
          strategy.Respond(a, b, position, in_a, s, rounds - 1);
      if (!d.has_value()) {
        return false;  // The strategy resigned.
      }
      position.emplace_back(in_a ? s : *d, in_a ? *d : s);
      Result<bool> survives =
          Explore(a, b, strategy, position, rounds - 1, nodes, max_nodes);
      position.pop_back();
      if (!survives.ok() || !*survives) {
        return survives;
      }
    }
  }
  return true;
}

}  // namespace

Result<bool> StrategySurvives(const Structure& a, const Structure& b,
                              std::size_t rounds,
                              DuplicatorStrategy& strategy,
                              std::uint64_t max_nodes,
                              std::uint64_t* nodes_explored) {
  FMTK_CHECK(a.signature() == b.signature())
      << "strategy verification requires equal signatures";
  PartialMap position;
  for (std::size_t c = 0; c < a.signature().constant_count(); ++c) {
    std::optional<Element> ca = a.constant(c);
    std::optional<Element> cb = b.constant(c);
    if (ca.has_value() != cb.has_value()) {
      return false;
    }
    if (ca.has_value()) {
      position.emplace_back(*ca, *cb);
    }
  }
  std::uint64_t nodes = 0;
  Result<bool> verdict =
      Explore(a, b, strategy, position, rounds, nodes, max_nodes);
  if (nodes_explored != nullptr) {
    *nodes_explored = nodes;
  }
  return verdict;
}

}  // namespace fmtk
