#include "core/games/game_engine.h"

#include <algorithm>

#include "base/check.h"
#include "base/hash.h"

namespace fmtk {
namespace game_engine {

namespace {

// splitmix64: Weyl increment plus the shared Mix64 finalizer. Fixed seed
// keeps Zobrist codes (and hence table behavior) reproducible run to run.
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  return Mix64(state);
}

// Is the transposition (u v) an automorphism of s? It suffices to check the
// tuples containing u or v: all other tuples are fixed pointwise.
bool SwapIsAutomorphism(const Structure& s, const OccurrenceLists& occ,
                        Element u, Element v) {
  for (std::size_t r = 0; r < occ.size(); ++r) {
    for (const std::vector<const Tuple*>* lists :
         {&occ[r][u], &occ[r][v]}) {
      for (const Tuple* t : *lists) {
        Tuple swapped = *t;
        for (Element& e : swapped) {
          e = e == u ? v : (e == v ? u : e);
        }
        if (!s.relation(r).Contains(swapped)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

OccurrenceLists BuildOccurrenceLists(const Structure& s) {
  OccurrenceLists occ(s.signature().relation_count());
  for (std::size_t r = 0; r < occ.size(); ++r) {
    occ[r].resize(s.domain_size());
    for (const Tuple& t : s.relation(r).tuples()) {
      Tuple sorted = t;
      std::sort(sorted.begin(), sorted.end());
      Element last = kUnmapped;
      for (Element e : sorted) {
        if (e != last) {
          occ[r][e].push_back(&t);
          last = e;
        }
      }
    }
  }
  return occ;
}

std::vector<std::size_t> ElementSignatures(const Structure& s) {
  std::vector<std::size_t> sig(s.domain_size());
  for (Element e = 0; e < s.domain_size(); ++e) {
    std::size_t h = 0x243f6a8885a308d3ULL;
    for (std::size_t v : AtomicInvariantOf(s, e)) {
      HashCombine(h, v);
    }
    sig[e] = h;
  }
  return sig;
}

SignatureBuckets BuildSignatureBuckets(const std::vector<std::size_t>& sigs) {
  SignatureBuckets buckets;
  for (std::size_t e = 0; e < sigs.size(); ++e) {
    auto [bucket, inserted] = buckets.TryEmplace(sigs[e]);
    if (inserted) {
      bucket->Reset(sigs.size());
    }
    bucket->Set(e);
  }
  return buckets;
}

std::vector<std::uint32_t> SwapClasses(const Structure& s,
                                       const OccurrenceLists& occ,
                                       std::uint32_t* num_classes) {
  const std::size_t n = s.domain_size();
  std::vector<bool> is_constant(n, false);
  for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
    if (std::optional<Element> e = s.constant(c)) {
      is_constant[*e] = true;
    }
  }
  const std::vector<std::size_t> sig = ElementSignatures(s);
  std::vector<std::uint32_t> cls(n, 0);
  std::vector<Element> representatives;  // class id -> first element
  for (Element e = 0; e < n; ++e) {
    std::uint32_t assigned = static_cast<std::uint32_t>(-1);
    if (!is_constant[e]) {
      for (std::size_t c = 0; c < representatives.size(); ++c) {
        const Element rep = representatives[c];
        if (is_constant[rep] || sig[rep] != sig[e]) {
          continue;
        }
        if (SwapIsAutomorphism(s, occ, rep, e)) {
          assigned = static_cast<std::uint32_t>(c);
          break;
        }
      }
    }
    if (assigned == static_cast<std::uint32_t>(-1)) {
      assigned = static_cast<std::uint32_t>(representatives.size());
      representatives.push_back(e);
    }
    cls[e] = assigned;
  }
  if (num_classes != nullptr) {
    *num_classes = static_cast<std::uint32_t>(representatives.size());
  }
  return cls;
}

ZobristTable::ZobristTable(std::size_t a_domain, std::size_t b_domain)
    : b_domain_(b_domain), codes_(a_domain * b_domain) {
  std::uint64_t state = 0x8d1f5c1e0d3a2b4cULL;
  for (std::uint64_t& code : codes_) {
    code = SplitMix64(state);
  }
}

std::uint64_t TranspositionKey(std::uint64_t position_hash,
                               std::size_t rounds) {
  std::uint64_t state =
      position_hash + 0xbf58476d1ce4e5b9ULL * (rounds + 1);
  return SplitMix64(state);
}

PositionState::PositionState(const Structure& a, const Structure& b,
                             const OccurrenceLists* occ_a,
                             const OccurrenceLists* occ_b,
                             const ZobristTable* zobrist)
    : a_(&a),
      b_(&b),
      occ_a_(occ_a),
      occ_b_(occ_b),
      zobrist_(zobrist),
      a_map_(a.domain_size(), kUnmapped),
      b_map_(b.domain_size(), kUnmapped),
      a_count_(a.domain_size(), 0),
      b_count_(b.domain_size(), 0) {}

bool PositionState::NewPairRespectsRelations(Element x, Element y) const {
  // Any tuple made fully mapped by adding (x, y) contains x (resp. its
  // mirror contains y), so checking the occurrence lists of x and y is
  // complete. Tuples already fully mapped were validated earlier.
  for (std::size_t r = 0; r < occ_a_->size(); ++r) {
    for (const Tuple* t : (*occ_a_)[r][x]) {
      Tuple mapped;
      mapped.reserve(t->size());
      bool complete = true;
      for (Element e : *t) {
        const Element img = e == x ? y : a_map_[e];
        if (img == kUnmapped) {
          complete = false;
          break;
        }
        mapped.push_back(img);
      }
      if (complete && !b_->relation(r).Contains(mapped)) {
        return false;
      }
    }
    for (const Tuple* t : (*occ_b_)[r][y]) {
      Tuple mapped;
      mapped.reserve(t->size());
      bool complete = true;
      for (Element e : *t) {
        const Element pre = e == y ? x : b_map_[e];
        if (pre == kUnmapped) {
          complete = false;
          break;
        }
        mapped.push_back(pre);
      }
      if (complete && !a_->relation(r).Contains(mapped)) {
        return false;
      }
    }
  }
  return true;
}

bool PositionState::TryAdd(Element x, Element y) {
  if (x >= a_map_.size() || y >= b_map_.size()) {
    return false;
  }
  if (a_map_[x] != kUnmapped) {
    if (a_map_[x] != y) {
      return false;  // Not a function.
    }
    ++a_count_[x];
    ++b_count_[y];
    return true;
  }
  if (b_map_[y] != kUnmapped) {
    return false;  // Not injective.
  }
  if (!NewPairRespectsRelations(x, y)) {
    return false;
  }
  a_map_[x] = y;
  b_map_[y] = x;
  a_count_[x] = 1;
  b_count_[y] = 1;
  hash_ += zobrist_->PairCode(x, y);
  ++distinct_;
  return true;
}

void PositionState::Remove(Element x, Element y) {
  FMTK_CHECK(x < a_map_.size() && a_map_[x] == y)
      << "Remove of a pair that is not on the board";
  --a_count_[x];
  --b_count_[y];
  if (a_count_[x] == 0) {
    a_map_[x] = kUnmapped;
    b_map_[y] = kUnmapped;
    hash_ -= zobrist_->PairCode(x, y);
    --distinct_;
  }
}

bool NullaryRelationsAgree(const Structure& a, const Structure& b) {
  const std::size_t num_relations = std::min(
      a.signature().relation_count(), b.signature().relation_count());
  for (std::size_t r = 0; r < num_relations; ++r) {
    if (a.signature().relation(r).arity != 0) {
      continue;
    }
    if ((a.relation(r).size() > 0) != (b.relation(r).size() > 0)) {
      return false;
    }
  }
  return true;
}

}  // namespace game_engine
}  // namespace fmtk
