#include "core/games/hintikka.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/types/atom_enumeration.h"

namespace fmtk {

namespace {

std::string VarName(std::size_t index) {
  return "x" + std::to_string(index + 1);
}

// Term for extended position p: variable for tuple positions, constant
// symbol for the appended constant positions.
Result<Term> TermForPosition(std::size_t p, std::size_t tuple_length,
                             const Signature& signature) {
  if (p < tuple_length) {
    return Term::Var(VarName(p));
  }
  const std::size_t c = p - tuple_length;
  if (c >= signature.constant_count()) {
    return Status::InvalidArgument(
        "type was computed against a different signature (position " +
        std::to_string(p) + " out of range)");
  }
  return Term::Const(signature.constant_name(c));
}

class Builder {
 public:
  Builder(const RankTypeIndex& index, const Signature& signature)
      : index_(index), signature_(signature) {}

  Result<Formula> Build(RankTypeIndex::TypeId type) {
    auto it = cache_.find(type);
    if (it != cache_.end()) {
      return it->second;
    }
    Result<Formula> built = index_.IsAtomic(type) ? BuildAtomic(type)
                                                  : BuildComposite(type);
    if (built.ok()) {
      cache_.emplace(type, *built);
    }
    return built;
  }

 private:
  Result<Formula> BuildAtomic(RankTypeIndex::TypeId type) {
    const RankTypeIndex::AtomicInfo& info = index_.atomic_info(type);
    const std::size_t m = info.tuple_length;
    const std::size_t extended = m + signature_.constant_count();
    std::vector<AtomSlot> slots = EnumerateAtomSlots(signature_, extended);
    if (info.bits.size() != slots.size() + signature_.constant_count()) {
      return Status::InvalidArgument(
          "type bits do not match the signature's atom layout");
    }
    // Interpretedness markers: formulas cannot express uninterpreted
    // constants.
    for (std::size_t c = 0; c < signature_.constant_count(); ++c) {
      if (info.bits[slots.size() + c] == 0) {
        return Status::Unsupported(
            "Hintikka formulas require all constants interpreted");
      }
    }
    std::vector<Formula> parts;
    parts.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const AtomSlot& slot = slots[i];
      Formula atom;
      if (slot.kind == AtomSlot::Kind::kRelation) {
        std::vector<Term> terms;
        terms.reserve(slot.positions.size());
        for (std::size_t p : slot.positions) {
          FMTK_ASSIGN_OR_RETURN(Term t, TermForPosition(p, m, signature_));
          terms.push_back(std::move(t));
        }
        atom = Formula::Atom(signature_.relation(slot.relation_index).name,
                             std::move(terms));
      } else {
        FMTK_ASSIGN_OR_RETURN(
            Term t1, TermForPosition(slot.positions[0], m, signature_));
        FMTK_ASSIGN_OR_RETURN(
            Term t2, TermForPosition(slot.positions[1], m, signature_));
        atom = Formula::Equal(std::move(t1), std::move(t2));
      }
      parts.push_back(info.bits[i] != 0 ? atom : Formula::Not(atom));
    }
    return Formula::And(std::move(parts));
  }

  Result<Formula> BuildComposite(RankTypeIndex::TypeId type) {
    const RankTypeIndex::CompositeInfo& info = index_.composite_info(type);
    FMTK_ASSIGN_OR_RETURN(Formula atomic, Build(info.atomic));
    const std::size_t m = index_.atomic_info(info.atomic).tuple_length;
    const std::string next_var = VarName(m);
    std::vector<Formula> parts;
    parts.push_back(std::move(atomic));
    std::vector<Formula> child_formulas;
    child_formulas.reserve(info.extensions.size());
    for (RankTypeIndex::TypeId child : info.extensions) {
      FMTK_ASSIGN_OR_RETURN(Formula cf, Build(child));
      child_formulas.push_back(cf);
      parts.push_back(Formula::Exists(next_var, std::move(cf)));
    }
    parts.push_back(
        Formula::Forall(next_var, Formula::Or(std::move(child_formulas))));
    return Formula::And(std::move(parts));
  }

  const RankTypeIndex& index_;
  const Signature& signature_;
  std::map<RankTypeIndex::TypeId, Formula> cache_;
};

}  // namespace

Result<Formula> HintikkaFormula(const RankTypeIndex& index,
                                RankTypeIndex::TypeId type,
                                const Signature& signature) {
  Builder builder(index, signature);
  return builder.Build(type);
}

Result<std::optional<Formula>> DistinguishingSentence(const Structure& a,
                                                      const Structure& b,
                                                      std::size_t rank,
                                                      RankTypeIndex& index) {
  if (!(a.signature() == b.signature())) {
    return Status::SignatureMismatch(
        "distinguishing sentences require equal signatures");
  }
  RankTypeIndex::TypeId ta = index.TypeOf(a, {}, rank);
  RankTypeIndex::TypeId tb = index.TypeOf(b, {}, rank);
  if (ta == tb) {
    return std::optional<Formula>(std::nullopt);
  }
  FMTK_ASSIGN_OR_RETURN(Formula f,
                        HintikkaFormula(index, ta, a.signature()));
  return std::optional<Formula>(std::move(f));
}

}  // namespace fmtk
