#include "core/games/pebble_game.h"

#include <memory>
#include <string>

#include "base/check.h"

namespace fmtk {

PebbleGameSolver::PebbleGameSolver(const Structure& a, const Structure& b,
                                   std::size_t pebbles,
                                   std::uint64_t max_nodes)
    : a_(a),
      b_(b),
      pebbles_(pebbles),
      max_nodes_(max_nodes),
      occ_a_(game_engine::BuildOccurrenceLists(a)),
      occ_b_(game_engine::BuildOccurrenceLists(b)),
      sig_a_(game_engine::ElementSignatures(a)),
      sig_b_(game_engine::ElementSignatures(b)),
      sig_buckets_a_(game_engine::BuildSignatureBuckets(sig_a_)),
      sig_buckets_b_(game_engine::BuildSignatureBuckets(sig_b_)),
      zobrist_(a.domain_size(), b.domain_size()),
      nullary_ok_(game_engine::NullaryRelationsAgree(a, b)) {
  FMTK_CHECK(a.signature() == b.signature())
      << "pebble games require equal signatures";
  FMTK_CHECK(pebbles_ >= 1) << "at least one pebble required";
  // Assigned in the body: the class counts are out-parameters and their
  // default member initializers would re-zero them after a mem-initializer.
  swap_class_a_ = game_engine::SwapClasses(a, occ_a_, &num_classes_a_);
  swap_class_b_ = game_engine::SwapClasses(b, occ_b_, &num_classes_b_);
}

PebbleGameSolver::SearchContext PebbleGameSolver::MakeContext(
    FlatU64Map<bool>* table) {
  return SearchContext{
      game_engine::PositionState(a_, b_, &occ_a_, &occ_b_, &zobrist_),
      Board(pebbles_), table, GameStats{}};
}

void PebbleGameSolver::MergeStats(const SearchContext& ctx) {
  stats_.table_hits += ctx.local.table_hits;
  stats_.moves_pruned += ctx.local.moves_pruned;
  stats_.nodes_explored = node_count_.load(std::memory_order_relaxed);
}

bool PebbleGameSolver::BuildConstants(SearchContext& ctx) const {
  // Constants count as always-placed pairs the spoiler cannot move.
  for (std::size_t c = 0; c < a_.signature().constant_count(); ++c) {
    std::optional<Element> ca = a_.constant(c);
    std::optional<Element> cb = b_.constant(c);
    if (ca.has_value() != cb.has_value()) {
      return false;
    }
    if (ca.has_value() && !ctx.position.TryAdd(*ca, *cb)) {
      return false;
    }
  }
  return true;
}

Result<bool> PebbleGameSolver::Wins(SearchContext& ctx, std::size_t rounds) {
  if (rounds == 0) {
    return true;  // ctx.position is maintained as a partial isomorphism.
  }
  const std::uint64_t key =
      game_engine::TranspositionKey(ctx.position.hash(), rounds);
  if (const bool* cached = ctx.table->Find(key)) {
    ++ctx.local.table_hits;
    return *cached;
  }
  if (node_count_.fetch_add(1, std::memory_order_relaxed) + 1 > max_nodes_) {
    return Status::ResourceExhausted("pebble game search exceeded node cap");
  }
  bool duplicator_wins = true;
  bool tried_free = false;
  for (std::size_t p = 0; p < pebbles_ && duplicator_wins; ++p) {
    const std::optional<std::pair<Element, Element>> placement = ctx.board[p];
    // A pebble on a duplicated pair is interchangeable with a free pebble
    // (lifting either leaves the pair set unchanged), so one representative
    // of the free-equivalent pebbles decides them all.
    const bool unique = placement.has_value() &&
                        ctx.position.CountOfA(placement->first) == 1;
    if (!unique) {
      if (tried_free) {
        ++ctx.local.moves_pruned;
        continue;
      }
      tried_free = true;
    }
    if (placement.has_value()) {
      ctx.position.Remove(placement->first, placement->second);
      ctx.board[p] = std::nullopt;
    }
    Result<bool> all = AllTargetsSurvivable(ctx, rounds - 1, p, unique);
    if (placement.has_value()) {
      ctx.board[p] = placement;
      const bool restored =
          ctx.position.TryAdd(placement->first, placement->second);
      FMTK_CHECK(restored) << "restoring a lifted pebble must succeed";
    }
    if (!all.ok()) {
      return all;
    }
    duplicator_wins = *all;
  }
  ctx.table->TryEmplace(key, duplicator_wins);
  return duplicator_wins;
}

Result<bool> PebbleGameSolver::AllTargetsSurvivable(SearchContext& ctx,
                                                    std::size_t rounds_left,
                                                    std::size_t p,
                                                    bool was_unique) {
  for (int side = 0; side < 2; ++side) {
    const bool in_a = side == 0;
    const std::size_t n = in_a ? a_.domain_size() : b_.domain_size();
    const std::vector<std::uint32_t>& cls =
        in_a ? swap_class_a_ : swap_class_b_;
    std::vector<bool> seen(in_a ? num_classes_a_ : num_classes_b_, false);
    for (Element s = 0; s < n; ++s) {
      const bool pinned =
          in_a ? ctx.position.PinnedInA(s) : ctx.position.PinnedInB(s);
      if (pinned) {
        if (!was_unique) {
          // A free-equivalent pebble onto a pinned element is a pass: the
          // forced reply leaves the pair set unchanged with fewer rounds,
          // which by round monotonicity never helps the spoiler.
          ++ctx.local.moves_pruned;
          continue;
        }
        // Lifting a unique holder shrank the set; re-pinning onto a still
        // pinned element is a real move (the set stays smaller).
        FMTK_ASSIGN_OR_RETURN(
            bool survivable, ForcedMoveSurvives(ctx, rounds_left, p, in_a, s));
        if (!survivable) {
          return false;
        }
        continue;
      }
      if (seen[cls[s]]) {
        ++ctx.local.moves_pruned;
        continue;
      }
      seen[cls[s]] = true;
      FMTK_ASSIGN_OR_RETURN(bool survivable,
                            ResponseExists(ctx, rounds_left, p, in_a, s));
      if (!survivable) {
        return false;
      }
    }
  }
  return true;
}

Result<bool> PebbleGameSolver::ForcedMoveSurvives(SearchContext& ctx,
                                                  std::size_t rounds_left,
                                                  std::size_t p, bool in_a,
                                                  Element s) {
  // Any reply other than s's existing partner breaks the position.
  const Element x = in_a ? s : ctx.position.PreimageOf(s);
  const Element y = in_a ? ctx.position.ImageOf(s) : s;
  const bool added = ctx.position.TryAdd(x, y);
  FMTK_CHECK(added) << "re-pinning an existing pair must succeed";
  ctx.board[p] = std::make_pair(x, y);
  Result<bool> wins = Wins(ctx, rounds_left);
  ctx.board[p] = std::nullopt;
  ctx.position.Remove(x, y);
  return wins;
}

Result<bool> PebbleGameSolver::ResponseExists(SearchContext& ctx,
                                              std::size_t rounds_left,
                                              std::size_t p, bool in_a,
                                              Element s) {
  const std::size_t n_to = in_a ? b_.domain_size() : a_.domain_size();
  const std::vector<std::uint32_t>& cls_to =
      in_a ? swap_class_b_ : swap_class_a_;
  const std::size_t want = (in_a ? sig_a_ : sig_b_)[s];
  const ElementBitset* match =
      (in_a ? sig_buckets_b_ : sig_buckets_a_).Find(want);
  std::vector<bool> seen(in_a ? num_classes_b_ : num_classes_a_, false);
  std::optional<Result<bool>> decided;
  auto consider = [&](Element d) -> bool {
    if (in_a ? ctx.position.PinnedInB(d) : ctx.position.PinnedInA(d)) {
      ++ctx.local.moves_pruned;
      return false;
    }
    if (seen[cls_to[d]]) {
      ++ctx.local.moves_pruned;
      return false;
    }
    seen[cls_to[d]] = true;
    const Element x = in_a ? s : d;
    const Element y = in_a ? d : s;
    if (!ctx.position.TryAdd(x, y)) {
      ++ctx.local.moves_pruned;
      return false;
    }
    ctx.board[p] = std::make_pair(x, y);
    Result<bool> wins = Wins(ctx, rounds_left);
    ctx.board[p] = std::nullopt;
    ctx.position.Remove(x, y);
    if (!wins.ok() || *wins) {
      decided = std::move(wins);
      return true;
    }
    return false;
  };
  // Signature-matching candidates first (the spoiler element's bucket,
  // ascending), then the complement; see EfGameSolver::MoveSurvivable.
  if (match != nullptr &&
      match->ForEachSetBitUntil(
          [&](std::size_t d) { return consider(static_cast<Element>(d)); })) {
    return *std::move(decided);
  }
  for (Element d = 0; d < n_to; ++d) {
    if (match != nullptr && match->Test(d)) {
      continue;  // Bucket pass already considered it.
    }
    if (consider(d)) {
      return *std::move(decided);
    }
  }
  return false;
}

Result<bool> PebbleGameSolver::SolveRoot(SearchContext& ctx,
                                         std::size_t rounds) {
  if (rounds == 0 || !parallel_.enabled) {
    return Wins(ctx, rounds);
  }
  // First-round spoiler moves from the empty board: every pebble is
  // free-equivalent, so the moves are one pebble, both sides, one
  // representative target per swap class (pinned targets are passes).
  std::vector<std::pair<bool, Element>> moves;
  for (int side = 0; side < 2; ++side) {
    const bool in_a = side == 0;
    const std::size_t n = in_a ? a_.domain_size() : b_.domain_size();
    const std::vector<std::uint32_t>& cls =
        in_a ? swap_class_a_ : swap_class_b_;
    std::vector<bool> seen(in_a ? num_classes_a_ : num_classes_b_, false);
    for (Element s = 0; s < n; ++s) {
      if (in_a ? ctx.position.PinnedInA(s) : ctx.position.PinnedInB(s)) {
        ++ctx.local.moves_pruned;
        continue;
      }
      if (seen[cls[s]]) {
        ++ctx.local.moves_pruned;
        continue;
      }
      seen[cls[s]] = true;
      moves.emplace_back(in_a, s);
    }
  }
  const std::size_t threads =
      game_engine::ResolveThreadCount(parallel_.num_threads, moves.size());
  if (moves.size() < parallel_.min_domain || threads <= 1) {
    return Wins(ctx, rounds);
  }
  struct WorkerContext {
    FlatU64Map<bool> table;
    SearchContext search;
  };
  FMTK_ASSIGN_OR_RETURN(
      bool duplicator_wins,
      (game_engine::FanOutFirstRound<std::unique_ptr<WorkerContext>>(
          moves.size(), threads,
          [&] {
            auto worker = std::make_unique<WorkerContext>(WorkerContext{
                {},
                SearchContext{ctx.position, ctx.board, nullptr, GameStats{}}});
            worker->search.table = &worker->table;
            return worker;
          },
          [&](std::unique_ptr<WorkerContext>& worker, std::size_t j) {
            return ResponseExists(worker->search, rounds - 1, 0,
                                  moves[j].first, moves[j].second);
          },
          [&](std::unique_ptr<WorkerContext>& worker) {
            worker->table.ForEach([&](const std::uint64_t& key, bool& value) {
              ctx.table->TryEmplace(key, value);
            });
            ctx.local.table_hits += worker->search.local.table_hits;
            ctx.local.moves_pruned += worker->search.local.moves_pruned;
          })));
  ctx.table->TryEmplace(
      game_engine::TranspositionKey(ctx.position.hash(), rounds),
      duplicator_wins);
  return duplicator_wins;
}

Result<bool> PebbleGameSolver::DuplicatorWins(std::size_t rounds) {
  SearchContext ctx = MakeContext(&table_);
  if (!nullary_ok_ || !BuildConstants(ctx)) {
    MergeStats(ctx);
    return false;
  }
  Result<bool> verdict = SolveRoot(ctx, rounds);
  MergeStats(ctx);
  return verdict;
}

}  // namespace fmtk
