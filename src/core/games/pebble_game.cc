#include "core/games/pebble_game.h"

#include "base/check.h"
#include "structures/isomorphism.h"

namespace fmtk {

PebbleGameSolver::PebbleGameSolver(const Structure& a, const Structure& b,
                                   std::size_t pebbles,
                                   std::uint64_t max_nodes)
    : a_(a), b_(b), pebbles_(pebbles), max_nodes_(max_nodes) {
  FMTK_CHECK(a.signature() == b.signature())
      << "pebble games require equal signatures";
  FMTK_CHECK(pebbles_ >= 1) << "at least one pebble required";
}

bool PebbleGameSolver::BoardIsPartialIso(const Board& board) const {
  PartialMap map;
  for (const auto& placement : board) {
    if (placement.has_value()) {
      map.push_back(*placement);
    }
  }
  // Constants count as always-placed pairs.
  for (std::size_t c = 0; c < a_.signature().constant_count(); ++c) {
    std::optional<Element> ca = a_.constant(c);
    std::optional<Element> cb = b_.constant(c);
    if (ca.has_value() != cb.has_value()) {
      return false;
    }
    if (ca.has_value()) {
      map.emplace_back(*ca, *cb);
    }
  }
  return IsPartialIsomorphism(a_, b_, map);
}

std::string PebbleGameSolver::MemoKey(std::size_t rounds,
                                      const Board& board) {
  // Pebbles are interchangeable only in how FO^k reuses variables — they are
  // named, so the key keeps per-pebble placements in order.
  std::string key;
  key += static_cast<char>(rounds);
  for (const auto& placement : board) {
    if (!placement.has_value()) {
      key += '_';
      continue;
    }
    key.append(reinterpret_cast<const char*>(&placement->first),
               sizeof(Element));
    key.append(reinterpret_cast<const char*>(&placement->second),
               sizeof(Element));
  }
  return key;
}

Result<bool> PebbleGameSolver::Wins(std::size_t rounds, const Board& board) {
  if (++nodes_ > max_nodes_) {
    return Status::ResourceExhausted("pebble game search exceeded node cap");
  }
  if (!BoardIsPartialIso(board)) {
    return false;
  }
  if (rounds == 0) {
    return true;
  }
  std::string key = MemoKey(rounds, board);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    return it->second;
  }
  bool duplicator_wins = true;
  for (std::size_t p = 0; p < pebbles_ && duplicator_wins; ++p) {
    for (int side = 0; side < 2 && duplicator_wins; ++side) {
      const bool in_a = (side == 0);
      const Structure& from = in_a ? a_ : b_;
      const Structure& to = in_a ? b_ : a_;
      for (Element s = 0; s < from.domain_size() && duplicator_wins; ++s) {
        bool has_response = false;
        for (Element d = 0; d < to.domain_size() && !has_response; ++d) {
          Board next = board;
          next[p] = in_a ? std::make_pair(s, d) : std::make_pair(d, s);
          FMTK_ASSIGN_OR_RETURN(bool wins, Wins(rounds - 1, next));
          has_response = wins;
        }
        duplicator_wins = has_response;
      }
    }
  }
  memo_.emplace(std::move(key), duplicator_wins);
  return duplicator_wins;
}

Result<bool> PebbleGameSolver::DuplicatorWins(std::size_t rounds) {
  Board board(pebbles_);
  return Wins(rounds, board);
}

}  // namespace fmtk
