#ifndef FMTK_CORE_GAMES_EF_GAME_H_
#define FMTK_CORE_GAMES_EF_GAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "structures/isomorphism.h"
#include "structures/structure.h"

namespace fmtk {

/// Options bounding the exact game search.
struct EfOptions {
  /// Abort with ResourceExhausted after this many game positions.
  std::uint64_t max_nodes = 20'000'000;
};

/// The n-round Ehrenfeucht–Fraïssé game G_n(A, B) of the survey, solved
/// exactly by memoized search over game positions.
///
/// Rules: each round the spoiler picks a structure and an element of it; the
/// duplicator picks an element of the other structure. The duplicator wins
/// when after n rounds the map a_i -> b_i (together with the constants) is a
/// partial isomorphism. `DuplicatorWins(n)` decides A ∼Gn B, which by the
/// fundamental theorem equals A ≡n B (cross-validated against
/// RankTypeIndex in the test suite).
///
/// Exact game solving is exponential in the number of rounds — the
/// "combinatorially heavy" cost the survey warns about; use
/// LinearOrdersEquivalent / RankTypeIndex for the structured shortcuts.
class EfGameSolver {
 public:
  /// The structures must outlive the solver and have equal signatures.
  EfGameSolver(const Structure& a, const Structure& b, EfOptions options = {});

  /// Temporaries would dangle — bind the structures to locals first.
  EfGameSolver(Structure&&, const Structure&, EfOptions = {}) = delete;
  EfGameSolver(const Structure&, Structure&&, EfOptions = {}) = delete;
  EfGameSolver(Structure&&, Structure&&, EfOptions = {}) = delete;

  /// Does the duplicator have a winning strategy in the `rounds`-round game
  /// starting from `initial` (pairs already on the board)?
  Result<bool> DuplicatorWins(std::size_t rounds,
                              const PartialMap& initial = {});

  /// The least number of rounds in which the spoiler can force a win, or
  /// nullopt when the duplicator survives even max_rounds rounds.
  Result<std::optional<std::size_t>> SpoilerNeeds(std::size_t max_rounds);

  /// One round of an adversarially played game.
  struct PlayStep {
    bool spoiler_in_a = true;   // Which structure the spoiler chose.
    Element spoiler = 0;        // The element the spoiler picked.
    std::optional<Element> duplicator;  // Best response (nullopt: none).
  };

  /// A transcript of optimal play over `rounds` rounds: the spoiler plays a
  /// winning strategy when one exists (and the transcript ends in a broken
  /// position); otherwise the spoiler plays arbitrarily and the duplicator's
  /// winning responses are shown.
  Result<std::vector<PlayStep>> AdversarialPlay(std::size_t rounds);

  std::uint64_t nodes_explored() const { return nodes_; }

 private:
  // Decides the game value from `position` with `rounds` remaining.
  Result<bool> Wins(std::size_t rounds, PartialMap position);

  // Finds the duplicator response to a spoiler move that survives longest;
  // wins==true responses preferred.
  struct BestResponse {
    std::optional<Element> element;
    bool wins = false;
  };
  Result<BestResponse> RespondTo(std::size_t rounds_left, bool spoiler_in_a,
                                 Element spoiler_element,
                                 const PartialMap& position);

  static std::string MemoKey(std::size_t rounds, const PartialMap& position);

  const Structure& a_;
  const Structure& b_;
  EfOptions options_;
  std::uint64_t nodes_ = 0;
  std::unordered_map<std::string, bool> memo_;
};

}  // namespace fmtk

#endif  // FMTK_CORE_GAMES_EF_GAME_H_
