#ifndef FMTK_CORE_GAMES_EF_GAME_H_
#define FMTK_CORE_GAMES_EF_GAME_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "base/flat_hash.h"
#include "base/parallel.h"
#include "base/result.h"
#include "core/games/game_engine.h"
#include "structures/isomorphism.h"
#include "structures/structure.h"

namespace fmtk {

/// Options bounding the exact game search.
struct EfOptions {
  /// Abort with ResourceExhausted after this many game positions.
  std::uint64_t max_nodes = 20'000'000;
  /// Optional fan-out of the first-round spoiler moves across threads.
  /// Verdicts match the sequential search; per-thread transposition tables
  /// are merged into the solver's shared table on join, and the node cap is
  /// enforced globally via one shared counter. When the cap is hit in
  /// parallel mode, ResourceExhausted may race a concurrently found
  /// refutation — run sequentially for bit-exact error reproduction.
  ParallelPolicy parallel;
};

/// The n-round Ehrenfeucht–Fraïssé game G_n(A, B) of the survey, solved
/// exactly by memoized minimax search over game positions.
///
/// Rules: each round the spoiler picks a structure and an element of it; the
/// duplicator picks an element of the other structure. The duplicator wins
/// when after n rounds the map a_i -> b_i (together with the constants) is a
/// partial isomorphism. `DuplicatorWins(n)` decides A ∼Gn B, which by the
/// fundamental theorem equals A ≡n B (cross-validated against
/// RankTypeIndex in the test suite).
///
/// The search core (shared with PebbleGameSolver via game_engine.h):
///  - a transposition table keyed by packed 64-bit (Zobrist position hash,
///    rounds) keys, persistent across queries so SpoilerNeeds' iterative
///    deepening reuses shallow results;
///  - incremental partial-isomorphism maintenance — only the tuples touching
///    the newly played pair are validated, and pinned-element lookup is O(1);
///  - type-based pruning — spoiler moves that differ by an automorphism
///    (swap classes) collapse to one representative, and duplicator
///    responses are tried signature-matching candidates first;
///  - optional first-round parallel fan-out (EfOptions::parallel).
///
/// Exact game solving is still exponential in the number of rounds — the
/// "combinatorially heavy" cost the survey warns about; use
/// LinearOrdersEquivalent / RankTypeIndex for the structured shortcuts.
class EfGameSolver {
 public:
  /// The structures must outlive the solver and have equal signatures.
  EfGameSolver(const Structure& a, const Structure& b, EfOptions options = {});

  /// Temporaries would dangle — bind the structures to locals first.
  EfGameSolver(Structure&&, const Structure&, EfOptions = {}) = delete;
  EfGameSolver(const Structure&, Structure&&, EfOptions = {}) = delete;
  EfGameSolver(Structure&&, Structure&&, EfOptions = {}) = delete;

  /// Does the duplicator have a winning strategy in the `rounds`-round game
  /// starting from `initial` (pairs already on the board)?
  Result<bool> DuplicatorWins(std::size_t rounds,
                              const PartialMap& initial = {});

  /// The least number of rounds in which the spoiler can force a win, or
  /// nullopt when the duplicator survives even max_rounds rounds.
  Result<std::optional<std::size_t>> SpoilerNeeds(std::size_t max_rounds);

  /// One round of an adversarially played game.
  struct PlayStep {
    bool spoiler_in_a = true;   // Which structure the spoiler chose.
    Element spoiler = 0;        // The element the spoiler picked.
    std::optional<Element> duplicator;  // Best response (nullopt: none).
  };

  /// A transcript of optimal play over `rounds` rounds: the spoiler plays a
  /// winning strategy when one exists (and the transcript ends in a broken
  /// position); otherwise the spoiler plays arbitrarily and the duplicator's
  /// winning responses are shown.
  Result<std::vector<PlayStep>> AdversarialPlay(std::size_t rounds);

  std::uint64_t nodes_explored() const { return stats_.nodes_explored; }

  /// Cumulative search counters (nodes, transposition hits, pruned moves).
  const GameStats& stats() const { return stats_; }

 private:
  // Per-search mutable state: the incrementally maintained position, the
  // transposition table to consult (the solver's own, or a thread-local one
  // during parallel fan-out), and local prune/hit counters merged into
  // stats_ when the search returns.
  struct SearchContext {
    game_engine::PositionState position;
    FlatU64Map<bool>* table;
    GameStats local;
  };

  SearchContext MakeContext(FlatU64Map<bool>* table);
  // Folds a finished context's counters into stats_.
  void MergeStats(const SearchContext& ctx);
  // Seeds constants and the initial pairs into ctx.position; false when the
  // resulting board is already broken (spoiler wins outright).
  bool BuildPosition(SearchContext& ctx, const PartialMap& initial) const;

  // Decides the game value of ctx.position with `rounds` remaining.
  Result<bool> Wins(SearchContext& ctx, std::size_t rounds);
  // Can the duplicator answer the spoiler move (in_a, s) and win the rest?
  Result<bool> MoveSurvivable(SearchContext& ctx, std::size_t rounds_left,
                              bool in_a, Element s);
  // First-round fan-out across threads; falls back to Wins when the policy
  // or move count says sequential.
  Result<bool> SolveRoot(SearchContext& ctx, std::size_t rounds);

  // All spoiler first-move representatives from ctx.position: unpinned, one
  // per swap class per side.
  std::vector<std::pair<bool, Element>> SpoilerRepresentatives(
      SearchContext& ctx) const;

  // Finds the duplicator response to a spoiler move that survives longest;
  // wins==true responses preferred. (Transcript construction only.)
  struct BestResponse {
    std::optional<Element> element;
    bool wins = false;
  };
  Result<BestResponse> RespondTo(std::size_t rounds_left, bool spoiler_in_a,
                                 Element spoiler_element,
                                 const PartialMap& position);

  const Structure& a_;
  const Structure& b_;
  EfOptions options_;

  // Immutable per-solver search tables.
  game_engine::OccurrenceLists occ_a_;
  game_engine::OccurrenceLists occ_b_;
  std::vector<std::uint32_t> swap_class_a_;
  std::vector<std::uint32_t> swap_class_b_;
  std::uint32_t num_classes_a_ = 0;
  std::uint32_t num_classes_b_ = 0;
  std::vector<std::size_t> sig_a_;
  std::vector<std::size_t> sig_b_;
  game_engine::SignatureBuckets sig_buckets_a_;
  game_engine::SignatureBuckets sig_buckets_b_;
  game_engine::ZobristTable zobrist_;
  bool nullary_ok_ = true;

  // Shared across queries: iterative deepening in SpoilerNeeds reuses it.
  FlatU64Map<bool> table_;
  std::atomic<std::uint64_t> node_count_{0};
  GameStats stats_;
};

}  // namespace fmtk

#endif  // FMTK_CORE_GAMES_EF_GAME_H_
