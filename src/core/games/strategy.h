#ifndef FMTK_CORE_GAMES_STRATEGY_H_
#define FMTK_CORE_GAMES_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "base/result.h"
#include "structures/isomorphism.h"
#include "structures/structure.h"

namespace fmtk {

/// The survey (quoting [10]) suggests building "a library of winning
/// strategies for the duplicator". This is that library's interface: a
/// strategy maps game situations to duplicator responses, and a referee
/// verifies a strategy by playing it against *every* spoiler line.
///
/// A verified strategy is a constructive proof of A ≡n B — unlike the
/// exact solver, whose cost explodes, a good strategy answers in
/// polynomial time. The set and linear-order strategies below are the two
/// the survey's §3.2 walks through.
class DuplicatorStrategy {
 public:
  virtual ~DuplicatorStrategy() = default;

  /// The duplicator's answer when the spoiler, with `rounds_remaining`
  /// rounds left AFTER this one, picks `element` in A (spoiler_in_a) or B.
  /// `position` holds the pairs played so far (constants included).
  /// nullopt = resign (no legal/strategic answer).
  virtual std::optional<Element> Respond(const Structure& a,
                                         const Structure& b,
                                         const PartialMap& position,
                                         bool spoiler_in_a, Element element,
                                         std::size_t rounds_remaining) = 0;
};

/// The sets strategy (§3.2): mirror repeated picks, answer fresh picks
/// with any fresh element. Wins G_n whenever both structures have >= n
/// elements and no relations constrain the play (empty vocabulary).
class SetMirrorStrategy : public DuplicatorStrategy {
 public:
  std::optional<Element> Respond(const Structure& a, const Structure& b,
                                 const PartialMap& position,
                                 bool spoiler_in_a, Element element,
                                 std::size_t rounds_remaining) override;
};

/// The linear-order gap strategy behind Theorem 3.1: preserve, for every
/// pair of adjacent pinned points (with virtual endpoints), either the
/// exact gap or the fact that both gaps are >= 2^k with k rounds to go.
/// Wins G_n(L_m, L_k) whenever m = k or both m, k >= 2^n - 1.
/// The structures must be linear orders over {</2} with elements in order
/// (as MakeLinearOrder builds them).
class OrderGapStrategy : public DuplicatorStrategy {
 public:
  std::optional<Element> Respond(const Structure& a, const Structure& b,
                                 const PartialMap& position,
                                 bool spoiler_in_a, Element element,
                                 std::size_t rounds_remaining) override;
};

/// Plays `strategy` against every spoiler line for `rounds` rounds.
/// Returns true when every reachable final position is a partial
/// isomorphism — i.e. the strategy certifies A ≡rounds B. Cost is
/// O((|A| + |B|)^rounds) spoiler lines but only one duplicator reply each,
/// far below the solver's minimax. When `nodes_explored` is non-null it
/// receives the number of referee positions visited (for benchmarking
/// against the solver's node counts).
Result<bool> StrategySurvives(const Structure& a, const Structure& b,
                              std::size_t rounds,
                              DuplicatorStrategy& strategy,
                              std::uint64_t max_nodes = 20'000'000,
                              std::uint64_t* nodes_explored = nullptr);

}  // namespace fmtk

#endif  // FMTK_CORE_GAMES_STRATEGY_H_
