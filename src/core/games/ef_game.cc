#include "core/games/ef_game.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace fmtk {

namespace {

// Adds the constant pairs to the initial position, per the textbook
// convention that constants always count as played. Returns false when the
// structures interpret constants incompatibly (spoiler wins outright).
bool SeedConstants(const Structure& a, const Structure& b, PartialMap& map) {
  for (std::size_t c = 0; c < a.signature().constant_count(); ++c) {
    std::optional<Element> ca = a.constant(c);
    std::optional<Element> cb = b.constant(c);
    if (ca.has_value() != cb.has_value()) {
      return false;
    }
    if (ca.has_value()) {
      map.emplace_back(*ca, *cb);
    }
  }
  return true;
}

PartialMap Canonical(PartialMap map) {
  std::sort(map.begin(), map.end());
  map.erase(std::unique(map.begin(), map.end()), map.end());
  return map;
}

bool Pinned(const PartialMap& map, bool in_a, Element e) {
  for (const auto& [x, y] : map) {
    if ((in_a ? x : y) == e) {
      return true;
    }
  }
  return false;
}

}  // namespace

EfGameSolver::EfGameSolver(const Structure& a, const Structure& b,
                           EfOptions options)
    : a_(a), b_(b), options_(options) {
  FMTK_CHECK(a.signature() == b.signature())
      << "EF games require equal signatures";
}

std::string EfGameSolver::MemoKey(std::size_t rounds,
                                  const PartialMap& position) {
  std::string key;
  key.reserve(1 + position.size() * 8);
  key += static_cast<char>(rounds);
  for (const auto& [x, y] : position) {
    key.append(reinterpret_cast<const char*>(&x), sizeof(x));
    key.append(reinterpret_cast<const char*>(&y), sizeof(y));
  }
  return key;
}

Result<bool> EfGameSolver::Wins(std::size_t rounds, PartialMap position) {
  if (++nodes_ > options_.max_nodes) {
    return Status::ResourceExhausted(
        "EF game search exceeded " + std::to_string(options_.max_nodes) +
        " positions");
  }
  position = Canonical(std::move(position));
  // A broken position can never be repaired: the final map extends it.
  if (!IsPartialIsomorphism(a_, b_, position)) {
    return false;
  }
  if (rounds == 0) {
    return true;
  }
  std::string key = MemoKey(rounds, position);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    return it->second;
  }
  bool duplicator_wins = true;
  // Spoiler never gains by replaying a pinned element (the position would
  // not change), so those moves are skipped.
  for (int side = 0; side < 2 && duplicator_wins; ++side) {
    const bool in_a = (side == 0);
    const Structure& from = in_a ? a_ : b_;
    const Structure& to = in_a ? b_ : a_;
    for (Element s = 0; s < from.domain_size() && duplicator_wins; ++s) {
      if (Pinned(position, in_a, s)) {
        continue;
      }
      bool has_response = false;
      for (Element d = 0; d < to.domain_size() && !has_response; ++d) {
        PartialMap next = position;
        next.emplace_back(in_a ? s : d, in_a ? d : s);
        FMTK_ASSIGN_OR_RETURN(bool wins, Wins(rounds - 1, std::move(next)));
        has_response = wins;
      }
      duplicator_wins = has_response;
    }
  }
  memo_.emplace(std::move(key), duplicator_wins);
  return duplicator_wins;
}

Result<bool> EfGameSolver::DuplicatorWins(std::size_t rounds,
                                          const PartialMap& initial) {
  PartialMap position = initial;
  if (!SeedConstants(a_, b_, position)) {
    return false;
  }
  return Wins(rounds, std::move(position));
}

Result<std::optional<std::size_t>> EfGameSolver::SpoilerNeeds(
    std::size_t max_rounds) {
  for (std::size_t r = 0; r <= max_rounds; ++r) {
    FMTK_ASSIGN_OR_RETURN(bool duplicator_wins, DuplicatorWins(r));
    if (!duplicator_wins) {
      return std::optional<std::size_t>(r);
    }
  }
  return std::optional<std::size_t>(std::nullopt);
}

Result<EfGameSolver::BestResponse> EfGameSolver::RespondTo(
    std::size_t rounds_left, bool spoiler_in_a, Element spoiler_element,
    const PartialMap& position) {
  const Structure& to = spoiler_in_a ? b_ : a_;
  BestResponse best;
  bool best_survives = false;
  for (Element d = 0; d < to.domain_size(); ++d) {
    PartialMap next = position;
    next.emplace_back(spoiler_in_a ? spoiler_element : d,
                      spoiler_in_a ? d : spoiler_element);
    const bool survives = IsPartialIsomorphism(a_, b_, next);
    FMTK_ASSIGN_OR_RETURN(bool wins, Wins(rounds_left, std::move(next)));
    if (wins) {
      return BestResponse{d, true};
    }
    // Losing either way: prefer a response that at least keeps the board a
    // partial isomorphism (survives this round).
    if (!best.element.has_value() || (survives && !best_survives)) {
      best.element = d;
      best_survives = survives;
    }
  }
  return best;
}

Result<std::vector<EfGameSolver::PlayStep>> EfGameSolver::AdversarialPlay(
    std::size_t rounds) {
  std::vector<PlayStep> transcript;
  PartialMap position;
  if (!SeedConstants(a_, b_, position)) {
    return transcript;  // Already broken before any move.
  }
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t remaining = rounds - round;
    // The spoiler looks for a move with no winning duplicator response.
    std::optional<PlayStep> chosen;
    for (int side = 0; side < 2 && !chosen.has_value(); ++side) {
      const bool in_a = (side == 0);
      const Structure& from = in_a ? a_ : b_;
      for (Element s = 0; s < from.domain_size(); ++s) {
        if (Pinned(position, in_a, s)) {
          continue;
        }
        FMTK_ASSIGN_OR_RETURN(BestResponse response,
                              RespondTo(remaining - 1, in_a, s, position));
        if (!response.wins) {
          chosen = PlayStep{in_a, s, response.element};
          break;
        }
      }
    }
    if (!chosen.has_value()) {
      // No winning spoiler move exists; the spoiler plays the first fresh
      // element (arbitrary play) and the duplicator answers optimally.
      for (int side = 0; side < 2 && !chosen.has_value(); ++side) {
        const bool in_a = (side == 0);
        const Structure& from = in_a ? a_ : b_;
        for (Element s = 0; s < from.domain_size(); ++s) {
          if (!Pinned(position, in_a, s)) {
            FMTK_ASSIGN_OR_RETURN(BestResponse response,
                                  RespondTo(remaining - 1, in_a, s, position));
            chosen = PlayStep{in_a, s, response.element};
            break;
          }
        }
      }
    }
    if (!chosen.has_value()) {
      break;  // Both structures exhausted; nothing left to play.
    }
    transcript.push_back(*chosen);
    if (!chosen->duplicator.has_value()) {
      break;  // Duplicator cannot answer at all (empty structure).
    }
    position.emplace_back(
        chosen->spoiler_in_a ? chosen->spoiler : *chosen->duplicator,
        chosen->spoiler_in_a ? *chosen->duplicator : chosen->spoiler);
    if (!IsPartialIsomorphism(a_, b_, position)) {
      break;  // The board is broken; the game is decided.
    }
  }
  return transcript;
}

}  // namespace fmtk
