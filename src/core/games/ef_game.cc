#include "core/games/ef_game.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "base/check.h"

namespace fmtk {

namespace {

bool Pinned(const PartialMap& map, bool in_a, Element e) {
  for (const auto& [x, y] : map) {
    if ((in_a ? x : y) == e) {
      return true;
    }
  }
  return false;
}

}  // namespace

EfGameSolver::EfGameSolver(const Structure& a, const Structure& b,
                           EfOptions options)
    : a_(a),
      b_(b),
      options_(options),
      occ_a_(game_engine::BuildOccurrenceLists(a)),
      occ_b_(game_engine::BuildOccurrenceLists(b)),
      sig_a_(game_engine::ElementSignatures(a)),
      sig_b_(game_engine::ElementSignatures(b)),
      sig_buckets_a_(game_engine::BuildSignatureBuckets(sig_a_)),
      sig_buckets_b_(game_engine::BuildSignatureBuckets(sig_b_)),
      zobrist_(a.domain_size(), b.domain_size()),
      nullary_ok_(game_engine::NullaryRelationsAgree(a, b)) {
  FMTK_CHECK(a.signature() == b.signature())
      << "EF games require equal signatures";
  // Assigned in the body: the class counts are out-parameters and their
  // default member initializers would re-zero them after a mem-initializer.
  swap_class_a_ = game_engine::SwapClasses(a, occ_a_, &num_classes_a_);
  swap_class_b_ = game_engine::SwapClasses(b, occ_b_, &num_classes_b_);
}

EfGameSolver::SearchContext EfGameSolver::MakeContext(FlatU64Map<bool>* table) {
  return SearchContext{
      game_engine::PositionState(a_, b_, &occ_a_, &occ_b_, &zobrist_), table,
      GameStats{}};
}

void EfGameSolver::MergeStats(const SearchContext& ctx) {
  stats_.table_hits += ctx.local.table_hits;
  stats_.moves_pruned += ctx.local.moves_pruned;
  stats_.nodes_explored = node_count_.load(std::memory_order_relaxed);
}

bool EfGameSolver::BuildPosition(SearchContext& ctx,
                                 const PartialMap& initial) const {
  // Constants count as always-played pairs (textbook convention); a
  // mismatch, like any broken initial pair, loses for the duplicator
  // outright since the final map extends the initial one.
  for (std::size_t c = 0; c < a_.signature().constant_count(); ++c) {
    std::optional<Element> ca = a_.constant(c);
    std::optional<Element> cb = b_.constant(c);
    if (ca.has_value() != cb.has_value()) {
      return false;
    }
    if (ca.has_value() && !ctx.position.TryAdd(*ca, *cb)) {
      return false;
    }
  }
  for (const auto& [x, y] : initial) {
    if (!ctx.position.TryAdd(x, y)) {
      return false;
    }
  }
  return true;
}

Result<bool> EfGameSolver::Wins(SearchContext& ctx, std::size_t rounds) {
  if (rounds == 0) {
    return true;  // ctx.position is maintained as a partial isomorphism.
  }
  const std::uint64_t key =
      game_engine::TranspositionKey(ctx.position.hash(), rounds);
  if (const bool* cached = ctx.table->Find(key)) {
    ++ctx.local.table_hits;
    return *cached;
  }
  if (node_count_.fetch_add(1, std::memory_order_relaxed) + 1 >
      options_.max_nodes) {
    return Status::ResourceExhausted("EF game search exceeded " +
                                     std::to_string(options_.max_nodes) +
                                     " positions");
  }
  bool duplicator_wins = true;
  for (int side = 0; side < 2 && duplicator_wins; ++side) {
    const bool in_a = side == 0;
    const std::size_t n = in_a ? a_.domain_size() : b_.domain_size();
    const std::vector<std::uint32_t>& cls =
        in_a ? swap_class_a_ : swap_class_b_;
    std::vector<bool> seen(in_a ? num_classes_a_ : num_classes_b_, false);
    for (Element s = 0; s < n && duplicator_wins; ++s) {
      // Replaying a pinned element changes nothing; and of any two unpinned
      // elements swapped by an automorphism (which fixes every pinned
      // element), one representative decides both moves.
      if (in_a ? ctx.position.PinnedInA(s) : ctx.position.PinnedInB(s)) {
        ++ctx.local.moves_pruned;
        continue;
      }
      if (seen[cls[s]]) {
        ++ctx.local.moves_pruned;
        continue;
      }
      seen[cls[s]] = true;
      FMTK_ASSIGN_OR_RETURN(bool survivable,
                            MoveSurvivable(ctx, rounds - 1, in_a, s));
      duplicator_wins = survivable;
    }
  }
  ctx.table->TryEmplace(key, duplicator_wins);
  return duplicator_wins;
}

Result<bool> EfGameSolver::MoveSurvivable(SearchContext& ctx,
                                          std::size_t rounds_left, bool in_a,
                                          Element s) {
  const std::size_t n_to = in_a ? b_.domain_size() : a_.domain_size();
  const std::vector<std::uint32_t>& cls_to =
      in_a ? swap_class_b_ : swap_class_a_;
  const std::size_t want = (in_a ? sig_a_ : sig_b_)[s];
  // Bitset of the response-side elements sharing the spoiler element's
  // signature; null when no element over there carries it.
  const ElementBitset* match =
      (in_a ? sig_buckets_b_ : sig_buckets_a_).Find(want);
  std::vector<bool> seen(in_a ? num_classes_b_ : num_classes_a_, false);
  std::optional<Result<bool>> decided;
  // Returns true when the search is decided (winning response or error).
  auto consider = [&](Element d) -> bool {
    // A pinned response breaks injectivity; an already-seen class is
    // decided by its representative (same automorphism argument as for
    // spoiler moves); a TryAdd failure is a broken (losing) response.
    if (in_a ? ctx.position.PinnedInB(d) : ctx.position.PinnedInA(d)) {
      ++ctx.local.moves_pruned;
      return false;
    }
    if (seen[cls_to[d]]) {
      ++ctx.local.moves_pruned;
      return false;
    }
    seen[cls_to[d]] = true;
    const Element x = in_a ? s : d;
    const Element y = in_a ? d : s;
    if (!ctx.position.TryAdd(x, y)) {
      ++ctx.local.moves_pruned;
      return false;
    }
    Result<bool> wins = Wins(ctx, rounds_left);
    ctx.position.Remove(x, y);
    if (!wins.ok() || *wins) {
      decided = std::move(wins);
      return true;
    }
    return false;
  };
  // Signature-matching candidates first: when a winning response exists it
  // usually looks like the spoiler's element, so it is found before the
  // losing candidates burn nodes. Swap classes are signature-homogeneous,
  // so the two passes never split a class. Both passes visit elements
  // ascending — the exact order of the domain scans this replaces.
  if (match != nullptr &&
      match->ForEachSetBitUntil(
          [&](std::size_t d) { return consider(static_cast<Element>(d)); })) {
    return *std::move(decided);
  }
  for (Element d = 0; d < n_to; ++d) {
    if (match != nullptr && match->Test(d)) {
      continue;  // Pass 0 already considered it.
    }
    if (consider(d)) {
      return *std::move(decided);
    }
  }
  return false;
}

std::vector<std::pair<bool, Element>> EfGameSolver::SpoilerRepresentatives(
    SearchContext& ctx) const {
  std::vector<std::pair<bool, Element>> moves;
  for (int side = 0; side < 2; ++side) {
    const bool in_a = side == 0;
    const std::size_t n = in_a ? a_.domain_size() : b_.domain_size();
    const std::vector<std::uint32_t>& cls =
        in_a ? swap_class_a_ : swap_class_b_;
    std::vector<bool> seen(in_a ? num_classes_a_ : num_classes_b_, false);
    for (Element s = 0; s < n; ++s) {
      if (in_a ? ctx.position.PinnedInA(s) : ctx.position.PinnedInB(s)) {
        ++ctx.local.moves_pruned;
        continue;
      }
      if (seen[cls[s]]) {
        ++ctx.local.moves_pruned;
        continue;
      }
      seen[cls[s]] = true;
      moves.emplace_back(in_a, s);
    }
  }
  return moves;
}

Result<bool> EfGameSolver::SolveRoot(SearchContext& ctx, std::size_t rounds) {
  if (rounds == 0 || !options_.parallel.enabled) {
    return Wins(ctx, rounds);
  }
  const std::vector<std::pair<bool, Element>> moves =
      SpoilerRepresentatives(ctx);
  const std::size_t threads = game_engine::ResolveThreadCount(
      options_.parallel.num_threads, moves.size());
  if (moves.size() < options_.parallel.min_domain || threads <= 1) {
    return Wins(ctx, rounds);
  }
  // Workers search against private tables (no lock on the hot path) and
  // merge completed subgame results back on join; valid regardless of how
  // a worker stopped.
  struct WorkerContext {
    FlatU64Map<bool> table;
    SearchContext search;
  };
  FMTK_ASSIGN_OR_RETURN(
      bool duplicator_wins,
      (game_engine::FanOutFirstRound<std::unique_ptr<WorkerContext>>(
          moves.size(), threads,
          [&] {
            auto worker = std::make_unique<WorkerContext>(WorkerContext{
                {}, SearchContext{ctx.position, nullptr, GameStats{}}});
            worker->search.table = &worker->table;
            return worker;
          },
          [&](std::unique_ptr<WorkerContext>& worker, std::size_t j) {
            return MoveSurvivable(worker->search, rounds - 1, moves[j].first,
                                  moves[j].second);
          },
          [&](std::unique_ptr<WorkerContext>& worker) {
            worker->table.ForEach([&](const std::uint64_t& key, bool& value) {
              ctx.table->TryEmplace(key, value);
            });
            ctx.local.table_hits += worker->search.local.table_hits;
            ctx.local.moves_pruned += worker->search.local.moves_pruned;
          })));
  ctx.table->TryEmplace(
      game_engine::TranspositionKey(ctx.position.hash(), rounds),
      duplicator_wins);
  return duplicator_wins;
}

Result<bool> EfGameSolver::DuplicatorWins(std::size_t rounds,
                                          const PartialMap& initial) {
  SearchContext ctx = MakeContext(&table_);
  if (!nullary_ok_ || !BuildPosition(ctx, initial)) {
    MergeStats(ctx);
    return false;
  }
  Result<bool> verdict = SolveRoot(ctx, rounds);
  MergeStats(ctx);
  return verdict;
}

Result<std::optional<std::size_t>> EfGameSolver::SpoilerNeeds(
    std::size_t max_rounds) {
  for (std::size_t r = 0; r <= max_rounds; ++r) {
    FMTK_ASSIGN_OR_RETURN(bool duplicator_wins, DuplicatorWins(r));
    if (!duplicator_wins) {
      return std::optional<std::size_t>(r);
    }
  }
  return std::optional<std::size_t>(std::nullopt);
}

Result<EfGameSolver::BestResponse> EfGameSolver::RespondTo(
    std::size_t rounds_left, bool spoiler_in_a, Element spoiler_element,
    const PartialMap& position) {
  const Structure& to = spoiler_in_a ? b_ : a_;
  BestResponse best;
  bool best_survives = false;
  for (Element d = 0; d < to.domain_size(); ++d) {
    PartialMap next = position;
    next.emplace_back(spoiler_in_a ? spoiler_element : d,
                      spoiler_in_a ? d : spoiler_element);
    SearchContext ctx = MakeContext(&table_);
    const bool survives = nullary_ok_ && BuildPosition(ctx, next);
    bool wins = false;
    if (survives) {
      Result<bool> sub = Wins(ctx, rounds_left);
      if (!sub.ok()) {
        MergeStats(ctx);
        return sub.status();
      }
      wins = *sub;
    }
    MergeStats(ctx);
    if (wins) {
      return BestResponse{d, true};
    }
    // Losing either way: prefer a response that at least keeps the board a
    // partial isomorphism (survives this round).
    if (!best.element.has_value() || (survives && !best_survives)) {
      best.element = d;
      best_survives = survives;
    }
  }
  return best;
}

Result<std::vector<EfGameSolver::PlayStep>> EfGameSolver::AdversarialPlay(
    std::size_t rounds) {
  std::vector<PlayStep> transcript;
  PartialMap position;
  if (!nullary_ok_) {
    return transcript;  // Already broken before any move.
  }
  for (std::size_t c = 0; c < a_.signature().constant_count(); ++c) {
    std::optional<Element> ca = a_.constant(c);
    std::optional<Element> cb = b_.constant(c);
    if (ca.has_value() != cb.has_value()) {
      return transcript;  // Already broken before any move.
    }
    if (ca.has_value()) {
      position.emplace_back(*ca, *cb);
    }
  }
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t remaining = rounds - round;
    // The spoiler looks for a move with no winning duplicator response.
    std::optional<PlayStep> chosen;
    for (int side = 0; side < 2 && !chosen.has_value(); ++side) {
      const bool in_a = (side == 0);
      const Structure& from = in_a ? a_ : b_;
      for (Element s = 0; s < from.domain_size(); ++s) {
        if (Pinned(position, in_a, s)) {
          continue;
        }
        FMTK_ASSIGN_OR_RETURN(BestResponse response,
                              RespondTo(remaining - 1, in_a, s, position));
        if (!response.wins) {
          chosen = PlayStep{in_a, s, response.element};
          break;
        }
      }
    }
    if (!chosen.has_value()) {
      // No winning spoiler move exists; the spoiler plays the first fresh
      // element (arbitrary play) and the duplicator answers optimally.
      for (int side = 0; side < 2 && !chosen.has_value(); ++side) {
        const bool in_a = (side == 0);
        const Structure& from = in_a ? a_ : b_;
        for (Element s = 0; s < from.domain_size(); ++s) {
          if (!Pinned(position, in_a, s)) {
            FMTK_ASSIGN_OR_RETURN(BestResponse response,
                                  RespondTo(remaining - 1, in_a, s, position));
            chosen = PlayStep{in_a, s, response.element};
            break;
          }
        }
      }
    }
    if (!chosen.has_value()) {
      break;  // Both structures exhausted; nothing left to play.
    }
    transcript.push_back(*chosen);
    if (!chosen->duplicator.has_value()) {
      break;  // Duplicator cannot answer at all (empty structure).
    }
    position.emplace_back(
        chosen->spoiler_in_a ? chosen->spoiler : *chosen->duplicator,
        chosen->spoiler_in_a ? *chosen->duplicator : chosen->spoiler);
    if (!IsPartialIsomorphism(a_, b_, position)) {
      break;  // The board is broken; the game is decided.
    }
  }
  return transcript;
}

}  // namespace fmtk
