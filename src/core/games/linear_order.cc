#include "core/games/linear_order.h"

#include <cstdint>
#include <map>
#include <tuple>

namespace fmtk {

bool LinearOrdersEquivalent(std::size_t m, std::size_t k, std::size_t n) {
  if (m == k) {
    return true;
  }
  // 2^n - 1 computed without overflow: for n >= 63 every pair of distinct
  // finite sizes below the threshold is impossible to reach in practice, but
  // guard anyway.
  if (n >= 63) {
    return false;  // Distinct m != k below an astronomically large threshold.
  }
  const std::uint64_t threshold = (std::uint64_t{1} << n) - 1;
  return m >= threshold && k >= threshold;
}

namespace {

// Interval game value: does the duplicator survive n rounds on open
// intervals of sizes m and k? (An order of size m is the interval with m
// inner points and two virtual endpoints.)
bool IntervalEq(std::size_t m, std::size_t k, std::size_t n,
                std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
                         bool>& memo) {
  if (n == 0) {
    return true;
  }
  // Either both are empty or both are nonempty; a pick in a nonempty
  // interval cannot be answered in an empty one.
  if ((m == 0) != (k == 0)) {
    return false;
  }
  if (m == 0 && k == 0) {
    return true;
  }
  if (m == k) {
    return true;  // Identity strategy.
  }
  // Symmetric key.
  auto key = std::make_tuple(std::min(m, k), std::max(m, k), n);
  auto it = memo.find(key);
  if (it != memo.end()) {
    return it->second;
  }
  memo.emplace(key, true);  // Cut off cycles optimistically (none occur:
                            // n strictly decreases).
  // Spoiler picks position a (1-based) in the m-interval: splits into
  // (a-1, m-a); duplicator needs b with both sides (n-1)-equivalent.
  // And symmetrically.
  bool duplicator_wins = true;
  for (int side = 0; side < 2 && duplicator_wins; ++side) {
    const std::size_t from = side == 0 ? m : k;
    const std::size_t to = side == 0 ? k : m;
    for (std::size_t a = 1; a <= from && duplicator_wins; ++a) {
      bool answered = false;
      for (std::size_t b = 1; b <= to && !answered; ++b) {
        answered = IntervalEq(a - 1, b - 1, n - 1, memo) &&
                   IntervalEq(from - a, to - b, n - 1, memo);
      }
      duplicator_wins = answered;
    }
  }
  memo[key] = duplicator_wins;
  return duplicator_wins;
}

}  // namespace

bool LinearOrdersEquivalentByComposition(std::size_t m, std::size_t k,
                                         std::size_t n) {
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, bool> memo;
  return IntervalEq(m, k, n, memo);
}

bool LinearOrderGameTable::Equivalent(std::size_t m, std::size_t k,
                                      std::size_t n) {
  return IntervalEq(m, k, n, memo_);
}

}  // namespace fmtk
