#ifndef FMTK_CORE_GAMES_PEBBLE_GAME_H_
#define FMTK_CORE_GAMES_PEBBLE_GAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/result.h"
#include "structures/structure.h"

namespace fmtk {

/// The k-pebble, r-round Ehrenfeucht–Fraïssé game characterizing the
/// k-variable fragment FO^k: the spoiler may *move* pebbles rather than only
/// adding them, modelling variable reuse. With r rounds it captures
/// agreement on FO^k formulas of quantifier rank ≤ r.
///
/// The plain EF game is the special case where pebbles are never reused
/// (k >= r), which the test suite cross-checks.
class PebbleGameSolver {
 public:
  /// The structures must outlive the solver and have equal signatures.
  /// `pebbles` >= 1.
  PebbleGameSolver(const Structure& a, const Structure& b,
                   std::size_t pebbles, std::uint64_t max_nodes = 20'000'000);

  /// Temporaries would dangle — bind the structures to locals first.
  PebbleGameSolver(Structure&&, const Structure&, std::size_t,
                   std::uint64_t = 0) = delete;
  PebbleGameSolver(const Structure&, Structure&&, std::size_t,
                   std::uint64_t = 0) = delete;
  PebbleGameSolver(Structure&&, Structure&&, std::size_t,
                   std::uint64_t = 0) = delete;

  /// Does the duplicator survive `rounds` rounds of the `pebbles`-pebble
  /// game from the empty board?
  Result<bool> DuplicatorWins(std::size_t rounds);

  std::uint64_t nodes_explored() const { return nodes_; }

 private:
  // A board: per pebble, an optional (a, b) placement.
  using Board = std::vector<std::optional<std::pair<Element, Element>>>;

  Result<bool> Wins(std::size_t rounds, const Board& board);
  bool BoardIsPartialIso(const Board& board) const;
  static std::string MemoKey(std::size_t rounds, const Board& board);

  const Structure& a_;
  const Structure& b_;
  std::size_t pebbles_;
  std::uint64_t max_nodes_;
  std::uint64_t nodes_ = 0;
  std::unordered_map<std::string, bool> memo_;
};

}  // namespace fmtk

#endif  // FMTK_CORE_GAMES_PEBBLE_GAME_H_
