#ifndef FMTK_CORE_GAMES_PEBBLE_GAME_H_
#define FMTK_CORE_GAMES_PEBBLE_GAME_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "base/flat_hash.h"
#include "base/parallel.h"
#include "base/result.h"
#include "core/games/game_engine.h"
#include "structures/structure.h"

namespace fmtk {

/// The k-pebble, r-round Ehrenfeucht–Fraïssé game characterizing the
/// k-variable fragment FO^k: the spoiler may *move* pebbles rather than only
/// adding them, modelling variable reuse. With r rounds it captures
/// agreement on FO^k formulas of quantifier rank ≤ r.
///
/// The plain EF game is the special case where pebbles are never reused
/// (k >= r), which the test suite cross-checks.
///
/// Shares the search core of EfGameSolver (game_engine.h): transposition
/// table over packed 64-bit keys, incremental partial-isomorphism
/// maintenance, and swap-class move pruning. Two pebble-specific
/// canonicalizations collapse the state space further — both proved in
/// DESIGN.md:
///  - the game value depends only on the *set* of distinct pinned pairs
///    (pebble names, duplicate placements, and free pebbles are
///    interchangeable), so boards are keyed by their pair-set hash;
///  - a pebble on a duplicated pair behaves exactly like a free pebble, so
///    only one free-equivalent pebble is expanded per node, and moving a
///    free-equivalent pebble onto an already-pinned element (a "pass") is
///    never useful for the spoiler.
class PebbleGameSolver {
 public:
  /// The structures must outlive the solver and have equal signatures.
  /// `pebbles` >= 1.
  PebbleGameSolver(const Structure& a, const Structure& b,
                   std::size_t pebbles, std::uint64_t max_nodes = 20'000'000);

  /// Temporaries would dangle — bind the structures to locals first.
  PebbleGameSolver(Structure&&, const Structure&, std::size_t,
                   std::uint64_t = 0) = delete;
  PebbleGameSolver(const Structure&, Structure&&, std::size_t,
                   std::uint64_t = 0) = delete;
  PebbleGameSolver(Structure&&, Structure&&, std::size_t,
                   std::uint64_t = 0) = delete;

  /// Optional fan-out of the first-round spoiler moves across threads; same
  /// semantics as EfOptions::parallel.
  void set_parallel(const ParallelPolicy& policy) { parallel_ = policy; }

  /// Does the duplicator survive `rounds` rounds of the `pebbles`-pebble
  /// game from the empty board?
  Result<bool> DuplicatorWins(std::size_t rounds);

  std::uint64_t nodes_explored() const { return stats_.nodes_explored; }

  /// Cumulative search counters (nodes, transposition hits, pruned moves).
  const GameStats& stats() const { return stats_; }

 private:
  // A board: per pebble, an optional (a, b) placement. Carried alongside
  // the canonical pair-set position because move enumeration is per pebble.
  using Board = std::vector<std::optional<std::pair<Element, Element>>>;

  struct SearchContext {
    game_engine::PositionState position;
    Board board;
    FlatU64Map<bool>* table;
    GameStats local;
  };

  SearchContext MakeContext(FlatU64Map<bool>* table);
  void MergeStats(const SearchContext& ctx);
  // Seeds the constant pairs; false when they are incompatible.
  bool BuildConstants(SearchContext& ctx) const;

  Result<bool> Wins(SearchContext& ctx, std::size_t rounds);
  // All spoiler targets for lifted pebble p; `was_unique` says whether the
  // lift removed a pair from the board set (enabling re-pin moves onto
  // pinned elements; otherwise those are skipped as passes).
  Result<bool> AllTargetsSurvivable(SearchContext& ctx,
                                    std::size_t rounds_left, std::size_t p,
                                    bool was_unique);
  // Spoiler re-pins pebble p onto pinned element s: the duplicator's reply
  // is forced to s's existing partner.
  Result<bool> ForcedMoveSurvives(SearchContext& ctx, std::size_t rounds_left,
                                  std::size_t p, bool in_a, Element s);
  // Spoiler puts pebble p on unpinned element s: does a winning duplicator
  // response exist?
  Result<bool> ResponseExists(SearchContext& ctx, std::size_t rounds_left,
                              std::size_t p, bool in_a, Element s);
  Result<bool> SolveRoot(SearchContext& ctx, std::size_t rounds);

  const Structure& a_;
  const Structure& b_;
  std::size_t pebbles_;
  std::uint64_t max_nodes_;
  ParallelPolicy parallel_;

  // Immutable per-solver search tables.
  game_engine::OccurrenceLists occ_a_;
  game_engine::OccurrenceLists occ_b_;
  std::vector<std::uint32_t> swap_class_a_;
  std::vector<std::uint32_t> swap_class_b_;
  std::uint32_t num_classes_a_ = 0;
  std::uint32_t num_classes_b_ = 0;
  std::vector<std::size_t> sig_a_;
  std::vector<std::size_t> sig_b_;
  game_engine::SignatureBuckets sig_buckets_a_;
  game_engine::SignatureBuckets sig_buckets_b_;
  game_engine::ZobristTable zobrist_;
  bool nullary_ok_ = true;

  FlatU64Map<bool> table_;
  std::atomic<std::uint64_t> node_count_{0};
  GameStats stats_;
};

}  // namespace fmtk

#endif  // FMTK_CORE_GAMES_PEBBLE_GAME_H_
