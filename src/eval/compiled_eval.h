#ifndef FMTK_EVAL_COMPILED_EVAL_H_
#define FMTK_EVAL_COMPILED_EVAL_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "base/result.h"
#include "eval/model_check.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

namespace internal_eval {
struct Plan;
struct Binding;
}  // namespace internal_eval

/// A Formula compiled against a Signature: variable names are resolved to
/// de Bruijn-style integer slots, relation and constant symbols to signature
/// indices, and each quantifier is annotated with a posting-list pruning
/// guard when one can be derived. Compilation validates the formula against
/// the signature exactly like ModelChecker::Check (unknown symbols and arity
/// mismatches are SignatureMismatch errors).
///
/// CompiledFormula is structure-independent: compile once, then Bind to any
/// structure over an equal signature (the zero-one-law enumerator binds one
/// plan to 2^k structures). Cheap to copy (shared representation).
class CompiledFormula {
 public:
  static Result<CompiledFormula> Compile(const Formula& f,
                                         const Signature& signature);

  /// Free variables of the source formula, sorted by name. Slot i of an
  /// evaluation row corresponds to free_variables()[i].
  const std::vector<std::string>& free_variables() const;

  /// Total environment slots (free variables + max quantifier nesting).
  std::size_t slot_count() const;

 private:
  friend class CompiledEvaluator;
  explicit CompiledFormula(std::shared_ptr<const internal_eval::Plan> plan)
      : plan_(std::move(plan)) {}

  std::shared_ptr<const internal_eval::Plan> plan_;
};

/// A CompiledFormula bound to one Structure: relation symbols become
/// Relation pointers, constants become resolved elements, and pruning
/// guards become pointers into the relation's per-column posting lists
/// (built once at bind time). Evaluation runs on a flat
/// std::vector<Element> environment — no maps, no string hashing, no
/// per-node allocation.
///
/// The structure must outlive the evaluator and must not be mutated while
/// it is in use (Add invalidates the bound column indexes).
class CompiledEvaluator {
 public:
  /// Binds `plan` to `structure`. SignatureMismatch when the structure's
  /// signature differs from the one the plan was compiled against.
  static Result<CompiledEvaluator> Bind(CompiledFormula plan,
                                        const Structure& structure,
                                        ParallelPolicy policy = {});

  /// One-shot: compile `f` against structure's signature and bind.
  static Result<CompiledEvaluator> Compile(const Structure& structure,
                                           const Formula& f,
                                           ParallelPolicy policy = {});

  /// Decides structure ⊨ f under `assignment`. Verdicts and error
  /// classification are identical to ModelChecker::Check: free variables
  /// left unbound only fail (InvalidArgument) if actually evaluated, and
  /// uninterpreted constants likewise.
  Result<bool> Evaluate(const VarAssignment& assignment = {});

  /// Fast path for repeated evaluation: `row[i]` binds free_variables()[i].
  /// The row size must equal the number of free variables.
  Result<bool> EvaluateRow(const std::vector<Element>& row);

  const std::vector<std::string>& free_variables() const;

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats{}; }

 private:
  CompiledEvaluator(CompiledFormula plan,
                    std::shared_ptr<const internal_eval::Binding> binding,
                    ParallelPolicy policy)
      : plan_(std::move(plan)),
        binding_(std::move(binding)),
        policy_(policy) {}

  Result<bool> Run(std::vector<Element> env,
                   std::vector<unsigned char> has_value);

  CompiledFormula plan_;
  std::shared_ptr<const internal_eval::Binding> binding_;
  ParallelPolicy policy_;
  EvalStats stats_;
};

}  // namespace fmtk

#endif  // FMTK_EVAL_COMPILED_EVAL_H_
