#include "eval/model_check.h"

#include <optional>
#include <string>
#include <utility>

#include "base/check.h"
#include "eval/compiled_eval.h"
#include "logic/analysis.h"

namespace fmtk {

EvalStats& EvalStats::operator+=(const EvalStats& other) {
  node_visits += other.node_visits;
  atom_lookups += other.atom_lookups;
  quantifier_instantiations += other.quantifier_instantiations;
  short_circuits += other.short_circuits;
  index_hits += other.index_hits;
  return *this;
}

std::string EvalStats::ToString() const {
  return "node_visits=" + std::to_string(node_visits) +
         " atom_lookups=" + std::to_string(atom_lookups) +
         " quantifier_instantiations=" +
         std::to_string(quantifier_instantiations) +
         " short_circuits=" + std::to_string(short_circuits) +
         " index_hits=" + std::to_string(index_hits);
}

Result<Element> ModelChecker::ResolveTerm(
    const Term& term, const VarAssignment& assignment) const {
  if (term.is_constant()) {
    std::optional<std::size_t> index =
        structure_.signature().FindConstant(term.name);
    if (!index.has_value()) {
      return Status::SignatureMismatch("unknown constant symbol: " +
                                       term.name);
    }
    std::optional<Element> value = structure_.constant(*index);
    if (!value.has_value()) {
      return Status::InvalidArgument("constant " + term.name +
                                     " is uninterpreted in this structure");
    }
    return *value;
  }
  auto it = assignment.find(term.name);
  if (it == assignment.end()) {
    return Status::InvalidArgument("unbound variable: " + term.name);
  }
  return it->second;
}

Result<bool> ModelChecker::Check(const Formula& f,
                                 const VarAssignment& assignment) {
  FMTK_RETURN_IF_ERROR(CheckAgainstSignature(f, structure_.signature()));
  VarAssignment env = assignment;
  return Eval(f, env);
}

Result<bool> ModelChecker::Eval(const Formula& f, VarAssignment& assignment) {
  ++stats_.node_visits;
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom: {
      ++stats_.atom_lookups;
      // Signature validity was checked up front; index lookup cannot fail.
      std::size_t index = *structure_.signature().FindRelation(
          f.relation_name());
      Tuple tuple;
      tuple.reserve(f.terms().size());
      for (const Term& t : f.terms()) {
        FMTK_ASSIGN_OR_RETURN(Element e, ResolveTerm(t, assignment));
        tuple.push_back(e);
      }
      return structure_.relation(index).Contains(tuple);
    }
    case FormulaKind::kEqual: {
      ++stats_.atom_lookups;
      FMTK_ASSIGN_OR_RETURN(Element a, ResolveTerm(f.terms()[0], assignment));
      FMTK_ASSIGN_OR_RETURN(Element b, ResolveTerm(f.terms()[1], assignment));
      return a == b;
    }
    case FormulaKind::kNot: {
      FMTK_ASSIGN_OR_RETURN(bool inner, Eval(f.child(0), assignment));
      return !inner;
    }
    case FormulaKind::kAnd: {
      const std::size_t n = f.child_count();
      for (std::size_t i = 0; i < n; ++i) {
        FMTK_ASSIGN_OR_RETURN(bool value, Eval(f.child(i), assignment));
        if (!value) {
          if (i + 1 < n) {
            ++stats_.short_circuits;
          }
          return false;
        }
      }
      return true;
    }
    case FormulaKind::kOr: {
      const std::size_t n = f.child_count();
      for (std::size_t i = 0; i < n; ++i) {
        FMTK_ASSIGN_OR_RETURN(bool value, Eval(f.child(i), assignment));
        if (value) {
          if (i + 1 < n) {
            ++stats_.short_circuits;
          }
          return true;
        }
      }
      return false;
    }
    case FormulaKind::kImplies: {
      FMTK_ASSIGN_OR_RETURN(bool a, Eval(f.child(0), assignment));
      if (!a) {
        ++stats_.short_circuits;
        return true;
      }
      return Eval(f.child(1), assignment);
    }
    case FormulaKind::kIff: {
      FMTK_ASSIGN_OR_RETURN(bool a, Eval(f.child(0), assignment));
      FMTK_ASSIGN_OR_RETURN(bool b, Eval(f.child(1), assignment));
      return a == b;
    }
    case FormulaKind::kCountExists: {
      // Count the witnesses; stop once the threshold is reached.
      auto it = assignment.find(f.variable());
      std::optional<Element> shadowed;
      if (it != assignment.end()) {
        shadowed = it->second;
      }
      std::size_t witnesses = 0;
      Status error = Status::OK();
      for (Element d = 0; d < structure_.domain_size(); ++d) {
        ++stats_.quantifier_instantiations;
        assignment[f.variable()] = d;
        Result<bool> value = Eval(f.body(), assignment);
        if (!value.ok()) {
          error = value.status();
          break;
        }
        if (*value && ++witnesses >= f.count()) {
          break;
        }
      }
      if (shadowed.has_value()) {
        assignment[f.variable()] = *shadowed;
      } else {
        assignment.erase(f.variable());
      }
      if (!error.ok()) {
        return error;
      }
      return witnesses >= f.count();
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const bool is_exists = f.kind() == FormulaKind::kExists;
      // Save any shadowed binding.
      auto it = assignment.find(f.variable());
      std::optional<Element> shadowed;
      if (it != assignment.end()) {
        shadowed = it->second;
      }
      bool outcome = !is_exists;
      Status error = Status::OK();
      for (Element d = 0; d < structure_.domain_size(); ++d) {
        ++stats_.quantifier_instantiations;
        assignment[f.variable()] = d;
        Result<bool> value = Eval(f.body(), assignment);
        if (!value.ok()) {
          error = value.status();
          break;
        }
        if (*value == is_exists) {
          outcome = is_exists;
          break;
        }
      }
      if (shadowed.has_value()) {
        assignment[f.variable()] = *shadowed;
      } else {
        assignment.erase(f.variable());
      }
      if (!error.ok()) {
        return error;
      }
      return outcome;
    }
  }
  FMTK_CHECK(false) << "unreachable formula kind";
  return false;
}

Result<bool> Satisfies(const Structure& structure, const Formula& sentence) {
  FMTK_ASSIGN_OR_RETURN(CompiledEvaluator eval,
                        CompiledEvaluator::Compile(structure, sentence));
  return eval.Evaluate();
}

Result<bool> Satisfies(const Structure& structure, const Formula& f,
                       const VarAssignment& assignment) {
  FMTK_ASSIGN_OR_RETURN(CompiledEvaluator eval,
                        CompiledEvaluator::Compile(structure, f));
  return eval.Evaluate(assignment);
}

}  // namespace fmtk
