#include "eval/query_eval.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "base/check.h"
#include "base/hash.h"
#include "eval/compiled_eval.h"
#include "logic/analysis.h"

namespace fmtk {

namespace {

// An intermediate result: a set of assignments to `vars` (sorted by name),
// stored as rows aligned with `vars`.
struct Table {
  std::vector<std::string> vars;
  std::vector<Tuple> rows;
};

using RowSet = std::unordered_set<Tuple, VectorHash<Element>>;

void DedupRows(Table& t) {
  RowSet seen;
  std::vector<Tuple> unique;
  unique.reserve(t.rows.size());
  for (Tuple& row : t.rows) {
    if (seen.insert(row).second) {
      unique.push_back(std::move(row));
    }
  }
  t.rows = std::move(unique);
}

// All |domain|^k tuples, invoked as fn(tuple).
template <typename Fn>
void ForEachDomainTuple(std::size_t domain, std::size_t k, const Fn& fn) {
  Tuple t(k, 0);
  if (k == 0) {
    fn(t);
    return;
  }
  if (domain == 0) {
    return;
  }
  while (true) {
    fn(t);
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (t[pos] + 1 < domain) {
        ++t[pos];
        break;
      }
      t[pos] = 0;
      if (pos == 0) {
        return;
      }
    }
  }
}

// Extends `t` so its variable set becomes exactly `target_vars` (a sorted
// superset of t.vars): missing columns range over the full domain.
Table ExtendTo(const Table& t, const std::vector<std::string>& target_vars,
               std::size_t domain) {
  if (t.vars == target_vars) {
    return t;
  }
  // One hash map over t.vars instead of a std::find per target variable.
  std::unordered_map<std::string, std::size_t> source_pos;
  source_pos.reserve(t.vars.size());
  for (std::size_t i = 0; i < t.vars.size(); ++i) {
    source_pos.emplace(t.vars[i], i);
  }
  // (position in target, position in t.vars) for shared variables, plus the
  // target positions to fill from the domain.
  std::vector<std::pair<std::size_t, std::size_t>> old_pos;
  std::vector<std::size_t> new_pos;
  for (std::size_t i = 0; i < target_vars.size(); ++i) {
    auto it = source_pos.find(target_vars[i]);
    if (it != source_pos.end()) {
      old_pos.emplace_back(i, it->second);
    } else {
      new_pos.push_back(i);
    }
  }
  FMTK_CHECK(old_pos.size() == t.vars.size())
      << "target variable list must contain the table's variables";
  Table out;
  out.vars = target_vars;
  for (const Tuple& row : t.rows) {
    ForEachDomainTuple(domain, new_pos.size(), [&](const Tuple& extra) {
      Tuple extended(target_vars.size(), 0);
      for (const auto& [target, source] : old_pos) {
        extended[target] = row[source];
      }
      for (std::size_t i = 0; i < new_pos.size(); ++i) {
        extended[new_pos[i]] = extra[i];
      }
      out.rows.push_back(std::move(extended));
    });
  }
  return out;
}

std::vector<std::string> MergedVars(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) {
  std::vector<std::string> merged;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return merged;
}

// Natural (hash) join of two tables on their shared variables.
Table Join(const Table& a, const Table& b) {
  std::vector<std::string> shared;
  std::set_intersection(a.vars.begin(), a.vars.end(), b.vars.begin(),
                        b.vars.end(), std::back_inserter(shared));
  std::vector<std::string> merged = MergedVars(a.vars, b.vars);

  auto positions_of = [](const std::vector<std::string>& vars,
                         const std::vector<std::string>& subset) {
    std::vector<std::size_t> pos;
    pos.reserve(subset.size());
    for (const std::string& v : subset) {
      pos.push_back(static_cast<std::size_t>(
          std::find(vars.begin(), vars.end(), v) - vars.begin()));
    }
    return pos;
  };
  const std::vector<std::size_t> a_shared = positions_of(a.vars, shared);
  const std::vector<std::size_t> b_shared = positions_of(b.vars, shared);
  const std::vector<std::size_t> a_in_merged = positions_of(merged, a.vars);
  const std::vector<std::size_t> b_in_merged = positions_of(merged, b.vars);

  // Build on the smaller side.
  const bool build_a = a.rows.size() <= b.rows.size();
  const Table& build = build_a ? a : b;
  const Table& probe = build_a ? b : a;
  const std::vector<std::size_t>& build_key = build_a ? a_shared : b_shared;
  const std::vector<std::size_t>& probe_key = build_a ? b_shared : a_shared;
  const std::vector<std::size_t>& build_out =
      build_a ? a_in_merged : b_in_merged;
  const std::vector<std::size_t>& probe_out =
      build_a ? b_in_merged : a_in_merged;

  std::unordered_map<Tuple, std::vector<const Tuple*>, VectorHash<Element>>
      index;
  for (const Tuple& row : build.rows) {
    Tuple key;
    key.reserve(build_key.size());
    for (std::size_t p : build_key) {
      key.push_back(row[p]);
    }
    index[std::move(key)].push_back(&row);
  }

  Table out;
  out.vars = std::move(merged);
  for (const Tuple& row : probe.rows) {
    Tuple key;
    key.reserve(probe_key.size());
    for (std::size_t p : probe_key) {
      key.push_back(row[p]);
    }
    auto it = index.find(key);
    if (it == index.end()) {
      continue;
    }
    for (const Tuple* brow : it->second) {
      Tuple merged_row(out.vars.size(), 0);
      for (std::size_t i = 0; i < build_out.size(); ++i) {
        merged_row[build_out[i]] = (*brow)[i];
      }
      for (std::size_t i = 0; i < probe_out.size(); ++i) {
        merged_row[probe_out[i]] = row[i];
      }
      out.rows.push_back(std::move(merged_row));
    }
  }
  DedupRows(out);
  return out;
}

// Complement of `t` over domain^|vars|.
Table Complement(const Table& t, std::size_t domain) {
  RowSet present(t.rows.begin(), t.rows.end());
  Table out;
  out.vars = t.vars;
  ForEachDomainTuple(domain, t.vars.size(), [&](const Tuple& row) {
    if (present.find(row) == present.end()) {
      out.rows.push_back(row);
    }
  });
  return out;
}

class BottomUpEvaluator {
 public:
  explicit BottomUpEvaluator(const Structure& s) : s_(s) {}

  Result<Table> Eval(const Formula& f) {
    switch (f.kind()) {
      case FormulaKind::kTrue: {
        Table t;
        t.rows.push_back({});
        return t;
      }
      case FormulaKind::kFalse:
        return Table{};
      case FormulaKind::kAtom:
        return EvalAtom(f);
      case FormulaKind::kEqual:
        return EvalEqual(f);
      case FormulaKind::kNot: {
        FMTK_ASSIGN_OR_RETURN(Table t, Eval(f.child(0)));
        return Complement(t, s_.domain_size());
      }
      case FormulaKind::kAnd: {
        Table acc;
        acc.rows.push_back({});
        for (const Formula& c : f.children()) {
          FMTK_ASSIGN_OR_RETURN(Table t, Eval(c));
          acc = Join(acc, t);
          if (acc.rows.empty() && acc.vars == FreeVarList(f)) {
            break;
          }
        }
        return acc;
      }
      case FormulaKind::kOr: {
        std::vector<std::string> all_vars;
        for (const Formula& c : f.children()) {
          all_vars = MergedVars(all_vars, FreeVarList(c));
        }
        Table acc;
        acc.vars = all_vars;
        for (const Formula& c : f.children()) {
          FMTK_ASSIGN_OR_RETURN(Table t, Eval(c));
          Table extended = ExtendTo(t, all_vars, s_.domain_size());
          acc.rows.insert(acc.rows.end(),
                          std::make_move_iterator(extended.rows.begin()),
                          std::make_move_iterator(extended.rows.end()));
        }
        DedupRows(acc);
        return acc;
      }
      case FormulaKind::kImplies:
        return Eval(Formula::Or(Formula::Not(f.child(0)), f.child(1)));
      case FormulaKind::kIff:
        return Eval(Formula::Or(
            Formula::And(f.child(0), f.child(1)),
            Formula::And(Formula::Not(f.child(0)),
                         Formula::Not(f.child(1)))));
      case FormulaKind::kExists: {
        FMTK_ASSIGN_OR_RETURN(Table t, Eval(f.body()));
        return Project(t, f.variable());
      }
      case FormulaKind::kForall: {
        // ∀x φ == ¬∃x ¬φ.
        FMTK_ASSIGN_OR_RETURN(
            Table t,
            Eval(Formula::Exists(f.variable(), Formula::Not(f.body()))));
        return Complement(t, s_.domain_size());
      }
      case FormulaKind::kCountExists: {
        FMTK_ASSIGN_OR_RETURN(Table t, Eval(f.body()));
        return ProjectCounting(t, f.variable(), f.count());
      }
    }
    return Status::Internal("unreachable formula kind");
  }

 private:
  static std::vector<std::string> FreeVarList(const Formula& f) {
    std::set<std::string> fv = FreeVariables(f);
    return std::vector<std::string>(fv.begin(), fv.end());
  }

  Result<Element> ResolveConstant(const Term& term) const {
    std::optional<std::size_t> index =
        s_.signature().FindConstant(term.name);
    if (!index.has_value()) {
      return Status::SignatureMismatch("unknown constant symbol: " +
                                       term.name);
    }
    std::optional<Element> value = s_.constant(*index);
    if (!value.has_value()) {
      return Status::InvalidArgument("constant " + term.name +
                                     " is uninterpreted in this structure");
    }
    return *value;
  }

  Result<Table> EvalAtom(const Formula& f) {
    std::optional<std::size_t> index =
        s_.signature().FindRelation(f.relation_name());
    if (!index.has_value()) {
      return Status::SignatureMismatch("unknown relation symbol: " +
                                       f.relation_name());
    }
    if (s_.signature().relation(*index).arity != f.terms().size()) {
      return Status::SignatureMismatch("arity mismatch for relation " +
                                       f.relation_name());
    }
    Table out;
    out.vars = FreeVarList(f);
    // Resolve constant positions once.
    std::vector<std::optional<Element>> fixed(f.terms().size());
    for (std::size_t i = 0; i < f.terms().size(); ++i) {
      if (f.terms()[i].is_constant()) {
        FMTK_ASSIGN_OR_RETURN(Element e, ResolveConstant(f.terms()[i]));
        fixed[i] = e;
      }
    }
    for (const Tuple& tuple : s_.relation(*index).tuples()) {
      std::map<std::string, Element> binding;
      bool match = true;
      for (std::size_t i = 0; i < tuple.size() && match; ++i) {
        if (fixed[i].has_value()) {
          match = (*fixed[i] == tuple[i]);
          continue;
        }
        const std::string& var = f.terms()[i].name;
        auto [it, inserted] = binding.emplace(var, tuple[i]);
        if (!inserted && it->second != tuple[i]) {
          match = false;  // Repeated variable bound inconsistently.
        }
      }
      if (!match) {
        continue;
      }
      Tuple row;
      row.reserve(out.vars.size());
      for (const std::string& v : out.vars) {
        row.push_back(binding.at(v));
      }
      out.rows.push_back(std::move(row));
    }
    DedupRows(out);
    return out;
  }

  Result<Table> EvalEqual(const Formula& f) {
    const Term& lhs = f.terms()[0];
    const Term& rhs = f.terms()[1];
    Table out;
    out.vars = FreeVarList(f);
    if (lhs.is_constant() && rhs.is_constant()) {
      FMTK_ASSIGN_OR_RETURN(Element a, ResolveConstant(lhs));
      FMTK_ASSIGN_OR_RETURN(Element b, ResolveConstant(rhs));
      if (a == b) {
        out.rows.push_back({});
      }
      return out;
    }
    if (lhs.is_variable() && rhs.is_variable()) {
      if (lhs.name == rhs.name) {
        for (Element d = 0; d < s_.domain_size(); ++d) {
          out.rows.push_back({d});
        }
        return out;
      }
      for (Element d = 0; d < s_.domain_size(); ++d) {
        out.rows.push_back({d, d});
      }
      return out;
    }
    // Exactly one side is a variable.
    const Term& constant = lhs.is_constant() ? lhs : rhs;
    FMTK_ASSIGN_OR_RETURN(Element value, ResolveConstant(constant));
    out.rows.push_back({value});
    return out;
  }

  // ∃^{>=k} x: group rows by the remaining columns and keep groups with at
  // least k distinct x-values.
  Table ProjectCounting(const Table& t, const std::string& var,
                        std::size_t threshold) {
    auto it = std::find(t.vars.begin(), t.vars.end(), var);
    if (it == t.vars.end()) {
      // x not free in the body: at least k elements must exist at all.
      Table out;
      out.vars = t.vars;
      if (s_.domain_size() >= threshold) {
        out.rows = t.rows;
      }
      return out;
    }
    const std::size_t drop = static_cast<std::size_t>(it - t.vars.begin());
    Table out;
    out.vars = t.vars;
    out.vars.erase(out.vars.begin() + static_cast<std::ptrdiff_t>(drop));
    std::unordered_map<Tuple, std::size_t, VectorHash<Element>> group_counts;
    for (const Tuple& row : t.rows) {
      Tuple key;
      key.reserve(row.size() - 1);
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i != drop) {
          key.push_back(row[i]);
        }
      }
      ++group_counts[key];  // Rows are distinct, so this counts x-values.
    }
    for (auto& [key, count] : group_counts) {
      if (count >= threshold) {
        out.rows.push_back(key);
      }
    }
    return out;
  }

  Table Project(const Table& t, const std::string& var) {
    auto it = std::find(t.vars.begin(), t.vars.end(), var);
    if (it == t.vars.end()) {
      // x not free in the body: ∃x φ == φ on nonempty domains, false on the
      // empty one.
      if (s_.domain_size() == 0) {
        Table empty;
        empty.vars = t.vars;
        return empty;
      }
      return t;
    }
    const std::size_t drop =
        static_cast<std::size_t>(it - t.vars.begin());
    Table out;
    out.vars = t.vars;
    out.vars.erase(out.vars.begin() + static_cast<std::ptrdiff_t>(drop));
    out.rows.reserve(t.rows.size());
    for (const Tuple& row : t.rows) {
      Tuple projected;
      projected.reserve(row.size() - 1);
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i != drop) {
          projected.push_back(row[i]);
        }
      }
      out.rows.push_back(std::move(projected));
    }
    DedupRows(out);
    return out;
  }

  const Structure& s_;
};

}  // namespace

namespace {

// The analyzed front door shared by both evaluators: runs the static
// analyzer against the structure's vocabulary and rejects on errors
// (vocabulary problems always; safe-range violations only when the caller
// opted into the query profile).
Status AnalyzeFrontDoor(const Structure& structure, const Formula& f,
                        const QueryEvalOptions& options) {
  FoAnalyzerOptions analyzer_options;
  analyzer_options.signature = &structure.signature();
  analyzer_options.profile = options.require_safe_range
                                 ? FoProfile::kQuery
                                 : FoProfile::kModelCheck;
  FoAnalysis analysis = AnalyzeFormula(f, analyzer_options);
  Status status = analysis.status();
  if (options.analysis != nullptr) {
    *options.analysis = std::move(analysis);
  }
  return status;
}

}  // namespace

Result<Relation> EvaluateQuery(
    const Structure& structure, const Formula& f,
    const std::vector<std::string>& output_variables) {
  return EvaluateQuery(structure, f, output_variables, QueryEvalOptions{});
}

Result<Relation> EvaluateQuery(
    const Structure& structure, const Formula& f,
    const std::vector<std::string>& output_variables,
    const QueryEvalOptions& options) {
  FMTK_RETURN_IF_ERROR(AnalyzeFrontDoor(structure, f, options));
  // Every free variable must be listed.
  std::set<std::string> out_set(output_variables.begin(),
                                output_variables.end());
  if (out_set.size() != output_variables.size()) {
    return Status::InvalidArgument("duplicate output variable");
  }
  for (const std::string& v : FreeVariables(f)) {
    if (out_set.find(v) == out_set.end()) {
      return Status::InvalidArgument("free variable " + v +
                                     " missing from output variables");
    }
  }
  BottomUpEvaluator evaluator(structure);
  FMTK_ASSIGN_OR_RETURN(Table t, evaluator.Eval(f));
  std::vector<std::string> sorted_out(output_variables.begin(),
                                      output_variables.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  Table full = ExtendTo(t, sorted_out, structure.domain_size());
  // Reorder columns from sorted order to the requested order.
  std::vector<std::size_t> positions;
  positions.reserve(output_variables.size());
  for (const std::string& v : output_variables) {
    positions.push_back(static_cast<std::size_t>(
        std::find(full.vars.begin(), full.vars.end(), v) -
        full.vars.begin()));
  }
  Relation answers(output_variables.size());
  for (const Tuple& row : full.rows) {
    Tuple out_row;
    out_row.reserve(positions.size());
    for (std::size_t p : positions) {
      out_row.push_back(row[p]);
    }
    answers.Add(std::move(out_row));
  }
  return answers;
}

Result<Relation> EvaluateQueryNaive(
    const Structure& structure, const Formula& f,
    const std::vector<std::string>& output_variables) {
  FMTK_RETURN_IF_ERROR(AnalyzeFrontDoor(structure, f, QueryEvalOptions{}));
  std::set<std::string> out_set(output_variables.begin(),
                                output_variables.end());
  if (out_set.size() != output_variables.size()) {
    return Status::InvalidArgument("duplicate output variable");
  }
  for (const std::string& v : FreeVariables(f)) {
    if (out_set.find(v) == out_set.end()) {
      return Status::InvalidArgument("free variable " + v +
                                     " missing from output variables");
    }
  }
  // Compile once, then evaluate each candidate tuple on flat slot state —
  // no per-candidate signature validation or string-keyed environment.
  FMTK_ASSIGN_OR_RETURN(CompiledEvaluator compiled,
                        CompiledEvaluator::Compile(structure, f));
  const std::vector<std::string>& free_vars = compiled.free_variables();
  // free_vars[i] = output_variables[row_source[i]] (free vars are a subset).
  std::vector<std::size_t> row_source;
  row_source.reserve(free_vars.size());
  for (const std::string& v : free_vars) {
    row_source.push_back(static_cast<std::size_t>(
        std::find(output_variables.begin(), output_variables.end(), v) -
        output_variables.begin()));
  }
  Relation answers(output_variables.size());
  Status error = Status::OK();
  std::vector<Element> row(free_vars.size(), 0);
  ForEachDomainTuple(
      structure.domain_size(), output_variables.size(),
      [&](const Tuple& candidate) {
        if (!error.ok()) {
          return;
        }
        for (std::size_t i = 0; i < row_source.size(); ++i) {
          row[i] = candidate[row_source[i]];
        }
        Result<bool> holds = compiled.EvaluateRow(row);
        if (!holds.ok()) {
          error = holds.status();
          return;
        }
        if (*holds) {
          answers.Add(candidate);
        }
      });
  if (!error.ok()) {
    return error;
  }
  return answers;
}

}  // namespace fmtk
