#ifndef FMTK_EVAL_QUERY_EVAL_H_
#define FMTK_EVAL_QUERY_EVAL_H_

#include <string>
#include <vector>

#include "analysis/fo_analyzer.h"
#include "base/result.h"
#include "logic/formula.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// Options of the analyzed (checked) query entry points.
struct QueryEvalOptions {
  /// Reject formulas the static analyzer does not certify safe-range
  /// (FMTK010/FMTK011 become errors): the active-domain discipline of the
  /// survey's Sec. 3. The default keeps the toolkit's domain-relative
  /// semantics, where non-safe-range formulas (negation complements, extra
  /// output variables) are perfectly meaningful.
  bool require_safe_range = false;
  /// When set, receives the full static analysis of the formula — including
  /// the warnings of accepted queries.
  FoAnalysis* analysis = nullptr;
};

/// ans(φ(x̄), A) — the survey's query semantics: all tuples d̄ over the
/// domain with A ⊨ φ[x̄/d̄]. Column i of the result corresponds to
/// output_variables[i]; the list must cover every free variable of φ
/// (listing extra variables is allowed — they range over the whole domain,
/// matching the definition of an n-ary query induced by a formula with
/// fewer free variables).
///
/// Bottom-up relational-algebra evaluation (select/join/union/complement/
/// project), the way a database engine would run the query.
///
/// The static analyzer (analysis/fo_analyzer.h) is the checked front door:
/// vocabulary errors (FMTK001-003) reject the query with the full
/// diagnostic list in the status message.
Result<Relation> EvaluateQuery(const Structure& structure, const Formula& f,
                               const std::vector<std::string>& output_variables);
Result<Relation> EvaluateQuery(const Structure& structure, const Formula& f,
                               const std::vector<std::string>& output_variables,
                               const QueryEvalOptions& options);

/// The same answer relation computed by brute force: enumerate all
/// |A|^m assignments and run the compiled model checker
/// (eval/compiled_eval.h; the formula is compiled once, each candidate is a
/// flat slot row). Used to cross-validate the relational evaluator and as
/// the O(n^k) baseline in benches.
Result<Relation> EvaluateQueryNaive(
    const Structure& structure, const Formula& f,
    const std::vector<std::string>& output_variables);

}  // namespace fmtk

#endif  // FMTK_EVAL_QUERY_EVAL_H_
