#ifndef FMTK_EVAL_QUERY_EVAL_H_
#define FMTK_EVAL_QUERY_EVAL_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// ans(φ(x̄), A) — the survey's query semantics: all tuples d̄ over the
/// domain with A ⊨ φ[x̄/d̄]. Column i of the result corresponds to
/// output_variables[i]; the list must cover every free variable of φ
/// (listing extra variables is allowed — they range over the whole domain,
/// matching the definition of an n-ary query induced by a formula with
/// fewer free variables).
///
/// Bottom-up relational-algebra evaluation (select/join/union/complement/
/// project), the way a database engine would run the query.
Result<Relation> EvaluateQuery(const Structure& structure, const Formula& f,
                               const std::vector<std::string>& output_variables);

/// The same answer relation computed by brute force: enumerate all
/// |A|^m assignments and run the compiled model checker
/// (eval/compiled_eval.h; the formula is compiled once, each candidate is a
/// flat slot row). Used to cross-validate the relational evaluator and as
/// the O(n^k) baseline in benches.
Result<Relation> EvaluateQueryNaive(
    const Structure& structure, const Formula& f,
    const std::vector<std::string>& output_variables);

}  // namespace fmtk

#endif  // FMTK_EVAL_QUERY_EVAL_H_
