#include "eval/compiled_eval.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "analysis/fo_analyzer.h"
#include "base/bitset.h"
#include "base/check.h"
#include "logic/analysis.h"

namespace fmtk {

namespace internal_eval {

// A term with its symbol pre-resolved: either an environment slot (variable)
// or a constant index into the signature. The name is kept only for error
// messages on the cold path.
struct CompiledTerm {
  bool is_slot = true;
  std::uint32_t index = 0;
  std::string name;
};

struct PlanNode {
  FormulaKind kind = FormulaKind::kTrue;
  std::uint32_t relation = 0;          // kAtom: signature relation index.
  std::vector<CompiledTerm> terms;     // kAtom (arity many), kEqual (2).
  std::vector<std::uint32_t> children;
  std::uint32_t slot = 0;              // quantifiers: environment slot.
  std::uint32_t count = 0;             // kCountExists threshold.
  // Quantifier pruning guards: {relation, column} pairs such that the
  // quantified variable must occur at that column of that relation for the
  // body (∃/∃^{≥k}) or the antecedent (∀) to hold. Enumeration can be
  // restricted to the intersection of the guards' distinct column values.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> prune_guards;
};

struct Plan {
  std::vector<PlanNode> nodes;  // Post-order; root is nodes[root].
  std::uint32_t root = 0;
  std::vector<std::string> free_vars;  // Sorted; free_vars[i] has slot i.
  std::size_t slot_count = 0;
  Signature signature;  // The signature compiled against (for Bind checks).
};

// Per-quantifier candidate set, fixed at Bind time. `values` is null when
// the quantifier scans the whole domain; otherwise it points at a sorted
// ascending element list — a single guard's column values in place, or the
// bitset-AND of several guards' columns materialised into `storage`.
struct NodeCandidates {
  const std::vector<Element>* values = nullptr;
  std::vector<Element> storage;
};

struct Binding {
  const Structure* structure = nullptr;
  std::size_t domain = 0;
  std::size_t free_count = 0;
  std::vector<const Relation*> relations;          // By signature index.
  std::vector<std::optional<Element>> constants;   // By signature index.
  std::vector<NodeCandidates> prune;               // Per plan node.
};

namespace {

// Compiles a signature-validated Formula into a Plan. Cannot fail: every
// symbol was checked by CheckAgainstSignature and every variable is either
// quantified or appears in the precomputed free-variable list.
class Compiler {
 public:
  explicit Compiler(const Signature& signature) : signature_(signature) {}

  std::shared_ptr<const Plan> Run(const Formula& f) {
    auto plan = std::make_shared<Plan>();
    plan_ = plan.get();
    plan_->signature = signature_;
    std::set<std::string> free = FreeVariables(f);
    plan_->free_vars.assign(free.begin(), free.end());
    for (std::size_t i = 0; i < plan_->free_vars.size(); ++i) {
      free_slots_[plan_->free_vars[i]] = static_cast<std::uint32_t>(i);
    }
    slot_count_ = plan_->free_vars.size();
    plan_->root = CompileNode(f);
    plan_->slot_count = slot_count_;
    return plan;
  }

 private:
  std::uint32_t ResolveVariable(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->first == name) {
        return it->second;
      }
    }
    auto it = free_slots_.find(name);
    FMTK_CHECK(it != free_slots_.end()) << "variable " << name
                                        << " missing from free-variable list";
    return it->second;
  }

  bool IsBoundInScope(const std::string& name) const {
    for (const auto& [bound_name, unused] : scope_) {
      if (bound_name == name) {
        return true;
      }
    }
    return false;
  }

  CompiledTerm CompileTerm(const Term& t) const {
    CompiledTerm out;
    out.name = t.name;
    if (t.is_constant()) {
      out.is_slot = false;
      out.index = static_cast<std::uint32_t>(*signature_.FindConstant(t.name));
    } else {
      out.is_slot = true;
      out.index = ResolveVariable(t.name);
    }
    return out;
  }

  // A "transparent" conjunct in a quantifier body is one whose evaluation
  // can neither error nor depend on anything unavailable at prune time: an
  // atom with no constants whose terms are all the quantified variable v or
  // variables bound by enclosing quantifiers (constants could be
  // uninterpreted and free variables unbound at evaluation time; both would
  // make a skipped element error-free here but error-producing in a full
  // scan). When such an atom contains v it is a *guard*: v must occur at
  // that column of that relation or the atom — and with it the conjunction
  // — is false. Returns the guard column, nullopt for a v-independent but
  // still transparent atom.
  std::optional<std::size_t> GuardColumn(const Formula& g,
                                         const std::string& v,
                                         bool* transparent) const {
    *transparent = false;
    if (g.kind() == FormulaKind::kTrue) {
      *transparent = true;
      return std::nullopt;
    }
    if (g.kind() != FormulaKind::kAtom) {
      return std::nullopt;
    }
    std::optional<std::size_t> column;
    for (std::size_t i = 0; i < g.terms().size(); ++i) {
      const Term& term = g.terms()[i];
      if (term.is_constant()) {
        return std::nullopt;
      }
      if (term.name == v) {
        if (!column.has_value()) {
          column = i;
        }
      } else if (!IsBoundInScope(term.name)) {
        return std::nullopt;
      }
    }
    *transparent = true;
    return column;
  }

  // Collects guards from the leading run of transparent conjuncts (walking
  // nested conjunctions in evaluation order, stopping at the first
  // non-transparent one). Returns false to signal the stop.
  bool CollectGuards(const Formula& g, const std::string& v,
                     PlanNode* node) const {
    if (g.kind() == FormulaKind::kAnd) {
      for (const Formula& child : g.children()) {
        if (!CollectGuards(child, v, node)) {
          return false;
        }
      }
      return true;
    }
    bool transparent = false;
    std::optional<std::size_t> column = GuardColumn(g, v, &transparent);
    if (column.has_value()) {
      node->prune_guards.emplace_back(
          static_cast<std::uint32_t>(
              *signature_.FindRelation(g.relation_name())),
          static_cast<std::uint32_t>(*column));
    }
    return transparent;
  }

  // Quantifier pruning: restrict enumeration of ∃/∀/∃^{≥k} to the elements
  // that can satisfy every leading guard atom of the body (for ∀, of the
  // antecedent of a top-level implication). Elements outside a guard's
  // column make that guard — and with it the body (∃/∃^{≥k}) or the
  // antecedent (∀) — evaluate the same way a full scan would, without
  // errors: guards precede every conjunct that could error, so verdicts and
  // error classification are preserved exactly.
  void AnalyzePrune(const Formula& f, PlanNode* node) const {
    const Formula* g = &f.body();
    if (f.kind() == FormulaKind::kForall) {
      if (g->kind() != FormulaKind::kImplies) {
        return;
      }
      g = &g->child(0);
    }
    (void)CollectGuards(*g, f.variable(), node);
  }

  std::uint32_t Emit(PlanNode node) {
    plan_->nodes.push_back(std::move(node));
    return static_cast<std::uint32_t>(plan_->nodes.size() - 1);
  }

  std::uint32_t CompileNode(const Formula& f) {
    PlanNode node;
    node.kind = f.kind();
    switch (f.kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        return Emit(std::move(node));
      case FormulaKind::kAtom:
        node.relation = static_cast<std::uint32_t>(
            *signature_.FindRelation(f.relation_name()));
        node.terms.reserve(f.terms().size());
        for (const Term& t : f.terms()) {
          node.terms.push_back(CompileTerm(t));
        }
        return Emit(std::move(node));
      case FormulaKind::kEqual:
        node.terms.push_back(CompileTerm(f.terms()[0]));
        node.terms.push_back(CompileTerm(f.terms()[1]));
        return Emit(std::move(node));
      case FormulaKind::kNot:
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
      case FormulaKind::kImplies:
      case FormulaKind::kIff:
        node.children.reserve(f.child_count());
        for (const Formula& c : f.children()) {
          node.children.push_back(CompileNode(c));
        }
        return Emit(std::move(node));
      case FormulaKind::kExists:
      case FormulaKind::kForall:
      case FormulaKind::kCountExists: {
        node.slot = static_cast<std::uint32_t>(free_slots_.size() +
                                               scope_.size());
        slot_count_ = std::max(slot_count_, std::size_t{node.slot} + 1);
        if (f.kind() == FormulaKind::kCountExists) {
          node.count = static_cast<std::uint32_t>(f.count());
        }
        AnalyzePrune(f, &node);
        scope_.emplace_back(f.variable(), node.slot);
        node.children.push_back(CompileNode(f.body()));
        scope_.pop_back();
        return Emit(std::move(node));
      }
    }
    FMTK_CHECK(false) << "unreachable formula kind";
    return 0;
  }

  const Signature& signature_;
  Plan* plan_ = nullptr;
  std::vector<std::pair<std::string, std::uint32_t>> scope_;
  std::unordered_map<std::string, std::uint32_t> free_slots_;
  std::size_t slot_count_ = 0;
};

// Mutable per-evaluation (and per-thread) state: the flat slot environment,
// which free slots carry a value, a reusable tuple buffer for atom lookups,
// and local work counters.
struct EvalState {
  const Plan* plan;
  const Binding* binding;
  std::vector<Element> env;
  std::vector<unsigned char> has_value;  // Indexed by free-variable slot.
  Tuple scratch;
  EvalStats stats;
};

Status ResolveTerm(EvalState& st, const CompiledTerm& t, Element& out) {
  if (t.is_slot) {
    if (t.index < st.binding->free_count && !st.has_value[t.index]) {
      return Status::InvalidArgument("unbound variable: " + t.name);
    }
    out = st.env[t.index];
    return Status::OK();
  }
  const std::optional<Element>& value = st.binding->constants[t.index];
  if (!value.has_value()) {
    return Status::InvalidArgument("constant " + t.name +
                                   " is uninterpreted in this structure");
  }
  out = *value;
  return Status::OK();
}

Result<bool> EvalNode(EvalState& st, std::uint32_t idx) {
  ++st.stats.node_visits;
  const PlanNode& n = st.plan->nodes[idx];
  switch (n.kind) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom: {
      ++st.stats.atom_lookups;
      st.scratch.clear();
      for (const CompiledTerm& t : n.terms) {
        Element e;
        Status s = ResolveTerm(st, t, e);
        if (!s.ok()) {
          return s;
        }
        st.scratch.push_back(e);
      }
      return st.binding->relations[n.relation]->Contains(st.scratch);
    }
    case FormulaKind::kEqual: {
      ++st.stats.atom_lookups;
      Element a;
      Status s = ResolveTerm(st, n.terms[0], a);
      if (!s.ok()) {
        return s;
      }
      Element b;
      s = ResolveTerm(st, n.terms[1], b);
      if (!s.ok()) {
        return s;
      }
      return a == b;
    }
    case FormulaKind::kNot: {
      FMTK_ASSIGN_OR_RETURN(bool inner, EvalNode(st, n.children[0]));
      return !inner;
    }
    case FormulaKind::kAnd: {
      const std::size_t count = n.children.size();
      for (std::size_t i = 0; i < count; ++i) {
        FMTK_ASSIGN_OR_RETURN(bool value, EvalNode(st, n.children[i]));
        if (!value) {
          if (i + 1 < count) {
            ++st.stats.short_circuits;
          }
          return false;
        }
      }
      return true;
    }
    case FormulaKind::kOr: {
      const std::size_t count = n.children.size();
      for (std::size_t i = 0; i < count; ++i) {
        FMTK_ASSIGN_OR_RETURN(bool value, EvalNode(st, n.children[i]));
        if (value) {
          if (i + 1 < count) {
            ++st.stats.short_circuits;
          }
          return true;
        }
      }
      return false;
    }
    case FormulaKind::kImplies: {
      FMTK_ASSIGN_OR_RETURN(bool a, EvalNode(st, n.children[0]));
      if (!a) {
        ++st.stats.short_circuits;
        return true;
      }
      return EvalNode(st, n.children[1]);
    }
    case FormulaKind::kIff: {
      FMTK_ASSIGN_OR_RETURN(bool a, EvalNode(st, n.children[0]));
      FMTK_ASSIGN_OR_RETURN(bool b, EvalNode(st, n.children[1]));
      return a == b;
    }
    case FormulaKind::kCountExists: {
      const std::vector<Element>* candidates = st.binding->prune[idx].values;
      std::size_t witnesses = 0;
      auto try_element = [&](Element d,
                             std::optional<Result<bool>>& decided) {
        ++st.stats.quantifier_instantiations;
        st.env[n.slot] = d;
        Result<bool> r = EvalNode(st, n.children[0]);
        if (!r.ok()) {
          decided = std::move(r);
          return;
        }
        if (*r && ++witnesses >= n.count) {
          decided = true;
        }
      };
      std::optional<Result<bool>> decided;
      if (candidates != nullptr) {
        ++st.stats.index_hits;
        for (Element d : *candidates) {
          try_element(d, decided);
          if (decided.has_value()) {
            return *std::move(decided);
          }
        }
      } else {
        for (std::size_t d = 0; d < st.binding->domain; ++d) {
          try_element(static_cast<Element>(d), decided);
          if (decided.has_value()) {
            return *std::move(decided);
          }
        }
      }
      return witnesses >= n.count;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const bool is_exists = n.kind == FormulaKind::kExists;
      const std::vector<Element>* candidates = st.binding->prune[idx].values;
      auto try_element = [&](Element d,
                             std::optional<Result<bool>>& decided) {
        ++st.stats.quantifier_instantiations;
        st.env[n.slot] = d;
        Result<bool> r = EvalNode(st, n.children[0]);
        if (!r.ok()) {
          decided = std::move(r);
          return;
        }
        if (*r == is_exists) {
          decided = is_exists;
        }
      };
      std::optional<Result<bool>> decided;
      if (candidates != nullptr) {
        ++st.stats.index_hits;
        for (Element d : *candidates) {
          try_element(d, decided);
          if (decided.has_value()) {
            return *std::move(decided);
          }
        }
      } else {
        for (std::size_t d = 0; d < st.binding->domain; ++d) {
          try_element(static_cast<Element>(d), decided);
          if (decided.has_value()) {
            return *std::move(decided);
          }
        }
      }
      return !is_exists;
    }
  }
  FMTK_CHECK(false) << "unreachable formula kind";
  return false;
}

std::shared_ptr<const Binding> MakeBinding(const Plan& plan,
                                           const Structure& structure) {
  auto binding = std::make_shared<Binding>();
  binding->structure = &structure;
  binding->domain = structure.domain_size();
  binding->free_count = plan.free_vars.size();
  const Signature& sig = structure.signature();
  binding->relations.reserve(sig.relation_count());
  for (std::size_t i = 0; i < sig.relation_count(); ++i) {
    binding->relations.push_back(&structure.relation(i));
  }
  binding->constants.reserve(sig.constant_count());
  for (std::size_t i = 0; i < sig.constant_count(); ++i) {
    binding->constants.push_back(structure.constant(i));
  }
  binding->prune.resize(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (node.prune_guards.empty()) {
      continue;
    }
    // Built here, once, so parallel evaluation reads lock-free. A single
    // guard aliases the column's value list; several guards AND their
    // columns' bitsets and materialise the surviving elements (ascending,
    // matching the order a single-guard scan uses).
    NodeCandidates& cand = binding->prune[i];
    if (node.prune_guards.size() == 1) {
      const auto& [rel, col] = node.prune_guards[0];
      cand.values = &binding->relations[rel]->column_index(col).values;
    } else {
      ElementBitset surviving;
      for (std::size_t g = 0; g < node.prune_guards.size(); ++g) {
        const auto& [rel, col] = node.prune_guards[g];
        const ElementBitset column_set = ElementBitset::FromList(
            binding->domain, binding->relations[rel]->column_index(col).values);
        if (g == 0) {
          surviving = column_set;
        } else {
          surviving.AndWith(column_set);
        }
      }
      surviving.AppendSetBits(cand.storage);
      cand.values = &cand.storage;
    }
  }
  return binding;
}

}  // namespace

}  // namespace internal_eval

using internal_eval::Binding;
using internal_eval::EvalState;
using internal_eval::Plan;
using internal_eval::PlanNode;

Result<CompiledFormula> CompiledFormula::Compile(const Formula& f,
                                                 const Signature& signature) {
  // The static analyzer is the checked front door: vocabulary errors
  // (FMTK001-003) reject compilation with the same SignatureMismatch code
  // CheckAgainstSignature used, but with the full diagnostic list.
  FoAnalyzerOptions analyzer_options;
  analyzer_options.signature = &signature;
  analyzer_options.profile = FoProfile::kModelCheck;
  FMTK_RETURN_IF_ERROR(AnalyzeFormula(f, analyzer_options).status());
  internal_eval::Compiler compiler(signature);
  return CompiledFormula(compiler.Run(f));
}

const std::vector<std::string>& CompiledFormula::free_variables() const {
  return plan_->free_vars;
}

std::size_t CompiledFormula::slot_count() const { return plan_->slot_count; }

Result<CompiledEvaluator> CompiledEvaluator::Bind(CompiledFormula plan,
                                                  const Structure& structure,
                                                  ParallelPolicy policy) {
  if (!(structure.signature() == plan.plan_->signature)) {
    return Status::SignatureMismatch(
        "structure signature differs from the signature the formula was "
        "compiled against");
  }
  std::shared_ptr<const Binding> binding =
      internal_eval::MakeBinding(*plan.plan_, structure);
  return CompiledEvaluator(std::move(plan), std::move(binding), policy);
}

Result<CompiledEvaluator> CompiledEvaluator::Compile(const Structure& structure,
                                                     const Formula& f,
                                                     ParallelPolicy policy) {
  FMTK_ASSIGN_OR_RETURN(CompiledFormula plan,
                        CompiledFormula::Compile(f, structure.signature()));
  std::shared_ptr<const Binding> binding =
      internal_eval::MakeBinding(*plan.plan_, structure);
  return CompiledEvaluator(std::move(plan), std::move(binding), policy);
}

const std::vector<std::string>& CompiledEvaluator::free_variables() const {
  return plan_.free_variables();
}

Result<bool> CompiledEvaluator::Evaluate(const VarAssignment& assignment) {
  const Plan& plan = *plan_.plan_;
  std::vector<Element> env(plan.slot_count, 0);
  std::vector<unsigned char> has_value(plan.free_vars.size(), 0);
  for (std::size_t i = 0; i < plan.free_vars.size(); ++i) {
    auto it = assignment.find(plan.free_vars[i]);
    if (it != assignment.end()) {
      env[i] = it->second;
      has_value[i] = 1;
    }
  }
  return Run(std::move(env), std::move(has_value));
}

Result<bool> CompiledEvaluator::EvaluateRow(const std::vector<Element>& row) {
  const Plan& plan = *plan_.plan_;
  FMTK_CHECK(row.size() == plan.free_vars.size())
      << "row size " << row.size() << " does not match "
      << plan.free_vars.size() << " free variables";
  std::vector<Element> env(plan.slot_count, 0);
  std::copy(row.begin(), row.end(), env.begin());
  std::vector<unsigned char> has_value(plan.free_vars.size(), 1);
  return Run(std::move(env), std::move(has_value));
}

Result<bool> CompiledEvaluator::Run(std::vector<Element> env,
                                    std::vector<unsigned char> has_value) {
  const Plan& plan = *plan_.plan_;
  const Binding& binding = *binding_;
  const PlanNode& root = plan.nodes[plan.root];

  const bool parallel_shape =
      policy_.enabled && plan.free_vars.empty() &&
      (root.kind == FormulaKind::kExists ||
       root.kind == FormulaKind::kForall);
  if (parallel_shape) {
    const std::vector<Element>* candidates = binding.prune[plan.root].values;
    const std::size_t candidate_count =
        candidates != nullptr ? candidates->size() : binding.domain;
    std::size_t threads = policy_.num_threads != 0
                              ? policy_.num_threads
                              : std::max<std::size_t>(
                                    1, std::thread::hardware_concurrency());
    threads = std::min(threads, candidate_count);
    if (candidate_count >= policy_.min_domain && threads > 1) {
      const bool is_exists = root.kind == FormulaKind::kExists;
      ++stats_.node_visits;
      if (candidates != nullptr) {
        ++stats_.index_hits;
      }

      // Each worker scans a contiguous chunk in ascending order and records
      // its first decisive element (witness/counterexample or error). The
      // globally smallest decisive index wins, reproducing the sequential
      // left-to-right semantics; `best` lets workers abandon elements that
      // can no longer matter.
      struct Outcome {
        std::size_t index = SIZE_MAX;
        std::optional<Result<bool>> result;
        EvalStats stats;
      };
      std::vector<Outcome> outcomes(threads);
      std::atomic<std::size_t> best{SIZE_MAX};
      const std::size_t chunk = (candidate_count + threads - 1) / threads;
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          EvalState st{&plan, &binding, env, has_value, {}, {}};
          const std::size_t begin = t * chunk;
          const std::size_t end = std::min(begin + chunk, candidate_count);
          for (std::size_t k = begin; k < end; ++k) {
            if (best.load(std::memory_order_relaxed) < k) {
              break;
            }
            const Element d = candidates != nullptr ? (*candidates)[k]
                                                    : static_cast<Element>(k);
            ++st.stats.quantifier_instantiations;
            st.env[root.slot] = d;
            Result<bool> r = internal_eval::EvalNode(st, root.children[0]);
            if (!r.ok() || *r == is_exists) {
              outcomes[t].index = k;
              outcomes[t].result = std::move(r);
              std::size_t current = best.load();
              while (k < current &&
                     !best.compare_exchange_weak(current, k)) {
              }
              break;
            }
          }
          outcomes[t].stats = st.stats;
        });
      }
      for (std::thread& w : workers) {
        w.join();
      }
      const Outcome* decisive = nullptr;
      for (const Outcome& o : outcomes) {
        stats_ += o.stats;
        if (o.result.has_value() &&
            (decisive == nullptr || o.index < decisive->index)) {
          decisive = &o;
        }
      }
      if (decisive == nullptr) {
        return !is_exists;
      }
      if (!decisive->result->ok()) {
        return decisive->result->status();
      }
      return is_exists;
    }
  }

  EvalState st{&plan, &binding, std::move(env), std::move(has_value), {}, {}};
  Result<bool> result = internal_eval::EvalNode(st, plan.root);
  stats_ += st.stats;
  return result;
}

}  // namespace fmtk
