#ifndef FMTK_EVAL_MODEL_CHECK_H_
#define FMTK_EVAL_MODEL_CHECK_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

/// Work counters for complexity experiments (E1): the naive recursive
/// checker visits O(n^k) assignments, matching the survey's combined
/// complexity discussion. Shared by the interpreting ModelChecker and the
/// compiled evaluator (eval/compiled_eval.h).
struct EvalStats {
  std::uint64_t node_visits = 0;
  std::uint64_t atom_lookups = 0;
  std::uint64_t quantifier_instantiations = 0;
  /// Early exits of kAnd/kOr/kImplies that skipped unevaluated children.
  std::uint64_t short_circuits = 0;
  /// Quantifier blocks that enumerated a posting-list candidate set instead
  /// of the full domain (compiled evaluator only).
  std::uint64_t index_hits = 0;

  EvalStats& operator+=(const EvalStats& other);

  /// e.g. "node_visits=12 atom_lookups=4 ... index_hits=0".
  std::string ToString() const;
};

/// A variable assignment: names to domain elements.
using VarAssignment = std::map<std::string, Element>;

/// The survey's naive recursive model-checking algorithm: time O(n^k),
/// space O(k log n). Validates the formula against the structure's
/// signature up front.
///
/// This is the reference interpreter, kept as the differential-testing
/// oracle. Production call sites (Satisfies, EvaluateQueryNaive, the core
/// subsystems) go through the compiled evaluator in eval/compiled_eval.h,
/// which produces identical verdicts and error classifications on flat
/// integer state.
class ModelChecker {
 public:
  /// `structure` must outlive the checker.
  explicit ModelChecker(const Structure& structure) : structure_(structure) {}

  /// Decides structure ⊨ f under `assignment`; every free variable of f
  /// must be bound. Returns an error for signature mismatches or unbound
  /// variables.
  Result<bool> Check(const Formula& f,
                     const VarAssignment& assignment = {});

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats{}; }

 private:
  Result<bool> Eval(const Formula& f, VarAssignment& assignment);
  Result<Element> ResolveTerm(const Term& term,
                              const VarAssignment& assignment) const;

  const Structure& structure_;
  EvalStats stats_;
};

/// One-shot convenience: structure ⊨ sentence. Runs the compiled evaluator
/// (eval/compiled_eval.h); semantics match ModelChecker::Check exactly.
Result<bool> Satisfies(const Structure& structure, const Formula& sentence);

/// One-shot with a partial assignment for the free variables.
Result<bool> Satisfies(const Structure& structure, const Formula& f,
                       const VarAssignment& assignment);

}  // namespace fmtk

#endif  // FMTK_EVAL_MODEL_CHECK_H_
