#include "circuits/circuit.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace fmtk {

Circuit::GateId Circuit::Add(Gate gate) {
  for (GateId in : gate.fanin) {
    FMTK_CHECK(in < gates_.size()) << "fan-in references a future gate";
  }
  gates_.push_back(std::move(gate));
  return gates_.size() - 1;
}

Circuit::GateId Circuit::AddInput(std::string label) {
  Gate g;
  g.kind = GateKind::kInput;
  g.input_index = input_count_++;
  g.label = std::move(label);
  GateId id = Add(std::move(g));
  inputs_.push_back(id);
  return id;
}

Circuit::GateId Circuit::AddConst(bool value) {
  Gate g;
  g.kind = GateKind::kConst;
  g.const_value = value;
  return Add(std::move(g));
}

Circuit::GateId Circuit::AddNot(GateId input) {
  Gate g;
  g.kind = GateKind::kNot;
  g.fanin = {input};
  return Add(std::move(g));
}

Circuit::GateId Circuit::AddAnd(std::vector<GateId> inputs) {
  Gate g;
  g.kind = GateKind::kAnd;
  g.fanin = std::move(inputs);
  return Add(std::move(g));
}

Circuit::GateId Circuit::AddOr(std::vector<GateId> inputs) {
  Gate g;
  g.kind = GateKind::kOr;
  g.fanin = std::move(inputs);
  return Add(std::move(g));
}

void Circuit::SetOutput(GateId gate) {
  FMTK_CHECK(gate < gates_.size()) << "output gate out of range";
  output_ = gate;
}

std::size_t Circuit::Depth() const {
  std::vector<std::size_t> depth(gates_.size(), 0);
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    std::size_t in_depth = 0;
    for (GateId in : g.fanin) {
      in_depth = std::max(in_depth, depth[in]);
    }
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kConst:
        depth[id] = 0;
        break;
      case GateKind::kNot:
        depth[id] = in_depth;  // Negations are wires in the AC0 convention.
        break;
      case GateKind::kAnd:
      case GateKind::kOr:
        depth[id] = in_depth + 1;
        break;
    }
  }
  return gates_.empty() ? 0 : depth[output_];
}

Result<bool> Circuit::Evaluate(const std::vector<bool>& inputs) const {
  if (inputs.size() != input_count_) {
    return Status::InvalidArgument(
        "circuit has " + std::to_string(input_count_) + " inputs, got " +
        std::to_string(inputs.size()));
  }
  if (gates_.empty()) {
    return Status::InvalidArgument("empty circuit");
  }
  std::vector<bool> value(gates_.size(), false);
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    switch (g.kind) {
      case GateKind::kInput:
        value[id] = inputs[g.input_index];
        break;
      case GateKind::kConst:
        value[id] = g.const_value;
        break;
      case GateKind::kNot:
        value[id] = !value[g.fanin[0]];
        break;
      case GateKind::kAnd: {
        bool v = true;
        for (GateId in : g.fanin) {
          v = v && value[in];
        }
        value[id] = v;
        break;
      }
      case GateKind::kOr: {
        bool v = false;
        for (GateId in : g.fanin) {
          v = v || value[in];
        }
        value[id] = v;
        break;
      }
    }
  }
  return static_cast<bool>(value[output_]);
}

const std::string& Circuit::input_label(std::size_t index) const {
  FMTK_CHECK(index < inputs_.size()) << "input index out of range";
  return gates_[inputs_[index]].label;
}

}  // namespace fmtk
