#ifndef FMTK_CIRCUITS_CIRCUIT_H_
#define FMTK_CIRCUITS_CIRCUIT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/result.h"

namespace fmtk {

/// A Boolean circuit with unbounded fan-in AND/OR gates, NOT gates,
/// constants and named inputs — the AC⁰ computation model of the survey's
/// data-complexity section. Gates form a DAG; inputs to a gate must be
/// created before it (ids are topological by construction).
class Circuit {
 public:
  enum class GateKind { kInput, kConst, kNot, kAnd, kOr };

  using GateId = std::size_t;

  Circuit() = default;

  /// Adds an input gate; `label` is documentation (e.g. "E(2,3)").
  GateId AddInput(std::string label);

  GateId AddConst(bool value);
  GateId AddNot(GateId input);
  /// Empty fan-in is allowed: AND() = true, OR() = false.
  GateId AddAnd(std::vector<GateId> inputs);
  GateId AddOr(std::vector<GateId> inputs);

  void SetOutput(GateId gate);
  GateId output() const { return output_; }

  std::size_t gate_count() const { return gates_.size(); }
  std::size_t input_count() const { return input_count_; }

  /// Depth: the longest path from any input/constant to the output, with
  /// NOT gates counted as wires (the AC⁰ convention — negations are pushed
  /// to the inputs for free).
  std::size_t Depth() const;

  /// Evaluates the circuit; `inputs` must assign every input gate (by
  /// input index, in creation order).
  Result<bool> Evaluate(const std::vector<bool>& inputs) const;

  /// The label of the i-th input (creation order).
  const std::string& input_label(std::size_t index) const;

 private:
  struct Gate {
    GateKind kind;
    bool const_value = false;
    std::size_t input_index = 0;   // kInput.
    std::string label;             // kInput.
    std::vector<GateId> fanin;
  };

  GateId Add(Gate gate);

  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::size_t input_count_ = 0;
  GateId output_ = 0;
};

}  // namespace fmtk

#endif  // FMTK_CIRCUITS_CIRCUIT_H_
