#ifndef FMTK_CIRCUITS_COMPILE_H_
#define FMTK_CIRCUITS_COMPILE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "base/result.h"
#include "circuits/circuit.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

/// The FO -> AC⁰ translation behind "FO has constant-time parallel data
/// complexity": for a fixed sentence φ over a relational signature (no
/// constants) and a domain size n, produce the n-th circuit of the family.
///
/// Inputs: one bit per potential ground atom R(d̄) — relations in signature
/// order, tuples in odometer order. Subformulas under an assignment become
/// gates (∃ = unbounded fan-in OR over the n instantiations, ∀ = AND);
/// shared subcircuits are memoized, giving size O(|φ| · n^width) and depth
/// bounded by the formula depth — independent of n, which is exactly the
/// AC⁰ shape the E3 experiment measures.
Result<Circuit> CompileSentence(const Formula& sentence,
                                const Signature& signature, std::size_t n);

/// The circuit-input encoding of a structure (must match the compile-time
/// signature and domain size).
Result<std::vector<bool>> EncodeStructure(const Structure& s);

/// Number of input bits for (signature, n): Σ_R n^arity(R).
std::size_t InputBitCount(const Signature& signature, std::size_t n);

}  // namespace fmtk

#endif  // FMTK_CIRCUITS_COMPILE_H_
