#include "circuits/compile.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "base/check.h"
#include "logic/analysis.h"

namespace fmtk {

namespace {

// n^k with overflow guard (domains here are small).
std::size_t Pow(std::size_t n, std::size_t k) {
  std::size_t out = 1;
  for (std::size_t i = 0; i < k; ++i) {
    out *= n;
  }
  return out;
}

class Compiler {
 public:
  Compiler(const Signature& signature, std::size_t n)
      : signature_(signature), n_(n) {
    std::size_t offset = 0;
    for (std::size_t r = 0; r < signature.relation_count(); ++r) {
      offsets_.push_back(offset);
      offset += Pow(n, signature.relation(r).arity);
    }
    total_inputs_ = offset;
  }

  Result<Circuit> Compile(const Formula& sentence) {
    // Materialize every input bit up front so the encoding is positional.
    for (std::size_t r = 0; r < signature_.relation_count(); ++r) {
      const std::size_t arity = signature_.relation(r).arity;
      const std::size_t count = Pow(n_, arity);
      for (std::size_t idx = 0; idx < count; ++idx) {
        circuit_.AddInput(signature_.relation(r).name + "#" +
                          std::to_string(idx));
      }
    }
    std::map<std::string, Element> env;
    FMTK_ASSIGN_OR_RETURN(Circuit::GateId out, Build(sentence, env));
    circuit_.SetOutput(out);
    return std::move(circuit_);
  }

 private:
  using Env = std::map<std::string, Element>;

  // Memo key: subformula node + the values of its free variables.
  using MemoKey = std::pair<const void*, std::vector<Element>>;

  Result<Element> Resolve(const Term& t, const Env& env) {
    if (t.is_constant()) {
      return Status::Unsupported(
          "circuit compilation does not support constants");
    }
    auto it = env.find(t.name);
    if (it == env.end()) {
      return Status::InvalidArgument("unbound variable " + t.name +
                                     " (compile a sentence)");
    }
    return it->second;
  }

  Result<Circuit::GateId> Build(const Formula& f, Env& env) {
    // Free-variable footprint for memoization.
    std::vector<Element> footprint;
    for (const std::string& v : FreeVariables(f)) {
      auto it = env.find(v);
      if (it == env.end()) {
        return Status::InvalidArgument("unbound variable " + v);
      }
      footprint.push_back(it->second);
    }
    MemoKey key{f.node_identity(), std::move(footprint)};
    auto memo_it = memo_.find(key);
    if (memo_it != memo_.end()) {
      return memo_it->second;
    }
    FMTK_ASSIGN_OR_RETURN(Circuit::GateId id, BuildUncached(f, env));
    memo_.emplace(std::move(key), id);
    return id;
  }

  Result<Circuit::GateId> BuildUncached(const Formula& f, Env& env) {
    switch (f.kind()) {
      case FormulaKind::kTrue:
        return circuit_.AddConst(true);
      case FormulaKind::kFalse:
        return circuit_.AddConst(false);
      case FormulaKind::kAtom: {
        std::optional<std::size_t> rel =
            signature_.FindRelation(f.relation_name());
        if (!rel.has_value()) {
          return Status::SignatureMismatch("unknown relation: " +
                                           f.relation_name());
        }
        if (signature_.relation(*rel).arity != f.terms().size()) {
          return Status::SignatureMismatch("arity mismatch for " +
                                           f.relation_name());
        }
        std::size_t index = 0;
        for (const Term& t : f.terms()) {
          FMTK_ASSIGN_OR_RETURN(Element e, Resolve(t, env));
          index = index * n_ + e;
        }
        // Gate id of input bit: inputs were added first, in order.
        return offsets_[*rel] + index;
      }
      case FormulaKind::kEqual: {
        FMTK_ASSIGN_OR_RETURN(Element a, Resolve(f.terms()[0], env));
        FMTK_ASSIGN_OR_RETURN(Element b, Resolve(f.terms()[1], env));
        return circuit_.AddConst(a == b);
      }
      case FormulaKind::kNot: {
        FMTK_ASSIGN_OR_RETURN(Circuit::GateId in, Build(f.child(0), env));
        return circuit_.AddNot(in);
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        std::vector<Circuit::GateId> ins;
        ins.reserve(f.child_count());
        for (const Formula& c : f.children()) {
          FMTK_ASSIGN_OR_RETURN(Circuit::GateId in, Build(c, env));
          ins.push_back(in);
        }
        return f.kind() == FormulaKind::kAnd
                   ? circuit_.AddAnd(std::move(ins))
                   : circuit_.AddOr(std::move(ins));
      }
      case FormulaKind::kImplies: {
        FMTK_ASSIGN_OR_RETURN(Circuit::GateId a, Build(f.child(0), env));
        FMTK_ASSIGN_OR_RETURN(Circuit::GateId b, Build(f.child(1), env));
        return circuit_.AddOr({circuit_.AddNot(a), b});
      }
      case FormulaKind::kIff: {
        FMTK_ASSIGN_OR_RETURN(Circuit::GateId a, Build(f.child(0), env));
        FMTK_ASSIGN_OR_RETURN(Circuit::GateId b, Build(f.child(1), env));
        Circuit::GateId both = circuit_.AddAnd({a, b});
        Circuit::GateId neither =
            circuit_.AddAnd({circuit_.AddNot(a), circuit_.AddNot(b)});
        return circuit_.AddOr({both, neither});
      }
      case FormulaKind::kCountExists:
        return Status::Unsupported(
            "counting quantifiers are not compiled: FO(Cnt) needs threshold "
            "gates (TC0), not AC0");
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        // Unbounded fan-in OR / AND over the n instantiations.
        std::vector<Circuit::GateId> ins;
        ins.reserve(n_);
        auto it = env.find(f.variable());
        std::optional<Element> shadowed;
        if (it != env.end()) {
          shadowed = it->second;
        }
        Status error = Status::OK();
        for (Element d = 0; d < n_; ++d) {
          env[f.variable()] = d;
          Result<Circuit::GateId> in = Build(f.body(), env);
          if (!in.ok()) {
            error = in.status();
            break;
          }
          ins.push_back(*in);
        }
        if (shadowed.has_value()) {
          env[f.variable()] = *shadowed;
        } else {
          env.erase(f.variable());
        }
        FMTK_RETURN_IF_ERROR(error);
        return f.kind() == FormulaKind::kExists
                   ? circuit_.AddOr(std::move(ins))
                   : circuit_.AddAnd(std::move(ins));
      }
    }
    return Status::Internal("unreachable formula kind");
  }

  const Signature& signature_;
  std::size_t n_;
  std::vector<std::size_t> offsets_;
  std::size_t total_inputs_ = 0;
  Circuit circuit_;
  std::map<MemoKey, Circuit::GateId> memo_;
};

}  // namespace

Result<Circuit> CompileSentence(const Formula& sentence,
                                const Signature& signature, std::size_t n) {
  if (!FreeVariables(sentence).empty()) {
    return Status::InvalidArgument("compile a sentence (no free variables)");
  }
  if (signature.constant_count() > 0) {
    return Status::Unsupported(
        "circuit compilation does not support constants");
  }
  FMTK_RETURN_IF_ERROR(CheckAgainstSignature(sentence, signature));
  Compiler compiler(signature, n);
  return compiler.Compile(sentence);
}

std::size_t InputBitCount(const Signature& signature, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t r = 0; r < signature.relation_count(); ++r) {
    total += Pow(n, signature.relation(r).arity);
  }
  return total;
}

Result<std::vector<bool>> EncodeStructure(const Structure& s) {
  if (s.signature().constant_count() > 0) {
    return Status::Unsupported("encoding does not support constants");
  }
  std::vector<bool> bits(InputBitCount(s.signature(), s.domain_size()),
                         false);
  std::size_t offset = 0;
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const std::size_t arity = s.signature().relation(r).arity;
    for (const Tuple& t : s.relation(r).tuples()) {
      std::size_t index = 0;
      for (Element e : t) {
        index = index * s.domain_size() + e;
      }
      bits[offset + index] = true;
    }
    offset += Pow(s.domain_size(), arity);
  }
  return bits;
}

}  // namespace fmtk
