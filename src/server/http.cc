#include "server/http.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>

namespace fmtk {

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// RFC 7230 token characters (header names, methods).
bool IsTokenChar(char c) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

std::string_view HttpRequest::QueryParam(std::string_view key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair = rest.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (eq == std::string_view::npos && pair == key) return "";
    if (amp == std::string_view::npos) break;
    rest.remove_prefix(amp + 1);
  }
  return {};
}

// --- HttpRequestParser ------------------------------------------------------

void HttpRequestParser::Reset() {
  request_ = HttpRequest{};
  consumed_ = 0;
  error_status_ = 400;
  error_.clear();
}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string message) {
  error_status_ = status;
  error_ = std::move(message);
  return State::kError;
}

HttpRequestParser::State HttpRequestParser::Parse(std::string_view buffer) {
  Reset();

  // Locate the end of the header block; CRLF per the RFC, bare LF
  // tolerated (robustness principle — printf-style hand-written clients).
  std::size_t head_end = std::string_view::npos;
  std::size_t body_start = 0;
  const std::size_t crlf = buffer.find("\r\n\r\n");
  const std::size_t lflf = buffer.find("\n\n");
  if (crlf != std::string_view::npos &&
      (lflf == std::string_view::npos || crlf + 1 <= lflf)) {
    head_end = crlf;
    body_start = crlf + 4;
  } else if (lflf != std::string_view::npos) {
    head_end = lflf;
    body_start = lflf + 2;
  }
  if (head_end == std::string_view::npos) {
    if (buffer.size() > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    return State::kNeedMore;
  }
  if (head_end > limits_.max_header_bytes) {
    return Fail(431, "header block exceeds " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }

  // Split the head into lines (strip one optional trailing '\r' per line).
  std::string_view head = buffer.substr(0, head_end);
  std::vector<std::string_view> lines;
  while (!head.empty()) {
    const std::size_t nl = head.find('\n');
    std::string_view line = head.substr(0, nl);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    if (nl == std::string_view::npos) break;
    head.remove_prefix(nl + 1);
  }
  if (lines.empty() || lines[0].empty()) {
    return Fail(400, "empty request line");
  }

  // Request line: METHOD SP TARGET SP HTTP/1.x
  {
    const std::string_view line = lines[0];
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
      return Fail(400, "malformed request line");
    }
    const std::string_view method = line.substr(0, sp1);
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);
    if (method.empty() || method.size() > 16 ||
        !std::all_of(method.begin(), method.end(), IsTokenChar)) {
      return Fail(400, "malformed method");
    }
    if (target.empty() || target[0] != '/' ||
        std::any_of(target.begin(), target.end(), [](char c) {
          return static_cast<unsigned char>(c) < 0x21;
        })) {
      return Fail(400, "malformed request target");
    }
    if (version == "HTTP/1.1") {
      request_.version_minor = 1;
    } else if (version == "HTTP/1.0") {
      request_.version_minor = 0;
    } else {
      return Fail(505, "unsupported HTTP version");
    }
    request_.method = std::string(method);
    request_.target = std::string(target);
    const std::size_t qmark = target.find('?');
    request_.path = std::string(target.substr(0, qmark));
    request_.query = qmark == std::string_view::npos
                         ? std::string()
                         : std::string(target.substr(qmark + 1));
  }

  // Header fields.
  std::size_t content_length = 0;
  bool have_content_length = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) continue;
    if (line[0] == ' ' || line[0] == '\t') {
      return Fail(400, "obsolete header line folding");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(400, "malformed header field");
    }
    const std::string_view raw_name = line.substr(0, colon);
    if (!std::all_of(raw_name.begin(), raw_name.end(), IsTokenChar)) {
      return Fail(400, "malformed header name");
    }
    std::string name = ToLowerAscii(raw_name);
    const std::string_view value = TrimOws(line.substr(colon + 1));
    if (std::any_of(value.begin(), value.end(), [](char c) {
          const unsigned char u = static_cast<unsigned char>(c);
          return u < 0x20 && c != '\t';
        })) {
      return Fail(400, "control character in header value");
    }
    if (name == "content-length") {
      if (value.empty() || value.size() > 18 ||
          !std::all_of(value.begin(), value.end(),
                       [](char c) { return c >= '0' && c <= '9'; })) {
        return Fail(400, "malformed Content-Length");
      }
      std::size_t parsed = 0;
      for (char c : value) {
        parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
      }
      if (have_content_length && parsed != content_length) {
        return Fail(400, "conflicting Content-Length headers");
      }
      content_length = parsed;
      have_content_length = true;
    }
    if (name == "transfer-encoding") {
      return Fail(501, "Transfer-Encoding is not supported");
    }
    request_.headers.emplace_back(std::move(name), std::string(value));
  }
  if (content_length > limits_.max_body_bytes) {
    return Fail(413, "body exceeds " +
                         std::to_string(limits_.max_body_bytes) + " bytes");
  }

  if (buffer.size() < body_start + content_length) {
    return State::kNeedMore;
  }
  request_.body = std::string(buffer.substr(body_start, content_length));
  consumed_ = body_start + content_length;
  return State::kComplete;
}

// --- HttpServer -------------------------------------------------------------

struct HttpServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd;
  std::string buffer;       // Unparsed bytes read off the socket.
  HttpRequest request;      // Valid while queued for / held by a worker.
  bool keep_alive = true;   // Decision for the request being handled.
  std::int64_t last_active_ms = 0;
};

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load()) return Status::InvalidArgument("server already started");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Status::Internal("bind(" + options_.host + ":" +
                                      std::to_string(options_.port) +
                                      ") failed: " + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 128) != 0) {
    const Status s =
        Status::Internal("listen() failed: " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed: " + std::string(strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  running_.store(true);
  loop_thread_ = std::thread([this] { LoopThread(); });
  const std::size_t workers = std::max<std::size_t>(1, options_.worker_threads);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    // Anything still queued or completed dies here (fds close in ~Connection).
    std::lock_guard<std::mutex> lock(queue_mu_);
    work_queue_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_queue_.clear();
  }
  idle_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

HttpServer::Stats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void HttpServer::Wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  [[maybe_unused]] ssize_t n = write(wake_write_fd_, &byte, 1);
}

void HttpServer::AcceptPending() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // EMFILE etc.: retry on the next loop pass.
    }
    if (live_connections_ >= options_.max_connections) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.connections_rejected;
      }
      static constexpr char kBusy[] =
          "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n"
          "Connection: close\r\n\r\n";
      [[maybe_unused]] ssize_t n =
          send(fd, kBusy, sizeof(kBusy) - 1, MSG_NOSIGNAL);
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(fd);
    conn->last_active_ms = NowMs();
    ++live_connections_;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    idle_.emplace(fd, std::move(conn));
  }
}

bool HttpServer::WriteResponse(Connection* conn, const HttpResponse& response,
                               bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpReasonPhrase(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;

  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        send(conn->fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      if (poll(&pfd, 1, 5000) <= 0) return false;  // Stuck peer: give up.
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_out += out.size();
  }
  return true;
}

bool HttpServer::TryDispatch(Connection* conn) {
  if (conn->buffer.empty()) return true;
  HttpRequestParser parser(options_.limits);
  const HttpRequestParser::State state = parser.Parse(conn->buffer);
  switch (state) {
    case HttpRequestParser::State::kNeedMore:
      return true;
    case HttpRequestParser::State::kError: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.parse_errors;
      }
      HttpResponse err = HttpResponse::Json(
          parser.error_status(),
          "{\"error\":\"" + parser.error() + "\"}\n");
      WriteResponse(conn, err, /*keep_alive=*/false);
      return false;
    }
    case HttpRequestParser::State::kComplete:
      break;
  }

  conn->request = parser.request();
  conn->buffer.erase(0, parser.consumed());
  const std::string_view connection_header = conn->request.Header("connection");
  conn->keep_alive = conn->request.version_minor >= 1
                         ? connection_header != "close"
                         : ToLowerAscii(connection_header) == "keep-alive";

  // Shed at the HTTP layer when the worker queue is saturated: answer 503
  // from the loop thread without occupying a worker.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (work_queue_.size() >= options_.max_queued_requests) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.requests_shed;
      // Fall through to the shed response outside the queue lock.
    } else {
      return true;  // Caller moves the connection into the work queue.
    }
  }
  HttpResponse shed = HttpResponse::Json(
      503, "{\"error\":\"server overloaded, request queue full\"}\n");
  shed.headers.emplace_back("Retry-After", "1");
  if (!WriteResponse(conn, shed, conn->keep_alive)) return false;
  conn->request = HttpRequest{};
  return conn->keep_alive;
}

bool HttpServer::HandleReadable(Connection* conn) {
  char chunk[64 * 1024];
  while (true) {
    const ssize_t n = recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->buffer.append(chunk, static_cast<std::size_t>(n));
      conn->last_active_ms = NowMs();
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) return false;  // Peer closed.
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return TryDispatch(conn);
}

void HttpServer::LoopThread() {
  std::vector<pollfd> pfds;
  std::vector<int> ready;
  while (running_.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : idle_) {
      pfds.push_back({fd, POLLIN, 0});
    }

    const int rc = poll(pfds.data(), pfds.size(), 500);
    if (!running_.load(std::memory_order_relaxed)) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // Wake pipe: drain it, then re-arm (or close) completed connections.
    if (pfds[1].revents & POLLIN) {
      char scratch[256];
      while (read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
      }
    }
    {
      std::deque<std::pair<std::unique_ptr<Connection>, bool>> done;
      {
        std::lock_guard<std::mutex> lock(done_mu_);
        done.swap(done_queue_);
      }
      for (auto& [conn, keep_open] : done) {
        if (!keep_open) {
          --live_connections_;
          continue;  // ~Connection closes the fd.
        }
        conn->request = HttpRequest{};
        conn->last_active_ms = NowMs();
        // Pipelined bytes may already hold the next request.
        Connection* raw = conn.get();
        if (!TryDispatch(raw)) {
          --live_connections_;
          continue;
        }
        if (!raw->request.method.empty()) {
          std::unique_ptr<Connection> moved = std::move(conn);
          {
            std::lock_guard<std::mutex> lock(queue_mu_);
            work_queue_.push_back(std::move(moved));
          }
          queue_cv_.notify_one();
        } else {
          idle_.emplace(raw->fd, std::move(conn));
        }
      }
    }

    if (pfds[0].revents & (POLLIN | POLLERR)) AcceptPending();

    // Readable / errored connections.
    ready.clear();
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      if (pfds[i].revents != 0) ready.push_back(pfds[i].fd);
    }
    for (int fd : ready) {
      auto it = idle_.find(fd);
      if (it == idle_.end()) continue;
      Connection* conn = it->second.get();
      if (!HandleReadable(conn)) {
        idle_.erase(it);
        --live_connections_;
        continue;
      }
      if (!conn->request.method.empty()) {
        std::unique_ptr<Connection> moved = std::move(it->second);
        idle_.erase(it);
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          work_queue_.push_back(std::move(moved));
        }
        queue_cv_.notify_one();
      }
    }

    // Idle-timeout sweep.
    if (options_.idle_timeout_ms > 0) {
      const std::int64_t now = NowMs();
      for (auto it = idle_.begin(); it != idle_.end();) {
        if (now - it->second->last_active_ms > options_.idle_timeout_ms) {
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.timeouts;
          }
          it = idle_.erase(it);
          --live_connections_;
        } else {
          ++it;
        }
      }
    }
  }
  idle_.clear();
}

void HttpServer::WorkerThread() {
  while (true) {
    std::unique_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !work_queue_.empty() || !running_.load();
      });
      if (work_queue_.empty()) return;  // Stopping.
      conn = std::move(work_queue_.front());
      work_queue_.pop_front();
    }

    HttpResponse response = handler_(conn->request);
    {
      // Counted before the response bytes go out: a client that has read
      // its response (and then asks /stats) must already see it counted.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests_handled;
    }
    const bool keep = conn->keep_alive;
    const bool wrote = WriteResponse(conn.get(), response, keep);
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_queue_.emplace_back(std::move(conn), wrote && keep);
    }
    Wake();
  }
}

}  // namespace fmtk
