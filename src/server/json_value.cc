#include "server/json_value.h"

#include <cstdlib>

#include "base/status.h"

namespace fmtk {

namespace {

constexpr std::size_t kMaxDepth = 64;

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Fail(std::string message) const {
    return Status::ParseError("json: " + std::move(message) + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, std::size_t depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeWord("true")) return Fail("invalid literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeWord("false")) return Fail("invalid literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeWord("null")) return Fail("invalid literal");
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Fail("unexpected character");
    }
  }

  Status ParseObject(JsonValue* out, std::size_t depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue member;
      s = ParseValue(&member, depth + 1);
      if (!s.ok()) return s;
      out->members_.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, std::size_t depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      Status s = ParseValue(&item, depth + 1);
      if (!s.ok()) return s;
      out->items_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    Consume('-');
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // No leading zeros: "0" may only be followed by . e E end.
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The slice is a valid JSON number grammar-wise; strtod cannot fail on
    // it (a copy guarantees NUL termination for strtod).
    const std::string slice(text_.substr(start, pos_ - start));
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = std::strtod(slice.c_str(), nullptr);
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Status ParseHex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          std::uint32_t cp = 0;
          Status s = ParseHex4(&cp);
          if (!s.ok()) return s;
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired high surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            s = ParseHex4(&low);
            if (!s.ok()) return s;
            if (low < 0xdc00 || low > 0xdfff) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Run();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<std::string> JsonValue::FindString(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->string_value();
}

std::optional<bool> JsonValue::FindBool(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_bool()) return std::nullopt;
  return v->bool_value();
}

std::optional<double> JsonValue::FindNumber(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->number_value();
}

}  // namespace fmtk
