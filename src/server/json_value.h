#ifndef FMTK_SERVER_JSON_VALUE_H_
#define FMTK_SERVER_JSON_VALUE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"

namespace fmtk {

/// A minimal JSON document model for parsing request bodies — the reading
/// half of the dependency-free JSON story (base/json_out.h is the writing
/// half; responses are built directly as strings, so only the server's
/// *inputs* need a DOM). Strict RFC 8259 subset: UTF-8 input, \uXXXX
/// escapes (surrogate pairs included), no trailing commas, no comments,
/// nesting capped to keep adversarial bodies from recursing the stack out.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON value spanning all of `text` (trailing
  /// whitespace allowed, trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_members()
      const {
    return members_;
  }

  /// Object lookup (first match); nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed convenience lookups for request handling: value when the member
  /// exists with the right type, nullopt when absent, error-signaling is
  /// the caller's job (it knows the field name and the endpoint).
  std::optional<std::string> FindString(std::string_view key) const;
  std::optional<bool> FindBool(std::string_view key) const;
  std::optional<double> FindNumber(std::string_view key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace fmtk

#endif  // FMTK_SERVER_JSON_VALUE_H_
