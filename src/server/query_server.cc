#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "analysis/datalog_analyzer.h"
#include "analysis/fo_analyzer.h"
#include "base/json_out.h"
#include "datalog/program.h"
#include "logic/parser.h"
#include "server/json_value.h"
#include "structures/bulk_load.h"
#include "structures/io.h"
#include "structures/structure_stats.h"

namespace fmtk {

namespace {

std::int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HttpResponse JsonError(int status, std::string_view message,
                       std::string_view diagnostics_json = {}) {
  std::string body = "{\"error\":";
  JsonAppendString(body, message);
  if (!diagnostics_json.empty()) {
    body += ",\"diagnostics\":";
    body += diagnostics_json;
  }
  body += "}\n";
  return HttpResponse::Json(status, std::move(body));
}

/// Maps an engine Status to the HTTP status of an error response.
int HttpStatusFor(const Status& s) {
  switch (s.code()) {
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnsupported:
      return 422;
    default:
      return 422;
  }
}

void AppendStructureStatsJson(std::string& out, std::string_view name,
                              const StructureStats& stats,
                              std::uint64_t server_generation) {
  out += "{\"name\":";
  JsonAppendString(out, name);
  out += ",\"generation\":" + std::to_string(server_generation);
  out += ",\"domain_size\":" + std::to_string(stats.domain_size);
  out += ",\"tuple_count\":" + std::to_string(stats.tuple_count);
  out += ",\"relation_count\":" + std::to_string(stats.relation_count);
  out += ",\"max_degree\":" + std::to_string(stats.max_degree);
  out += ",\"avg_degree\":" + JsonNumber(stats.avg_degree);
  out += ",\"components\":" + std::to_string(stats.component_count);
  out += "}";
}

/// Serializes a relation's rows as [[e,...],...], capped at `max_rows`.
void AppendRelationRowsJson(std::string& out, const Relation& relation,
                            std::size_t max_rows) {
  const std::size_t n = std::min(relation.size(), max_rows);
  out += "\"row_count\":" + std::to_string(relation.size());
  out += ",\"truncated\":";
  out += relation.size() > max_rows ? "true" : "false";
  out += ",\"rows\":[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ',';
    out += '[';
    const Element* row = relation.TupleData(i);
    for (std::size_t c = 0; c < relation.arity(); ++c) {
      if (c > 0) out += ',';
      out += std::to_string(row[c]);
    }
    out += ']';
  }
  out += ']';
}

/// FO diagnostics for an error response: re-runs parse + analysis with a
/// sink so the client gets the structured FMTK0xx list, not just the
/// Status message. Error paths only — admitted requests never pay this.
std::string FoDiagnosticsJson(std::string_view text, const Structure& s,
                              bool query_mode) {
  auto parsed = ParseFormulaWithSpans(text, &s.signature());
  if (!parsed.ok()) return {};
  FoAnalyzerOptions options;
  options.signature = &s.signature();
  options.spans = &parsed->spans;
  options.profile = query_mode ? FoProfile::kQuery : FoProfile::kModelCheck;
  const FoAnalysis analysis = AnalyzeFormula(parsed->formula, options);
  return analysis.diagnostics.ToJson();
}

}  // namespace

// --- Heavy lane -------------------------------------------------------------

class QueryServer::HeavyLaneTicket {
 public:
  HeavyLaneTicket(QueryServer* server, bool heavy) : server_(server) {
    if (!heavy) return;
    const AdmissionPolicy& policy = server_->options_.admission;
    std::unique_lock<std::mutex> lock(server_->heavy_mu_);
    if (server_->heavy_running_ >= policy.heavy_concurrency) {
      if (server_->heavy_waiting_ >= policy.heavy_max_waiting) {
        rejected_ = true;
        return;
      }
      ++server_->heavy_waiting_;
      server_->heavy_cv_.wait(lock, [&] {
        return server_->heavy_running_ < policy.heavy_concurrency;
      });
      --server_->heavy_waiting_;
    }
    ++server_->heavy_running_;
    held_ = true;
  }

  ~HeavyLaneTicket() {
    if (!held_) return;
    {
      std::lock_guard<std::mutex> lock(server_->heavy_mu_);
      --server_->heavy_running_;
    }
    server_->heavy_cv_.notify_one();
  }

  HeavyLaneTicket(const HeavyLaneTicket&) = delete;
  HeavyLaneTicket& operator=(const HeavyLaneTicket&) = delete;

  bool rejected() const { return rejected_; }
  bool heavy() const { return held_; }

 private:
  QueryServer* server_;
  bool held_ = false;
  bool rejected_ = false;
};

// --- Registry ---------------------------------------------------------------

QueryServer::QueryServer(QueryServerOptions options)
    : options_(std::move(options)) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (http_ != nullptr) return Status::InvalidArgument("server already started");
  http_ = std::make_unique<HttpServer>(
      options_.http,
      [this](const HttpRequest& request) { return Handle(request); });
  Status s = http_->Start();
  if (!s.ok()) http_.reset();
  return s;
}

void QueryServer::Stop() {
  if (http_ != nullptr) {
    http_->Stop();
    http_.reset();
  }
}

std::uint16_t QueryServer::port() const {
  return http_ == nullptr ? 0 : http_->port();
}

std::uint64_t QueryServer::PutStructure(std::string name, Structure structure,
                                        std::string source) {
  auto shared = std::make_shared<const Structure>(std::move(structure));
  const std::uint64_t generation =
      next_generation_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  RegistryEntry& entry = registry_[std::move(name)];
  entry.structure = std::move(shared);
  entry.generation = generation;
  entry.source = std::move(source);
  return generation;
}

std::shared_ptr<const Structure> QueryServer::GetStructure(
    std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second.structure;
}

bool QueryServer::DropStructure(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) return false;
  registry_.erase(it);
  return true;
}

std::vector<std::string> QueryServer::StructureNames() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, entry] : registry_) names.push_back(name);
  return names;
}

QueryServer::Stats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

HttpServer::Stats QueryServer::http_stats() const {
  return http_ == nullptr ? HttpServer::Stats{} : http_->stats();
}

// --- Routing ----------------------------------------------------------------

HttpResponse QueryServer::Handle(const HttpRequest& request) {
  HttpResponse response;
  const std::string_view path = request.path;
  if (path == "/healthz" && request.method == "GET") {
    response = HttpResponse::Json(200, "{\"ok\":true}\n");
  } else if (path == "/stats" && request.method == "GET") {
    response = HandleStats();
  } else if (path == "/structures" && request.method == "GET") {
    response = HandleStructures();
  } else if (path.rfind("/structure/", 0) == 0) {
    const std::string_view name = path.substr(11);
    if (name.empty() || name.size() > 128 ||
        name.find('/') != std::string_view::npos) {
      response = JsonError(400, "bad structure name");
    } else if (request.method == "PUT") {
      response = HandlePutStructure(request, name);
    } else if (request.method == "GET") {
      response = HandleGetStructure(name);
    } else if (request.method == "DELETE") {
      response = HandleDeleteStructure(name);
    } else {
      response = JsonError(405, "method not allowed");
    }
  } else if (path == "/query") {
    response = request.method == "POST" ? HandleQuery(request)
                                        : JsonError(405, "POST required");
  } else if (path == "/datalog") {
    response = request.method == "POST" ? HandleDatalog(request)
                                        : JsonError(405, "POST required");
  } else {
    response = JsonError(404, "no such endpoint");
  }
  if (response.status >= 400) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
  }
  return response;
}

// --- /query -----------------------------------------------------------------

HttpResponse QueryServer::HandleQuery(const HttpRequest& request) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.queries;
  }
  auto body = JsonValue::Parse(request.body);
  if (!body.ok()) return JsonError(400, body.status().message());
  if (!body->is_object()) return JsonError(400, "request body must be a JSON object");

  const auto structure_name = body->FindString("structure");
  const auto query_text = body->FindString("query");
  if (!structure_name) return JsonError(400, "missing string field 'structure'");
  if (!query_text) return JsonError(400, "missing string field 'query'");

  std::vector<std::string> outputs;
  bool query_mode = false;
  if (const JsonValue* array = body->Find("outputs"); array != nullptr) {
    if (!array->is_array()) return JsonError(400, "'outputs' must be an array");
    query_mode = true;
    for (const JsonValue& item : array->array_items()) {
      if (!item.is_string()) {
        return JsonError(400, "'outputs' must hold variable names");
      }
      outputs.push_back(item.string_value());
    }
  }

  PlannerOptions planner = options_.planner;
  if (const auto engine = body->FindString("engine")) {
    const auto kind = ParseEngineKind(*engine);
    if (!kind) return JsonError(400, "unknown engine '" + *engine + "'");
    planner.force_engine = kind;
  }
  const bool want_explain = body->FindBool("explain").value_or(false);
  std::size_t max_rows = options_.max_response_rows;
  if (const auto requested = body->FindNumber("max_rows")) {
    if (*requested >= 0 && *requested < static_cast<double>(max_rows)) {
      max_rows = static_cast<std::size_t>(*requested);
    }
  }

  const std::shared_ptr<const Structure> structure =
      GetStructure(*structure_name);
  if (structure == nullptr) {
    return JsonError(404, "no structure named '" + *structure_name + "'");
  }

  // Admission: price the request (plan-cache backed, no execution) and
  // check the budgets before committing a worker's engine time.
  auto plan = PlanAuto(*structure, *query_text, query_mode, outputs.size(),
                       planner);
  if (!plan.ok()) {
    return JsonError(HttpStatusFor(plan.status()), plan.status().message(),
                     FoDiagnosticsJson(*query_text, *structure, query_mode));
  }
  const AdmissionPolicy& policy = options_.admission;
  double cost_units = 0.0;
  for (const EngineCost& cost : plan->costs) {
    if (cost.engine == plan->chosen) cost_units = cost.cost;
  }
  if (planner.force_engine.has_value()) {
    // A forced engine carries a 0-cost sentinel row ("forced"), which
    // would let clients dodge every cost budget by naming an engine.
    // Price it off the unforced scoring instead (plan-cache backed, so
    // this second probe is a lookup, not a recompile).
    PlannerOptions unforced = planner;
    unforced.force_engine.reset();
    if (auto priced = PlanAuto(*structure, *query_text, query_mode,
                               outputs.size(), unforced);
        priced.ok()) {
      for (const EngineCost& cost : priced->costs) {
        if (cost.engine == *planner.force_engine) cost_units = cost.cost;
      }
    }
  }
  const double estimated_rows =
      query_mode ? std::pow(static_cast<double>(structure->domain_size()),
                            static_cast<double>(outputs.size()))
                 : 1.0;
  std::string rejection;
  if (policy.max_quantifier_rank > 0 &&
      plan->quantifier_rank > policy.max_quantifier_rank) {
    rejection = "quantifier rank " + std::to_string(plan->quantifier_rank) +
                " exceeds budget " + std::to_string(policy.max_quantifier_rank);
  } else if (policy.max_variable_width > 0 &&
             plan->variable_width > policy.max_variable_width) {
    rejection = "variable width " + std::to_string(plan->variable_width) +
                " exceeds budget " + std::to_string(policy.max_variable_width);
  } else if (policy.max_node_count > 0 &&
             plan->node_count > policy.max_node_count) {
    rejection = "formula size " + std::to_string(plan->node_count) +
                " exceeds budget " + std::to_string(policy.max_node_count);
  } else if (policy.max_cost_units > 0 && cost_units > policy.max_cost_units) {
    rejection = "estimated cost " + JsonNumber(cost_units) +
                " exceeds budget " + JsonNumber(policy.max_cost_units);
  } else if (policy.max_estimated_rows > 0 &&
             estimated_rows > policy.max_estimated_rows) {
    rejection = "estimated rows " + JsonNumber(estimated_rows) +
                " exceeds budget " + JsonNumber(policy.max_estimated_rows);
  }
  if (!rejection.empty()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.admission_rejected;
    }
    std::string body_out = "{\"error\":\"request rejected by admission control\"";
    body_out += ",\"admission\":{\"rejected\":true,\"reason\":";
    JsonAppendString(body_out, rejection);
    body_out += ",\"cost_units\":" + JsonNumber(cost_units);
    body_out += ",\"quantifier_rank\":" + std::to_string(plan->quantifier_rank);
    body_out += ",\"variable_width\":" + std::to_string(plan->variable_width);
    body_out += ",\"node_count\":" + std::to_string(plan->node_count);
    body_out += ",\"estimated_rows\":" + JsonNumber(estimated_rows);
    body_out += "}}\n";
    return HttpResponse::Json(429, std::move(body_out));
  }

  const bool heavy =
      policy.heavy_cost_units > 0 && cost_units >= policy.heavy_cost_units;
  HeavyLaneTicket ticket(this, heavy);
  if (ticket.rejected()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.heavy_lane_rejected;
    return JsonError(429, "heavy lane saturated, retry later");
  }
  if (ticket.heavy()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.heavy_lane_entries;
  }

  // Execute through the router (plan-cache warm by now: the admission probe
  // either hit or populated it).
  PlanExplanation explain;
  const std::int64_t started = NowMicros();
  std::string body_out = "{";
  body_out += "\"structure\":";
  JsonAppendString(body_out, *structure_name);
  body_out += ",\"query\":";
  JsonAppendString(body_out, *query_text);
  if (!query_mode) {
    auto verdict = EvaluateAuto(*structure, *query_text, planner, &explain);
    if (!verdict.ok()) {
      return JsonError(HttpStatusFor(verdict.status()),
                       verdict.status().message(),
                       FoDiagnosticsJson(*query_text, *structure, query_mode));
    }
    body_out += ",\"result\":";
    body_out += *verdict ? "true" : "false";
  } else {
    auto rows = EvaluateQueryAuto(*structure, *query_text, outputs, planner,
                                  &explain);
    if (!rows.ok()) {
      return JsonError(HttpStatusFor(rows.status()), rows.status().message(),
                       FoDiagnosticsJson(*query_text, *structure, query_mode));
    }
    body_out += ",\"columns\":[";
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      if (i > 0) body_out += ',';
      JsonAppendString(body_out, outputs[i]);
    }
    body_out += "],";
    AppendRelationRowsJson(body_out, *rows, max_rows);
  }
  const std::int64_t wall_us = NowMicros() - started;

  body_out += ",\"engine\":";
  JsonAppendString(body_out, EngineKindName(explain.chosen));
  body_out += ",\"cache_hit\":";
  body_out += explain.cache_hit ? "true" : "false";
  body_out += ",\"wall_us\":" + std::to_string(wall_us);
  body_out += ",\"admission\":{\"cost_units\":" + JsonNumber(cost_units);
  body_out += ",\"lane\":\"";
  body_out += ticket.heavy() ? "heavy" : "fast";
  body_out += "\"}";
  if (want_explain) {
    body_out += ",\"explain\":";
    body_out += explain.ToJson();
  }
  body_out += "}\n";
  return HttpResponse::Json(200, std::move(body_out));
}

// --- /datalog ---------------------------------------------------------------

HttpResponse QueryServer::HandleDatalog(const HttpRequest& request) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.datalog_queries;
  }
  auto body = JsonValue::Parse(request.body);
  if (!body.ok()) return JsonError(400, body.status().message());
  if (!body->is_object()) return JsonError(400, "request body must be a JSON object");

  const auto structure_name = body->FindString("structure");
  const auto program_text = body->FindString("program");
  if (!structure_name) return JsonError(400, "missing string field 'structure'");
  if (!program_text) return JsonError(400, "missing string field 'program'");

  std::vector<std::string> outputs;
  if (const JsonValue* array = body->Find("outputs"); array != nullptr) {
    if (!array->is_array()) return JsonError(400, "'outputs' must be an array");
    for (const JsonValue& item : array->array_items()) {
      if (!item.is_string()) {
        return JsonError(400, "'outputs' must hold predicate names");
      }
      outputs.push_back(item.string_value());
    }
  }
  std::size_t max_rows = options_.max_response_rows;
  if (const auto requested = body->FindNumber("max_rows")) {
    if (*requested >= 0 && *requested < static_cast<double>(max_rows)) {
      max_rows = static_cast<std::size_t>(*requested);
    }
  }

  const std::shared_ptr<const Structure> structure =
      GetStructure(*structure_name);
  if (structure == nullptr) {
    return JsonError(404, "no structure named '" + *structure_name + "'");
  }

  // Admission: parse + static analysis (rule count, recursion shape,
  // estimated IDB rows) before any fixpoint work.
  auto program = ParseDatalogProgram(*program_text, /*validate=*/false);
  if (!program.ok()) return JsonError(400, program.status().message());
  DatalogAnalyzerOptions analyzer_options;
  analyzer_options.signature = &structure->signature();
  analyzer_options.outputs = outputs;
  const DatalogAnalysis analysis = AnalyzeProgram(*program, analyzer_options);
  if (!analysis.ok()) {
    return JsonError(422, analysis.status().message(),
                     analysis.diagnostics.ToJson());
  }

  const AdmissionPolicy& policy = options_.admission;
  bool recursive = false;
  bool nonlinear = false;
  for (const DatalogSccInfo& scc : analysis.sccs) {
    recursive = recursive || scc.recursive;
    nonlinear = nonlinear || (scc.recursive && !scc.linear);
  }
  // Coarse output-size bound: each IDB predicate holds at most n^arity
  // tuples (arity read off the first defining rule head).
  double estimated_rows = 0.0;
  const double n = static_cast<double>(structure->domain_size());
  std::map<std::string, std::size_t> arity;
  for (const DlRule& rule : program->rules()) {
    arity.emplace(rule.head.predicate, rule.head.terms.size());
  }
  for (const auto& [predicate, a] : arity) {
    estimated_rows += std::pow(n, static_cast<double>(a));
  }
  std::string rejection;
  if (policy.max_datalog_rules > 0 &&
      program->rules().size() > policy.max_datalog_rules) {
    rejection = "program has " + std::to_string(program->rules().size()) +
                " rules, budget " + std::to_string(policy.max_datalog_rules);
  } else if (policy.reject_recursion && recursive) {
    rejection = "recursive programs are not admitted";
  } else if (policy.reject_nonlinear_recursion && nonlinear) {
    rejection = "nonlinear recursion is not admitted";
  } else if (policy.max_estimated_rows > 0 &&
             estimated_rows > policy.max_estimated_rows) {
    rejection = "estimated IDB rows " + JsonNumber(estimated_rows) +
                " exceeds budget " + JsonNumber(policy.max_estimated_rows);
  }
  if (!rejection.empty()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.admission_rejected;
    }
    std::string body_out = "{\"error\":\"request rejected by admission control\"";
    body_out += ",\"admission\":{\"rejected\":true,\"reason\":";
    JsonAppendString(body_out, rejection);
    body_out += ",\"rules\":" + std::to_string(program->rules().size());
    body_out += ",\"recursive\":";
    body_out += recursive ? "true" : "false";
    body_out += ",\"nonlinear\":";
    body_out += nonlinear ? "true" : "false";
    body_out += ",\"estimated_rows\":" + JsonNumber(estimated_rows);
    body_out += "}}\n";
    return HttpResponse::Json(429, std::move(body_out));
  }

  // Recursive fixpoints ride the heavy lane when one is configured: their
  // cost is unbounded by any static per-request measure, which is exactly
  // what the lane exists to contain.
  const bool heavy = policy.heavy_cost_units > 0 && recursive;
  HeavyLaneTicket ticket(this, heavy);
  if (ticket.rejected()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.heavy_lane_rejected;
    return JsonError(429, "heavy lane saturated, retry later");
  }
  if (ticket.heavy()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.heavy_lane_entries;
  }

  DatalogStats dstats;
  PlanCacheLookup lookup;
  const std::int64_t started = NowMicros();
  auto relations =
      EvaluateDatalogAuto(*structure, *program_text, options_.planner, &dstats,
                          &lookup);
  const std::int64_t wall_us = NowMicros() - started;
  if (!relations.ok()) {
    return JsonError(HttpStatusFor(relations.status()),
                     relations.status().message(),
                     analysis.diagnostics.ToJson());
  }

  std::string body_out = "{\"structure\":";
  JsonAppendString(body_out, *structure_name);
  body_out += ",\"relations\":{";
  bool first = true;
  for (const auto& [predicate, relation] : *relations) {
    if (!outputs.empty() &&
        std::find(outputs.begin(), outputs.end(), predicate) ==
            outputs.end()) {
      continue;
    }
    if (!first) body_out += ',';
    first = false;
    JsonAppendString(body_out, predicate);
    body_out += ":{\"arity\":" + std::to_string(relation.arity()) + ',';
    AppendRelationRowsJson(body_out, relation, max_rows);
    body_out += '}';
  }
  body_out += "},\"cache_hit\":";
  body_out += lookup.hit ? "true" : "false";
  body_out += ",\"wall_us\":" + std::to_string(wall_us);
  body_out += ",\"stats\":{\"iterations\":" + std::to_string(dstats.iterations);
  body_out += ",\"tuples_new\":" + std::to_string(dstats.tuples_new);
  body_out += ",\"rule_applications\":" +
              std::to_string(dstats.rule_applications);
  body_out += "},\"admission\":{\"lane\":\"";
  body_out += ticket.heavy() ? "heavy" : "fast";
  body_out += "\"}}\n";
  return HttpResponse::Json(200, std::move(body_out));
}

// --- Structure endpoints ----------------------------------------------------

HttpResponse QueryServer::HandlePutStructure(const HttpRequest& request,
                                             std::string_view name) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.structure_loads;
  }
  std::string_view format = request.QueryParam("format");
  if (format.empty()) {
    // Sniff: the binary magic, else the textual header keyword, else edges.
    if (request.body.rfind("FMTKBIN1", 0) == 0) {
      format = "bin";
    } else {
      std::string_view peek = request.body;
      while (!peek.empty()) {
        const std::size_t start = peek.find_first_not_of(" \t\r\n");
        if (start == std::string_view::npos) break;
        peek.remove_prefix(start);
        if (peek[0] != '#' && peek[0] != '%') break;
        const std::size_t eol = peek.find('\n');
        if (eol == std::string_view::npos) break;
        peek.remove_prefix(eol + 1);
      }
      format = peek.rfind("domain", 0) == 0 ? "text" : "edges";
    }
  }

  DiagnosticSink sink;
  std::optional<Structure> loaded;
  std::string source;
  if (format == "bin") {
    auto parsed = ParseStructureBinary(request.body, &sink);
    if (!parsed.ok()) {
      return JsonError(422, parsed.status().message(), sink.ToJson());
    }
    loaded.emplace(*std::move(parsed));
    source = "bin:" + std::to_string(request.body.size()) + " bytes";
  } else if (format == "edges") {
    EdgeListOptions edge_options;
    if (const std::string_view relation = request.QueryParam("relation");
        !relation.empty()) {
      edge_options.relation_name = std::string(relation);
    }
    edge_options.undirected = request.QueryParam("undirected") == "1";
    if (request.QueryParam("ids") == "numeric") {
      edge_options.id_mode = EdgeListOptions::IdMode::kNumeric;
    }
    auto parsed = LoadEdgeListText(request.body, edge_options, &sink);
    if (!parsed.ok()) {
      return JsonError(422, parsed.status().message(), sink.ToJson());
    }
    loaded.emplace(std::move(parsed->structure));
    source = "edges:" + std::to_string(parsed->stats.edges) + " edges";
  } else if (format == "text") {
    auto parsed = ParseStructure(request.body);
    if (!parsed.ok()) {
      return JsonError(422, parsed.status().message());
    }
    loaded.emplace(*std::move(parsed));
    source = "text:" + std::to_string(request.body.size()) + " bytes";
  } else {
    return JsonError(400, "unknown format '" + std::string(format) +
                              "' (want bin, edges, or text)");
  }

  const StructureStats structure_stats = loaded->Stats();
  const std::uint64_t generation =
      PutStructure(std::string(name), *std::move(loaded), source);

  std::string body_out = "{\"loaded\":";
  AppendStructureStatsJson(body_out, name, structure_stats, generation);
  body_out += ",\"format\":";
  JsonAppendString(body_out, format);
  body_out += ",\"diagnostics\":";
  body_out += sink.ToJson();
  body_out += "}\n";
  HttpResponse response = HttpResponse::Json(201, std::move(body_out));
  return response;
}

HttpResponse QueryServer::HandleGetStructure(std::string_view name) {
  const std::shared_ptr<const Structure> structure = GetStructure(name);
  std::uint64_t generation = 0;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = registry_.find(name);
    if (it != registry_.end()) generation = it->second.generation;
  }
  if (structure == nullptr) {
    return JsonError(404, "no structure named '" + std::string(name) + "'");
  }
  std::string body_out;
  AppendStructureStatsJson(body_out, name, structure->Stats(), generation);
  body_out += "\n";
  return HttpResponse::Json(200, std::move(body_out));
}

HttpResponse QueryServer::HandleDeleteStructure(std::string_view name) {
  if (!DropStructure(name)) {
    return JsonError(404, "no structure named '" + std::string(name) + "'");
  }
  return HttpResponse::Json(200, "{\"dropped\":true}\n");
}

HttpResponse QueryServer::HandleStructures() {
  std::string body_out = "{\"structures\":[";
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    bool first = true;
    for (const auto& [name, entry] : registry_) {
      if (!first) body_out += ',';
      first = false;
      AppendStructureStatsJson(body_out, name, entry.structure->Stats(),
                               entry.generation);
    }
  }
  body_out += "]}\n";
  return HttpResponse::Json(200, std::move(body_out));
}

HttpResponse QueryServer::HandleStats() {
  const Stats server = stats();
  const HttpServer::Stats http = http_stats();
  PlanCache* cache = options_.planner.cache != nullptr ? options_.planner.cache
                                                       : &DefaultPlanCache();
  const PlanCacheStats formulas = cache->formula_stats();
  const PlanCacheStats programs = cache->datalog_stats();

  std::string body_out = "{\"server\":{";
  body_out += "\"queries\":" + std::to_string(server.queries);
  body_out += ",\"datalog_queries\":" + std::to_string(server.datalog_queries);
  body_out += ",\"structure_loads\":" + std::to_string(server.structure_loads);
  body_out +=
      ",\"admission_rejected\":" + std::to_string(server.admission_rejected);
  body_out +=
      ",\"heavy_lane_entries\":" + std::to_string(server.heavy_lane_entries);
  body_out +=
      ",\"heavy_lane_rejected\":" + std::to_string(server.heavy_lane_rejected);
  body_out += ",\"errors\":" + std::to_string(server.errors);
  body_out += "},\"http\":{";
  body_out += "\"connections_accepted\":" +
              std::to_string(http.connections_accepted);
  body_out += ",\"connections_rejected\":" +
              std::to_string(http.connections_rejected);
  body_out += ",\"requests_handled\":" + std::to_string(http.requests_handled);
  body_out += ",\"requests_shed\":" + std::to_string(http.requests_shed);
  body_out += ",\"parse_errors\":" + std::to_string(http.parse_errors);
  body_out += ",\"timeouts\":" + std::to_string(http.timeouts);
  body_out += ",\"bytes_in\":" + std::to_string(http.bytes_in);
  body_out += ",\"bytes_out\":" + std::to_string(http.bytes_out);
  body_out += "},\"plan_cache\":{\"formulas\":{";
  body_out += "\"hits\":" + std::to_string(formulas.hits);
  body_out += ",\"misses\":" + std::to_string(formulas.misses);
  body_out += ",\"entries\":" + std::to_string(formulas.entries);
  body_out += "},\"programs\":{";
  body_out += "\"hits\":" + std::to_string(programs.hits);
  body_out += ",\"misses\":" + std::to_string(programs.misses);
  body_out += ",\"entries\":" + std::to_string(programs.entries);
  body_out += "}},\"structures\":";
  body_out += std::to_string(StructureNames().size());
  body_out += "}\n";
  return HttpResponse::Json(200, std::move(body_out));
}

}  // namespace fmtk
