#ifndef FMTK_SERVER_QUERY_SERVER_H_
#define FMTK_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "planner/planner.h"
#include "server/http.h"
#include "structures/structure.h"

namespace fmtk {

/// Admission control budgets for one request (ISSUE: reject or queue
/// requests whose analyzer cost measures exceed configurable budgets).
/// Every request is priced by PlanAuto — plan acquisition and routing
/// without execution, so repeat texts price off the plan cache for free —
/// and then checked against these knobs. Two tiers:
///
///   * hard budgets (max_*): the request is rejected with 429 and the
///     offending measure, without ever occupying a worker's engine time;
///   * the heavy lane (heavy_cost_units): requests priced above the
///     threshold serialize through a small semaphore with a bounded wait
///     list, so a burst of expensive queries cannot occupy every worker
///     and starve the cheap ones (that bounds the cheap-request p99; the
///     bench's admission experiment measures exactly this). When the wait
///     list is full the request is rejected 429 rather than queued.
struct AdmissionPolicy {
  /// 0 = unlimited, for every count-valued budget below.
  std::size_t max_quantifier_rank = 0;
  std::size_t max_variable_width = 0;
  std::size_t max_node_count = 0;
  /// Hard ceiling on the planner's chosen-engine cost estimate
  /// (compiled-slot-op units; 0 = unlimited).
  double max_cost_units = 0.0;
  /// Hard ceiling on estimated result rows of a query (domain^outputs
  /// before pruning; 0 = unlimited). Sentences are exempt (1 row).
  double max_estimated_rows = 0.0;

  /// Datalog budgets: rule count and recursion shape.
  std::size_t max_datalog_rules = 0;
  /// Reject recursive programs outright (admit only the nonrecursive,
  /// bounded-iteration fragment).
  bool reject_recursion = false;
  /// Reject nonlinear recursion (two+ recursive atoms per rule body) while
  /// still admitting linear recursion.
  bool reject_nonlinear_recursion = false;

  /// Heavy lane: requests with cost estimate >= this run through the lane
  /// (0 disables the lane entirely).
  double heavy_cost_units = 0.0;
  /// How many heavy requests may execute concurrently.
  std::size_t heavy_concurrency = 1;
  /// How many heavy requests may wait for the lane; the next one is
  /// rejected 429 ("heavy lane saturated").
  std::size_t heavy_max_waiting = 4;
};

struct QueryServerOptions {
  HttpServer::Options http;
  AdmissionPolicy admission;
  /// Engine routing knobs; `cache` nullptr = the process-global cache.
  PlannerOptions planner;
  /// Row cap applied to /query and /datalog result payloads (per relation)
  /// unless the request asks for less via "max_rows". Keeps a SELECT * off
  /// a 10^6-row answer from building a gigabyte response.
  std::size_t max_response_rows = 10'000;
};

/// The fmtk query server: a registry of named immutable structures plus
/// HTTP endpoints that evaluate FO queries and Datalog programs against
/// them through EvaluateAuto (so the sharded compiled-plan cache and the
/// cost-based router do the heavy lifting; a repeat query on a warm server
/// is a cache probe plus engine run, no parse/analyze/compile).
///
/// Endpoints (all JSON unless noted):
///   GET    /healthz            -> {"ok":true}
///   GET    /stats              -> server, plan cache, registry counters
///   GET    /structures         -> registry listing
///   PUT    /structure/<name>   -> load body as FMTKBIN1 | edge list | text
///                                 (?format=bin|edges|text, default sniffed)
///   GET    /structure/<name>   -> structure statistics
///   DELETE /structure/<name>   -> drop from the registry
///   POST   /query              -> {"structure","query","outputs"?,
///                                  "engine"?,"explain"?,"max_rows"?}
///   POST   /datalog            -> {"structure","program","outputs"?,
///                                  "max_rows"?}
///
/// Handle() is a pure request->response function safe to call from any
/// number of threads concurrently — the HTTP layer's workers do exactly
/// that, and the in-process concurrency tests call it directly without
/// sockets.
class QueryServer {
 public:
  explicit QueryServer(QueryServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Starts the HTTP front end (binds, spawns loop + workers).
  Status Start();
  void Stop();
  std::uint16_t port() const;

  /// Routes one request. Thread-safe; no socket required.
  HttpResponse Handle(const HttpRequest& request);

  /// Programmatic registry access (fmtk_serve --load, tests, benches).
  /// Publishing under an existing name atomically swaps the structure and
  /// bumps the name's generation; in-flight requests keep evaluating
  /// against the shared_ptr they resolved (immutable snapshot semantics).
  std::uint64_t PutStructure(std::string name, Structure structure,
                             std::string source);
  std::shared_ptr<const Structure> GetStructure(std::string_view name) const;
  bool DropStructure(std::string_view name);
  std::vector<std::string> StructureNames() const;

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t datalog_queries = 0;
    std::uint64_t structure_loads = 0;
    std::uint64_t admission_rejected = 0;
    std::uint64_t heavy_lane_entries = 0;
    std::uint64_t heavy_lane_rejected = 0;
    std::uint64_t errors = 0;  // 4xx/5xx application responses.
  };
  Stats stats() const;

  /// The HTTP layer's counters (zero when running Handle() in-process).
  HttpServer::Stats http_stats() const;

 private:
  struct RegistryEntry {
    std::shared_ptr<const Structure> structure;
    std::uint64_t generation = 0;  // Server-side publish counter.
    std::string source;            // "bin:12345 bytes", "edges:...", ...
  };

  /// RAII heavy-lane ticket; admitted == false means 429.
  class HeavyLaneTicket;

  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleDatalog(const HttpRequest& request);
  HttpResponse HandlePutStructure(const HttpRequest& request,
                                  std::string_view name);
  HttpResponse HandleGetStructure(std::string_view name);
  HttpResponse HandleDeleteStructure(std::string_view name);
  HttpResponse HandleStructures();
  HttpResponse HandleStats();

  QueryServerOptions options_;
  std::unique_ptr<HttpServer> http_;

  mutable std::shared_mutex registry_mu_;
  std::map<std::string, RegistryEntry, std::less<>> registry_;
  std::atomic<std::uint64_t> next_generation_{1};

  // Heavy lane state.
  std::mutex heavy_mu_;
  std::condition_variable heavy_cv_;
  std::size_t heavy_running_ = 0;
  std::size_t heavy_waiting_ = 0;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace fmtk

#endif  // FMTK_SERVER_QUERY_SERVER_H_
