#ifndef FMTK_SERVER_HTTP_H_
#define FMTK_SERVER_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "base/status.h"

namespace fmtk {

/// A tiny dependency-free HTTP/1.1 server: a poll(2) event loop thread that
/// owns every socket, plus a worker pool that runs the request handler.
/// This is deliberately a small subset of HTTP — enough for fmtk_serve and
/// its benchmarks, not a general web server:
///
///   * methods GET/PUT/POST/DELETE, HTTP/1.0 and 1.1;
///   * Content-Length bodies only (Transfer-Encoding is rejected with 501);
///   * keep-alive (default on for 1.1, off for 1.0, `Connection` header
///     respected) with pipelined requests handled one at a time;
///   * hard limits on header block size, body size, and connection count,
///     enforced during parsing so oversized requests die cheaply.
///
/// Threading model (see DESIGN.md "Query server"): the loop thread polls
/// the listener plus every idle connection. When a full request has been
/// buffered, the connection is marked busy (dropped from the poll set — no
/// concurrent reads on it) and the request is queued for the worker pool.
/// A worker runs the handler and writes the response itself (blocking
/// writes with a poll(POLLOUT) backoff), then hands the connection back to
/// the loop through a completion queue + self-pipe wakeup to be re-armed
/// for the next request. So: one reader (the loop), one writer at a time
/// (the worker that owns the busy connection) — no socket is ever touched
/// by two threads at once.

struct HttpRequest {
  std::string method;   // Uppercase: "GET", "POST", ...
  std::string target;   // Exactly as sent: "/query", "/structure/g?f=bin".
  std::string path;     // Target before '?'.
  std::string query;    // Target after '?' (empty when absent).
  int version_minor = 1;  // HTTP/1.<version_minor>.
  /// Header names lowercased; values trimmed of surrounding whitespace.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lowercase), or "" when absent.
  std::string_view Header(std::string_view name) const;
  /// Value of `key` in the query string (no %-decoding), or "".
  std::string_view QueryParam(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers beyond Content-Type/Content-Length/Connection.
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse Json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
};

/// "OK", "Bad Request", ... (a fixed table; unknown codes get "Status").
std::string_view HttpReasonPhrase(int status);

struct HttpParserLimits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 64 * 1024 * 1024;
};

/// Incremental request parser state machine, exposed for direct testing
/// (the malformed-input table test drives it without sockets).
class HttpRequestParser {
 public:
  enum class State {
    kNeedMore,  // Valid so far; feed more bytes.
    kComplete,  // One full request parsed; consumed() bytes used.
    kError,     // Protocol violation; error_status()/error() describe it.
  };

  using Limits = HttpParserLimits;

  explicit HttpRequestParser(Limits limits = {}) : limits_(limits) {}

  /// Parses one request from the front of `buffer` (which accumulates raw
  /// socket bytes across reads). On kComplete, request() is valid and
  /// consumed() says how many bytes the request spanned — the caller
  /// erases them and may immediately Parse again (pipelining). The parser
  /// is reusable after Reset().
  State Parse(std::string_view buffer);

  const HttpRequest& request() const { return request_; }
  std::size_t consumed() const { return consumed_; }
  /// HTTP status to answer the offender with (400, 413, 431, 501, 505).
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  void Reset();

 private:
  State Fail(int status, std::string message);

  Limits limits_;
  HttpRequest request_;
  std::size_t consumed_ = 0;
  int error_status_ = 400;
  std::string error_;
};

class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; the bound port is reported by port() after Start().
    std::uint16_t port = 0;
    std::size_t worker_threads = 4;
    /// Accepted connections beyond this are answered 503 and closed.
    std::size_t max_connections = 512;
    /// Parsed requests waiting for a worker beyond this are answered 503
    /// without dispatch (overload shedding at the HTTP layer; the query
    /// layer's admission control is separate and smarter).
    std::size_t max_queued_requests = 256;
    HttpRequestParser::Limits limits;
    /// Close connections idle (mid-parse or between requests) this long.
    int idle_timeout_ms = 30'000;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Options options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the loop + worker threads.
  Status Start();
  /// Stops accepting, drains in-flight requests, joins every thread.
  /// Idempotent.
  void Stop();

  /// The bound port (after a successful Start()).
  std::uint16_t port() const { return port_; }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  // Over max_connections.
    std::uint64_t requests_handled = 0;
    std::uint64_t requests_shed = 0;     // 503: worker queue full.
    std::uint64_t parse_errors = 0;      // 4xx/5xx from the parser.
    std::uint64_t timeouts = 0;          // Idle connections reaped.
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
  };
  Stats stats() const;

 private:
  struct Connection;

  void LoopThread();
  void WorkerThread();
  void Wake();
  void AcceptPending();
  /// Reads from a connection; parses and dispatches (or answers errors).
  /// Returns false when the connection should be closed.
  bool HandleReadable(Connection* conn);
  /// Parses as many requests as the buffer holds; dispatches the first
  /// complete one. Returns false to close.
  bool TryDispatch(Connection* conn);
  /// Serializes and writes a response on the caller's thread (loop thread
  /// for parse errors/shedding, worker thread for handled requests).
  /// Returns false on write failure.
  bool WriteResponse(Connection* conn, const HttpResponse& response,
                     bool keep_alive);
  void FinishOnLoop(std::unique_ptr<Connection> conn, bool keep_open);

  Options options_;
  Handler handler_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Worker queue: connections with a parsed request, awaiting a handler.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Connection>> work_queue_;

  // Completion queue: connections coming back from workers to be re-armed
  // (or closed) by the loop thread.
  std::mutex done_mu_;
  std::deque<std::pair<std::unique_ptr<Connection>, bool>> done_queue_;

  // Connections currently owned by the poll loop, keyed by fd.
  std::map<int, std::unique_ptr<Connection>> idle_;
  std::size_t live_connections_ = 0;  // idle_ + busy (loop thread only).

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace fmtk

#endif  // FMTK_SERVER_HTTP_H_
