#include "analysis/diagnostics.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "base/json_out.h"

namespace fmtk {

namespace {

constexpr DiagSeverity kError = DiagSeverity::kError;
constexpr DiagSeverity kWarning = DiagSeverity::kWarning;
constexpr DiagSeverity kNote = DiagSeverity::kNote;

const std::vector<DiagCodeInfo>& CodeTable() {
  static const std::vector<DiagCodeInfo>* const kTable =
      new std::vector<DiagCodeInfo>{
          {DiagCode::kUnknownRelation, "FMTK001", kError,
           StatusCode::kSignatureMismatch, "unknown relation symbol"},
          {DiagCode::kRelationArityMismatch, "FMTK002", kError,
           StatusCode::kSignatureMismatch, "relation arity mismatch"},
          {DiagCode::kUnknownConstant, "FMTK003", kError,
           StatusCode::kSignatureMismatch, "unknown constant symbol"},
          {DiagCode::kNotSafeRange, "FMTK010", kWarning,
           StatusCode::kInvalidArgument, "formula is not safe-range"},
          {DiagCode::kUnsafeQuantifier, "FMTK011", kWarning,
           StatusCode::kInvalidArgument,
           "quantified variable not range-restricted"},
          {DiagCode::kUnusedQuantifiedVariable, "FMTK012", kWarning,
           StatusCode::kInvalidArgument, "quantified variable unused"},
          {DiagCode::kShadowedVariable, "FMTK013", kWarning,
           StatusCode::kInvalidArgument, "variable shadows enclosing binding"},
          {DiagCode::kDoubleNegation, "FMTK014", kNote,
           StatusCode::kInvalidArgument, "double negation folds away"},
          {DiagCode::kConstantSubformula, "FMTK015", kNote,
           StatusCode::kInvalidArgument, "constant subformula folds away"},
          {DiagCode::kTrivialEquality, "FMTK016", kNote,
           StatusCode::kInvalidArgument, "equality of identical terms"},
          {DiagCode::kInconsistentPredicateArity, "FMTK101", kError,
           StatusCode::kInvalidArgument,
           "predicate used with inconsistent arities"},
          {DiagCode::kUnboundHeadVariable, "FMTK102", kError,
           StatusCode::kInvalidArgument,
           "head variable not bound in the body"},
          {DiagCode::kUnknownEdbPredicate, "FMTK103", kError,
           StatusCode::kSignatureMismatch, "unknown EDB predicate"},
          {DiagCode::kEdbArityMismatch, "FMTK104", kError,
           StatusCode::kSignatureMismatch,
           "EDB atom arity differs from the signature"},
          {DiagCode::kIdbEdbCollision, "FMTK105", kError,
           StatusCode::kInvalidArgument,
           "IDB predicate collides with an EDB relation"},
          {DiagCode::kUnreachableRule, "FMTK106", kWarning,
           StatusCode::kInvalidArgument,
           "rule unreachable from the output predicates"},
          {DiagCode::kDomainDependentFactSchema, "FMTK107", kWarning,
           StatusCode::kInvalidArgument,
           "fact schema ranges over the whole domain"},
          {DiagCode::kIoTruncatedInput, "FMTK201", kError,
           StatusCode::kParseError, "input truncated mid-record"},
          {DiagCode::kIoMalformedRecord, "FMTK202", kError,
           StatusCode::kParseError, "malformed input record"},
          {DiagCode::kIoElementOutOfRange, "FMTK203", kError,
           StatusCode::kParseError, "element outside the declared domain"},
          {DiagCode::kIoDuplicateTuple, "FMTK204", kWarning,
           StatusCode::kParseError, "duplicate tuples collapsed"},
          {DiagCode::kIoEmptyRelation, "FMTK205", kWarning,
           StatusCode::kParseError, "relation loaded empty"},
      };
  return *kTable;
}

// Resolves a byte offset to 1-based "line:col".
void LineColOf(std::string_view source, std::size_t offset, std::size_t& line,
               std::size_t& col) {
  line = 1;
  col = 1;
  const std::size_t end = std::min(offset, source.size());
  for (std::size_t i = 0; i < end; ++i) {
    if (source[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
}

// The source line containing `offset` plus a caret underline for the span,
// both prefixed with "  | ".
std::string CaretLines(std::string_view source, const SourceSpan& span) {
  std::size_t line_start = std::min(span.offset, source.size());
  while (line_start > 0 && source[line_start - 1] != '\n') {
    --line_start;
  }
  std::size_t line_end = std::min(span.offset, source.size());
  while (line_end < source.size() && source[line_end] != '\n') {
    ++line_end;
  }
  std::string out = "  | ";
  out.append(source.substr(line_start, line_end - line_start));
  out += "\n  | ";
  for (std::size_t i = line_start; i < span.offset; ++i) {
    out += (source[i] == '\t') ? '\t' : ' ';
  }
  const std::size_t width =
      std::max<std::size_t>(1, std::min(span.length, line_end - span.offset));
  out += '^';
  for (std::size_t i = 1; i < width; ++i) {
    out += '~';
  }
  out += '\n';
  return out;
}

}  // namespace

const DiagCodeInfo& GetDiagCodeInfo(DiagCode code) {
  for (const DiagCodeInfo& info : CodeTable()) {
    if (info.code == code) {
      return info;
    }
  }
  FMTK_CHECK(false) << "diagnostic code missing from the registry: "
                    << static_cast<int>(code);
  return CodeTable().front();
}

const std::vector<DiagCodeInfo>& AllDiagCodes() { return CodeTable(); }

const char* DiagCodeId(DiagCode code) { return GetDiagCodeInfo(code).id; }

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "error";
}

std::string Diagnostic::ToString(std::string_view source) const {
  std::string out = DiagSeverityName(severity);
  out += '[';
  out += DiagCodeId(code);
  out += "]: ";
  out += message;
  if (span.valid() && !source.empty()) {
    std::size_t line = 0;
    std::size_t col = 0;
    LineColOf(source, span.offset, line, col);
    out += " (at " + std::to_string(line) + ":" + std::to_string(col) + ")";
  }
  return out;
}

Diagnostic& DiagnosticSink::Report(DiagCode code, SourceSpan span,
                                   std::string message) {
  return ReportAs(code, GetDiagCodeInfo(code).default_severity, span,
                  std::move(message));
}

Diagnostic& DiagnosticSink::ReportAs(DiagCode code, DiagSeverity severity,
                                     SourceSpan span, std::string message) {
  if (severity == DiagSeverity::kError) {
    ++error_count_;
  } else if (severity == DiagSeverity::kWarning) {
    ++warning_count_;
  }
  diagnostics_.push_back(
      Diagnostic{code, severity, span, std::move(message), {}});
  return diagnostics_.back();
}

std::vector<std::string> DiagnosticSink::MessagesFor(
    DiagSeverity severity) const {
  std::vector<std::string> out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) {
      out.push_back(d.ToString());
    }
  }
  return out;
}

std::string DiagnosticSink::ToText(std::string_view source) const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString(source);
    out += '\n';
    if (d.span.valid() && !source.empty()) {
      out += CaretLines(source, d.span);
    }
    for (const DiagnosticNote& note : d.notes) {
      out += "  note: ";
      out += note.message;
      out += '\n';
      if (note.span.valid() && !source.empty()) {
        out += CaretLines(source, note.span);
      }
    }
  }
  return out;
}

std::string DiagnosticSink::ToJson() const {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"code\":";
    JsonAppendString(out, DiagCodeId(d.code));
    out += ",\"severity\":";
    JsonAppendString(out, DiagSeverityName(d.severity));
    out += ",\"message\":";
    JsonAppendString(out, d.message);
    if (d.span.valid()) {
      out += ",\"offset\":" + std::to_string(d.span.offset);
      out += ",\"length\":" + std::to_string(d.span.length);
    }
    out += ",\"notes\":[";
    for (std::size_t n = 0; n < d.notes.size(); ++n) {
      if (n > 0) {
        out += ',';
      }
      out += "{\"message\":";
      JsonAppendString(out, d.notes[n].message);
      if (d.notes[n].span.valid()) {
        out += ",\"offset\":" + std::to_string(d.notes[n].span.offset);
        out += ",\"length\":" + std::to_string(d.notes[n].span.length);
      }
      out += '}';
    }
    out += "]}";
  }
  out += ']';
  return out;
}

Status DiagnosticSink::ToStatus() const {
  if (!has_errors()) {
    return Status::OK();
  }
  std::string message;
  StatusCode code = StatusCode::kInvalidArgument;
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != DiagSeverity::kError) {
      continue;
    }
    if (first) {
      code = GetDiagCodeInfo(d.code).status_code;
      first = false;
    } else {
      message += '\n';
    }
    message += d.ToString();
  }
  return Status(code, std::move(message));
}

}  // namespace fmtk
