#include "analysis/datalog_analyzer.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "base/string_util.h"

namespace fmtk {

namespace {

// Local renderings of atoms and rules. fmtk_analysis deliberately uses only
// the header-level datalog types (no fmtk_datalog object code): fmtk_datalog
// links against this library for Validate(), not the other way around.
std::string FormatAtom(const DlAtom& atom) {
  std::string out = atom.predicate + "(";
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += atom.terms[i].is_variable ? atom.terms[i].variable
                                     : std::to_string(atom.terms[i].value);
  }
  out += ")";
  return out;
}

std::string FormatRule(const DlRule& rule) {
  std::string out = FormatAtom(rule.head);
  if (!rule.body.empty()) {
    out += " :- ";
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += FormatAtom(rule.body[i]);
    }
  }
  out += ".";
  return out;
}

/// Iterative Tarjan over the IDB predicate dependency graph (edges point
/// from a head to the IDB predicates its rules' bodies use). Tarjan pops
/// components sinks-first, which for dependency edges is exactly the
/// dependencies-first (bottom-up evaluation) order the analysis promises.
class TarjanScc {
 public:
  TarjanScc(const std::vector<std::string>& nodes,
            const std::map<std::string, std::set<std::string>>& edges)
      : nodes_(nodes), edges_(edges) {}

  std::vector<std::vector<std::string>> Run() {
    for (const std::string& node : nodes_) {
      if (index_.find(node) == index_.end()) {
        Visit(node);
      }
    }
    return components_;
  }

 private:
  struct Frame {
    std::string node;
    std::vector<std::string> successors;
    std::size_t next = 0;
  };

  void Visit(const std::string& root) {
    std::vector<Frame> call_stack;
    call_stack.push_back(MakeFrame(root));
    Open(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      if (frame.next < frame.successors.size()) {
        const std::string successor = frame.successors[frame.next++];
        auto it = index_.find(successor);
        if (it == index_.end()) {
          Open(successor);
          call_stack.push_back(MakeFrame(successor));
        } else if (on_stack_.count(successor) > 0) {
          lowlink_[frame.node] =
              std::min(lowlink_[frame.node], it->second);
        }
        continue;
      }
      const std::string node = frame.node;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        lowlink_[call_stack.back().node] =
            std::min(lowlink_[call_stack.back().node], lowlink_[node]);
      }
      if (lowlink_[node] == index_[node]) {
        std::vector<std::string> component;
        while (true) {
          const std::string member = stack_.back();
          stack_.pop_back();
          on_stack_.erase(member);
          component.push_back(member);
          if (member == node) {
            break;
          }
        }
        std::sort(component.begin(), component.end());
        components_.push_back(std::move(component));
      }
    }
  }

  Frame MakeFrame(const std::string& node) {
    Frame frame;
    frame.node = node;
    auto it = edges_.find(node);
    if (it != edges_.end()) {
      frame.successors.assign(it->second.begin(), it->second.end());
    }
    return frame;
  }

  void Open(const std::string& node) {
    index_[node] = next_index_;
    lowlink_[node] = next_index_;
    ++next_index_;
    stack_.push_back(node);
    on_stack_.insert(node);
  }

  const std::vector<std::string>& nodes_;
  const std::map<std::string, std::set<std::string>>& edges_;
  std::unordered_map<std::string, std::size_t> index_;
  std::unordered_map<std::string, std::size_t> lowlink_;
  std::vector<std::string> stack_;
  std::unordered_set<std::string> on_stack_;
  std::size_t next_index_ = 0;
  std::vector<std::vector<std::string>> components_;
};

}  // namespace

std::string DatalogSccInfo::ToString() const {
  std::string out = "{" + Join(predicates, ",") + "} ";
  if (!recursive) {
    out += "non-recursive";
  } else if (linear) {
    out += "linear recursion";
  } else {
    out += "nonlinear recursion (" + std::to_string(max_recursive_atoms) +
           " recursive atoms)";
  }
  return out;
}

std::vector<std::string> DatalogAnalysis::RecursionSummary() const {
  std::vector<std::string> out;
  out.reserve(sccs.size());
  for (const DatalogSccInfo& scc : sccs) {
    out.push_back(scc.ToString());
  }
  return out;
}

DatalogAnalysis AnalyzeProgram(const DatalogProgram& program,
                               const DatalogAnalyzerOptions& options) {
  DatalogAnalysis analysis;
  const std::vector<DlRule>& rules = program.rules();

  for (const DlRule& rule : rules) {
    analysis.idb_predicates.insert(rule.head.predicate);
  }
  for (const DlRule& rule : rules) {
    for (const DlAtom& atom : rule.body) {
      if (analysis.idb_predicates.count(atom.predicate) == 0) {
        analysis.edb_predicates.insert(atom.predicate);
      }
    }
  }

  // --- per-predicate arity consistency (FMTK101) --------------------------
  // The first occurrence (scanning heads then bodies, rule order) fixes the
  // arity; later deviating occurrences are flagged where they appear.
  std::map<std::string, std::size_t> arity_of;
  std::map<std::string, const DlAtom*> first_use;
  const auto check_arity = [&](const DlAtom& atom) {
    auto [it, inserted] = arity_of.emplace(atom.predicate,
                                           atom.terms.size());
    if (inserted) {
      first_use[atom.predicate] = &atom;
      return;
    }
    if (it->second != atom.terms.size()) {
      Diagnostic& d = analysis.diagnostics.Report(
          DiagCode::kInconsistentPredicateArity, atom.span,
          "predicate '" + atom.predicate + "' used with arity " +
              std::to_string(atom.terms.size()) + " but previously with " +
              std::to_string(it->second));
      d.notes.push_back(DiagnosticNote{
          "first use: " + FormatAtom(*first_use[atom.predicate]),
          first_use[atom.predicate]->span});
    }
  };
  for (const DlRule& rule : rules) {
    check_arity(rule.head);
    for (const DlAtom& atom : rule.body) {
      check_arity(atom);
    }
  }

  // --- range restriction & fact schemas (FMTK102, FMTK107) ---------------
  for (const DlRule& rule : rules) {
    if (rule.body.empty()) {
      for (const DlTerm& term : rule.head.terms) {
        if (term.is_variable) {
          analysis.diagnostics.Report(
              DiagCode::kDomainDependentFactSchema, rule.span,
              "fact schema '" + FormatRule(rule) + "' ranges variable '" +
                  term.variable + "' over the whole domain");
          break;
        }
      }
      continue;
    }
    std::set<std::string> body_variables;
    for (const DlAtom& atom : rule.body) {
      for (const DlTerm& term : atom.terms) {
        if (term.is_variable) {
          body_variables.insert(term.variable);
        }
      }
    }
    for (const DlTerm& term : rule.head.terms) {
      if (term.is_variable && body_variables.count(term.variable) == 0) {
        analysis.diagnostics.Report(
            DiagCode::kUnboundHeadVariable, rule.span,
            "head variable '" + term.variable + "' of rule '" +
                FormatRule(rule) + "' does not occur in the body");
      }
    }
  }

  // --- EDB checks against the signature (FMTK103-105) ---------------------
  if (options.signature != nullptr) {
    for (const std::string& idb : analysis.idb_predicates) {
      if (options.signature->FindRelation(idb).has_value()) {
        analysis.diagnostics.Report(
            DiagCode::kIdbEdbCollision, SourceSpan{},
            "IDB predicate '" + idb +
                "' collides with a relation of the EDB signature " +
                options.signature->ToString());
      }
    }
    std::set<std::string> reported_unknown;
    for (const DlRule& rule : rules) {
      for (const DlAtom& atom : rule.body) {
        if (analysis.idb_predicates.count(atom.predicate) > 0) {
          continue;
        }
        const auto index = options.signature->FindRelation(atom.predicate);
        if (!index.has_value()) {
          if (reported_unknown.insert(atom.predicate).second) {
            analysis.diagnostics.Report(
                DiagCode::kUnknownEdbPredicate, atom.span,
                "EDB predicate '" + atom.predicate +
                    "' is not a relation of the signature " +
                    options.signature->ToString());
          }
          continue;
        }
        const std::size_t arity = options.signature->relation(*index).arity;
        if (arity != atom.terms.size()) {
          analysis.diagnostics.Report(
              DiagCode::kEdbArityMismatch, atom.span,
              "EDB atom '" + FormatAtom(atom) + "' has " +
                  std::to_string(atom.terms.size()) + " argument" +
                  (atom.terms.size() == 1 ? "" : "s") + " but relation '" +
                  atom.predicate + "' has arity " + std::to_string(arity));
        }
      }
    }
  }

  // --- dependency condensation & recursion classification -----------------
  std::vector<std::string> idb_nodes(analysis.idb_predicates.begin(),
                                     analysis.idb_predicates.end());
  std::map<std::string, std::set<std::string>> depends_on;
  std::map<std::string, bool> self_loop;
  for (const DlRule& rule : rules) {
    for (const DlAtom& atom : rule.body) {
      if (analysis.idb_predicates.count(atom.predicate) == 0) {
        continue;
      }
      depends_on[rule.head.predicate].insert(atom.predicate);
      if (atom.predicate == rule.head.predicate) {
        self_loop[rule.head.predicate] = true;
      }
    }
  }
  TarjanScc tarjan(idb_nodes, depends_on);
  for (std::vector<std::string>& component : tarjan.Run()) {
    DatalogSccInfo info;
    info.predicates = std::move(component);
    info.recursive = info.predicates.size() > 1 ||
                     self_loop[info.predicates.front()];
    const std::size_t index = analysis.sccs.size();
    for (const std::string& predicate : info.predicates) {
      analysis.scc_of[predicate] = index;
    }
    analysis.sccs.push_back(std::move(info));
  }
  for (const DlRule& rule : rules) {
    const std::size_t scc = analysis.scc_of[rule.head.predicate];
    std::size_t recursive_atoms = 0;
    for (const DlAtom& atom : rule.body) {
      auto it = analysis.scc_of.find(atom.predicate);
      if (it != analysis.scc_of.end() && it->second == scc) {
        ++recursive_atoms;
      }
    }
    DatalogSccInfo& info = analysis.sccs[scc];
    info.max_recursive_atoms =
        std::max(info.max_recursive_atoms, recursive_atoms);
    if (recursive_atoms > 1) {
      info.linear = false;
    }
  }

  // --- reachability relative to the outputs (FMTK106) ---------------------
  analysis.rule_reachable.assign(rules.size(), true);
  if (!options.outputs.empty()) {
    std::set<std::string> reachable;
    std::deque<std::string> frontier(options.outputs.begin(),
                                     options.outputs.end());
    for (const std::string& output : options.outputs) {
      reachable.insert(output);
    }
    while (!frontier.empty()) {
      const std::string predicate = std::move(frontier.front());
      frontier.pop_front();
      auto it = depends_on.find(predicate);
      if (it == depends_on.end()) {
        continue;
      }
      for (const std::string& dep : it->second) {
        if (reachable.insert(dep).second) {
          frontier.push_back(dep);
        }
      }
    }
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (reachable.count(rules[i].head.predicate) == 0) {
        analysis.rule_reachable[i] = false;
        analysis.diagnostics.Report(
            DiagCode::kUnreachableRule, rules[i].span,
            "rule '" + FormatRule(rules[i]) +
                "' is unreachable from the output predicate" +
                (options.outputs.size() == 1 ? " '" : "s '") +
                Join(options.outputs, "', '") + "'");
      }
    }
  }

  return analysis;
}

}  // namespace fmtk
