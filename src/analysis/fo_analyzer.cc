#include "analysis/fo_analyzer.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "logic/analysis.h"

namespace fmtk {

namespace {

/// A set of range-restricted variables; `all` is the absorbing element that
/// an unsatisfiable subformula produces (every variable is vacuously
/// restricted by ⊥, as in the classical rr() tables).
struct RangeSet {
  bool all = false;
  std::set<std::string> vars;

  bool Contains(const std::string& name) const {
    return all || vars.count(name) > 0;
  }
};

RangeSet AllRange() { return RangeSet{true, {}}; }

RangeSet UnionRange(RangeSet a, const RangeSet& b) {
  if (a.all || b.all) {
    return AllRange();
  }
  a.vars.insert(b.vars.begin(), b.vars.end());
  return a;
}

RangeSet IntersectRange(const RangeSet& a, const RangeSet& b) {
  if (a.all) {
    return b;
  }
  if (b.all) {
    return a;
  }
  RangeSet out;
  std::set_intersection(a.vars.begin(), a.vars.end(), b.vars.begin(),
                        b.vars.end(),
                        std::inserter(out.vars, out.vars.begin()));
  return out;
}

/// Positive-polarity equalities of a conjunctive context: variable/variable
/// links (closure edges) and variables pinned to a constant.
struct EqualityEdges {
  std::vector<std::pair<std::string, std::string>> var_var;
  std::set<std::string> var_const;
};

/// Flattens the conjunctive context of `f` under the given polarity
/// (And when positive, Or/Implies under a negation, Not flips) and collects
/// the equalities that occur positively in it.
void CollectEqualities(const Formula& f, bool negated, EqualityEdges& out) {
  switch (f.kind()) {
    case FormulaKind::kNot:
      CollectEqualities(f.child(0), !negated, out);
      return;
    case FormulaKind::kAnd:
      if (!negated) {
        for (const Formula& child : f.children()) {
          CollectEqualities(child, false, out);
        }
      }
      return;
    case FormulaKind::kOr:
      if (negated) {
        for (const Formula& child : f.children()) {
          CollectEqualities(child, true, out);
        }
      }
      return;
    case FormulaKind::kImplies:
      // ¬(a → b) = a ∧ ¬b.
      if (negated) {
        CollectEqualities(f.child(0), false, out);
        CollectEqualities(f.child(1), true, out);
      }
      return;
    case FormulaKind::kEqual: {
      if (negated) {
        return;
      }
      const Term& a = f.terms()[0];
      const Term& b = f.terms()[1];
      if (a == b) {
        return;
      }
      if (a.is_variable() && b.is_variable()) {
        out.var_var.emplace_back(a.name, b.name);
      } else if (a.is_variable()) {
        out.var_const.insert(a.name);
      } else if (b.is_variable()) {
        out.var_const.insert(b.name);
      }
      return;
    }
    default:
      return;
  }
}

/// Propagates restriction through the conjunction's equalities: x = c pins
/// x; x = y spreads restriction both ways until a fixpoint.
RangeSet CloseOverEqualities(RangeSet s, const EqualityEdges& edges) {
  if (s.all) {
    return s;
  }
  s.vars.insert(edges.var_const.begin(), edges.var_const.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b] : edges.var_var) {
      if (s.vars.count(a) > 0 && s.vars.insert(b).second) {
        changed = true;
      }
      if (s.vars.count(b) > 0 && s.vars.insert(a).second) {
        changed = true;
      }
    }
  }
  return s;
}

class FoAnalyzer {
 public:
  FoAnalyzer(const FoAnalyzerOptions& options, FoAnalysis& out)
      : options_(options), out_(out) {}

  void Run(const Formula& f) {
    out_.quantifier_rank = QuantifierRank(f);
    out_.quantifier_count = QuantifierCount(f);
    out_.variable_width = AllVariables(f).size();
    out_.free_variables = FreeVariables(f);

    Walk(f, SourceSpan{}, /*bound=*/{});

    const RangeSet rr = Rr(f, /*negated=*/false, SourceSpan{});
    if (rr.all) {
      out_.range_restricted = out_.free_variables;
    } else {
      std::set_intersection(
          rr.vars.begin(), rr.vars.end(), out_.free_variables.begin(),
          out_.free_variables.end(),
          std::inserter(out_.range_restricted,
                        out_.range_restricted.begin()));
    }
    out_.safe_range = !unsafe_quantifier_seen_ &&
                      out_.range_restricted == out_.free_variables;
    if (!out_.safe_range) {
      std::vector<std::string> unrestricted;
      for (const std::string& v : out_.free_variables) {
        if (out_.range_restricted.count(v) == 0) {
          unrestricted.push_back("'" + v + "'");
        }
      }
      std::string message = "formula is not safe-range";
      if (!unrestricted.empty()) {
        message += ": free variable" + std::string(
                       unrestricted.size() > 1 ? "s " : " ") +
                   Join(unrestricted, ", ") + " not range-restricted";
      } else {
        message += ": a quantified variable is not range-restricted";
      }
      out_.diagnostics.ReportAs(DiagCode::kNotSafeRange, SafeRangeSeverity(),
                                SpanOf(f, SourceSpan{}), std::move(message));
    }
  }

 private:
  DiagSeverity SafeRangeSeverity() const {
    return options_.profile == FoProfile::kQuery ? DiagSeverity::kError
                                                 : DiagSeverity::kWarning;
  }

  SourceSpan SpanOf(const Formula& f, SourceSpan fallback) const {
    if (options_.spans == nullptr) {
      return fallback;
    }
    const SourceSpan span = options_.spans->Lookup(f);
    return span.valid() ? span : fallback;
  }

  // --- general walk: vocabulary checks, hygiene lints, folding hints ------

  void CheckTerms(const Formula& f, SourceSpan span) {
    if (options_.signature == nullptr) {
      return;
    }
    for (const Term& t : f.terms()) {
      if (t.is_constant() &&
          !options_.signature->FindConstant(t.name).has_value()) {
        out_.diagnostics.Report(
            DiagCode::kUnknownConstant, span,
            "constant '" + t.name + "' is not in the signature " +
                options_.signature->ToString());
      }
    }
  }

  void Walk(const Formula& f, SourceSpan enclosing,
            std::set<std::string> bound) {
    ++out_.node_count;
    const SourceSpan span = SpanOf(f, enclosing);
    switch (f.kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        return;
      case FormulaKind::kAtom: {
        if (options_.signature != nullptr) {
          const auto index = options_.signature->FindRelation(
              f.relation_name());
          if (!index.has_value()) {
            out_.diagnostics.Report(
                DiagCode::kUnknownRelation, span,
                "relation '" + f.relation_name() +
                    "' is not in the signature " +
                    options_.signature->ToString());
          } else {
            const std::size_t arity =
                options_.signature->relation(*index).arity;
            if (arity != f.terms().size()) {
              out_.diagnostics.Report(
                  DiagCode::kRelationArityMismatch, span,
                  "relation '" + f.relation_name() + "' has arity " +
                      std::to_string(arity) + " but is used with " +
                      std::to_string(f.terms().size()) + " argument" +
                      (f.terms().size() == 1 ? "" : "s"));
            }
          }
        }
        CheckTerms(f, span);
        return;
      }
      case FormulaKind::kEqual: {
        CheckTerms(f, span);
        if (f.terms()[0] == f.terms()[1]) {
          out_.diagnostics.Report(
              DiagCode::kTrivialEquality, span,
              "equality '" + f.ToString() +
                  "' compares a term with itself and is always true");
        }
        return;
      }
      case FormulaKind::kNot: {
        const Formula& child = f.child(0);
        if (child.kind() == FormulaKind::kNot) {
          out_.diagnostics.Report(
              DiagCode::kDoubleNegation, span,
              "double negation folds away: '" + f.ToString() +
                  "' is equivalent to its doubly-negated body");
        }
        ReportConstantOperand(f, span, "'!'");
        Walk(child, span, std::move(bound));
        return;
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
      case FormulaKind::kImplies:
      case FormulaKind::kIff: {
        ReportConstantOperand(
            f, span,
            f.kind() == FormulaKind::kAnd       ? "'&'"
            : f.kind() == FormulaKind::kOr      ? "'|'"
            : f.kind() == FormulaKind::kImplies ? "'->'"
                                                : "'<->'");
        for (const Formula& child : f.children()) {
          Walk(child, span, bound);
        }
        return;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall:
      case FormulaKind::kCountExists: {
        const std::string& variable = f.variable();
        if (FreeVariables(f.body()).count(variable) == 0) {
          out_.diagnostics.Report(
              DiagCode::kUnusedQuantifiedVariable, span,
              "quantified variable '" + variable +
                  "' does not occur in the quantifier's body");
        }
        if (bound.count(variable) > 0) {
          out_.diagnostics.Report(
              DiagCode::kShadowedVariable, span,
              "variable '" + variable +
                  "' shadows an enclosing quantifier's binding");
        } else if (out_.free_variables.count(variable) > 0) {
          out_.diagnostics.Report(
              DiagCode::kShadowedVariable, span,
              "variable '" + variable +
                  "' shadows a free variable of the formula");
        }
        ReportConstantOperand(f, span, "the quantifier");
        bound.insert(variable);
        Walk(f.body(), span, std::move(bound));
        return;
      }
    }
  }

  void ReportConstantOperand(const Formula& f, SourceSpan span,
                             const std::string& what) {
    for (const Formula& child : f.children()) {
      if (child.kind() == FormulaKind::kTrue ||
          child.kind() == FormulaKind::kFalse) {
        out_.diagnostics.Report(
            DiagCode::kConstantSubformula, SpanOf(child, span),
            std::string("constant operand '") +
                (child.kind() == FormulaKind::kTrue ? "true" : "false") +
                "' of " + what + " folds away");
      }
    }
  }

  // --- safe-range analysis ------------------------------------------------
  //
  // Rr(f, negated) computes rr(f) resp. rr(¬f) of the safe-range normal
  // form without materializing it: the polarity flag plays the role of the
  // SRNF rewriting (¬¬ elimination, De Morgan, ∀x φ = ¬∃x ¬φ, expansion of
  // → and ↔). Quantifiers whose variable is not restricted in their scope
  // are reported as FMTK011 once per node.

  RangeSet Rr(const Formula& f, bool negated, SourceSpan enclosing) {
    const SourceSpan span = SpanOf(f, enclosing);
    switch (f.kind()) {
      case FormulaKind::kTrue:
        return negated ? AllRange() : RangeSet{};
      case FormulaKind::kFalse:
        return negated ? RangeSet{} : AllRange();
      case FormulaKind::kAtom: {
        RangeSet s;
        if (!negated) {
          for (const Term& t : f.terms()) {
            if (t.is_variable()) {
              s.vars.insert(t.name);
            }
          }
        }
        return s;
      }
      case FormulaKind::kEqual: {
        RangeSet s;
        if (negated || f.terms()[0] == f.terms()[1]) {
          return s;
        }
        // x = c pins x; x = y restricts neither by itself (the enclosing
        // conjunction's equality closure links them).
        if (f.terms()[0].is_variable() && f.terms()[1].is_constant()) {
          s.vars.insert(f.terms()[0].name);
        } else if (f.terms()[1].is_variable() &&
                   f.terms()[0].is_constant()) {
          s.vars.insert(f.terms()[1].name);
        }
        return s;
      }
      case FormulaKind::kNot:
        return Rr(f.child(0), !negated, span);
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        const bool conjunctive = (f.kind() == FormulaKind::kAnd) != negated;
        if (f.child_count() == 0) {
          // Empty And is true, empty Or is false; `conjunctive` coincides
          // with "effectively true" here.
          return conjunctive ? RangeSet{} : AllRange();
        }
        if (conjunctive) {
          RangeSet s;
          for (const Formula& child : f.children()) {
            s = UnionRange(std::move(s), Rr(child, negated, span));
          }
          EqualityEdges edges;
          CollectEqualities(f, negated, edges);
          return CloseOverEqualities(std::move(s), edges);
        }
        RangeSet s = AllRange();
        for (const Formula& child : f.children()) {
          s = IntersectRange(s, Rr(child, negated, span));
        }
        return s;
      }
      case FormulaKind::kImplies: {
        // a → b = ¬a ∨ b.
        if (!negated) {
          return IntersectRange(Rr(f.child(0), true, span),
                                Rr(f.child(1), false, span));
        }
        RangeSet s = UnionRange(Rr(f.child(0), false, span),
                                Rr(f.child(1), true, span));
        EqualityEdges edges;
        CollectEqualities(f, true, edges);
        return CloseOverEqualities(std::move(s), edges);
      }
      case FormulaKind::kIff: {
        // a ↔ b = (a ∧ b) ∨ (¬a ∧ ¬b); negated: (a ∧ ¬b) ∨ (¬a ∧ b).
        const auto branch = [&](bool left_negated, bool right_negated) {
          RangeSet s = UnionRange(Rr(f.child(0), left_negated, span),
                                  Rr(f.child(1), right_negated, span));
          EqualityEdges edges;
          CollectEqualities(f.child(0), left_negated, edges);
          CollectEqualities(f.child(1), right_negated, edges);
          return CloseOverEqualities(std::move(s), edges);
        };
        return negated
                   ? IntersectRange(branch(false, true), branch(true, false))
                   : IntersectRange(branch(false, false),
                                    branch(true, true));
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall:
      case FormulaKind::kCountExists: {
        // ∀x φ = ¬∃x ¬φ: a Forall node is an Exists over the negated body,
        // itself under a negation.
        const bool body_negated = f.kind() == FormulaKind::kForall;
        const bool existential_here =
            (f.kind() == FormulaKind::kForall) == negated;
        RangeSet body = Rr(f.body(), body_negated, span);
        if (!body.Contains(f.variable())) {
          unsafe_quantifier_seen_ = true;
          if (unsafe_reported_.insert(f.node_identity()).second) {
            out_.diagnostics.ReportAs(
                DiagCode::kUnsafeQuantifier, SafeRangeSeverity(), span,
                "quantified variable '" + f.variable() +
                    "' is not range-restricted in its scope");
          }
        }
        if (!existential_here) {
          // The quantifier sits under a negation in SRNF (¬∃x ψ): the
          // negation contributes no restricted variables.
          return RangeSet{};
        }
        if (body.all) {
          return body;
        }
        body.vars.erase(f.variable());
        return body;
      }
    }
    return RangeSet{};
  }

  const FoAnalyzerOptions& options_;
  FoAnalysis& out_;
  bool unsafe_quantifier_seen_ = false;
  std::unordered_set<const void*> unsafe_reported_;
};

}  // namespace

FoAnalysis AnalyzeFormula(const Formula& f, const FoAnalyzerOptions& options) {
  FoAnalysis analysis;
  FoAnalyzer analyzer(options, analysis);
  analyzer.Run(f);
  return analysis;
}

}  // namespace fmtk
