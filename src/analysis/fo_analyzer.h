#ifndef FMTK_ANALYSIS_FO_ANALYZER_H_
#define FMTK_ANALYSIS_FO_ANALYZER_H_

#include <cstddef>
#include <set>
#include <string>

#include "analysis/diagnostics.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "structures/signature.h"

namespace fmtk {

/// Which severity the safe-range pair (FMTK010/FMTK011) carries.
enum class FoProfile {
  /// Model checking / domain-relative evaluation (the default semantics of
  /// EvaluateQuery and ModelChecker): unsafe formulas are still meaningful,
  /// so safe-range violations are warnings.
  kModelCheck,
  /// Active-domain (database) query semantics: safe-range violations are
  /// errors, as in the survey's Sec. 3 (domain independence).
  kQuery,
};

struct FoAnalyzerOptions {
  /// When set, atoms and constant terms are checked against this vocabulary
  /// (FMTK001-FMTK003).
  const Signature* signature = nullptr;
  /// When set (from ParseFormulaWithSpans), diagnostics carry byte spans
  /// into the source text.
  const FormulaSpans* spans = nullptr;
  FoProfile profile = FoProfile::kModelCheck;
};

/// Everything the static analyzer derives from one formula.
struct FoAnalysis {
  DiagnosticSink diagnostics;

  /// Syntactic measures (the survey's complexity parameters).
  std::size_t quantifier_rank = 0;
  std::size_t quantifier_count = 0;
  /// |variables(φ)|: φ lies in the k-variable fragment FO^k for this k.
  std::size_t variable_width = 0;
  /// Number of formula nodes (size of the AST).
  std::size_t node_count = 0;

  std::set<std::string> free_variables;
  /// The range-restricted free variables rr(φ) of the safe-range analysis
  /// (all free variables when φ is unsatisfiable at the top level).
  std::set<std::string> range_restricted;
  /// rr(φ) = free(φ) and every quantified variable is range-restricted in
  /// its scope; safe-range formulas are domain independent.
  bool safe_range = false;

  bool ok() const { return !diagnostics.has_errors(); }
  Status status() const { return diagnostics.ToStatus(); }
};

/// Runs the full static analysis: vocabulary checks, safe-range analysis
/// (classical syntactic safe-range normal form, handled by polarity-aware
/// recursion so no rewriting is needed), variable hygiene lints, folding
/// hints, and syntactic measures. Never fails: inspect `diagnostics`.
FoAnalysis AnalyzeFormula(const Formula& f,
                          const FoAnalyzerOptions& options = {});

}  // namespace fmtk

#endif  // FMTK_ANALYSIS_FO_ANALYZER_H_
