#ifndef FMTK_ANALYSIS_DATALOG_ANALYZER_H_
#define FMTK_ANALYSIS_DATALOG_ANALYZER_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "datalog/program.h"
#include "structures/signature.h"

namespace fmtk {

struct DatalogAnalyzerOptions {
  /// When set, EDB atoms are checked against this vocabulary (FMTK103-105).
  const Signature* signature = nullptr;
  /// Output predicates of the query. Rules whose head cannot reach an
  /// output in the dependency graph are flagged FMTK106. Empty = every IDB
  /// predicate is an output (no reachability pruning).
  std::vector<std::string> outputs;
};

/// One strongly connected component of the predicate dependency graph.
struct DatalogSccInfo {
  /// Member predicates, sorted by name.
  std::vector<std::string> predicates;
  /// The SCC contains a cycle (a self-loop or more than one predicate):
  /// its predicates are defined by recursion.
  bool recursive = false;
  /// Every rule whose head lies in this SCC has at most one body atom in
  /// the SCC. Linear recursions admit the single-delta semi-naive rewrite;
  /// nonlinear ones need the full delta decomposition.
  bool linear = true;
  /// The largest number of same-SCC body atoms of any member rule.
  std::size_t max_recursive_atoms = 0;

  /// "{tc} nonlinear recursion (2 recursive atoms)".
  std::string ToString() const;
};

/// Static analysis of a Datalog program: schema/arity diagnostics plus the
/// predicate dependency condensation used for recursion classification.
struct DatalogAnalysis {
  DiagnosticSink diagnostics;

  std::set<std::string> idb_predicates;
  std::set<std::string> edb_predicates;

  /// Condensation of the IDB dependency graph in dependencies-first order
  /// (an SCC appears after every SCC it depends on), i.e. bottom-up
  /// evaluation order.
  std::vector<DatalogSccInfo> sccs;
  /// Index into `sccs` per IDB predicate.
  std::map<std::string, std::size_t> scc_of;

  /// Per rule (by index in program.rules()): is the rule's head reachable
  /// from the requested output predicates?
  std::vector<bool> rule_reachable;

  bool ok() const { return !diagnostics.has_errors(); }
  Status status() const { return diagnostics.ToStatus(); }

  /// One line per SCC, dependencies first — the recursion commentary the
  /// engines surface in DatalogStats.
  std::vector<std::string> RecursionSummary() const;
};

/// Runs the full program analysis: per-predicate arity consistency
/// (FMTK101), range restriction of heads (FMTK102), EDB checks against the
/// signature when given (FMTK103-105), reachability relative to the output
/// predicates (FMTK106), domain-dependent fact schemas (FMTK107), and the
/// Tarjan SCC condensation with linear/nonlinear classification.
DatalogAnalysis AnalyzeProgram(const DatalogProgram& program,
                               const DatalogAnalyzerOptions& options = {});

}  // namespace fmtk

#endif  // FMTK_ANALYSIS_DATALOG_ANALYZER_H_
