#ifndef FMTK_ANALYSIS_DIAGNOSTICS_H_
#define FMTK_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "base/source_span.h"
#include "base/status.h"

namespace fmtk {

/// Stable diagnostic codes of the static query analyzer. Codes are part of
/// the public surface (tests, docs, --json consumers key on them): never
/// renumber an existing code; add new ones at the end of each block.
/// FMTK0xx = first-order formulas, FMTK1xx = Datalog programs,
/// FMTK2xx = structure/bulk-data input.
enum class DiagCode {
  // --- FO analyzer (fo_analyzer.h) ---------------------------------------
  /// An atom uses a relation symbol absent from the signature.
  kUnknownRelation = 1,  // FMTK001
  /// An atom's term count differs from its relation symbol's arity.
  kRelationArityMismatch = 2,  // FMTK002
  /// A constant term names no constant of the signature.
  kUnknownConstant = 3,  // FMTK003
  /// The formula is not safe-range: a free variable is not range-restricted
  /// by the formula (error in the query profile, warning otherwise).
  kNotSafeRange = 10,  // FMTK010
  /// A quantified variable is not range-restricted in its scope, so the
  /// safe-range normal form of the formula is unsafe (profile-dependent
  /// severity, like FMTK010).
  kUnsafeQuantifier = 11,  // FMTK011
  /// A quantifier binds a variable that never occurs in its body.
  kUnusedQuantifiedVariable = 12,  // FMTK012
  /// A quantifier rebinds a variable already bound by an enclosing
  /// quantifier (or shadowing a free variable of the whole formula).
  kShadowedVariable = 13,  // FMTK013
  /// A double negation !!φ that folds to φ.
  kDoubleNegation = 14,  // FMTK014
  /// A Boolean connective has a constant true/false operand and folds.
  kConstantSubformula = 15,  // FMTK015
  /// An equality t = t between identical terms (trivially true).
  kTrivialEquality = 16,  // FMTK016

  // --- Datalog analyzer (datalog_analyzer.h) ------------------------------
  /// A predicate is used with different arities across the program.
  kInconsistentPredicateArity = 101,  // FMTK101
  /// A head variable does not occur in any body atom (range restriction).
  kUnboundHeadVariable = 102,  // FMTK102
  /// A body predicate is neither IDB nor a relation of the EDB signature.
  kUnknownEdbPredicate = 103,  // FMTK103
  /// An EDB atom's arity differs from the signature's relation arity.
  kEdbArityMismatch = 104,  // FMTK104
  /// An IDB predicate collides with a relation of the EDB signature.
  kIdbEdbCollision = 105,  // FMTK105
  /// A rule's head predicate is unreachable from the output predicates.
  kUnreachableRule = 106,  // FMTK106
  /// An empty-body rule with a variable head ranges over the whole domain
  /// (domain-dependent fact schema, like the survey's "sg(x,x) :-").
  kDomainDependentFactSchema = 107,  // FMTK107

  // --- Structure / bulk-data input (structures/bulk_load.h, io.h) ----------
  /// The input ends mid-record: a binary file cut short, or an edge-list
  /// line with a dangling source vertex and no target.
  kIoTruncatedInput = 201,  // FMTK201
  /// A record that cannot be decoded: bad magic/version, a non-numeric
  /// vertex id in numeric mode, or a wrong column count.
  kIoMalformedRecord = 202,  // FMTK202
  /// A tuple element or constant at or beyond the declared domain size.
  kIoElementOutOfRange = 203,  // FMTK203
  /// Duplicate tuples in the input, collapsed to one (set semantics).
  kIoDuplicateTuple = 204,  // FMTK204
  /// A declared relation with no tuples after loading — often a symptom of
  /// a wrong delimiter or comment convention, so it is surfaced.
  kIoEmptyRelation = 205,  // FMTK205
};

enum class DiagSeverity {
  kError,
  kWarning,
  /// Folding hints and style notes; never rejected on.
  kNote,
};

/// Static metadata for one diagnostic code: its stable "FMTK###" id, default
/// severity, the Status code engines reject with, and a short title for the
/// docs table. The golden-diagnostic test iterates AllDiagCodes() to assert
/// every code has a triggering input and a near-miss.
struct DiagCodeInfo {
  DiagCode code;
  const char* id;  // "FMTK001"
  DiagSeverity default_severity;
  StatusCode status_code;
  const char* title;
};

const DiagCodeInfo& GetDiagCodeInfo(DiagCode code);
const std::vector<DiagCodeInfo>& AllDiagCodes();

/// "FMTK001" etc.
const char* DiagCodeId(DiagCode code);

/// "error", "warning", "note".
const char* DiagSeverityName(DiagSeverity severity);

/// A secondary location or remark attached to a Diagnostic.
struct DiagnosticNote {
  std::string message;
  SourceSpan span;
};

/// One analyzer finding: a stable code, a severity (usually the code's
/// default, but the safe-range pair escalates in the query profile), a span
/// into the source text when the AST was parsed, the human-readable message,
/// and optional notes.
struct Diagnostic {
  DiagCode code = DiagCode::kUnknownRelation;
  DiagSeverity severity = DiagSeverity::kError;
  SourceSpan span;
  std::string message;
  std::vector<DiagnosticNote> notes;

  /// One-line rendering: "error[FMTK001]: unknown relation symbol 'R'".
  /// With `source`, appends "at line:col" resolved through the span.
  std::string ToString(std::string_view source = {}) const;
};

/// Collects diagnostics during an analysis pass and renders them as pretty
/// text (with caret underlining when the source text is supplied) or as a
/// JSON array for --json consumers.
class DiagnosticSink {
 public:
  /// Reports with the code's default severity. Returns the stored
  /// diagnostic so the caller can attach notes.
  Diagnostic& Report(DiagCode code, SourceSpan span, std::string message);

  /// Reports with an explicit severity (profile escalation).
  Diagnostic& ReportAs(DiagCode code, DiagSeverity severity, SourceSpan span,
                       std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t error_count() const { return error_count_; }
  std::size_t warning_count() const { return warning_count_; }
  bool has_errors() const { return error_count_ > 0; }

  /// Messages of all diagnostics at exactly `severity`, rendered one-line.
  std::vector<std::string> MessagesFor(DiagSeverity severity) const;

  /// Pretty multi-line report. When `source` is non-empty each spanned
  /// diagnostic shows its source line with a caret underline.
  std::string ToText(std::string_view source = {}) const;

  /// JSON array of {code, severity, message, offset, length, notes}.
  std::string ToJson() const;

  /// OK when there are no errors; otherwise a Status whose code is the
  /// first error's DiagCodeInfo::status_code and whose message is every
  /// error (and only the errors), one per line.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

}  // namespace fmtk

#endif  // FMTK_ANALYSIS_DIAGNOSTICS_H_
