#ifndef FMTK_DATALOG_IVM_H_
#define FMTK_DATALOG_IVM_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "datalog/program.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// Counters for the last ApplyInsert / ApplyDelete call.
struct IvmStats {
  std::size_t rounds = 0;          // Fixpoint rounds run.
  std::uint64_t edb_changed = 0;   // EDB tuples actually added / removed.
  std::uint64_t idb_inserted = 0;  // Net new IDB tuples.
  std::uint64_t idb_deleted = 0;   // Net IDB tuples removed.
  std::uint64_t overestimate = 0;  // DRed deletion candidates.
  std::uint64_t rederived = 0;     // Candidates saved by rederivation.
};

/// Incremental view maintenance over the compiled semi-naive machinery:
/// the session owns a mutable EDB structure plus the materialized IDB
/// relations, and keeps the IDB exact under batched EDB insertions and
/// deletions without recomputing the fixpoint from scratch.
///
///  * Creation compiles the program in incremental mode — one delta
///    variant per body position, EDB positions included, since the EDB is
///    append-only within a batch — and materializes the initial fixpoint
///    by treating the whole EDB as the first insertion delta.
///  * ApplyInsert appends the batch to the EDB and runs delta-driven
///    rounds: round 1's delta is the appended EDB suffix, later rounds
///    promote newly derived IDB tuples, exactly the semi-naive invariant.
///    Cost scales with the derivations the batch actually triggers, not
///    with the size of the materialized view.
///  * ApplyDelete runs DRed (delete-and-rederive): an overestimate
///    fixpoint collects everything with a derivation through a deleted
///    tuple, the overestimate is pruned, then each candidate is checked
///    for an alternative derivation via a head-bound join plan and the
///    surviving reinsertions are propagated forward. Fact-schema tuples
///    are never deleted (their support is the domain, not the EDB).
///
/// tests/ivm_test.cc differential-tests both paths against from-scratch
/// re-evaluation on fixed-seed workloads.
class IncrementalDatalogSession {
 public:
  /// Compiles `program` against a private copy of `edb` and materializes
  /// the initial IDB fixpoint. Fails like CompiledDatalogEngine::Create.
  static Result<IncrementalDatalogSession> Create(
      const DatalogProgram& program, Structure edb);

  /// Appends `tuples` to the named EDB relation (duplicates are ignored)
  /// and maintains the IDB. Fails without side effects when the relation
  /// is unknown, an arity mismatches, or an element is out of range.
  Status ApplyInsert(std::string_view relation,
                     const std::vector<Tuple>& tuples);

  /// Removes `tuples` from the named EDB relation (absent tuples are
  /// ignored) and maintains the IDB via DRed.
  Status ApplyDelete(std::string_view relation,
                     const std::vector<Tuple>& tuples);

  /// The maintained IDB relations by predicate name. Pointers stay valid
  /// for the session's lifetime; contents change with each Apply call.
  std::map<std::string, const Relation*> Materialized() const;

  /// The session's current EDB (the private copy, with all batches
  /// applied).
  const Structure& edb() const;

  /// Counters for the most recent Apply call.
  const IvmStats& last_stats() const;

 private:
  struct Impl;
  explicit IncrementalDatalogSession(std::shared_ptr<Impl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<Impl> impl_;
};

}  // namespace fmtk

#endif  // FMTK_DATALOG_IVM_H_
