#ifndef FMTK_DATALOG_ENGINE_INTERNAL_H_
#define FMTK_DATALOG_ENGINE_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "datalog/program.h"
#include "structures/relation.h"
#include "structures/structure.h"

/// Shared internals of the compiled semi-naive machinery: the batch engine
/// (compiled_engine.cc) and the incremental-maintenance session (ivm.cc)
/// compile rules to the same slot/join-step representation and drive the
/// same join executor; only the fixpoint drivers differ. Nothing here is
/// part of the public API.

namespace fmtk {
namespace internal_datalog {

// A term compiled to an integer slot or an inline constant.
struct SlotTerm {
  bool is_const = false;
  Element value = 0;  // is_const
  int slot = -1;      // !is_const
};

// Which view of a body atom's store a join step reads. In batch mode EDB
// atoms always use kEdb (whole extent) and only IDB atoms carry the
// semi-naive old/full/delta split. In incremental mode EVERY body position
// gets a delta variant — the EDB is append-only within a batch, so its
// old/new views are prefix ranges exactly like the IDB's — and kEdb never
// appears.
enum class AtomRole {
  kEdb,    // EDB relation, whole extent (batch mode only).
  kFull,   // Before the delta position: [0, delta_end).
  kOld,    // After the delta position: [0, delta_begin).
  kDelta,  // The delta position itself: [delta_begin, delta_end).
};

// How one join step treats one column of its atom, decided at compile time
// from the statically known set of slots bound by earlier steps.
struct PosAction {
  enum Kind { kCheckConst, kCheckSlot, kBind } kind = kBind;
  Element value = 0;  // kCheckConst
  int slot = -1;      // kCheckSlot / kBind
};

struct JoinStep {
  bool is_idb = false;
  std::size_t pred = 0;  // IDB id, or EDB relation index in the signature.
  AtomRole role = AtomRole::kEdb;
  std::vector<PosAction> actions;       // One per column.
  std::vector<std::size_t> probe_cols;  // Columns bound before this step.
  // Batch mode only: per-column EDB ColumnIndex, bound once at Create (the
  // structure is immutable while the engine is in use). Incremental mode
  // mutates the EDB between batches — relations are even replaced wholesale
  // after deletions — so there the per-round pointers in RunState are used
  // instead, for EDB and IDB alike.
  std::vector<const Relation::ColumnIndex*> edb_index;
};

// One (rule, delta position) execution plan with its own join order.
struct Variant {
  std::optional<std::size_t> delta_step;  // Index into steps (always 0).
  std::vector<JoinStep> steps;
};

struct RuleExec {
  std::size_t head_pred = 0;  // IDB id.
  std::vector<SlotTerm> head;
  std::size_t slot_count = 0;
  bool pure_edb = false;  // No IDB body atom: fire in round 1 only.
  bool is_fact = false;   // Empty body: seeded before round 1.
  std::vector<Variant> variants;
  // Distinct head-variable slots of a fact rule, first-occurrence order.
  std::vector<int> fact_slots;
  // Incremental mode: the DRed rederivation plan — all-full roles, join
  // order chosen with the head slots pre-bound. The deletion driver seeds
  // the environment from a deleted-candidate head tuple and asks whether
  // any body instantiation survives in the pruned database.
  std::optional<Variant> rederive;
};

// Thread-mergeable subset of DatalogStats (everything the join recursion
// itself touches; rule_applications and tuples_new stay on the main
// thread).
struct StatsAcc {
  std::uint64_t atom_visits = 0;
  std::uint64_t tuples_derived = 0;
  std::uint64_t index_probes = 0;
  std::uint64_t tuples_scanned = 0;

  void MergeFrom(const StatsAcc& other) {
    atom_visits += other.atom_visits;
    tuples_derived += other.tuples_derived;
    index_probes += other.index_probes;
    tuples_scanned += other.tuples_scanned;
  }
};

struct EngineImpl {
  const DatalogProgram* program = nullptr;
  const Structure* edb = nullptr;
  // Incremental compilation: delta variants at every body position (EDB
  // included), no pre-bound EDB indexes, and a rederive plan per rule.
  bool incremental = false;

  std::vector<std::string> idb_names;  // id -> name
  std::vector<std::size_t> idb_arity;  // id -> arity
  std::unordered_map<std::string, std::size_t> idb_id;

  std::vector<RuleExec> rules;
  // Per IDB id: columns probed by some step (synced once per round).
  std::vector<std::vector<std::size_t>> probed_cols;
  // Per EDB relation index, incremental mode only: columns probed by some
  // step (batch mode pre-binds them in JoinStep::edb_index instead).
  std::vector<std::vector<std::size_t>> edb_probed_cols;
  std::vector<std::string> join_orders;
  // The analyzer's SCC classification and warnings, surfaced in
  // DatalogStats after a run.
  std::vector<std::string> recursion_info;
  std::vector<std::string> analyzer_warnings;

  Status Compile();
  Status CompileRule(const DlRule& rule);
  std::vector<std::size_t> ChooseJoinOrder(
      const std::vector<std::vector<SlotTerm>>& body_terms,
      const std::vector<bool>& body_is_idb,
      const std::vector<std::size_t>& body_pred,
      const std::optional<std::size_t>& delta_at,
      const std::vector<bool>* initial_bound = nullptr) const;
};

// Seeds the fact schemas into `idb` (head variables range over the whole
// domain). Shared by the batch evaluator's round 0 and the session's
// initial materialization.
Status SeedFacts(const EngineImpl& impl, std::vector<Relation>& idb);

// Per-run mutable state: the IDB relations plus the delta ranges of the
// round in flight. "old" = [0, delta_begin), "full-new" = [0, delta_end),
// "delta" = [delta_begin, delta_end); tuples derived during the round land
// at indices >= delta_end and stay invisible until the next promotion.
//
// Incremental mode adds the same prefix bookkeeping for the EDB relations
// (append-only within a batch) and, for DRed deletion, redirects kDelta
// reads to side stores of deleted tuples while the main ranges are pinned
// to the full pre-deletion extent.
struct RunState {
  std::vector<Relation> idb;
  std::vector<std::size_t> delta_begin;
  std::vector<std::size_t> delta_end;
  // Per (IDB id, column): the generation-tagged ColumnIndex, synced at the
  // round start to cover at least [0, delta_end); nullptr for unprobed
  // columns. Frozen for the rest of the round.
  std::vector<std::vector<const Relation::ColumnIndex*>> idb_index;

  // ---- Incremental mode only (empty/false in batch runs) ----------------
  std::vector<std::size_t> edb_delta_begin;
  std::vector<std::size_t> edb_delta_end;
  std::vector<std::vector<const Relation::ColumnIndex*>> edb_index;

  // DRed overestimate mode: kDelta steps read the deletion side stores
  // below (whose delta ranges grow across rounds like the IDB's), and
  // derivations land in del_idb instead of idb.
  bool deletion_mode = false;
  std::vector<Relation>* del_idb = nullptr;
  std::vector<Relation>* del_edb = nullptr;
  std::vector<std::size_t> del_idb_begin;
  std::vector<std::size_t> del_idb_end;
  std::vector<std::size_t> del_edb_begin;
  std::vector<std::size_t> del_edb_end;
  std::vector<std::vector<const Relation::ColumnIndex*>> del_idb_index;
  std::vector<std::vector<const Relation::ColumnIndex*>> del_edb_index;
};

// One in-flight execution of a rule variant: inserting directly into the
// derive target (sequential), buffering derivations (parallel worker), or
// probing for a single surviving derivation (find-first, the DRed
// rederivation check).
class VariantRun {
 public:
  VariantRun(const EngineImpl& impl, const RuleExec& rule,
             const Variant& variant, RunState& rs, StatsAcc& acc)
      : impl_(impl),
        rule_(rule),
        variant_(variant),
        rs_(rs),
        acc_(acc),
        env_(rule.slot_count, 0),
        isect_(variant.steps.size()) {}

  void set_buffer(std::vector<Tuple>* buffer) { buffer_ = buffer; }
  void set_step0_range(std::size_t begin, std::size_t end) {
    step0_range_ = {begin, end};
  }
  // Pre-binds slots (the rederive driver seeds head variables from the
  // candidate tuple). `env` must have rule.slot_count entries.
  void set_initial_env(const std::vector<Element>& env) { env_ = env; }
  // Stop at the first complete derivation instead of inserting; poll
  // found().
  void set_find_first() { find_first_ = true; }
  // Rearms a find-first run for the next candidate: rebinds the
  // environment and clears the found flag while the probe scratch keeps
  // its capacity — the rederivation driver reuses one run per rule across
  // thousands of candidates instead of reconstructing it.
  void ResetFindFirst(const std::vector<Element>& env) {
    env_.assign(env.begin(), env.end());
    found_ = false;
  }

  bool changed() const { return changed_; }
  bool found() const { return found_; }
  std::uint64_t tuples_new() const { return tuples_new_; }

  Status Execute() { return Step(0); }

 private:
  Status Step(std::size_t depth);
  Status TryTuple(std::size_t depth, const JoinStep& s, const Relation& rel,
                  std::size_t tuple_index);
  Status Derive();

  const EngineImpl& impl_;
  const RuleExec& rule_;
  const Variant& variant_;
  RunState& rs_;
  StatsAcc& acc_;
  std::vector<Element> env_;
  Tuple out_;
  std::vector<Tuple>* buffer_ = nullptr;
  std::optional<std::pair<std::size_t, std::size_t>> step0_range_;
  bool find_first_ = false;
  bool found_ = false;
  bool changed_ = false;
  std::uint64_t tuples_new_ = 0;
  // Probe scratch, reused across Step() calls. spans_, mat_, and tmp_ are
  // done with before the recursion resumes; isect_ is per-depth because a
  // step iterates its intersection while deeper steps compute theirs.
  // Posting lists arrive as (CSR slice, tail) views; a view with both
  // parts non-empty is materialized into mat_ so the intersection kernels
  // see one contiguous sorted span.
  std::vector<std::pair<const std::uint32_t*, std::size_t>> spans_;
  std::vector<std::vector<std::uint32_t>> mat_;
  std::vector<std::vector<std::uint32_t>> isect_;
  std::vector<std::uint32_t> tmp_;
};

}  // namespace internal_datalog
}  // namespace fmtk

#endif  // FMTK_DATALOG_ENGINE_INTERNAL_H_
