#ifndef FMTK_DATALOG_PROGRAM_H_
#define FMTK_DATALOG_PROGRAM_H_

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/source_span.h"
#include "structures/relation.h"

namespace fmtk {

/// A Datalog term: a variable or a domain-element literal.
struct DlTerm {
  bool is_variable = true;
  std::string variable;   // is_variable
  Element value = 0;      // !is_variable

  static DlTerm Var(std::string name) {
    DlTerm t;
    t.is_variable = true;
    t.variable = std::move(name);
    return t;
  }
  static DlTerm Const(Element value) {
    DlTerm t;
    t.is_variable = false;
    t.value = value;
    return t;
  }

  friend bool operator==(const DlTerm&, const DlTerm&) = default;
};

/// predicate(t1, ..., tk).
struct DlAtom {
  std::string predicate;
  std::vector<DlTerm> terms;
  /// Byte span in the source text when parsed; invalid for programmatically
  /// built atoms. The analyzer (analysis/datalog_analyzer.h) points
  /// diagnostics at it.
  SourceSpan span;

  std::string ToString() const;
};

/// head :- body1, ..., bodyn.  (n = 0 is a fact schema: true for all
/// instantiations of the head variables over the domain.)
struct DlRule {
  DlAtom head;
  std::vector<DlAtom> body;
  /// Byte span of the whole rule when parsed.
  SourceSpan span;

  std::string ToString() const;
};

/// A positive Datalog program: the fixed-point query language the survey
/// contrasts with FO (same-generation, transitive closure). IDB predicates
/// are those appearing in rule heads; everything else in bodies is EDB and
/// must name a relation of the input structure.
class DatalogProgram {
 public:
  DatalogProgram() = default;

  DatalogProgram& AddRule(DlRule rule);

  const std::vector<DlRule>& rules() const { return rules_; }

  /// Head predicates.
  std::set<std::string> IdbPredicates() const;

  /// Body predicates that are not IDB.
  std::set<std::string> EdbPredicates() const;

  /// Range restriction (every head variable must occur in the body, except
  /// in rules with empty bodies whose head variables range over the whole
  /// domain, like the survey's "sg(x, x) :-" fact schema) and per-predicate
  /// arity consistency. Delegates to the static analyzer
  /// (analysis/datalog_analyzer.h); use AnalyzeProgram directly for the
  /// full diagnostic list.
  Status Validate() const;

  std::string ToString() const;

  /// The survey's example programs.
  /// tc(x,y) :- E(x,y).   tc(x,y) :- E(x,z), tc(z,y).
  static DatalogProgram TransitiveClosure();
  /// sg(x,x) :-.   sg(x,y) :- E(u,x), E(v,y), sg(u,v).
  static DatalogProgram SameGeneration();
  /// The nonlinear (divide-and-conquer) variant with TWO recursive body
  /// atoms — the shape where the per-position delta scheme re-derives
  /// tuples once per position and the standard decomposition does not:
  /// tc(x,y) :- E(x,y).   tc(x,y) :- tc(x,z), tc(z,y).
  static DatalogProgram NonlinearTransitiveClosure();

 private:
  std::vector<DlRule> rules_;
};

/// Parses a program in textual form, e.g.
///   "tc(x,y) :- e(x,y). tc(x,y) :- e(x,z), tc(z,y)."
/// Identifiers are predicates/variables (variables are the identifiers in
/// term positions); nonnegative integers are domain-element literals. Each
/// rule ends with '.'; facts may omit ':-'. Atoms and rules carry byte
/// spans into `text`. With `validate` (the default) the parsed program is
/// Validate()d; pass false to collect the full diagnostic list from
/// AnalyzeProgram instead (the lint front end does).
Result<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                           bool validate = true);

}  // namespace fmtk

#endif  // FMTK_DATALOG_PROGRAM_H_
