#ifndef FMTK_DATALOG_COMPILED_ENGINE_H_
#define FMTK_DATALOG_COMPILED_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "base/result.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

namespace internal_datalog {
struct EngineImpl;
}  // namespace internal_datalog

/// The compiled, index-driven Datalog engine behind
/// DatalogStrategy::kSemiNaive — the Datalog counterpart of
/// eval/compiled_eval's treatment of FO:
///
///  * Each rule is compiled once against (program, structure): variables
///    become integer slots in a flat std::vector<Element> environment,
///    body atoms resolve to Relation handles (EDB) or IDB ids, and every
///    constant / repeated-variable / bound-variable position becomes a
///    precomputed check so the inner join loop never touches a string.
///  * One join order per (rule, delta position), chosen greedily: the
///    delta atom leads, then the atom with the most bound positions
///    (tie-break: smaller estimated relation) until the body is ordered.
///  * Each join step probes the most selective bound column through
///    Relation::ColumnIndex posting lists instead of scanning tuples()
///    end to end; relations are never copied — "old" / "full-new" /
///    "delta" views are index ranges over the append-only tuple store,
///    and the generation-tagged ColumnIndex is synced once per round.
///  * Standard semi-naive decomposition: the variant with the delta at
///    IDB position k joins full-new relations before k and pre-round
///    snapshots after k, so multi-IDB-atom rules stop re-deriving the
///    same tuple once per position. Pure-EDB rules fire in round 1 only.
///
/// The seed interpreter (DatalogStrategy::kNaive) remains the
/// differential oracle; tests/datalog_differential_test.cc holds the two
/// engines to identical IDB relations on fixed-seed random programs.
class CompiledDatalogEngine {
 public:
  /// Compiles `program` against `edb`. Fails with the same Status codes as
  /// the seed engine: InvalidArgument for IDB/EDB name collisions,
  /// SignatureMismatch for unknown EDB predicates or arity mismatches.
  /// The program and structure must outlive the engine; the structure must
  /// not be mutated while the engine is in use.
  static Result<CompiledDatalogEngine> Create(const DatalogProgram& program,
                                              const Structure& edb);

  /// Runs the fixpoint from scratch and returns the IDB relations by name.
  /// Callable repeatedly (each call restarts from the seeded facts).
  Result<std::map<std::string, Relation>> Evaluate(
      DatalogStats* stats = nullptr, ParallelPolicy policy = {});

  /// The join-order description lines also reported via
  /// DatalogStats::join_orders.
  const std::vector<std::string>& join_orders() const;

 private:
  explicit CompiledDatalogEngine(
      std::shared_ptr<internal_datalog::EngineImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal_datalog::EngineImpl> impl_;
};

}  // namespace fmtk

#endif  // FMTK_DATALOG_COMPILED_ENGINE_H_
