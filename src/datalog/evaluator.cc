#include "datalog/evaluator.h"

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/datalog_analyzer.h"
#include "base/check.h"
#include "datalog/compiled_engine.h"

namespace fmtk {

std::string DatalogStats::ToString() const {
  return "iterations=" + std::to_string(iterations) +
         " rule_applications=" + std::to_string(rule_applications) +
         " atom_visits=" + std::to_string(atom_visits) +
         " tuples_derived=" + std::to_string(tuples_derived) +
         " tuples_new=" + std::to_string(tuples_new) +
         " index_probes=" + std::to_string(index_probes) +
         " tuples_scanned=" + std::to_string(tuples_scanned);
}

namespace {

using Bindings = std::unordered_map<std::string, Element>;

// Matches `tuple` against `atom`'s terms under `bindings`; extends them on
// success (returns the variables newly bound so the caller can undo).
bool MatchAtom(const DlAtom& atom, const Tuple& tuple, Bindings& bindings,
               std::vector<std::string>& newly_bound) {
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const DlTerm& t = atom.terms[i];
    if (!t.is_variable) {
      if (t.value != tuple[i]) {
        return false;
      }
      continue;
    }
    auto it = bindings.find(t.variable);
    if (it != bindings.end()) {
      if (it->second != tuple[i]) {
        return false;
      }
      continue;
    }
    bindings.emplace(t.variable, tuple[i]);
    newly_bound.push_back(t.variable);
  }
  return true;
}

void Unbind(Bindings& bindings, const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    bindings.erase(name);
  }
}

class Engine {
 public:
  Engine(const DatalogProgram& program, const Structure& edb,
         DatalogStrategy strategy, DatalogStats* stats)
      : program_(program), edb_(edb), strategy_(strategy), stats_(stats) {}

  Result<std::map<std::string, Relation>> Run() {
    // The static analyzer is the checked front door: range restriction and
    // arity consistency (FMTK101/102, InvalidArgument), EDB mismatches
    // (FMTK103/104, SignatureMismatch) and IDB/EDB collisions (FMTK105,
    // InvalidArgument) all reject here, with warnings surfaced via stats.
    DatalogAnalyzerOptions analyzer_options;
    analyzer_options.signature = &edb_.signature();
    const DatalogAnalysis analysis = AnalyzeProgram(program_, analyzer_options);
    FMTK_RETURN_IF_ERROR(analysis.status());
    if (stats_ != nullptr) {
      stats_->recursion_info = analysis.RecursionSummary();
      stats_->analyzer_warnings =
          analysis.diagnostics.MessagesFor(DiagSeverity::kWarning);
    }
    Setup();
    FMTK_RETURN_IF_ERROR(SeedFactSchemas());
    // Round 0's delta is everything seeded so far.
    for (auto& [name, rel] : idb_) {
      delta_.emplace(name, rel);
    }
    bool changed = true;
    std::size_t round = 0;
    while (changed) {
      ++round;
      if (stats_ != nullptr) {
        ++stats_->iterations;
      }
      changed = false;
      std::map<std::string, Relation> next_delta;
      for (const auto& [name, rel] : idb_) {
        next_delta.emplace(name, Relation(rel.arity()));
      }
      for (const DlRule& rule : program_.rules()) {
        if (rule.body.empty()) {
          continue;  // Facts were seeded.
        }
        FMTK_RETURN_IF_ERROR(ApplyRule(rule, round, next_delta, changed));
      }
      delta_ = std::move(next_delta);
    }
    return idb_;
  }

 private:
  // The analyzer already vetted the program against the EDB signature; all
  // that is left is creating the empty IDB relations.
  void Setup() {
    idb_names_ = program_.IdbPredicates();
    for (const DlRule& rule : program_.rules()) {
      idb_.emplace(rule.head.predicate, Relation(rule.head.terms.size()));
    }
  }

  Status SeedFactSchemas() {
    for (const DlRule& rule : program_.rules()) {
      if (!rule.body.empty()) {
        continue;
      }
      // Head variables range over the whole domain.
      std::vector<std::string> vars;
      std::set<std::string> seen;
      for (const DlTerm& t : rule.head.terms) {
        if (t.is_variable && seen.insert(t.variable).second) {
          vars.push_back(t.variable);
        }
      }
      Bindings bindings;
      FMTK_RETURN_IF_ERROR(
          EnumerateFacts(rule, vars, 0, bindings));
    }
    return Status::OK();
  }

  Status EnumerateFacts(const DlRule& rule,
                        const std::vector<std::string>& vars,
                        std::size_t index, Bindings& bindings) {
    if (index == vars.size()) {
      FMTK_ASSIGN_OR_RETURN(Tuple head, InstantiateHead(rule.head, bindings));
      idb_.at(rule.head.predicate).Add(std::move(head));
      return Status::OK();
    }
    for (Element d = 0; d < edb_.domain_size(); ++d) {
      bindings[vars[index]] = d;
      FMTK_RETURN_IF_ERROR(EnumerateFacts(rule, vars, index + 1, bindings));
    }
    bindings.erase(vars[index]);
    return Status::OK();
  }

  Result<Tuple> InstantiateHead(const DlAtom& head,
                                const Bindings& bindings) const {
    Tuple out;
    out.reserve(head.terms.size());
    for (const DlTerm& t : head.terms) {
      Element value;
      if (t.is_variable) {
        auto it = bindings.find(t.variable);
        FMTK_CHECK(it != bindings.end())
            << "unbound head variable " << t.variable
            << " (program validation should have caught this)";
        value = it->second;
      } else {
        value = t.value;
      }
      if (value >= edb_.domain_size()) {
        return Status::InvalidArgument(
            "constant " + std::to_string(value) +
            " outside the structure's domain");
      }
      out.push_back(value);
    }
    return out;
  }

  // The relation a body atom scans, honoring the semi-naive delta position.
  const Relation& RelationFor(const DlAtom& atom, bool use_delta) const {
    if (idb_names_.find(atom.predicate) != idb_names_.end()) {
      return use_delta ? delta_.at(atom.predicate) : idb_.at(atom.predicate);
    }
    return edb_.relation(*edb_.signature().FindRelation(atom.predicate));
  }

  Status ApplyRule(const DlRule& rule, std::size_t round,
                   std::map<std::string, Relation>& next_delta,
                   bool& changed) {
    // Seed semi-naive: run the rule once per IDB body position, with that
    // position restricted to the last round's delta and every other IDB
    // position joining the FULL current relation (the per-position
    // over-derivation the compiled engine's standard decomposition
    // removes). Naive: one run, all positions full.
    std::vector<std::optional<std::size_t>> delta_positions;
    if (strategy_ == DatalogStrategy::kSeedSemiNaive) {
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        if (idb_names_.find(rule.body[i].predicate) != idb_names_.end()) {
          delta_positions.emplace_back(i);
        }
      }
      if (delta_positions.empty()) {
        // Pure-EDB rule: its body never changes, so everything it can
        // derive is present after round one — skip it afterwards (on large
        // EDBs the re-fire is a full join per round, measurably not
        // harmless).
        if (round > 1) {
          return Status::OK();
        }
        delta_positions.emplace_back(std::nullopt);
      }
    } else {
      delta_positions.emplace_back(std::nullopt);
    }
    for (const std::optional<std::size_t>& delta_at : delta_positions) {
      if (stats_ != nullptr) {
        ++stats_->rule_applications;
      }
      Bindings bindings;
      FMTK_RETURN_IF_ERROR(
          JoinBody(rule, 0, delta_at, bindings, next_delta, changed));
    }
    return Status::OK();
  }

  Status JoinBody(const DlRule& rule, std::size_t index,
                  const std::optional<std::size_t>& delta_at,
                  Bindings& bindings,
                  std::map<std::string, Relation>& next_delta,
                  bool& changed) {
    if (index == rule.body.size()) {
      if (stats_ != nullptr) {
        ++stats_->tuples_derived;
      }
      FMTK_ASSIGN_OR_RETURN(Tuple head, InstantiateHead(rule.head, bindings));
      if (idb_.at(rule.head.predicate).Add(head)) {
        next_delta.at(rule.head.predicate).Add(std::move(head));
        changed = true;
        if (stats_ != nullptr) {
          ++stats_->tuples_new;
        }
      }
      return Status::OK();
    }
    const DlAtom& atom = rule.body[index];
    const bool use_delta = delta_at.has_value() && *delta_at == index;
    const Relation& relation = RelationFor(atom, use_delta);
    // The recursive call can derive into this very relation when the rule's
    // head predicate also appears in its body (e.g. naive TC), reallocating
    // the tuple store — so walk a fixed prefix by index and re-fetch the
    // buffer each step instead of holding iterators across the recursion.
    const std::size_t count = relation.tuples().size();
    if (stats_ != nullptr) {
      ++stats_->atom_visits;
      stats_->tuples_scanned += count;
    }
    for (std::size_t i = 0; i < count; ++i) {
      const Tuple& tuple = relation.tuples()[i];
      std::vector<std::string> newly_bound;
      if (MatchAtom(atom, tuple, bindings, newly_bound)) {
        FMTK_RETURN_IF_ERROR(JoinBody(rule, index + 1, delta_at, bindings,
                                      next_delta, changed));
      }
      Unbind(bindings, newly_bound);
    }
    return Status::OK();
  }

  const DatalogProgram& program_;
  const Structure& edb_;
  DatalogStrategy strategy_;
  DatalogStats* stats_;
  std::set<std::string> idb_names_;
  std::map<std::string, Relation> idb_;
  std::map<std::string, Relation> delta_;
};

}  // namespace

Result<std::map<std::string, Relation>> EvaluateDatalog(
    const DatalogProgram& program, const Structure& edb,
    DatalogStrategy strategy, DatalogStats* stats, ParallelPolicy policy) {
  if (strategy == DatalogStrategy::kSemiNaive) {
    FMTK_ASSIGN_OR_RETURN(CompiledDatalogEngine engine,
                          CompiledDatalogEngine::Create(program, edb));
    return engine.Evaluate(stats, policy);
  }
  Engine engine(program, edb, strategy, stats);
  return engine.Run();
}

}  // namespace fmtk
