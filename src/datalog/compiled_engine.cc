#include "datalog/compiled_engine.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/datalog_analyzer.h"
#include "base/check.h"
#include "base/sorted_intersect.h"
#include "datalog/engine_internal.h"

namespace fmtk {

using internal_datalog::AtomRole;
using internal_datalog::EngineImpl;
using internal_datalog::JoinStep;
using internal_datalog::PosAction;
using internal_datalog::RuleExec;
using internal_datalog::RunState;
using internal_datalog::SlotTerm;
using internal_datalog::StatsAcc;
using internal_datalog::Variant;
using internal_datalog::VariantRun;

namespace {

std::uint64_t SaturatingPow(std::uint64_t base, std::size_t exp) {
  constexpr std::uint64_t kCap = 1000ULL * 1000ULL * 1000ULL * 1000ULL;
  std::uint64_t out = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    if (base != 0 && out > kCap / base) {
      return kCap;
    }
    out *= base;
  }
  return out;
}

}  // namespace

namespace internal_datalog {

// ---- Compilation ---------------------------------------------------------

Status EngineImpl::Compile() {
  // The static analyzer is the checked front door; it subsumes
  // program->Validate() and the per-atom EDB checks the interpreter used
  // to do by hand, and contributes the SCC recursion classification that
  // explains the per-recursive-atom delta variants compiled below.
  DatalogAnalyzerOptions analyzer_options;
  analyzer_options.signature = &edb->signature();
  const DatalogAnalysis analysis = AnalyzeProgram(*program, analyzer_options);
  FMTK_RETURN_IF_ERROR(analysis.status());
  recursion_info = analysis.RecursionSummary();
  analyzer_warnings = analysis.diagnostics.MessagesFor(DiagSeverity::kWarning);
  for (const std::string& name : program->IdbPredicates()) {
    idb_id.emplace(name, idb_names.size());
    idb_names.push_back(name);
    idb_arity.push_back(0);  // Filled from the first head below.
  }
  for (const DlRule& rule : program->rules()) {
    idb_arity[idb_id.at(rule.head.predicate)] = rule.head.terms.size();
  }
  probed_cols.resize(idb_names.size());
  edb_probed_cols.resize(edb->signature().relation_count());
  for (const DlRule& rule : program->rules()) {
    FMTK_RETURN_IF_ERROR(CompileRule(rule));
  }
  // Dedup + sort the per-predicate probe column sets.
  for (std::vector<std::size_t>& cols : probed_cols) {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }
  for (std::vector<std::size_t>& cols : edb_probed_cols) {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }
  return Status::OK();
}

Status EngineImpl::CompileRule(const DlRule& rule) {
  RuleExec exec;
  exec.head_pred = idb_id.at(rule.head.predicate);

  // Slots: one per distinct variable, first occurrence (body, then head)
  // wins. Head variables of non-fact rules always occur in the body
  // (range restriction), so only fact rules allocate slots from heads.
  std::unordered_map<std::string, int> slot_of;
  auto slot_for = [&slot_of](const std::string& var) {
    auto [it, inserted] =
        slot_of.emplace(var, static_cast<int>(slot_of.size()));
    (void)inserted;
    return it->second;
  };
  auto compile_terms = [&slot_for](const DlAtom& atom) {
    std::vector<SlotTerm> out;
    out.reserve(atom.terms.size());
    for (const DlTerm& t : atom.terms) {
      SlotTerm st;
      if (t.is_variable) {
        st.slot = slot_for(t.variable);
      } else {
        st.is_const = true;
        st.value = t.value;
      }
      out.push_back(st);
    }
    return out;
  };

  std::vector<std::vector<SlotTerm>> body_terms;
  std::vector<bool> body_is_idb;
  std::vector<std::size_t> body_pred;
  std::vector<std::size_t> idb_positions;
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    const DlAtom& atom = rule.body[i];
    body_terms.push_back(compile_terms(atom));
    auto it = idb_id.find(atom.predicate);
    if (it != idb_id.end()) {
      body_is_idb.push_back(true);
      body_pred.push_back(it->second);
      idb_positions.push_back(i);
      continue;
    }
    std::optional<std::size_t> rel =
        edb->signature().FindRelation(atom.predicate);
    if (!rel.has_value()) {
      return Status::SignatureMismatch(
          "EDB predicate " + atom.predicate +
          " is not a relation of the input structure");
    }
    if (edb->signature().relation(*rel).arity != atom.terms.size()) {
      return Status::SignatureMismatch("EDB predicate " + atom.predicate +
                                       " arity mismatch");
    }
    body_is_idb.push_back(false);
    body_pred.push_back(*rel);
  }
  exec.head = compile_terms(rule.head);
  exec.is_fact = rule.body.empty();
  exec.pure_edb = !exec.is_fact && idb_positions.empty();

  if (exec.is_fact) {
    std::set<int> seen;
    for (const SlotTerm& t : exec.head) {
      if (!t.is_const && seen.insert(t.slot).second) {
        exec.fact_slots.push_back(t.slot);
      }
    }
    exec.slot_count = slot_of.size();
    rules.push_back(std::move(exec));
    return Status::OK();
  }

  // Compiles one join-order variant. `delta_at` marks the delta body
  // position (nullopt = every atom reads its full role); `initial_bound`
  // pre-binds slots (the rederive plan binds head variables);
  // `incremental_roles` applies the old/full/delta split to EDB atoms too.
  auto compile_variant = [&](const std::optional<std::size_t>& delta_at,
                             const std::vector<bool>* initial_bound,
                             bool all_full, std::string tag) {
    Variant variant;
    std::vector<std::size_t> order = ChooseJoinOrder(
        body_terms, body_is_idb, body_pred, delta_at, initial_bound);
    std::vector<bool> bound(slot_of.size(), false);
    if (initial_bound != nullptr) {
      for (std::size_t s = 0; s < initial_bound->size() && s < bound.size();
           ++s) {
        if ((*initial_bound)[s]) {
          bound[s] = true;
        }
      }
    }
    std::string desc = rule.ToString() + std::move(tag);
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t i = order[k];
      // Probe columns must be bound before the atom is scanned: constants,
      // or slots bound by earlier steps. A repeated variable first bound by
      // an earlier column of this same atom still checks (kCheckSlot runs
      // after that column binds), but cannot drive an index probe.
      const std::vector<bool> bound_before = bound;
      JoinStep step;
      step.is_idb = body_is_idb[i];
      step.pred = body_pred[i];
      if (all_full) {
        step.role = step.is_idb || incremental ? AtomRole::kFull
                                               : AtomRole::kEdb;
      } else if (!step.is_idb && !incremental) {
        step.role = AtomRole::kEdb;
      } else if (delta_at.has_value() && i == *delta_at) {
        step.role = AtomRole::kDelta;
        variant.delta_step = k;
      } else if (!delta_at.has_value() || i < *delta_at) {
        step.role = AtomRole::kFull;
      } else {
        step.role = AtomRole::kOld;
      }
      for (std::size_t c = 0; c < body_terms[i].size(); ++c) {
        const SlotTerm& t = body_terms[i][c];
        PosAction action;
        if (t.is_const) {
          action.kind = PosAction::kCheckConst;
          action.value = t.value;
          step.probe_cols.push_back(c);
        } else if (bound[t.slot]) {
          action.kind = PosAction::kCheckSlot;
          action.slot = t.slot;
          if (bound_before[t.slot]) {
            step.probe_cols.push_back(c);
          }
        } else {
          action.kind = PosAction::kBind;
          action.slot = t.slot;
          bound[t.slot] = true;
        }
        step.actions.push_back(action);
      }
      if (step.is_idb) {
        std::vector<std::size_t>& cols = probed_cols[step.pred];
        cols.insert(cols.end(), step.probe_cols.begin(),
                    step.probe_cols.end());
      } else if (incremental) {
        // The EDB mutates between batches (relations are even replaced
        // after deletions), so its posting lists resolve per round through
        // RunState, exactly like the IDB's.
        std::vector<std::size_t>& cols = edb_probed_cols[step.pred];
        cols.insert(cols.end(), step.probe_cols.begin(),
                    step.probe_cols.end());
      } else {
        // Bind the EDB posting lists now; they are immutable for the
        // engine's lifetime, so probes skip the per-call sync + lock.
        step.edb_index.assign(step.actions.size(), nullptr);
        for (std::size_t c : step.probe_cols) {
          step.edb_index[c] = &edb->relation(step.pred).column_index(c);
        }
      }
      desc += k == 0 ? " " : ", ";
      desc += rule.body[i].ToString();
      switch (step.role) {
        case AtomRole::kEdb:
          break;
        case AtomRole::kFull:
          desc += ":full";
          break;
        case AtomRole::kOld:
          desc += ":old";
          break;
        case AtomRole::kDelta:
          desc += ":delta";
          break;
      }
      if (!step.probe_cols.empty()) {
        desc += ":probe(";
        for (std::size_t c = 0; c < step.probe_cols.size(); ++c) {
          desc += (c > 0 ? "," : "") + std::to_string(step.probe_cols[c]);
        }
        desc += ")";
      }
      variant.steps.push_back(std::move(step));
    }
    join_orders.push_back(std::move(desc));
    return variant;
  };

  // One variant per delta position: every IDB body position in batch mode
  // (the standard decomposition; pure-EDB rules get a single delta-free
  // variant and fire in round 1 only), every body position in incremental
  // mode — the EDB grows within an insert batch, so new EDB tuples drive
  // derivations through their own delta variants.
  std::vector<std::optional<std::size_t>> delta_choices;
  if (incremental) {
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      delta_choices.emplace_back(i);
    }
  } else if (idb_positions.empty()) {
    delta_choices.emplace_back(std::nullopt);
  } else {
    for (std::size_t p : idb_positions) {
      delta_choices.emplace_back(p);
    }
  }
  for (const std::optional<std::size_t>& delta_at : delta_choices) {
    const std::string tag =
        delta_at.has_value() ? " [d@" + std::to_string(*delta_at + 1) + "]"
                             : " [edb-only]";
    exec.variants.push_back(
        compile_variant(delta_at, nullptr, /*all_full=*/false, tag));
  }
  if (incremental) {
    // DRed rederivation plan: head slots arrive pre-bound from the deleted
    // candidate, every atom reads the full (pruned) store, and the join
    // order exploits the head bindings as probe columns.
    std::vector<bool> head_bound(slot_of.size(), false);
    for (const SlotTerm& t : exec.head) {
      if (!t.is_const) {
        head_bound[t.slot] = true;
      }
    }
    exec.rederive = compile_variant(std::nullopt, &head_bound,
                                    /*all_full=*/true, " [rederive]");
  }
  exec.slot_count = slot_of.size();
  rules.push_back(std::move(exec));
  return Status::OK();
}

// Greedy join order: the delta atom leads (semi-naive drives from the
// delta); afterwards the atom with the most bound positions wins, with
// smaller estimated extent as the tie-break (EDB sizes are exact; IDB
// extents are estimated as |domain|^arity since they can grow that far).
std::vector<std::size_t> EngineImpl::ChooseJoinOrder(
    const std::vector<std::vector<SlotTerm>>& body_terms,
    const std::vector<bool>& body_is_idb,
    const std::vector<std::size_t>& body_pred,
    const std::optional<std::size_t>& delta_at,
    const std::vector<bool>* initial_bound) const {
  const std::size_t m = body_terms.size();
  std::vector<bool> used(m, false);
  std::vector<bool> bound;  // By slot; sized lazily below.
  for (const std::vector<SlotTerm>& terms : body_terms) {
    for (const SlotTerm& t : terms) {
      if (!t.is_const && static_cast<std::size_t>(t.slot) >= bound.size()) {
        bound.resize(t.slot + 1, false);
      }
    }
  }
  if (initial_bound != nullptr) {
    for (std::size_t s = 0; s < initial_bound->size(); ++s) {
      if ((*initial_bound)[s]) {
        if (s >= bound.size()) {
          bound.resize(s + 1, false);
        }
        bound[s] = true;
      }
    }
  }
  std::vector<std::size_t> order;
  order.reserve(m);
  auto take = [&](std::size_t i) {
    used[i] = true;
    order.push_back(i);
    for (const SlotTerm& t : body_terms[i]) {
      if (!t.is_const) {
        bound[t.slot] = true;
      }
    }
  };
  if (delta_at.has_value()) {
    take(*delta_at);
  }
  while (order.size() < m) {
    std::size_t best = m;
    std::size_t best_bound = 0;
    std::uint64_t best_size = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (used[i]) {
        continue;
      }
      std::size_t bound_count = 0;
      for (const SlotTerm& t : body_terms[i]) {
        if (t.is_const || bound[t.slot]) {
          ++bound_count;
        }
      }
      const std::uint64_t size =
          body_is_idb[i]
              ? SaturatingPow(edb->domain_size(), body_terms[i].size())
              : edb->relation(body_pred[i]).size();
      if (best == m || bound_count > best_bound ||
          (bound_count == best_bound && size < best_size)) {
        best = i;
        best_bound = bound_count;
        best_size = size;
      }
    }
    take(best);
  }
  return order;
}

Status SeedFacts(const EngineImpl& impl, std::vector<Relation>& idb) {
  const std::size_t n = impl.edb->domain_size();
  for (const RuleExec& rule : impl.rules) {
    if (!rule.is_fact) {
      continue;
    }
    std::vector<Element> env(rule.slot_count, 0);
    Tuple out(rule.head.size(), 0);
    // Odometer over the distinct head-variable slots.
    std::vector<Element> counters(rule.fact_slots.size(), 0);
    bool exhausted = n == 0 && !rule.fact_slots.empty();
    while (!exhausted) {
      for (std::size_t i = 0; i < rule.fact_slots.size(); ++i) {
        env[rule.fact_slots[i]] = counters[i];
      }
      for (std::size_t c = 0; c < rule.head.size(); ++c) {
        const SlotTerm& t = rule.head[c];
        if (t.is_const) {
          if (t.value >= n) {
            return Status::InvalidArgument(
                "constant " + std::to_string(t.value) +
                " outside the structure's domain");
          }
          out[c] = t.value;
        } else {
          out[c] = env[t.slot];
        }
      }
      idb[rule.head_pred].Add(out);
      // Advance the odometer (most significant digit first, matching the
      // interpreter's recursion order).
      exhausted = true;
      for (std::size_t i = counters.size(); i-- > 0;) {
        if (++counters[i] < n) {
          exhausted = false;
          break;
        }
        counters[i] = 0;
      }
      if (counters.empty()) {
        break;  // Variable-free fact: exactly one instantiation.
      }
    }
  }
  return Status::OK();
}

// ---- Join execution ------------------------------------------------------

Status VariantRun::Step(std::size_t depth) {
  if (found_) {
    return Status::OK();
  }
  if (depth == variant_.steps.size()) {
    return Derive();
  }
  const JoinStep& s = variant_.steps[depth];
  // A chunked worker runs one slice of the variant's single delta scan;
  // the driver counts that scan's atom visit (and probe) once so the
  // counters match the sequential execution exactly.
  const bool chunked_scan = depth == 0 && step0_range_.has_value();
  if (!chunked_scan) {
    ++acc_.atom_visits;
  }
  // Resolve the store, the index range, and the per-column index array the
  // step reads, by role and mode. In batch mode EDB steps read the whole
  // immutable relation through the indexes pre-bound at compile time; in
  // incremental mode both EDB and IDB steps read prefix ranges through the
  // per-round pointers in RunState, and in deletion mode kDelta redirects
  // to the side stores of deleted tuples.
  std::size_t begin = 0;
  std::size_t end = 0;
  const Relation* rel = nullptr;
  const std::vector<const Relation::ColumnIndex*>* idx = nullptr;
  if (s.is_idb) {
    if (rs_.deletion_mode && s.role == AtomRole::kDelta) {
      rel = &(*rs_.del_idb)[s.pred];
      begin = rs_.del_idb_begin[s.pred];
      end = rs_.del_idb_end[s.pred];
      idx = &rs_.del_idb_index[s.pred];
    } else {
      rel = &rs_.idb[s.pred];
      idx = &rs_.idb_index[s.pred];
      switch (s.role) {
        case AtomRole::kFull:
          end = rs_.delta_end[s.pred];
          break;
        case AtomRole::kOld:
          end = rs_.delta_begin[s.pred];
          break;
        case AtomRole::kDelta:
          begin = rs_.delta_begin[s.pred];
          end = rs_.delta_end[s.pred];
          break;
        case AtomRole::kEdb:
          FMTK_CHECK(false) << "EDB role on IDB step";
      }
    }
  } else {
    rel = &impl_.edb->relation(s.pred);
    switch (s.role) {
      case AtomRole::kEdb:
        end = rel->size();
        idx = &s.edb_index;
        break;
      case AtomRole::kFull:
        end = rs_.edb_delta_end[s.pred];
        idx = &rs_.edb_index[s.pred];
        break;
      case AtomRole::kOld:
        end = rs_.edb_delta_begin[s.pred];
        idx = &rs_.edb_index[s.pred];
        break;
      case AtomRole::kDelta:
        if (rs_.deletion_mode) {
          rel = &(*rs_.del_edb)[s.pred];
          begin = rs_.del_edb_begin[s.pred];
          end = rs_.del_edb_end[s.pred];
          idx = &rs_.del_edb_index[s.pred];
        } else {
          begin = rs_.edb_delta_begin[s.pred];
          end = rs_.edb_delta_end[s.pred];
          idx = &rs_.edb_index[s.pred];
        }
        break;
    }
  }
  if (depth == 0 && step0_range_.has_value()) {
    begin = step0_range_->first;
    end = step0_range_->second;
  }
  if (begin >= end) {
    return Status::OK();
  }
  // Probe the bound columns' posting lists; fall back to a range scan
  // when no column is bound. The posting lists consulted here are frozen
  // for the round (EDB relations are immutable or synced at round starts,
  // IDB indexes are synced only at round starts), so iterating them is
  // safe even though the recursion below may Add into the same relation.
  // With one bound column the list is walked directly; with several, the
  // lists are intersected (galloping/SIMD kernel) so only tuples matching
  // every bound column reach TryTuple.
  const std::vector<std::uint32_t>* best_list = nullptr;
  Relation::ColumnIndex::View view;
  bool single_view = false;
  if (!s.probe_cols.empty()) {
    if (!chunked_scan) {
      ++acc_.index_probes;
    }
    auto view_of = [&](std::size_t c) {
      const PosAction& a = s.actions[c];
      const Element value =
          a.kind == PosAction::kCheckConst ? a.value : env_[a.slot];
      return (*idx)[c]->Find(value);
    };
    if (s.probe_cols.size() == 1) {
      // Single bound column — walk its view directly, no staging.
      view = view_of(s.probe_cols[0]);
      if (view.empty()) {
        // No tuple with the bound value at this column anywhere in the
        // synced prefix — and the ranges below never exceed it.
        return Status::OK();
      }
      single_view = true;
    } else {
      // Stage each bound column as one contiguous sorted span: CSR slices
      // and tail vectors pass through as-is; a view with both parts is
      // materialized (CSR row ids all precede tail row ids, so the
      // concatenation stays sorted).
      spans_.clear();
      std::size_t mats = 0;
      if (mat_.size() < s.probe_cols.size()) {
        mat_.resize(s.probe_cols.size());
      }
      for (std::size_t c : s.probe_cols) {
        const Relation::ColumnIndex::View v = view_of(c);
        if (v.empty()) {
          return Status::OK();
        }
        const bool has_tail = v.tail != nullptr && !v.tail->empty();
        if (v.bulk_size != 0 && has_tail) {
          std::vector<std::uint32_t>& m = mat_[mats++];
          m.clear();
          m.reserve(v.size());
          m.insert(m.end(), v.bulk, v.bulk + v.bulk_size);
          m.insert(m.end(), v.tail->begin(), v.tail->end());
          spans_.emplace_back(m.data(), m.size());
        } else if (v.bulk_size != 0) {
          spans_.emplace_back(v.bulk, v.bulk_size);
        } else {
          spans_.emplace_back(v.tail->data(), v.tail->size());
        }
      }
      // Fold the spans smallest-first into this depth's scratch buffer.
      // The scratch is per-depth (iterated while deeper steps recurse);
      // tmp_ is transient within the fold, so one shared buffer works.
      std::sort(spans_.begin(), spans_.end(),
                [](const std::pair<const std::uint32_t*, std::size_t>& a,
                   const std::pair<const std::uint32_t*, std::size_t>& b) {
                  return a.second < b.second;
                });
      std::vector<std::uint32_t>& acc = isect_[depth];
      acc.resize(std::min(spans_[0].second, spans_[1].second));
      acc.resize(IntersectSorted(spans_[0].first, spans_[0].second,
                                 spans_[1].first, spans_[1].second,
                                 acc.data()));
      for (std::size_t k = 2; k < spans_.size() && !acc.empty(); ++k) {
        tmp_.resize(std::min(acc.size(), spans_[k].second));
        tmp_.resize(IntersectSorted(acc.data(), acc.size(), spans_[k].first,
                                    spans_[k].second, tmp_.data()));
        acc.swap(tmp_);
      }
      if (acc.empty()) {
        return Status::OK();
      }
      best_list = &acc;
    }
  }
  if (single_view) {
    const std::uint32_t* b = view.bulk;
    const std::uint32_t* b_end = view.bulk + view.bulk_size;
    b = std::lower_bound(b, b_end, begin);
    for (; b != b_end && *b < end; ++b) {
      FMTK_RETURN_IF_ERROR(TryTuple(depth, s, *rel, *b));
      if (found_) {
        return Status::OK();
      }
    }
    if (view.tail != nullptr) {
      auto it = std::lower_bound(view.tail->begin(), view.tail->end(), begin);
      for (; it != view.tail->end() && *it < end; ++it) {
        FMTK_RETURN_IF_ERROR(TryTuple(depth, s, *rel, *it));
        if (found_) {
          return Status::OK();
        }
      }
    }
  } else if (best_list != nullptr) {
    auto it = std::lower_bound(best_list->begin(), best_list->end(), begin);
    for (; it != best_list->end() && *it < end; ++it) {
      FMTK_RETURN_IF_ERROR(TryTuple(depth, s, *rel, *it));
      if (found_) {
        return Status::OK();
      }
    }
  } else {
    // Fixed [begin, end) prefix by index: the recursion can Add into this
    // very relation (head predicate in its own body), reallocating the
    // tuple buffer — so re-fetch tuples() each step, never hold
    // iterators.
    for (std::size_t i = begin; i < end; ++i) {
      FMTK_RETURN_IF_ERROR(TryTuple(depth, s, *rel, i));
      if (found_) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

Status VariantRun::TryTuple(std::size_t depth, const JoinStep& s,
                            const Relation& rel, std::size_t tuple_index) {
  ++acc_.tuples_scanned;
  {
    // Scope the pointer: Add() during the recursion may reallocate the
    // flat tuple store, so it must not be held across Step().
    const Element* t = rel.TupleData(tuple_index);
    for (std::size_t c = 0; c < s.actions.size(); ++c) {
      const PosAction& a = s.actions[c];
      switch (a.kind) {
        case PosAction::kCheckConst:
          if (t[c] != a.value) {
            return Status::OK();
          }
          break;
        case PosAction::kCheckSlot:
          if (t[c] != env_[a.slot]) {
            return Status::OK();
          }
          break;
        case PosAction::kBind:
          env_[a.slot] = t[c];
          break;
      }
    }
  }
  return Step(depth + 1);
}

Status VariantRun::Derive() {
  ++acc_.tuples_derived;
  if (find_first_) {
    // Rederivation probe: one surviving body instantiation is the answer.
    found_ = true;
    return Status::OK();
  }
  // Build the head into a reused scratch: most derivations in a recursive
  // fixpoint are duplicates, and AddCopy() only copies on actual insert,
  // so the reject path allocates nothing.
  out_.clear();
  for (const SlotTerm& t : rule_.head) {
    if (t.is_const) {
      if (t.value >= impl_.edb->domain_size()) {
        return Status::InvalidArgument("constant " + std::to_string(t.value) +
                                       " outside the structure's domain");
      }
      out_.push_back(t.value);
    } else {
      out_.push_back(env_[t.slot]);
    }
  }
  if (buffer_ != nullptr) {
    buffer_->push_back(out_);
  } else {
    // DRed overestimate rounds collect deleted candidates in the side
    // stores; everything else inserts straight into the IDB.
    Relation& target = rs_.deletion_mode ? (*rs_.del_idb)[rule_.head_pred]
                                         : rs_.idb[rule_.head_pred];
    if (target.AddCopy(out_)) {
      changed_ = true;
      ++tuples_new_;
    }
  }
  return Status::OK();
}

}  // namespace internal_datalog

Result<CompiledDatalogEngine> CompiledDatalogEngine::Create(
    const DatalogProgram& program, const Structure& edb) {
  auto impl = std::make_shared<EngineImpl>();
  impl->program = &program;
  impl->edb = &edb;
  FMTK_RETURN_IF_ERROR(impl->Compile());
  return CompiledDatalogEngine(std::move(impl));
}

const std::vector<std::string>& CompiledDatalogEngine::join_orders() const {
  return impl_->join_orders;
}

Result<std::map<std::string, Relation>> CompiledDatalogEngine::Evaluate(
    DatalogStats* stats, ParallelPolicy policy) {
  EngineImpl& impl = *impl_;
  RunState rs;
  rs.idb.reserve(impl.idb_names.size());
  for (std::size_t arity : impl.idb_arity) {
    rs.idb.emplace_back(arity);
  }
  rs.delta_begin.assign(rs.idb.size(), 0);
  rs.delta_end.assign(rs.idb.size(), 0);
  rs.idb_index.resize(rs.idb.size());
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    rs.idb_index[p].assign(rs.idb[p].arity(), nullptr);
  }

  // Seed fact schemas: head variables range over the whole domain, exactly
  // like the interpreter (not counted as derivations there either).
  FMTK_RETURN_IF_ERROR(internal_datalog::SeedFacts(impl, rs.idb));

  // hardware_concurrency() reads sysfs on every call (glibc get_nprocs);
  // resolve the thread budget once, not per rule per round.
  const std::size_t hw_threads =
      policy.num_threads != 0
          ? policy.num_threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());

  StatsAcc acc;
  std::uint64_t rule_applications = 0;
  std::uint64_t tuples_new = 0;
  std::size_t iterations = 0;
  std::size_t round = 0;
  bool changed = true;
  while (changed) {
    ++round;
    ++iterations;
    changed = false;
    // Promote last round's additions to this round's delta, then sync the
    // generation-tagged indexes so every probed column covers exactly
    // [0, delta_end) — an O(new tuples) append, not a rebuild.
    // Round 1's delta is everything seeded so far (delta_begin stays 0).
    for (std::size_t p = 0; p < rs.idb.size(); ++p) {
      rs.delta_begin[p] = rs.delta_end[p];
      rs.delta_end[p] = rs.idb[p].size();
      for (std::size_t c : impl.probed_cols[p]) {
        rs.idb_index[p][c] = &rs.idb[p].column_index(c);
      }
    }
    for (const RuleExec& rule : impl.rules) {
      if (rule.is_fact || (rule.pure_edb && round > 1)) {
        continue;  // Facts are seeded; pure-EDB rules cannot derive more.
      }
      for (const Variant& variant : rule.variants) {
        ++rule_applications;
        const bool parallel_eligible = policy.enabled &&
                                       variant.delta_step.has_value() &&
                                       !variant.steps.empty();
        std::size_t delta_size = 0;
        if (parallel_eligible) {
          const JoinStep& s0 = variant.steps.front();
          delta_size = rs.delta_end[s0.pred] - rs.delta_begin[s0.pred];
        }
        const std::size_t threads = std::min(hw_threads, delta_size);
        if (parallel_eligible && delta_size >= policy.min_domain &&
            threads > 1) {
          // Fan the delta partition out in contiguous chunks. Derivations
          // within a round never feed back into the round's (frozen)
          // views, so per-thread buffers merged in chunk order reproduce
          // the sequential insertion order, counters included.
          const JoinStep& s0 = variant.steps.front();
          const std::size_t begin = rs.delta_begin[s0.pred];
          const std::size_t chunk = (delta_size + threads - 1) / threads;
          std::vector<StatsAcc> worker_acc(threads);
          std::vector<std::vector<Tuple>> worker_out(threads);
          std::vector<Status> worker_status(threads, Status::OK());
          std::vector<std::thread> workers;
          workers.reserve(threads);
          for (std::size_t t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
              const std::size_t lo = begin + t * chunk;
              const std::size_t hi =
                  std::min(begin + (t + 1) * chunk, begin + delta_size);
              VariantRun run(impl, rule, variant, rs, worker_acc[t]);
              run.set_buffer(&worker_out[t]);
              run.set_step0_range(lo, hi);
              worker_status[t] = run.Execute();
            });
          }
          for (std::thread& w : workers) {
            w.join();
          }
          for (std::size_t t = 0; t < threads; ++t) {
            FMTK_RETURN_IF_ERROR(worker_status[t]);
            acc.MergeFrom(worker_acc[t]);
            for (Tuple& tuple : worker_out[t]) {
              if (rs.idb[rule.head_pred].Add(std::move(tuple))) {
                changed = true;
                ++tuples_new;
              }
            }
          }
          // The workers split one delta scan between them; count its atom
          // visit (and probe, if any) once, like the sequential path does.
          ++acc.atom_visits;
          if (!s0.probe_cols.empty()) {
            ++acc.index_probes;
          }
        } else {
          VariantRun run(impl, rule, variant, rs, acc);
          FMTK_RETURN_IF_ERROR(run.Execute());
          changed = changed || run.changed();
          tuples_new += run.tuples_new();
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->iterations += iterations;
    stats->rule_applications += rule_applications;
    stats->atom_visits += acc.atom_visits;
    stats->tuples_derived += acc.tuples_derived;
    stats->tuples_new += tuples_new;
    stats->index_probes += acc.index_probes;
    stats->tuples_scanned += acc.tuples_scanned;
    stats->join_orders = impl.join_orders;
    stats->recursion_info = impl.recursion_info;
    stats->analyzer_warnings = impl.analyzer_warnings;
  }

  std::map<std::string, Relation> out;
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    out.emplace(impl.idb_names[p], std::move(rs.idb[p]));
  }
  return out;
}

}  // namespace fmtk
