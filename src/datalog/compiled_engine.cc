#include "datalog/compiled_engine.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/datalog_analyzer.h"
#include "base/check.h"
#include "base/sorted_intersect.h"

namespace fmtk {

namespace internal_datalog {

// A term compiled to an integer slot or an inline constant.
struct SlotTerm {
  bool is_const = false;
  Element value = 0;  // is_const
  int slot = -1;      // !is_const
};

// Which prefix of the IDB tuple store a body atom reads in the standard
// semi-naive decomposition.
enum class AtomRole {
  kEdb,    // EDB relation, whole extent.
  kFull,   // IDB before the delta position: [0, delta_end).
  kOld,    // IDB after the delta position: [0, delta_begin).
  kDelta,  // The delta position itself: [delta_begin, delta_end).
};

// How one join step treats one column of its atom, decided at compile time
// from the statically known set of slots bound by earlier steps.
struct PosAction {
  enum Kind { kCheckConst, kCheckSlot, kBind } kind = kBind;
  Element value = 0;  // kCheckConst
  int slot = -1;      // kCheckSlot / kBind
};

struct JoinStep {
  bool is_idb = false;
  std::size_t pred = 0;  // IDB id, or EDB relation index in the signature.
  AtomRole role = AtomRole::kEdb;
  std::vector<PosAction> actions;       // One per column.
  std::vector<std::size_t> probe_cols;  // Columns bound before this step.
  // EDB steps: per-column ColumnIndex, bound once at Create (the structure
  // is immutable while the engine is in use). IDB steps use the per-round
  // pointers in RunState instead — never Relation::column_index() mid-
  // round, which would resync the index while an outer recursion frame is
  // iterating one of its posting lists.
  std::vector<const Relation::ColumnIndex*> edb_index;
};

// One (rule, delta position) execution plan with its own join order.
struct Variant {
  std::optional<std::size_t> delta_step;  // Index into steps (always 0).
  std::vector<JoinStep> steps;
};

struct RuleExec {
  std::size_t head_pred = 0;  // IDB id.
  std::vector<SlotTerm> head;
  std::size_t slot_count = 0;
  bool pure_edb = false;  // No IDB body atom: fire in round 1 only.
  bool is_fact = false;   // Empty body: seeded before round 1.
  std::vector<Variant> variants;
  // Distinct head-variable slots of a fact rule, first-occurrence order.
  std::vector<int> fact_slots;
};

}  // namespace internal_datalog

using internal_datalog::AtomRole;
using internal_datalog::EngineImpl;
using internal_datalog::JoinStep;
using internal_datalog::PosAction;
using internal_datalog::RuleExec;
using internal_datalog::SlotTerm;
using internal_datalog::Variant;

namespace {

// Thread-mergeable subset of DatalogStats (everything the join recursion
// itself touches; rule_applications and tuples_new stay on the main
// thread).
struct StatsAcc {
  std::uint64_t atom_visits = 0;
  std::uint64_t tuples_derived = 0;
  std::uint64_t index_probes = 0;
  std::uint64_t tuples_scanned = 0;

  void MergeFrom(const StatsAcc& other) {
    atom_visits += other.atom_visits;
    tuples_derived += other.tuples_derived;
    index_probes += other.index_probes;
    tuples_scanned += other.tuples_scanned;
  }
};

std::uint64_t SaturatingPow(std::uint64_t base, std::size_t exp) {
  constexpr std::uint64_t kCap = 1000ULL * 1000ULL * 1000ULL * 1000ULL;
  std::uint64_t out = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    if (base != 0 && out > kCap / base) {
      return kCap;
    }
    out *= base;
  }
  return out;
}

}  // namespace

namespace internal_datalog {

struct EngineImpl {
  const DatalogProgram* program = nullptr;
  const Structure* edb = nullptr;

  std::vector<std::string> idb_names;  // id -> name
  std::vector<std::size_t> idb_arity;  // id -> arity
  std::unordered_map<std::string, std::size_t> idb_id;

  std::vector<RuleExec> rules;
  // Per IDB id: columns probed by some step (synced once per round).
  std::vector<std::vector<std::size_t>> probed_cols;
  std::vector<std::string> join_orders;
  // The analyzer's SCC classification and warnings, surfaced in
  // DatalogStats after a run.
  std::vector<std::string> recursion_info;
  std::vector<std::string> analyzer_warnings;

  // ---- Compilation -------------------------------------------------------

  Status Compile() {
    // The static analyzer is the checked front door; it subsumes
    // program->Validate() and the per-atom EDB checks the interpreter used
    // to do by hand, and contributes the SCC recursion classification that
    // explains the per-recursive-atom delta variants compiled below.
    DatalogAnalyzerOptions analyzer_options;
    analyzer_options.signature = &edb->signature();
    const DatalogAnalysis analysis =
        AnalyzeProgram(*program, analyzer_options);
    FMTK_RETURN_IF_ERROR(analysis.status());
    recursion_info = analysis.RecursionSummary();
    analyzer_warnings =
        analysis.diagnostics.MessagesFor(DiagSeverity::kWarning);
    for (const std::string& name : program->IdbPredicates()) {
      idb_id.emplace(name, idb_names.size());
      idb_names.push_back(name);
      idb_arity.push_back(0);  // Filled from the first head below.
    }
    for (const DlRule& rule : program->rules()) {
      idb_arity[idb_id.at(rule.head.predicate)] = rule.head.terms.size();
    }
    probed_cols.resize(idb_names.size());
    for (const DlRule& rule : program->rules()) {
      FMTK_RETURN_IF_ERROR(CompileRule(rule));
    }
    // Dedup + sort the per-predicate probe column sets.
    for (std::vector<std::size_t>& cols : probed_cols) {
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    }
    return Status::OK();
  }

  Status CompileRule(const DlRule& rule) {
    RuleExec exec;
    exec.head_pred = idb_id.at(rule.head.predicate);

    // Slots: one per distinct variable, first occurrence (body, then head)
    // wins. Head variables of non-fact rules always occur in the body
    // (range restriction), so only fact rules allocate slots from heads.
    std::unordered_map<std::string, int> slot_of;
    auto slot_for = [&slot_of](const std::string& var) {
      auto [it, inserted] =
          slot_of.emplace(var, static_cast<int>(slot_of.size()));
      (void)inserted;
      return it->second;
    };
    auto compile_terms = [&slot_for](const DlAtom& atom) {
      std::vector<SlotTerm> out;
      out.reserve(atom.terms.size());
      for (const DlTerm& t : atom.terms) {
        SlotTerm st;
        if (t.is_variable) {
          st.slot = slot_for(t.variable);
        } else {
          st.is_const = true;
          st.value = t.value;
        }
        out.push_back(st);
      }
      return out;
    };

    std::vector<std::vector<SlotTerm>> body_terms;
    std::vector<bool> body_is_idb;
    std::vector<std::size_t> body_pred;
    std::vector<std::size_t> idb_positions;
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      const DlAtom& atom = rule.body[i];
      body_terms.push_back(compile_terms(atom));
      auto it = idb_id.find(atom.predicate);
      if (it != idb_id.end()) {
        body_is_idb.push_back(true);
        body_pred.push_back(it->second);
        idb_positions.push_back(i);
        continue;
      }
      std::optional<std::size_t> rel =
          edb->signature().FindRelation(atom.predicate);
      if (!rel.has_value()) {
        return Status::SignatureMismatch(
            "EDB predicate " + atom.predicate +
            " is not a relation of the input structure");
      }
      if (edb->signature().relation(*rel).arity != atom.terms.size()) {
        return Status::SignatureMismatch("EDB predicate " + atom.predicate +
                                         " arity mismatch");
      }
      body_is_idb.push_back(false);
      body_pred.push_back(*rel);
    }
    exec.head = compile_terms(rule.head);
    exec.is_fact = rule.body.empty();
    exec.pure_edb = !exec.is_fact && idb_positions.empty();

    if (exec.is_fact) {
      std::set<int> seen;
      for (const SlotTerm& t : exec.head) {
        if (!t.is_const && seen.insert(t.slot).second) {
          exec.fact_slots.push_back(t.slot);
        }
      }
      exec.slot_count = slot_of.size();
      rules.push_back(std::move(exec));
      return Status::OK();
    }

    // One variant per IDB body position (the standard decomposition), or a
    // single delta-free variant for pure-EDB rules.
    std::vector<std::optional<std::size_t>> delta_choices;
    if (idb_positions.empty()) {
      delta_choices.emplace_back(std::nullopt);
    } else {
      for (std::size_t p : idb_positions) {
        delta_choices.emplace_back(p);
      }
    }
    for (const std::optional<std::size_t>& delta_at : delta_choices) {
      Variant variant;
      std::vector<std::size_t> order =
          ChooseJoinOrder(body_terms, body_is_idb, body_pred, delta_at);
      std::vector<bool> bound(slot_of.size(), false);
      std::string desc = rule.ToString();
      desc += delta_at.has_value()
                  ? " [d@" + std::to_string(*delta_at + 1) + "]"
                  : " [edb-only]";
      for (std::size_t k = 0; k < order.size(); ++k) {
        const std::size_t i = order[k];
        // Probe columns must be bound before the atom is scanned: constants,
        // or slots bound by earlier steps. A repeated variable first bound by
        // an earlier column of this same atom still checks (kCheckSlot runs
        // after that column binds), but cannot drive an index probe.
        const std::vector<bool> bound_before = bound;
        JoinStep step;
        step.is_idb = body_is_idb[i];
        step.pred = body_pred[i];
        if (!step.is_idb) {
          step.role = AtomRole::kEdb;
        } else if (delta_at.has_value() && i == *delta_at) {
          step.role = AtomRole::kDelta;
          variant.delta_step = k;
        } else if (i < *delta_at) {
          step.role = AtomRole::kFull;
        } else {
          step.role = AtomRole::kOld;
        }
        for (std::size_t c = 0; c < body_terms[i].size(); ++c) {
          const SlotTerm& t = body_terms[i][c];
          PosAction action;
          if (t.is_const) {
            action.kind = PosAction::kCheckConst;
            action.value = t.value;
            step.probe_cols.push_back(c);
          } else if (bound[t.slot]) {
            action.kind = PosAction::kCheckSlot;
            action.slot = t.slot;
            if (bound_before[t.slot]) {
              step.probe_cols.push_back(c);
            }
          } else {
            action.kind = PosAction::kBind;
            action.slot = t.slot;
            bound[t.slot] = true;
          }
          step.actions.push_back(action);
        }
        if (step.is_idb) {
          std::vector<std::size_t>& cols = probed_cols[step.pred];
          cols.insert(cols.end(), step.probe_cols.begin(),
                      step.probe_cols.end());
        } else {
          // Bind the EDB posting lists now; they are immutable for the
          // engine's lifetime, so probes skip the per-call sync + lock.
          step.edb_index.assign(step.actions.size(), nullptr);
          for (std::size_t c : step.probe_cols) {
            step.edb_index[c] = &edb->relation(step.pred).column_index(c);
          }
        }
        desc += k == 0 ? " " : ", ";
        desc += rule.body[i].ToString();
        switch (step.role) {
          case AtomRole::kEdb:
            break;
          case AtomRole::kFull:
            desc += ":full";
            break;
          case AtomRole::kOld:
            desc += ":old";
            break;
          case AtomRole::kDelta:
            desc += ":delta";
            break;
        }
        if (!step.probe_cols.empty()) {
          desc += ":probe(";
          for (std::size_t c = 0; c < step.probe_cols.size(); ++c) {
            desc += (c > 0 ? "," : "") + std::to_string(step.probe_cols[c]);
          }
          desc += ")";
        }
        variant.steps.push_back(std::move(step));
      }
      join_orders.push_back(std::move(desc));
      exec.variants.push_back(std::move(variant));
    }
    exec.slot_count = slot_of.size();
    rules.push_back(std::move(exec));
    return Status::OK();
  }

  // Greedy join order: the delta atom leads (semi-naive drives from the
  // delta); afterwards the atom with the most bound positions wins, with
  // smaller estimated extent as the tie-break (EDB sizes are exact; IDB
  // extents are estimated as |domain|^arity since they can grow that far).
  std::vector<std::size_t> ChooseJoinOrder(
      const std::vector<std::vector<SlotTerm>>& body_terms,
      const std::vector<bool>& body_is_idb,
      const std::vector<std::size_t>& body_pred,
      const std::optional<std::size_t>& delta_at) const {
    const std::size_t m = body_terms.size();
    std::vector<bool> used(m, false);
    std::vector<bool> bound;  // By slot; sized lazily below.
    for (const std::vector<SlotTerm>& terms : body_terms) {
      for (const SlotTerm& t : terms) {
        if (!t.is_const && static_cast<std::size_t>(t.slot) >= bound.size()) {
          bound.resize(t.slot + 1, false);
        }
      }
    }
    std::vector<std::size_t> order;
    order.reserve(m);
    auto take = [&](std::size_t i) {
      used[i] = true;
      order.push_back(i);
      for (const SlotTerm& t : body_terms[i]) {
        if (!t.is_const) {
          bound[t.slot] = true;
        }
      }
    };
    if (delta_at.has_value()) {
      take(*delta_at);
    }
    while (order.size() < m) {
      std::size_t best = m;
      std::size_t best_bound = 0;
      std::uint64_t best_size = 0;
      for (std::size_t i = 0; i < m; ++i) {
        if (used[i]) {
          continue;
        }
        std::size_t bound_count = 0;
        for (const SlotTerm& t : body_terms[i]) {
          if (t.is_const || bound[t.slot]) {
            ++bound_count;
          }
        }
        const std::uint64_t size =
            body_is_idb[i]
                ? SaturatingPow(edb->domain_size(), body_terms[i].size())
                : edb->relation(body_pred[i]).size();
        if (best == m || bound_count > best_bound ||
            (bound_count == best_bound && size < best_size)) {
          best = i;
          best_bound = bound_count;
          best_size = size;
        }
      }
      take(best);
    }
    return order;
  }
};

}  // namespace internal_datalog

namespace {

// Per-Evaluate mutable state: the IDB relations plus the delta ranges of
// the round in flight. "old" = [0, delta_begin), "full-new" =
// [0, delta_end), "delta" = [delta_begin, delta_end); tuples derived
// during the round land at indices >= delta_end and stay invisible until
// the next promotion.
struct RunState {
  std::vector<Relation> idb;
  std::vector<std::size_t> delta_begin;
  std::vector<std::size_t> delta_end;
  // Per (IDB id, column): the generation-tagged ColumnIndex, synced at the
  // round start to cover exactly [0, delta_end); nullptr for unprobed
  // columns. Frozen for the rest of the round.
  std::vector<std::vector<const Relation::ColumnIndex*>> idb_index;
};

// One in-flight execution of a rule variant: either inserting directly
// into the IDB (sequential) or buffering derivations (parallel worker).
class VariantRun {
 public:
  VariantRun(const EngineImpl& impl, const RuleExec& rule,
             const Variant& variant, RunState& rs, StatsAcc& acc)
      : impl_(impl),
        rule_(rule),
        variant_(variant),
        rs_(rs),
        acc_(acc),
        env_(rule.slot_count, 0),
        isect_(variant.steps.size()) {}

  void set_buffer(std::vector<Tuple>* buffer) { buffer_ = buffer; }
  void set_step0_range(std::size_t begin, std::size_t end) {
    step0_range_ = {begin, end};
  }

  bool changed() const { return changed_; }
  std::uint64_t tuples_new() const { return tuples_new_; }

  Status Execute() { return Step(0); }

 private:
  Status Step(std::size_t depth) {
    if (depth == variant_.steps.size()) {
      return Derive();
    }
    const JoinStep& s = variant_.steps[depth];
    // A chunked worker runs one slice of the variant's single delta scan;
    // the driver counts that scan's atom visit (and probe) once so the
    // counters match the sequential execution exactly.
    const bool chunked_scan = depth == 0 && step0_range_.has_value();
    if (!chunked_scan) {
      ++acc_.atom_visits;
    }
    std::size_t begin = 0;
    std::size_t end = 0;
    const Relation* rel = nullptr;
    if (s.is_idb) {
      rel = &rs_.idb[s.pred];
      switch (s.role) {
        case AtomRole::kFull:
          end = rs_.delta_end[s.pred];
          break;
        case AtomRole::kOld:
          end = rs_.delta_begin[s.pred];
          break;
        case AtomRole::kDelta:
          begin = rs_.delta_begin[s.pred];
          end = rs_.delta_end[s.pred];
          break;
        case AtomRole::kEdb:
          FMTK_CHECK(false) << "EDB role on IDB step";
      }
    } else {
      rel = &impl_.edb->relation(s.pred);
      end = rel->size();
    }
    if (depth == 0 && step0_range_.has_value()) {
      begin = step0_range_->first;
      end = step0_range_->second;
    }
    if (begin >= end) {
      return Status::OK();
    }
    // Probe the bound columns' posting lists; fall back to a range scan
    // when no column is bound. The posting lists consulted here are frozen
    // for the round (EDB relations are immutable, IDB indexes are synced
    // only at round starts), so iterating them is safe even though the
    // recursion below may Add into the same relation. With one bound
    // column the list is walked directly; with several, the lists are
    // intersected (galloping/SIMD kernel) so only tuples matching every
    // bound column reach TryTuple.
    const std::vector<std::size_t>* best_list = nullptr;
    if (!s.probe_cols.empty()) {
      if (!chunked_scan) {
        ++acc_.index_probes;
      }
      auto list_of = [&](std::size_t c) -> const std::vector<std::size_t>* {
        const PosAction& a = s.actions[c];
        const Element value =
            a.kind == PosAction::kCheckConst ? a.value : env_[a.slot];
        const Relation::ColumnIndex* index =
            s.is_idb ? rs_.idb_index[s.pred][c] : s.edb_index[c];
        return index->postings.Find(value);
      };
      if (s.probe_cols.size() == 1) {
        // Single bound column — walk its list directly, no staging.
        best_list = list_of(s.probe_cols[0]);
        if (best_list == nullptr) {
          // No tuple with the bound value at this column anywhere in the
          // synced prefix — and the ranges below never exceed it.
          return Status::OK();
        }
      } else {
        probe_lists_.clear();
        for (std::size_t c : s.probe_cols) {
          const std::vector<std::size_t>* list = list_of(c);
          if (list == nullptr) {
            return Status::OK();
          }
          probe_lists_.push_back(list);
        }
        // Fold the lists smallest-first into this depth's scratch buffer.
        // The scratch is per-depth (iterated while deeper steps recurse);
        // tmp_ is transient within the fold, so one shared buffer works.
        std::sort(probe_lists_.begin(), probe_lists_.end(),
                  [](const std::vector<std::size_t>* a,
                     const std::vector<std::size_t>* b) {
                    return a->size() < b->size();
                  });
        std::vector<std::size_t>& acc = isect_[depth];
        IntersectSorted(*probe_lists_[0], *probe_lists_[1], acc);
        for (std::size_t k = 2; k < probe_lists_.size() && !acc.empty();
             ++k) {
          IntersectSortedInPlace(acc, *probe_lists_[k], tmp_);
        }
        if (acc.empty()) {
          return Status::OK();
        }
        best_list = &acc;
      }
    }
    if (best_list != nullptr) {
      auto it = std::lower_bound(best_list->begin(), best_list->end(), begin);
      for (; it != best_list->end() && *it < end; ++it) {
        FMTK_RETURN_IF_ERROR(TryTuple(depth, s, *rel, *it));
      }
    } else {
      // Fixed [begin, end) prefix by index: the recursion can Add into this
      // very relation (head predicate in its own body), reallocating the
      // tuple buffer — so re-fetch tuples() each step, never hold
      // iterators.
      for (std::size_t i = begin; i < end; ++i) {
        FMTK_RETURN_IF_ERROR(TryTuple(depth, s, *rel, i));
      }
    }
    return Status::OK();
  }

  Status TryTuple(std::size_t depth, const JoinStep& s, const Relation& rel,
                  std::size_t tuple_index) {
    ++acc_.tuples_scanned;
    {
      // Scope the pointer: Add() during the recursion may reallocate the
      // flat tuple store, so it must not be held across Step().
      const Element* t = rel.TupleData(tuple_index);
      for (std::size_t c = 0; c < s.actions.size(); ++c) {
        const PosAction& a = s.actions[c];
        switch (a.kind) {
          case PosAction::kCheckConst:
            if (t[c] != a.value) {
              return Status::OK();
            }
            break;
          case PosAction::kCheckSlot:
            if (t[c] != env_[a.slot]) {
              return Status::OK();
            }
            break;
          case PosAction::kBind:
            env_[a.slot] = t[c];
            break;
        }
      }
    }
    return Step(depth + 1);
  }

  Status Derive() {
    ++acc_.tuples_derived;
    // Build the head into a reused scratch: most derivations in a recursive
    // fixpoint are duplicates, and AddCopy() only copies on actual insert,
    // so the reject path allocates nothing.
    out_.clear();
    for (const SlotTerm& t : rule_.head) {
      if (t.is_const) {
        if (t.value >= impl_.edb->domain_size()) {
          return Status::InvalidArgument("constant " +
                                         std::to_string(t.value) +
                                         " outside the structure's domain");
        }
        out_.push_back(t.value);
      } else {
        out_.push_back(env_[t.slot]);
      }
    }
    if (buffer_ != nullptr) {
      buffer_->push_back(out_);
    } else if (rs_.idb[rule_.head_pred].AddCopy(out_)) {
      changed_ = true;
      ++tuples_new_;
    }
    return Status::OK();
  }

  const EngineImpl& impl_;
  const RuleExec& rule_;
  const Variant& variant_;
  RunState& rs_;
  StatsAcc& acc_;
  std::vector<Element> env_;
  Tuple out_;
  std::vector<Tuple>* buffer_ = nullptr;
  std::optional<std::pair<std::size_t, std::size_t>> step0_range_;
  bool changed_ = false;
  std::uint64_t tuples_new_ = 0;
  // Probe scratch, reused across Step() calls. probe_lists_ and tmp_ are
  // done with before the recursion resumes; isect_ is per-depth because a
  // step iterates its intersection while deeper steps compute theirs.
  std::vector<const std::vector<std::size_t>*> probe_lists_;
  std::vector<std::vector<std::size_t>> isect_;
  std::vector<std::size_t> tmp_;
};

}  // namespace

Result<CompiledDatalogEngine> CompiledDatalogEngine::Create(
    const DatalogProgram& program, const Structure& edb) {
  auto impl = std::make_shared<EngineImpl>();
  impl->program = &program;
  impl->edb = &edb;
  FMTK_RETURN_IF_ERROR(impl->Compile());
  return CompiledDatalogEngine(std::move(impl));
}

const std::vector<std::string>& CompiledDatalogEngine::join_orders() const {
  return impl_->join_orders;
}

Result<std::map<std::string, Relation>> CompiledDatalogEngine::Evaluate(
    DatalogStats* stats, ParallelPolicy policy) {
  EngineImpl& impl = *impl_;
  const std::size_t n = impl.edb->domain_size();
  RunState rs;
  rs.idb.reserve(impl.idb_names.size());
  for (std::size_t arity : impl.idb_arity) {
    rs.idb.emplace_back(arity);
  }
  rs.delta_begin.assign(rs.idb.size(), 0);
  rs.delta_end.assign(rs.idb.size(), 0);
  rs.idb_index.resize(rs.idb.size());
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    rs.idb_index[p].assign(rs.idb[p].arity(), nullptr);
  }

  // Seed fact schemas: head variables range over the whole domain, exactly
  // like the interpreter (not counted as derivations there either).
  for (const RuleExec& rule : impl.rules) {
    if (!rule.is_fact) {
      continue;
    }
    std::vector<Element> env(rule.slot_count, 0);
    Tuple out(rule.head.size(), 0);
    // Odometer over the distinct head-variable slots.
    std::vector<Element> counters(rule.fact_slots.size(), 0);
    bool exhausted = n == 0 && !rule.fact_slots.empty();
    while (!exhausted) {
      for (std::size_t i = 0; i < rule.fact_slots.size(); ++i) {
        env[rule.fact_slots[i]] = counters[i];
      }
      for (std::size_t c = 0; c < rule.head.size(); ++c) {
        const SlotTerm& t = rule.head[c];
        if (t.is_const) {
          if (t.value >= n) {
            return Status::InvalidArgument(
                "constant " + std::to_string(t.value) +
                " outside the structure's domain");
          }
          out[c] = t.value;
        } else {
          out[c] = env[t.slot];
        }
      }
      rs.idb[rule.head_pred].Add(out);
      // Advance the odometer (most significant digit first, matching the
      // interpreter's recursion order).
      exhausted = true;
      for (std::size_t i = counters.size(); i-- > 0;) {
        if (++counters[i] < n) {
          exhausted = false;
          break;
        }
        counters[i] = 0;
      }
      if (counters.empty()) {
        break;  // Variable-free fact: exactly one instantiation.
      }
    }
  }

  // hardware_concurrency() reads sysfs on every call (glibc get_nprocs);
  // resolve the thread budget once, not per rule per round.
  const std::size_t hw_threads =
      policy.num_threads != 0
          ? policy.num_threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());

  StatsAcc acc;
  std::uint64_t rule_applications = 0;
  std::uint64_t tuples_new = 0;
  std::size_t iterations = 0;
  std::size_t round = 0;
  bool changed = true;
  while (changed) {
    ++round;
    ++iterations;
    changed = false;
    // Promote last round's additions to this round's delta, then sync the
    // generation-tagged indexes so every probed column covers exactly
    // [0, delta_end) — an O(new tuples) append, not a rebuild.
    // Round 1's delta is everything seeded so far (delta_begin stays 0).
    for (std::size_t p = 0; p < rs.idb.size(); ++p) {
      rs.delta_begin[p] = rs.delta_end[p];
      rs.delta_end[p] = rs.idb[p].size();
      for (std::size_t c : impl.probed_cols[p]) {
        rs.idb_index[p][c] = &rs.idb[p].column_index(c);
      }
    }
    for (const RuleExec& rule : impl.rules) {
      if (rule.is_fact || (rule.pure_edb && round > 1)) {
        continue;  // Facts are seeded; pure-EDB rules cannot derive more.
      }
      for (const Variant& variant : rule.variants) {
        ++rule_applications;
        const bool parallel_eligible =
            policy.enabled && variant.delta_step.has_value() &&
            !variant.steps.empty();
        std::size_t delta_size = 0;
        if (parallel_eligible) {
          const JoinStep& s0 = variant.steps.front();
          delta_size = rs.delta_end[s0.pred] - rs.delta_begin[s0.pred];
        }
        const std::size_t threads = std::min(hw_threads, delta_size);
        if (parallel_eligible && delta_size >= policy.min_domain &&
            threads > 1) {
          // Fan the delta partition out in contiguous chunks. Derivations
          // within a round never feed back into the round's (frozen)
          // views, so per-thread buffers merged in chunk order reproduce
          // the sequential insertion order, counters included.
          const JoinStep& s0 = variant.steps.front();
          const std::size_t begin = rs.delta_begin[s0.pred];
          const std::size_t chunk = (delta_size + threads - 1) / threads;
          std::vector<StatsAcc> worker_acc(threads);
          std::vector<std::vector<Tuple>> worker_out(threads);
          std::vector<Status> worker_status(threads, Status::OK());
          std::vector<std::thread> workers;
          workers.reserve(threads);
          for (std::size_t t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
              const std::size_t lo = begin + t * chunk;
              const std::size_t hi =
                  std::min(begin + (t + 1) * chunk, begin + delta_size);
              VariantRun run(impl, rule, variant, rs, worker_acc[t]);
              run.set_buffer(&worker_out[t]);
              run.set_step0_range(lo, hi);
              worker_status[t] = run.Execute();
            });
          }
          for (std::thread& w : workers) {
            w.join();
          }
          for (std::size_t t = 0; t < threads; ++t) {
            FMTK_RETURN_IF_ERROR(worker_status[t]);
            acc.MergeFrom(worker_acc[t]);
            for (Tuple& tuple : worker_out[t]) {
              if (rs.idb[rule.head_pred].Add(std::move(tuple))) {
                changed = true;
                ++tuples_new;
              }
            }
          }
          // The workers split one delta scan between them; count its atom
          // visit (and probe, if any) once, like the sequential path does.
          ++acc.atom_visits;
          if (!s0.probe_cols.empty()) {
            ++acc.index_probes;
          }
        } else {
          VariantRun run(impl, rule, variant, rs, acc);
          FMTK_RETURN_IF_ERROR(run.Execute());
          changed = changed || run.changed();
          tuples_new += run.tuples_new();
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->iterations += iterations;
    stats->rule_applications += rule_applications;
    stats->atom_visits += acc.atom_visits;
    stats->tuples_derived += acc.tuples_derived;
    stats->tuples_new += tuples_new;
    stats->index_probes += acc.index_probes;
    stats->tuples_scanned += acc.tuples_scanned;
    stats->join_orders = impl.join_orders;
    stats->recursion_info = impl.recursion_info;
    stats->analyzer_warnings = impl.analyzer_warnings;
  }

  std::map<std::string, Relation> out;
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    out.emplace(impl.idb_names[p], std::move(rs.idb[p]));
  }
  return out;
}

}  // namespace fmtk
