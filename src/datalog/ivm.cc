#include "datalog/ivm.h"

#include <cstddef>
#include <optional>
#include <string>
#include <memory>
#include <utility>
#include <vector>

#include "base/check.h"
#include "datalog/engine_internal.h"

namespace fmtk {

using internal_datalog::EngineImpl;
using internal_datalog::RuleExec;
using internal_datalog::RunState;
using internal_datalog::SlotTerm;
using internal_datalog::StatsAcc;
using internal_datalog::Variant;
using internal_datalog::VariantRun;

struct IncrementalDatalogSession::Impl {
  Impl(DatalogProgram program_in, Structure edb_in)
      : program(std::move(program_in)), edb(std::move(edb_in)) {}

  DatalogProgram program;  // Private copies: the session outlives callers'
  Structure edb;           // arguments and mutates the EDB in place.
  EngineImpl engine;
  RunState rs;
  // Fact-schema tuples seeded at Create: their support is the domain, not
  // the EDB, so DRed must never delete them.
  std::vector<Relation> facts;
  IvmStats stats;
  StatsAcc acc;

  std::size_t IdbTupleCount() const {
    std::size_t total = 0;
    for (const Relation& r : rs.idb) {
      total += r.size();
    }
    return total;
  }

  // Syncs the per-round ColumnIndex pointers for every probed column of
  // the main IDB and EDB stores.
  void SyncMainIndexes() {
    for (std::size_t p = 0; p < rs.idb.size(); ++p) {
      for (std::size_t c : engine.probed_cols[p]) {
        rs.idb_index[p][c] = &rs.idb[p].column_index(c);
      }
    }
    for (std::size_t r = 0; r < rs.edb_index.size(); ++r) {
      for (std::size_t c : engine.edb_probed_cols[r]) {
        rs.edb_index[r][c] = &edb.relation(r).column_index(c);
      }
    }
  }

  void SyncDeletionIndexes(std::vector<Relation>& del_idb,
                           std::vector<Relation>& del_edb) {
    for (std::size_t p = 0; p < del_idb.size(); ++p) {
      for (std::size_t c : engine.probed_cols[p]) {
        rs.del_idb_index[p][c] = &del_idb[p].column_index(c);
      }
    }
    for (std::size_t r = 0; r < del_edb.size(); ++r) {
      for (std::size_t c : engine.edb_probed_cols[r]) {
        rs.del_edb_index[r][c] = &del_edb[r].column_index(c);
      }
    }
  }

  // Pins the main-store delta ranges so kFull and kOld both read the whole
  // current extent (the deletion-overestimate and rederivation phases read
  // the database as-is, no delta split).
  void PinMainRangesToFull() {
    for (std::size_t p = 0; p < rs.idb.size(); ++p) {
      rs.delta_begin[p] = rs.delta_end[p] = rs.idb[p].size();
    }
    for (std::size_t r = 0; r < rs.edb_delta_begin.size(); ++r) {
      rs.edb_delta_begin[r] = rs.edb_delta_end[r] = edb.relation(r).size();
    }
  }

  // Semi-naive insertion propagation. The caller establishes round 1's
  // delta ranges (the appended EDB suffix and/or reinserted IDB suffix);
  // subsequent rounds promote newly derived IDB tuples and collapse the
  // EDB deltas to empty. Runs until a round derives nothing new.
  Status RunInsertFixpoint() {
    bool first = true;
    bool changed = true;
    while (changed) {
      ++stats.rounds;
      changed = false;
      if (!first) {
        for (std::size_t p = 0; p < rs.idb.size(); ++p) {
          rs.delta_begin[p] = rs.delta_end[p];
          rs.delta_end[p] = rs.idb[p].size();
        }
        for (std::size_t r = 0; r < rs.edb_delta_begin.size(); ++r) {
          rs.edb_delta_begin[r] = rs.edb_delta_end[r] =
              edb.relation(r).size();
        }
      }
      first = false;
      SyncMainIndexes();
      for (const RuleExec& rule : engine.rules) {
        if (rule.is_fact) {
          continue;  // Seeded at Create; the domain never changes.
        }
        for (const Variant& variant : rule.variants) {
          VariantRun run(engine, rule, variant, rs, acc);
          FMTK_RETURN_IF_ERROR(run.Execute());
          changed = changed || run.changed();
        }
      }
    }
    return Status::OK();
  }

  // DRed phase 1: the overestimate fixpoint. Seeds rs.del_* bookkeeping,
  // runs delta rounds where kDelta reads the deletion stores and every
  // other atom reads the full pre-deletion database, and collects every
  // IDB tuple with at least one derivation through a deleted tuple.
  Status RunDeleteOverestimate(std::vector<Relation>& del_idb,
                               std::vector<Relation>& del_edb) {
    rs.deletion_mode = true;
    rs.del_idb = &del_idb;
    rs.del_edb = &del_edb;
    PinMainRangesToFull();
    rs.del_idb_begin.assign(del_idb.size(), 0);
    rs.del_idb_end.assign(del_idb.size(), 0);
    rs.del_edb_begin.assign(del_edb.size(), 0);
    rs.del_edb_end.assign(del_edb.size(), 0);
    for (std::size_t r = 0; r < del_edb.size(); ++r) {
      rs.del_edb_end[r] = del_edb[r].size();
    }
    bool first = true;
    bool changed = true;
    Status status = Status::OK();
    while (changed && status.ok()) {
      ++stats.rounds;
      changed = false;
      if (!first) {
        for (std::size_t p = 0; p < del_idb.size(); ++p) {
          rs.del_idb_begin[p] = rs.del_idb_end[p];
          rs.del_idb_end[p] = del_idb[p].size();
        }
        for (std::size_t r = 0; r < del_edb.size(); ++r) {
          rs.del_edb_begin[r] = rs.del_edb_end[r];
        }
      }
      first = false;
      SyncMainIndexes();
      SyncDeletionIndexes(del_idb, del_edb);
      for (const RuleExec& rule : engine.rules) {
        if (rule.is_fact) {
          continue;
        }
        for (const Variant& variant : rule.variants) {
          VariantRun run(engine, rule, variant, rs, acc);
          status = run.Execute();
          if (!status.ok()) {
            break;
          }
          changed = changed || run.changed();
        }
        if (!status.ok()) {
          break;
        }
      }
    }
    rs.deletion_mode = false;
    rs.del_idb = nullptr;
    rs.del_edb = nullptr;
    return status;
  }

};

Result<IncrementalDatalogSession> IncrementalDatalogSession::Create(
    const DatalogProgram& program, Structure edb) {
  auto impl = std::make_shared<Impl>(program, std::move(edb));
  impl->engine.program = &impl->program;
  impl->engine.edb = &impl->edb;
  impl->engine.incremental = true;
  FMTK_RETURN_IF_ERROR(impl->engine.Compile());

  RunState& rs = impl->rs;
  rs.idb.reserve(impl->engine.idb_names.size());
  for (std::size_t arity : impl->engine.idb_arity) {
    rs.idb.emplace_back(arity);
  }
  const std::size_t idb_count = rs.idb.size();
  const std::size_t edb_count = impl->edb.signature().relation_count();
  rs.delta_begin.assign(idb_count, 0);
  rs.delta_end.assign(idb_count, 0);
  rs.idb_index.resize(idb_count);
  for (std::size_t p = 0; p < idb_count; ++p) {
    rs.idb_index[p].assign(rs.idb[p].arity(), nullptr);
  }
  rs.edb_delta_begin.assign(edb_count, 0);
  rs.edb_delta_end.assign(edb_count, 0);
  rs.edb_index.resize(edb_count);
  rs.del_idb_index.resize(idb_count);
  rs.del_edb_index.resize(edb_count);
  for (std::size_t r = 0; r < edb_count; ++r) {
    const std::size_t arity = impl->edb.signature().relation(r).arity;
    rs.edb_index[r].assign(arity, nullptr);
    rs.del_edb_index[r].assign(arity, nullptr);
  }
  for (std::size_t p = 0; p < idb_count; ++p) {
    rs.del_idb_index[p].assign(rs.idb[p].arity(), nullptr);
  }

  FMTK_RETURN_IF_ERROR(internal_datalog::SeedFacts(impl->engine, rs.idb));
  impl->facts = rs.idb;  // Snapshot before any rule-derived tuples land.

  // Initial materialization = "insert the whole EDB": round 1's deltas are
  // the seeded facts and the full EDB relations.
  for (std::size_t p = 0; p < idb_count; ++p) {
    rs.delta_begin[p] = 0;
    rs.delta_end[p] = rs.idb[p].size();
  }
  for (std::size_t r = 0; r < edb_count; ++r) {
    rs.edb_delta_begin[r] = 0;
    rs.edb_delta_end[r] = impl->edb.relation(r).size();
  }
  FMTK_RETURN_IF_ERROR(impl->RunInsertFixpoint());
  // Consolidate the materialized stores: the fixpoint built them tuple at
  // a time (fully hash-indexed), but the session's steady state wants the
  // sorted-prefix form whose deletion fix-ups touch only a small tail map.
  // Syncing afterwards warms the rebuilt column indexes so the first batch
  // does not pay the lazy rebuild.
  for (Relation& rel : rs.idb) {
    rel.Consolidate();
  }
  for (Relation& rel : impl->facts) {
    rel.Consolidate();
  }
  impl->SyncMainIndexes();
  impl->stats = IvmStats{};
  return IncrementalDatalogSession(std::move(impl));
}

Status IncrementalDatalogSession::ApplyInsert(
    std::string_view relation, const std::vector<Tuple>& tuples) {
  Impl& impl = *impl_;
  const std::optional<std::size_t> r =
      impl.edb.signature().FindRelation(relation);
  if (!r.has_value()) {
    return Status::SignatureMismatch("unknown EDB relation " +
                                     std::string(relation));
  }
  const std::size_t arity = impl.edb.signature().relation(*r).arity;
  for (const Tuple& t : tuples) {
    if (t.size() != arity) {
      return Status::InvalidArgument("tuple arity mismatch for relation " +
                                     std::string(relation));
    }
    for (const Element e : t) {
      if (e >= impl.edb.domain_size()) {
        return Status::InvalidArgument("element " + std::to_string(e) +
                                       " outside the structure's domain");
      }
    }
  }
  impl.stats = IvmStats{};
  const std::size_t idb_before = impl.IdbTupleCount();
  const std::size_t pre = impl.edb.relation(*r).size();
  for (const Tuple& t : tuples) {
    impl.edb.AddTuple(*r, t);
  }
  const std::size_t post = impl.edb.relation(*r).size();
  impl.stats.edb_changed = post - pre;
  if (impl.stats.edb_changed == 0) {
    return Status::OK();  // Every tuple was already present.
  }

  // Round 1: the appended EDB suffix is the only delta.
  RunState& rs = impl.rs;
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    rs.delta_begin[p] = rs.delta_end[p] = rs.idb[p].size();
  }
  for (std::size_t r2 = 0; r2 < rs.edb_delta_begin.size(); ++r2) {
    const std::size_t sz = impl.edb.relation(r2).size();
    rs.edb_delta_begin[r2] = r2 == *r ? pre : sz;
    rs.edb_delta_end[r2] = sz;
  }
  FMTK_RETURN_IF_ERROR(impl.RunInsertFixpoint());
  impl.stats.idb_inserted = impl.IdbTupleCount() - idb_before;
  return Status::OK();
}

Status IncrementalDatalogSession::ApplyDelete(
    std::string_view relation, const std::vector<Tuple>& tuples) {
  Impl& impl = *impl_;
  const std::optional<std::size_t> r =
      impl.edb.signature().FindRelation(relation);
  if (!r.has_value()) {
    return Status::SignatureMismatch("unknown EDB relation " +
                                     std::string(relation));
  }
  const std::size_t arity = impl.edb.signature().relation(*r).arity;
  for (const Tuple& t : tuples) {
    if (t.size() != arity) {
      return Status::InvalidArgument("tuple arity mismatch for relation " +
                                     std::string(relation));
    }
  }
  impl.stats = IvmStats{};
  const std::size_t idb_before = impl.IdbTupleCount();

  // The deletion side stores: del_edb seeds with the batch tuples actually
  // present; del_idb collects the overestimate.
  const std::size_t edb_count = impl.edb.signature().relation_count();
  std::vector<Relation> del_edb;
  del_edb.reserve(edb_count);
  for (std::size_t r2 = 0; r2 < edb_count; ++r2) {
    del_edb.emplace_back(impl.edb.signature().relation(r2).arity);
  }
  for (const Tuple& t : tuples) {
    if (impl.edb.relation(*r).Contains(t)) {
      del_edb[*r].AddCopy(t);
    }
  }
  impl.stats.edb_changed = del_edb[*r].size();
  if (impl.stats.edb_changed == 0) {
    return Status::OK();  // Nothing in the batch was present.
  }
  std::vector<Relation> del_idb;
  del_idb.reserve(impl.rs.idb.size());
  for (const Relation& rel : impl.rs.idb) {
    del_idb.emplace_back(rel.arity());
  }

  // Re-consolidate any store whose churn tail outgrew ~1/8 of its rows:
  // the prune below pays per-tail-entry hash fix-ups, and a sorted-
  // dominant store keeps those on a map that fits in cache. The cleared
  // column indexes rebuild during the overestimate's first sync.
  auto maybe_consolidate = [](Relation& rel) {
    if (rel.unsorted_rows() > 4096 && rel.unsorted_rows() * 8 > rel.size()) {
      rel.Consolidate();
    }
  };
  for (std::size_t r2 = 0; r2 < edb_count; ++r2) {
    maybe_consolidate(impl.edb.MutableRelation(r2));
  }
  for (Relation& rel : impl.rs.idb) {
    maybe_consolidate(rel);
  }

  // Phase 1: overestimate everything derivable through a deleted tuple.
  FMTK_RETURN_IF_ERROR(impl.RunDeleteOverestimate(del_idb, del_edb));
  for (const Relation& rel : del_idb) {
    impl.stats.overestimate += rel.size();
  }

  // Phase 2a: prune. The EDB relation drops the batch in place; each
  // touched IDB relation drops its overestimated tuples — except fact-
  // schema tuples, whose support is the domain itself. Both sides go
  // through Relation::EraseRows: one membership probe per deleted row plus
  // a single compaction pass, so the cost scales with the overestimate,
  // not with O(|IDB|) rebuild work.
  RunState& rs = impl.rs;
  impl.edb.MutableRelation(*r).EraseRows(del_edb[*r]);
  std::vector<std::vector<Tuple>> candidates(rs.idb.size());
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    if (del_idb[p].empty()) {
      continue;
    }
    const std::size_t parity = rs.idb[p].arity();
    if (parity == 0) {
      if (rs.idb[p].Contains({}) && !impl.facts[p].Contains({})) {
        candidates[p].push_back({});
        rs.idb[p] = Relation(0);
      }
      continue;
    }
    // The candidates are the overestimated tuples actually present (every
    // del_idb row normally is — it was derived from the pre-deletion
    // fixpoint) minus the protected fact schemas.
    std::vector<Element> doomed_rows;
    doomed_rows.reserve(del_idb[p].size() * parity);
    for (std::size_t i = 0; i < del_idb[p].size(); ++i) {
      const Element* row = del_idb[p].TupleData(i);
      if (rs.idb[p].ContainsRow(row) && !impl.facts[p].ContainsRow(row)) {
        candidates[p].emplace_back(row, row + parity);
        doomed_rows.insert(doomed_rows.end(), row, row + parity);
      }
    }
    if (!candidates[p].empty()) {
      rs.idb[p].EraseRows(Relation::FromRowsUnique(parity, doomed_rows));
    }
  }
  // Phase 2b: rederive. Candidates with an alternative derivation among
  // the survivors come back; reinsertions land beyond the pinned ranges,
  // so every check sees exactly the pruned database.
  impl.PinMainRangesToFull();
  impl.SyncMainIndexes();
  std::vector<std::size_t> pruned_size(rs.idb.size());
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    pruned_size[p] = rs.idb[p].size();
  }
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    if (candidates[p].empty()) {
      continue;
    }
    // One find-first run per rule with this head, constructed once and
    // rearmed per candidate: the probe scratch keeps its capacity across
    // the (often tens of thousands of) rederivation checks.
    struct RederiveRun {
      const RuleExec* rule;
      std::unique_ptr<VariantRun> run;
      std::vector<Element> env;
      std::vector<bool> bound;
    };
    std::vector<RederiveRun> runs;
    for (const RuleExec& rule : impl.engine.rules) {
      if (rule.is_fact || rule.head_pred != p || !rule.rederive.has_value()) {
        continue;
      }
      RederiveRun rr{&rule,
                     std::make_unique<VariantRun>(impl.engine, rule,
                                                  *rule.rederive, rs, impl.acc),
                     {},
                     {}};
      rr.run->set_find_first();
      runs.push_back(std::move(rr));
    }
    for (const Tuple& t : candidates[p]) {
      bool rederived = false;
      for (RederiveRun& rr : runs) {
        const RuleExec& rule = *rr.rule;
        rr.env.assign(rule.slot_count, 0);
        rr.bound.assign(rule.slot_count, false);
        bool head_matches = true;
        for (std::size_t c = 0; c < rule.head.size(); ++c) {
          const SlotTerm& term = rule.head[c];
          if (term.is_const) {
            if (t[c] != term.value) {
              head_matches = false;
              break;
            }
            continue;
          }
          // Repeated head variables must agree with the candidate.
          if (rr.bound[term.slot] && rr.env[term.slot] != t[c]) {
            head_matches = false;
            break;
          }
          rr.env[term.slot] = t[c];
          rr.bound[term.slot] = true;
        }
        if (!head_matches) {
          continue;
        }
        rr.run->ResetFindFirst(rr.env);
        FMTK_RETURN_IF_ERROR(rr.run->Execute());
        if (rr.run->found()) {
          rederived = true;
          break;
        }
      }
      if (rederived) {
        rs.idb[p].AddCopy(t);
        ++impl.stats.rederived;
      }
    }
  }

  // Phase 3: propagate the reinsertions — new support can cascade to other
  // deleted candidates. Round 1's delta is the reinserted IDB suffix; the
  // EDB contributes nothing new.
  for (std::size_t p = 0; p < rs.idb.size(); ++p) {
    rs.delta_begin[p] = pruned_size[p];
    rs.delta_end[p] = rs.idb[p].size();
  }
  for (std::size_t r2 = 0; r2 < rs.edb_delta_begin.size(); ++r2) {
    rs.edb_delta_begin[r2] = rs.edb_delta_end[r2] =
        impl.edb.relation(r2).size();
  }
  FMTK_RETURN_IF_ERROR(impl.RunInsertFixpoint());

  const std::size_t idb_after = impl.IdbTupleCount();
  impl.stats.idb_deleted = idb_before - idb_after;
  return Status::OK();
}

std::map<std::string, const Relation*> IncrementalDatalogSession::Materialized()
    const {
  std::map<std::string, const Relation*> out;
  for (std::size_t p = 0; p < impl_->engine.idb_names.size(); ++p) {
    out.emplace(impl_->engine.idb_names[p], &impl_->rs.idb[p]);
  }
  return out;
}

const Structure& IncrementalDatalogSession::edb() const { return impl_->edb; }

const IvmStats& IncrementalDatalogSession::last_stats() const {
  return impl_->stats;
}

}  // namespace fmtk
