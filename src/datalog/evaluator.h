#ifndef FMTK_DATALOG_EVALUATOR_H_
#define FMTK_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "base/result.h"
#include "datalog/program.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// Work counters for the fixed-point computation (E14 compares naive vs
/// semi-naive iteration behaviour).
struct DatalogStats {
  std::size_t iterations = 0;
  std::uint64_t rule_applications = 0;
  std::uint64_t tuples_derived = 0;   // Including duplicates rederived.
  std::uint64_t tuples_new = 0;       // Actually inserted.
};

/// Evaluation strategy: naive re-derives everything each round; semi-naive
/// joins against the per-round deltas only.
enum class DatalogStrategy { kNaive, kSemiNaive };

/// Bottom-up least-fixpoint evaluation of a positive Datalog program over
/// the EDB given by a structure's relations. Returns the IDB relations by
/// predicate name.
Result<std::map<std::string, Relation>> EvaluateDatalog(
    const DatalogProgram& program, const Structure& edb,
    DatalogStrategy strategy = DatalogStrategy::kSemiNaive,
    DatalogStats* stats = nullptr);

}  // namespace fmtk

#endif  // FMTK_DATALOG_EVALUATOR_H_
