#ifndef FMTK_DATALOG_EVALUATOR_H_
#define FMTK_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "base/result.h"
#include "datalog/program.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// Work counters for the fixed-point computation (E14 compares naive,
/// seed semi-naive and compiled-indexed semi-naive iteration behaviour).
struct DatalogStats {
  std::size_t iterations = 0;
  /// Rule firings: one per execution of a rule body (per delta variant per
  /// round). NOT body-atom visits — those are atom_visits.
  std::uint64_t rule_applications = 0;
  /// Body-atom visits inside the join (one per atom reached with some
  /// prefix binding).
  std::uint64_t atom_visits = 0;
  std::uint64_t tuples_derived = 0;   // Including duplicates rederived.
  std::uint64_t tuples_new = 0;       // Actually inserted.
  /// Posting-list probes issued by the compiled engine (a bound column
  /// looked up in a ColumnIndex instead of scanning the relation).
  std::uint64_t index_probes = 0;
  /// Candidate tuples examined across all scans and probes.
  std::uint64_t tuples_scanned = 0;
  /// Compiled engine only: one human-readable line per (rule, delta
  /// variant) describing the chosen join order, e.g.
  /// "tc(x,y) :- E(x,z), tc(z,y). [d@2] tc(z,y):delta, E(x,z):probe(1)".
  std::vector<std::string> join_orders;
  /// The static analyzer's recursion classification: one line per SCC of
  /// the predicate dependency graph, dependencies first, e.g.
  /// "{tc} nonlinear recursion (2 recursive atoms)". Nonlinear SCCs are
  /// why the compiled engine emits one delta variant per recursive atom.
  std::vector<std::string> recursion_info;
  /// Warnings the analyzer reported for the accepted program
  /// (e.g. FMTK107 domain-dependent fact schemas).
  std::vector<std::string> analyzer_warnings;

  /// Counters on one line (join_orders omitted).
  std::string ToString() const;
};

/// Evaluation strategy.
enum class DatalogStrategy {
  /// Seed interpreter, full re-derivation each round. The differential
  /// oracle; nothing performance-critical should use it.
  kNaive,
  /// Seed interpreter with the per-position delta restriction (every other
  /// IDB position joins the FULL current relation). Kept as the before
  /// point for E14 and the differential suite.
  kSeedSemiNaive,
  /// Compiled, index-driven engine with the standard semi-naive delta
  /// decomposition (full-new before the delta position, pre-round
  /// snapshots after it). The default.
  kSemiNaive,
};

/// Bottom-up least-fixpoint evaluation of a positive Datalog program over
/// the EDB given by a structure's relations. Returns the IDB relations by
/// predicate name. `policy` (used by kSemiNaive only) optionally fans the
/// per-round delta partition out over threads; results and counters are
/// identical to the sequential run.
Result<std::map<std::string, Relation>> EvaluateDatalog(
    const DatalogProgram& program, const Structure& edb,
    DatalogStrategy strategy = DatalogStrategy::kSemiNaive,
    DatalogStats* stats = nullptr, ParallelPolicy policy = {});

}  // namespace fmtk

#endif  // FMTK_DATALOG_EVALUATOR_H_
