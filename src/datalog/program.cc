#include "datalog/program.h"

#include <cctype>
#include <utility>

#include "analysis/datalog_analyzer.h"

namespace fmtk {

std::string DlAtom::ToString() const {
  std::string out = predicate + "(";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += terms[i].is_variable ? terms[i].variable
                                : std::to_string(terms[i].value);
  }
  out += ")";
  return out;
}

std::string DlRule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += body[i].ToString();
    }
  }
  out += ".";
  return out;
}

DatalogProgram& DatalogProgram::AddRule(DlRule rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

std::set<std::string> DatalogProgram::IdbPredicates() const {
  std::set<std::string> idb;
  for (const DlRule& rule : rules_) {
    idb.insert(rule.head.predicate);
  }
  return idb;
}

std::set<std::string> DatalogProgram::EdbPredicates() const {
  std::set<std::string> idb = IdbPredicates();
  std::set<std::string> edb;
  for (const DlRule& rule : rules_) {
    for (const DlAtom& atom : rule.body) {
      if (idb.find(atom.predicate) == idb.end()) {
        edb.insert(atom.predicate);
      }
    }
  }
  return edb;
}

Status DatalogProgram::Validate() const {
  // The signature-independent part of the static analysis: inconsistent
  // arities (FMTK101) and unbound head variables (FMTK102) are the hard
  // errors; fact-schema warnings (FMTK107) do not fail validation.
  return AnalyzeProgram(*this).status();
}

std::string DatalogProgram::ToString() const {
  std::string out;
  for (const DlRule& rule : rules_) {
    out += rule.ToString();
    out += "\n";
  }
  return out;
}

namespace {

DlAtom MakeAtom(std::string predicate, std::vector<DlTerm> terms) {
  DlAtom atom;
  atom.predicate = std::move(predicate);
  atom.terms = std::move(terms);
  return atom;
}

DlRule MakeRule(DlAtom head, std::vector<DlAtom> body) {
  DlRule rule;
  rule.head = std::move(head);
  rule.body = std::move(body);
  return rule;
}

}  // namespace

DatalogProgram DatalogProgram::TransitiveClosure() {
  DatalogProgram p;
  p.AddRule(MakeRule(MakeAtom("tc", {DlTerm::Var("x"), DlTerm::Var("y")}),
                     {MakeAtom("E", {DlTerm::Var("x"), DlTerm::Var("y")})}));
  p.AddRule(MakeRule(MakeAtom("tc", {DlTerm::Var("x"), DlTerm::Var("y")}),
                     {MakeAtom("E", {DlTerm::Var("x"), DlTerm::Var("z")}),
                      MakeAtom("tc", {DlTerm::Var("z"), DlTerm::Var("y")})}));
  return p;
}

DatalogProgram DatalogProgram::NonlinearTransitiveClosure() {
  DatalogProgram p;
  p.AddRule(MakeRule(MakeAtom("tc", {DlTerm::Var("x"), DlTerm::Var("y")}),
                     {MakeAtom("E", {DlTerm::Var("x"), DlTerm::Var("y")})}));
  p.AddRule(MakeRule(MakeAtom("tc", {DlTerm::Var("x"), DlTerm::Var("y")}),
                     {MakeAtom("tc", {DlTerm::Var("x"), DlTerm::Var("z")}),
                      MakeAtom("tc", {DlTerm::Var("z"), DlTerm::Var("y")})}));
  return p;
}

DatalogProgram DatalogProgram::SameGeneration() {
  DatalogProgram p;
  p.AddRule(MakeRule(MakeAtom("sg", {DlTerm::Var("x"), DlTerm::Var("x")}),
                     {}));
  p.AddRule(MakeRule(MakeAtom("sg", {DlTerm::Var("x"), DlTerm::Var("y")}),
                     {MakeAtom("E", {DlTerm::Var("u"), DlTerm::Var("x")}),
                      MakeAtom("E", {DlTerm::Var("v"), DlTerm::Var("y")}),
                      MakeAtom("sg", {DlTerm::Var("u"), DlTerm::Var("v")})}));
  return p;
}

namespace {

class DlParser {
 public:
  explicit DlParser(std::string_view text) : text_(text) {}

  Result<DatalogProgram> Parse(bool validate) {
    DatalogProgram program;
    SkipSpace();
    while (pos_ < text_.size()) {
      FMTK_ASSIGN_OR_RETURN(DlRule rule, ParseRule());
      program.AddRule(std::move(rule));
      SkipSpace();
    }
    if (validate) {
      FMTK_RETURN_IF_ERROR(program.Validate());
    }
    return program;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_));
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (start == pos_) {
      return Error("expected an identifier");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<DlAtom> ParseAtom() {
    SkipSpace();
    const std::size_t start = pos_;
    FMTK_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    if (std::isdigit(static_cast<unsigned char>(name[0]))) {
      return Error("predicate names cannot start with a digit");
    }
    DlAtom atom;
    atom.predicate = std::move(name);
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      atom.span = SourceSpan::Of(start, pos_ - start);
      return atom;  // 0-ary atom without parentheses.
    }
    ++pos_;  // '('
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ')') {
      ++pos_;
      atom.span = SourceSpan::Of(start, pos_ - start);
      return atom;
    }
    while (true) {
      FMTK_ASSIGN_OR_RETURN(std::string term, ParseIdentifier());
      if (std::isdigit(static_cast<unsigned char>(term[0]))) {
        atom.terms.push_back(
            DlTerm::Const(static_cast<Element>(std::stoul(term))));
      } else {
        atom.terms.push_back(DlTerm::Var(std::move(term)));
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return Error("expected ')'");
    }
    ++pos_;
    atom.span = SourceSpan::Of(start, pos_ - start);
    return atom;
  }

  Result<DlRule> ParseRule() {
    SkipSpace();
    const std::size_t start = pos_;
    DlRule rule;
    FMTK_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    SkipSpace();
    if (pos_ + 1 < text_.size() && text_[pos_] == ':' &&
        text_[pos_ + 1] == '-') {
      pos_ += 2;
      SkipSpace();
      // An empty body before '.' is allowed (fact schema).
      if (pos_ < text_.size() && text_[pos_] != '.') {
        while (true) {
          FMTK_ASSIGN_OR_RETURN(DlAtom atom, ParseAtom());
          rule.body.push_back(std::move(atom));
          SkipSpace();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          break;
        }
      }
    }
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '.') {
      return Error("expected '.' at end of rule");
    }
    ++pos_;
    rule.span = SourceSpan::Of(start, pos_ - start);
    return rule;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                           bool validate) {
  return DlParser(text).Parse(validate);
}

}  // namespace fmtk
