#include "datalog/program.h"

#include <cctype>
#include <map>
#include <utility>

namespace fmtk {

std::string DlAtom::ToString() const {
  std::string out = predicate + "(";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += terms[i].is_variable ? terms[i].variable
                                : std::to_string(terms[i].value);
  }
  out += ")";
  return out;
}

std::string DlRule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += body[i].ToString();
    }
  }
  out += ".";
  return out;
}

DatalogProgram& DatalogProgram::AddRule(DlRule rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

std::set<std::string> DatalogProgram::IdbPredicates() const {
  std::set<std::string> idb;
  for (const DlRule& rule : rules_) {
    idb.insert(rule.head.predicate);
  }
  return idb;
}

std::set<std::string> DatalogProgram::EdbPredicates() const {
  std::set<std::string> idb = IdbPredicates();
  std::set<std::string> edb;
  for (const DlRule& rule : rules_) {
    for (const DlAtom& atom : rule.body) {
      if (idb.find(atom.predicate) == idb.end()) {
        edb.insert(atom.predicate);
      }
    }
  }
  return edb;
}

Status DatalogProgram::Validate() const {
  std::map<std::string, std::size_t> arities;
  for (const DlRule& rule : rules_) {
    // Consistent arities across all uses of a predicate.
    auto check_arity = [&arities](const DlAtom& atom) -> Status {
      auto [it, inserted] =
          arities.emplace(atom.predicate, atom.terms.size());
      if (!inserted && it->second != atom.terms.size()) {
        return Status::InvalidArgument("predicate " + atom.predicate +
                                       " used with inconsistent arities");
      }
      return Status::OK();
    };
    FMTK_RETURN_IF_ERROR(check_arity(rule.head));
    for (const DlAtom& atom : rule.body) {
      FMTK_RETURN_IF_ERROR(check_arity(atom));
    }
    if (rule.body.empty()) {
      continue;  // Fact schema: head variables range over the domain.
    }
    std::set<std::string> body_vars;
    for (const DlAtom& atom : rule.body) {
      for (const DlTerm& t : atom.terms) {
        if (t.is_variable) {
          body_vars.insert(t.variable);
        }
      }
    }
    for (const DlTerm& t : rule.head.terms) {
      if (t.is_variable && body_vars.find(t.variable) == body_vars.end()) {
        return Status::InvalidArgument(
            "head variable " + t.variable + " of rule " + rule.ToString() +
            " does not occur in the body");
      }
    }
  }
  return Status::OK();
}

std::string DatalogProgram::ToString() const {
  std::string out;
  for (const DlRule& rule : rules_) {
    out += rule.ToString();
    out += "\n";
  }
  return out;
}

DatalogProgram DatalogProgram::TransitiveClosure() {
  DatalogProgram p;
  p.AddRule({{"tc", {DlTerm::Var("x"), DlTerm::Var("y")}},
             {{"E", {DlTerm::Var("x"), DlTerm::Var("y")}}}});
  p.AddRule({{"tc", {DlTerm::Var("x"), DlTerm::Var("y")}},
             {{"E", {DlTerm::Var("x"), DlTerm::Var("z")}},
              {"tc", {DlTerm::Var("z"), DlTerm::Var("y")}}}});
  return p;
}

DatalogProgram DatalogProgram::NonlinearTransitiveClosure() {
  DatalogProgram p;
  p.AddRule({{"tc", {DlTerm::Var("x"), DlTerm::Var("y")}},
             {{"E", {DlTerm::Var("x"), DlTerm::Var("y")}}}});
  p.AddRule({{"tc", {DlTerm::Var("x"), DlTerm::Var("y")}},
             {{"tc", {DlTerm::Var("x"), DlTerm::Var("z")}},
              {"tc", {DlTerm::Var("z"), DlTerm::Var("y")}}}});
  return p;
}

DatalogProgram DatalogProgram::SameGeneration() {
  DatalogProgram p;
  p.AddRule({{"sg", {DlTerm::Var("x"), DlTerm::Var("x")}}, {}});
  p.AddRule({{"sg", {DlTerm::Var("x"), DlTerm::Var("y")}},
             {{"E", {DlTerm::Var("u"), DlTerm::Var("x")}},
              {"E", {DlTerm::Var("v"), DlTerm::Var("y")}},
              {"sg", {DlTerm::Var("u"), DlTerm::Var("v")}}}});
  return p;
}

namespace {

class DlParser {
 public:
  explicit DlParser(std::string_view text) : text_(text) {}

  Result<DatalogProgram> Parse() {
    DatalogProgram program;
    SkipSpace();
    while (pos_ < text_.size()) {
      FMTK_ASSIGN_OR_RETURN(DlRule rule, ParseRule());
      program.AddRule(std::move(rule));
      SkipSpace();
    }
    FMTK_RETURN_IF_ERROR(program.Validate());
    return program;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_));
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (start == pos_) {
      return Error("expected an identifier");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<DlAtom> ParseAtom() {
    FMTK_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    if (std::isdigit(static_cast<unsigned char>(name[0]))) {
      return Error("predicate names cannot start with a digit");
    }
    DlAtom atom;
    atom.predicate = std::move(name);
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return atom;  // 0-ary atom without parentheses.
    }
    ++pos_;  // '('
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ')') {
      ++pos_;
      return atom;
    }
    while (true) {
      FMTK_ASSIGN_OR_RETURN(std::string term, ParseIdentifier());
      if (std::isdigit(static_cast<unsigned char>(term[0]))) {
        atom.terms.push_back(
            DlTerm::Const(static_cast<Element>(std::stoul(term))));
      } else {
        atom.terms.push_back(DlTerm::Var(std::move(term)));
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return Error("expected ')'");
    }
    ++pos_;
    return atom;
  }

  Result<DlRule> ParseRule() {
    DlRule rule;
    FMTK_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    SkipSpace();
    if (pos_ + 1 < text_.size() && text_[pos_] == ':' &&
        text_[pos_ + 1] == '-') {
      pos_ += 2;
      SkipSpace();
      // An empty body before '.' is allowed (fact schema).
      if (pos_ < text_.size() && text_[pos_] != '.') {
        while (true) {
          FMTK_ASSIGN_OR_RETURN(DlAtom atom, ParseAtom());
          rule.body.push_back(std::move(atom));
          SkipSpace();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          break;
        }
      }
    }
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '.') {
      return Error("expected '.' at end of rule");
    }
    ++pos_;
    return rule;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<DatalogProgram> ParseDatalogProgram(std::string_view text) {
  return DlParser(text).Parse();
}

}  // namespace fmtk
