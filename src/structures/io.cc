#include "structures/io.h"

#include <cctype>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace fmtk {

namespace {

class StructureParser {
 public:
  explicit StructureParser(std::string_view text) : text_(text) {}

  Result<Structure> Parse() {
    FMTK_ASSIGN_OR_RETURN(std::string lead, ParseWord());
    if (lead != "domain") {
      return Error("structure text must start with 'domain <n>'");
    }
    FMTK_ASSIGN_OR_RETURN(std::size_t domain, ParseNumber());
    // First pass requires collecting the signature before creating the
    // structure, so stash the bodies.
    struct PendingRelation {
      std::string name;
      std::size_t arity;
      std::vector<Tuple> tuples;
    };
    struct PendingConstant {
      std::string name;
      Element value;
    };
    std::vector<PendingRelation> relations;
    std::vector<PendingConstant> constants;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) {
        break;
      }
      FMTK_ASSIGN_OR_RETURN(std::string keyword, ParseWord());
      if (keyword == "relation") {
        FMTK_ASSIGN_OR_RETURN(std::string name, ParseWord());
        if (!Eat('/')) {
          return Error("expected '/<arity>' after relation name");
        }
        FMTK_ASSIGN_OR_RETURN(std::size_t arity, ParseNumber());
        if (!Eat('{')) {
          return Error("expected '{' to open the tuple list");
        }
        PendingRelation rel{std::move(name), arity, {}};
        while (!Eat('}')) {
          if (!Eat('(')) {
            return Error("expected '(' to open a tuple or '}' to close");
          }
          Tuple t;
          while (!Eat(')')) {
            FMTK_ASSIGN_OR_RETURN(std::size_t value, ParseNumber());
            if (value >= domain) {
              return Error("element outside the domain");
            }
            t.push_back(static_cast<Element>(value));
            Eat(',');
          }
          if (t.size() != arity) {
            return Error("tuple arity mismatch in relation " + rel.name);
          }
          rel.tuples.push_back(std::move(t));
        }
        relations.push_back(std::move(rel));
        continue;
      }
      if (keyword == "constant") {
        FMTK_ASSIGN_OR_RETURN(std::string name, ParseWord());
        if (!Eat('=')) {
          return Error("expected '=' after constant name");
        }
        FMTK_ASSIGN_OR_RETURN(std::size_t value, ParseNumber());
        if (value >= domain) {
          return Error("constant value outside the domain");
        }
        constants.push_back({std::move(name), static_cast<Element>(value)});
        continue;
      }
      return Error("unknown keyword '" + keyword + "'");
    }
    auto signature = std::make_shared<Signature>();
    for (const auto& rel : relations) {
      if (signature->FindRelation(rel.name).has_value()) {
        return Status::ParseError("duplicate relation " + rel.name);
      }
      signature->AddRelation(rel.name, rel.arity);
    }
    for (const auto& c : constants) {
      if (signature->FindConstant(c.name).has_value()) {
        return Status::ParseError("duplicate constant " + c.name);
      }
      signature->AddConstant(c.name);
    }
    Structure s(signature, domain);
    for (std::size_t r = 0; r < relations.size(); ++r) {
      for (Tuple& t : relations[r].tuples) {
        s.AddTuple(r, std::move(t));
      }
    }
    for (std::size_t c = 0; c < constants.size(); ++c) {
      s.SetConstant(c, constants[c].value);
    }
    return s;
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      }
      break;
    }
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_));
  }

  bool Eat(char c) {
    SkipSpaceAndComments();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseWord() {
    SkipSpaceAndComments();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '<' || text_[pos_] == '>')) {
      ++pos_;
    }
    if (start == pos_) {
      return Error("expected a name");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::size_t> ParseNumber() {
    SkipSpaceAndComments();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (start == pos_) {
      return Error("expected a number");
    }
    return static_cast<std::size_t>(
        std::stoul(std::string(text_.substr(start, pos_ - start))));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Structure> ParseStructure(std::string_view text) {
  return StructureParser(text).Parse();
}

std::string SerializeStructure(const Structure& s) {
  std::string out = "domain " + std::to_string(s.domain_size()) + "\n";
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const RelationSymbol& symbol = s.signature().relation(r);
    out += "relation " + symbol.name + "/" + std::to_string(symbol.arity) +
           " {";
    for (const Tuple& t : s.relation(r).tuples()) {
      out += " (";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) {
          out += " ";
        }
        out += std::to_string(t[i]);
      }
      out += ")";
    }
    out += " }\n";
  }
  for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
    std::optional<Element> value = s.constant(c);
    if (value.has_value()) {
      out += "constant " + s.signature().constant_name(c) + " = " +
             std::to_string(*value) + "\n";
    } else {
      out += "# constant " + s.signature().constant_name(c) +
             " is uninterpreted\n";
    }
  }
  return out;
}

}  // namespace fmtk
