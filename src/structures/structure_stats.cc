#include "structures/structure_stats.h"

#include <cstdio>
#include <vector>

#include "structures/graph.h"
#include "structures/structure.h"

namespace fmtk {

std::string StructureStats::ToString() const {
  char avg[32];
  std::snprintf(avg, sizeof(avg), "%.2f", avg_degree);
  std::string out = "n=" + std::to_string(domain_size) +
                    " tuples=" + std::to_string(tuple_count) +
                    " max_deg=" + std::to_string(max_degree) +
                    " avg_deg=" + avg +
                    " comps=" + std::to_string(component_count) +
                    " diam<=" + std::to_string(diameter_bound) +
                    " gen=" + std::to_string(generation);
  return out;
}

StructureStats ComputeStructureStats(const Structure& s) {
  StructureStats stats;
  stats.generation = s.generation();
  stats.domain_size = s.domain_size();
  stats.relation_count = s.signature().relation_count();
  for (std::size_t r = 0; r < stats.relation_count; ++r) {
    const std::size_t size = s.relation(r).size();
    stats.tuple_count += size;
    if (size > stats.max_relation_size) {
      stats.max_relation_size = size;
    }
  }
  const Adjacency adjacency = GaifmanAdjacency(s);
  std::size_t degree_sum = 0;
  for (const std::vector<Element>& neighbors : adjacency) {
    degree_sum += neighbors.size();
    if (neighbors.size() > stats.max_degree) {
      stats.max_degree = neighbors.size();
    }
  }
  stats.gaifman_edge_count = degree_sum / 2;
  if (stats.domain_size > 0) {
    stats.avg_degree =
        static_cast<double>(degree_sum) / static_cast<double>(stats.domain_size);
  }

  // One BFS per component: component count and the 2 * eccentricity(root)
  // diameter bound in a single pass.
  const std::size_t n = stats.domain_size;
  std::vector<std::size_t> distance(n, kUnreachable);
  std::vector<Element> queue;
  queue.reserve(n);
  for (std::size_t root = 0; root < n; ++root) {
    if (distance[root] != kUnreachable) {
      continue;
    }
    ++stats.component_count;
    distance[root] = 0;
    queue.clear();
    queue.push_back(static_cast<Element>(root));
    std::size_t eccentricity = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Element v = queue[head];
      const std::size_t d = distance[v];
      if (d > eccentricity) {
        eccentricity = d;
      }
      for (Element w : adjacency[v]) {
        if (distance[w] == kUnreachable) {
          distance[w] = d + 1;
          queue.push_back(w);
        }
      }
    }
    const std::size_t bound = 2 * eccentricity;
    if (bound > stats.diameter_bound) {
      stats.diameter_bound = bound;
    }
  }
  return stats;
}

}  // namespace fmtk
