#ifndef FMTK_STRUCTURES_RELATION_H_
#define FMTK_STRUCTURES_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/flat_hash.h"
#include "base/hash.h"

namespace fmtk {

/// A domain element. Structures use the initial segment {0, ..., n-1}.
using Element = std::uint32_t;

/// A tuple of domain elements.
using Tuple = std::vector<Element>;

/// A finite relation instance: a set of fixed-arity tuples with O(1)
/// membership tests and stable insertion-order iteration.
class Relation {
 public:
  /// Per-column posting lists, built lazily on first use and maintained
  /// incrementally afterwards. Quantifier pruning in the compiled FO
  /// evaluator uses `values` to enumerate only the elements that can
  /// possibly satisfy a positive atom, and `postings` to jump from an
  /// element to the tuples containing it at that column; the Datalog
  /// fixpoint engine additionally relies on `indexed_upto` to read a
  /// consistent prefix of the index while tuples are being appended.
  struct ColumnIndex {
    /// Distinct elements occurring at the column, ascending.
    std::vector<Element> values;
    /// element -> indices into tuples() of the tuples with that element at
    /// the column, ascending (= insertion order). Flat open-addressing map:
    /// a probe is one cache-line walk, no bucket-node chase.
    FlatHashMap<Element, std::vector<std::size_t>> postings;
    /// Generation tag: tuples()[0, indexed_upto) are covered by the index.
    /// column_index() advances it to size() before returning; a caller that
    /// keeps the reference across Add()s sees a stale but well-formed index
    /// for the prefix it was synced to.
    std::size_t indexed_upto = 0;
  };

  explicit Relation(std::size_t arity) : arity_(arity) {}

  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `tuple`; returns false when it was already present.
  /// Arity mismatch is a fatal programming error. Column indexes are NOT
  /// rebuilt: they catch up incrementally on the next column_index() /
  /// MatchesAt() call (appended postings, merged values).
  bool Add(Tuple tuple);

  /// Like Add(), but the caller keeps ownership: `tuple` is copied only
  /// when it is actually new. Fixpoint loops that derive mostly duplicates
  /// use this to skip the per-candidate allocation on the reject path.
  bool AddCopy(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const {
    if (tuple.size() != arity_) {
      return false;
    }
    if (arity_ <= 2) {
      return packed_index_.Contains(PackedKey(tuple));
    }
    return index_.Contains(tuple);
  }

  /// Tuples in insertion order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Pointer to tuple i's elements in the arity-strided flat mirror of
  /// tuples(): the engines' inner loops read columns through this without
  /// the per-tuple vector indirection. Invalidated by Add().
  const Element* TupleData(std::size_t i) const {
    return flat_.data() + i * arity_;
  }

  /// The posting-list index for `column` (< arity), synced to cover every
  /// tuple currently present (indexed_upto == size()). Built on first call,
  /// then extended incrementally — Add() never discards it, so a fixpoint
  /// loop alternating Add and probe phases pays O(new tuples) per sync, not
  /// O(all tuples). Concurrent calls are safe; the returned reference stays
  /// valid for the lifetime of the relation (contents mutate on the next
  /// sync after an Add).
  const ColumnIndex& column_index(std::size_t column) const;

  /// Indices of the tuples with `e` at `column` (empty when none), synced
  /// like column_index(). The reference may be invalidated by the next sync
  /// after an Add (posting vectors grow).
  const std::vector<std::size_t>& MatchesAt(std::size_t column,
                                            Element e) const;

  /// Distinct elements occurring at `column`, ascending.
  const std::vector<Element>& ColumnValues(std::size_t column) const {
    return column_index(column).values;
  }

  /// Set equality (order-insensitive).
  friend bool operator==(const Relation& a, const Relation& b) {
    if (a.arity_ != b.arity_ || a.tuples_.size() != b.tuples_.size()) {
      return false;
    }
    for (const Tuple& t : a.tuples_) {
      if (!b.Contains(t)) {
        return false;
      }
    }
    return true;
  }

  /// e.g. "{(0,1), (1,2)}".
  std::string ToString() const;

 private:
  // Arity <= 2 tuples (the overwhelmingly common case: edges and unary
  // marks) pack whole into one 64-bit key, so membership skips vector
  // hashing and comparison entirely. The caller guarantees
  // tuple.size() == arity_ <= 2.
  static std::uint64_t PackedKey(const Tuple& tuple) {
    std::uint64_t key = 0;
    for (Element e : tuple) {
      key = (key << 32) | e;
    }
    return key;
  }

  std::size_t arity_;
  std::vector<Tuple> tuples_;
  // Arity-strided copy of tuples_ for indirection-free column reads.
  std::vector<Element> flat_;
  // Membership index; the value is the tuple's position in tuples_. Exactly
  // one of the two maps is populated: packed_index_ for arity <= 2, index_
  // otherwise.
  FlatU64Map<std::uint32_t> packed_index_;
  FlatHashMap<Tuple, std::uint32_t, VectorHash<Element>> index_;

  // Lazily built per-column posting lists. The vector is sized to arity_ on
  // first use; each ColumnIndex is allocated once and then extended in
  // place (generation-tagged by indexed_upto), so references handed out
  // stay stable for the relation's lifetime. Copy/move reset the cache.
  mutable std::mutex column_mutex_;
  mutable std::vector<std::shared_ptr<ColumnIndex>> column_indexes_;
};

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_RELATION_H_
