#ifndef FMTK_STRUCTURES_RELATION_H_
#define FMTK_STRUCTURES_RELATION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/flat_hash.h"
#include "base/hash.h"

namespace fmtk {

/// A domain element. Structures use the initial segment {0, ..., n-1}.
using Element = std::uint32_t;

/// A tuple of domain elements.
using Tuple = std::vector<Element>;

/// A finite relation instance: a set of fixed-arity tuples with O(1)
/// membership tests and stable insertion-order iteration.
///
/// Storage is columnar-friendly: the authoritative store is `flat_`, one
/// arity-strided row-major Element array (struct-of-arrays per tuple, no
/// per-tuple vector), reachable through TupleData(). The tuples() view of
/// std::vector<Tuple> is a cache materialized on first use — generator-built
/// relations keep it in sync for free, while bulk-loaded relations with 10^7
/// rows never pay the per-tuple allocation unless some caller still walks
/// the legacy view.
class Relation {
 public:
  /// Per-column posting lists, built lazily on first use and maintained
  /// incrementally afterwards. Quantifier pruning in the compiled FO
  /// evaluator uses `values` to enumerate only the elements that can
  /// possibly satisfy a positive atom, and `postings` to jump from an
  /// element to the tuples containing it at that column; the Datalog
  /// fixpoint engine additionally relies on `indexed_upto` to read a
  /// consistent prefix of the index while tuples are being appended.
  struct ColumnIndex {
    /// Distinct elements occurring at the column, ascending.
    std::vector<Element> values;

    /// Bulk (CSR) part: the postings for rows [0, bulk_rows), produced by
    /// one counting-sort pass. bulk_values[k]'s row ids live at
    /// positions[offsets[k], offsets[k+1]), ascending. Three flat arrays
    /// total — no per-value vector, which is what makes indexing a
    /// million-edge relation allocation-free. Row ids are 32-bit (the
    /// membership index already caps row counts at 2^32): half the memory
    /// traffic of size_t per probe, twice the ids per SIMD lane in the
    /// intersection kernels.
    std::vector<Element> bulk_values;
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> positions;
    std::size_t bulk_rows = 0;

    /// Tail part: element -> row ids appended after the bulk build (all
    /// >= bulk_rows), ascending. Relations grown purely through Add() put
    /// everything here. Flat open-addressing map: a probe is one
    /// cache-line walk, no bucket-node chase.
    FlatHashMap<Element, std::vector<std::uint32_t>> postings;

    /// Generation tag: tuples()[0, indexed_upto) are covered by the index.
    /// column_index() advances it to size() before returning; a caller that
    /// keeps the reference across Add()s sees a stale but well-formed index
    /// for the prefix it was synced to.
    std::size_t indexed_upto = 0;

    /// The posting list of `e` as up to two sorted pieces: the CSR slice
    /// (row ids < bulk_rows) and the tail vector (row ids >= bulk_rows).
    /// Concatenated they are ascending. Both empty when `e` never occurs.
    struct View {
      const std::uint32_t* bulk = nullptr;
      std::size_t bulk_size = 0;
      const std::vector<std::uint32_t>* tail = nullptr;

      bool empty() const {
        return bulk_size == 0 && (tail == nullptr || tail->empty());
      }
      std::size_t size() const {
        return bulk_size + (tail == nullptr ? 0 : tail->size());
      }
    };
    View Find(Element e) const;
  };

  explicit Relation(std::size_t arity) : arity_(arity) {}

  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  /// Bulk construction from `rows` (arity-strided, row-major),
  /// lexicographically sorted and duplicate-free — the RelationBuilder
  /// merge output. Membership for the sorted prefix is a binary search over
  /// the flat store itself (no hash table to build), and every ColumnIndex
  /// is materialized eagerly by counting sort: one count pass, one
  /// exact-capacity reservation, one fill pass — instead of size() hash-map
  /// appends with growth churn. arity 0 is not expressible as flat rows;
  /// use Add.
  static Relation FromSortedRows(std::size_t arity, std::vector<Element> rows,
                                 bool build_column_indexes = true);

  /// Packed twin of FromSortedRows for arity 1 and 2: `keys` are whole rows
  /// packed into one u64 each (column-lexicographic by construction),
  /// sorted and duplicate-free — the RelationBuilder merge output before
  /// unpacking. Unpacking and the column-0 CSR build fuse into a single
  /// pass: the key's high-half run boundaries ARE the column-0 offsets, so
  /// the index costs no extra scan over the store (positions are the
  /// identity). Column 1 (arity 2) still takes its counting-sort pass.
  static Relation FromSortedPackedRows(std::size_t arity,
                                       const std::vector<std::uint64_t>& keys,
                                       bool build_column_indexes = true);

  /// Bulk construction from distinct `rows` in caller order (not
  /// necessarily sorted) — the incremental-maintenance rebuild path.
  /// Membership goes into the hash index (pre-sized once, no rehash);
  /// column indexes stay lazy. Duplicate rows are skipped.
  static Relation FromRowsUnique(std::size_t arity, const std::vector<Element>& rows);

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return row_count_; }
  bool empty() const { return row_count_ == 0; }

  /// Rows living outside the sorted prefix (hash-indexed churn tail).
  /// Callers use this to decide when a Consolidate() pays off.
  std::size_t unsorted_rows() const { return row_count_ - sorted_upto_; }

  /// Inserts `tuple`; returns false when it was already present.
  /// Arity mismatch is a fatal programming error. Column indexes are NOT
  /// rebuilt: they catch up incrementally on the next column_index() /
  /// MatchesAt() call (appended postings, merged values).
  bool Add(Tuple tuple);

  /// Like Add(), but the caller keeps ownership: `tuple` is copied only
  /// when it is actually new. Fixpoint loops that derive mostly duplicates
  /// use this to skip the per-candidate allocation on the reject path.
  bool AddCopy(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const {
    return tuple.size() == arity_ && ContainsRow(tuple.data());
  }

  /// Membership by raw row pointer (arity_ elements) — the flat-store
  /// counterpart of Contains for loops that never build a Tuple.
  bool ContainsRow(const Element* row) const;

  /// Tuples in insertion order. Materialized from the flat store on first
  /// call (thread-safe); bulk-built relations that are only read through
  /// TupleData() never pay for it.
  const std::vector<Tuple>& tuples() const {
    if (rows_synced_.load(std::memory_order_acquire) == row_count_) {
      return tuples_;
    }
    MaterializeTuples();
    return tuples_;
  }

  /// Pointer to tuple i's elements in the arity-strided flat store: the
  /// engines' inner loops read columns through this without the per-tuple
  /// vector indirection. Invalidated by Add().
  const Element* TupleData(std::size_t i) const {
    return flat_.data() + i * arity_;
  }

  /// The posting-list index for `column` (< arity), synced to cover every
  /// tuple currently present (indexed_upto == size()). Built on first call,
  /// then extended incrementally — Add() never discards it, so a fixpoint
  /// loop alternating Add and probe phases pays O(new tuples) per sync, not
  /// O(all tuples). Concurrent calls are safe; the returned reference stays
  /// valid for the lifetime of the relation (contents mutate on the next
  /// sync after an Add).
  const ColumnIndex& column_index(std::size_t column) const;

  /// Indices of the tuples with `e` at `column` (empty when none), synced
  /// like column_index() and returned as one materialized ascending list
  /// (CSR slice + tail concatenated). Diagnostic/test convenience; hot
  /// loops walk ColumnIndex::Find() views instead.
  std::vector<std::size_t> MatchesAt(std::size_t column, Element e) const;

  /// Distinct elements occurring at `column`, ascending.
  const std::vector<Element>& ColumnValues(std::size_t column) const {
    return column_index(column).values;
  }

  /// Removes every row of this relation that `doomed` contains (same
  /// arity). Each doomed row is resolved to its position (stored hash
  /// value or sorted-prefix binary search), then removed by swap-with-last
  /// (fully hashed store, O(batch) total, insertion order not preserved)
  /// or by an order-preserving compaction of the gaps between doomed
  /// positions (sorted-prefix store) — either way the cost scales with the
  /// batch and the rows moved, not with a per-row predicate over the whole
  /// store. Column indexes are discarded (positions shift); the next
  /// column_index() call rebuilds them in bulk. References previously
  /// returned by column_index()/tuples() are invalidated. Returns the
  /// number of rows removed.
  std::size_t EraseRows(const Relation& doomed);

  /// Re-sorts the whole store so every row joins the sorted prefix and the
  /// hash maps empty out. A long-lived relation that interleaves bulk loads
  /// with Add() churn calls this at a quiet point: membership returns to
  /// pure binary search, and — decisively for incremental deletion — later
  /// EraseRows calls take the order-preserving path whose hash fix-ups
  /// touch only the (empty or tiny) tail map instead of a full-size one.
  /// Column indexes are discarded (positions shift) and rebuilt lazily.
  void Consolidate();

  /// Set equality (order-insensitive).
  friend bool operator==(const Relation& a, const Relation& b) {
    if (a.arity_ != b.arity_ || a.row_count_ != b.row_count_) {
      return false;
    }
    for (std::size_t i = 0; i < a.row_count_; ++i) {
      if (!b.ContainsRow(a.TupleData(i))) {
        return false;
      }
    }
    return true;
  }

  /// e.g. "{(0,1), (1,2)}".
  std::string ToString() const;

 private:
  // Arity <= 2 tuples (the overwhelmingly common case: edges and unary
  // marks) pack whole into one 64-bit key, so membership skips vector
  // hashing and comparison entirely. Packed keys order exactly like the
  // rows they pack (lexicographic), which is what lets the sorted-prefix
  // binary search below compare keys instead of columns. The caller
  // guarantees arity_ <= 2 and `row` has arity_ elements.
  static std::uint64_t PackedKey(const Element* row, std::size_t arity) {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < arity; ++i) {
      key = (key << 32) | row[i];
    }
    return key;
  }

  // Membership in the sorted prefix rows [0, sorted_upto_), by binary
  // search over the flat store. SortedPrefixFind returns the row's
  // position, or size_t(-1) on a miss.
  bool SortedPrefixContains(const Element* row) const;
  std::size_t SortedPrefixFind(const Element* row) const;

  void MaterializeTuples() const;

  // Counting-sort materialization of every ColumnIndex (fresh relation,
  // rows [0, row_count_) only).
  void BuildColumnIndexesBulk();

  // Counting-sort build of one column's CSR part covering rows
  // [0, row_count_): count pass, prefix sums, scatter pass — three flat
  // allocations regardless of how many distinct values the column holds.
  void BuildColumnIndexBulk(std::size_t column, ColumnIndex* out) const;

  std::size_t arity_;
  // Authoritative arity-strided row-major store (empty for arity 0;
  // row_count_ tracks the size in rows for every arity).
  std::vector<Element> flat_;
  std::size_t row_count_ = 0;
  // Rows [0, sorted_upto_) are lexicographically sorted and unique: bulk
  // construction leaves membership to a binary search over them, and only
  // rows appended afterwards go through the hash maps below. 0 for
  // Add-built relations.
  std::size_t sorted_upto_ = 0;
  // Membership index for rows >= sorted_upto_; the value is the row's
  // position. At most one of the two maps is populated: packed_index_ for
  // arity <= 2, index_ otherwise.
  FlatU64Map<std::uint32_t> packed_index_;
  FlatHashMap<Tuple, std::uint32_t, VectorHash<Element>> index_;

  // Lazy caches, both guarded by column_mutex_ for concurrent build:
  // tuples_ mirrors the flat store row by row (rows_synced_ = how many rows
  // it covers, advanced with release ordering so readers on the fast path
  // skip the lock); column_indexes_ is sized to arity_ on first use, each
  // ColumnIndex allocated once and then extended in place (generation-
  // tagged by indexed_upto), so references handed out stay stable for the
  // relation's lifetime. Copy/move reset the column cache.
  mutable std::mutex column_mutex_;
  mutable std::vector<Tuple> tuples_;
  mutable std::atomic<std::size_t> rows_synced_{0};
  mutable std::vector<std::shared_ptr<ColumnIndex>> column_indexes_;
};

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_RELATION_H_
