#ifndef FMTK_STRUCTURES_RELATION_H_
#define FMTK_STRUCTURES_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/hash.h"

namespace fmtk {

/// A domain element. Structures use the initial segment {0, ..., n-1}.
using Element = std::uint32_t;

/// A tuple of domain elements.
using Tuple = std::vector<Element>;

/// A finite relation instance: a set of fixed-arity tuples with O(1)
/// membership tests and stable insertion-order iteration.
class Relation {
 public:
  explicit Relation(std::size_t arity) : arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `tuple`; returns false when it was already present.
  /// Arity mismatch is a fatal programming error.
  bool Add(Tuple tuple);

  bool Contains(const Tuple& tuple) const {
    return index_.find(tuple) != index_.end();
  }

  /// Tuples in insertion order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Set equality (order-insensitive).
  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.index_ == b.index_;
  }

  /// e.g. "{(0,1), (1,2)}".
  std::string ToString() const;

 private:
  std::size_t arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, VectorHash<Element>> index_;
};

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_RELATION_H_
