#include "structures/structure.h"

#include <unordered_map>
#include <utility>

#include "base/check.h"

namespace fmtk {

Structure::Structure(std::shared_ptr<const Signature> signature,
                     std::size_t domain_size)
    : signature_(std::move(signature)), domain_size_(domain_size) {
  FMTK_CHECK(signature_ != nullptr) << "null signature";
  relations_.reserve(signature_->relation_count());
  for (std::size_t i = 0; i < signature_->relation_count(); ++i) {
    relations_.emplace_back(signature_->relation(i).arity);
  }
  constants_.resize(signature_->constant_count());
}

std::uint64_t Structure::NextUid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Structure::Structure(const Structure& other)
    : signature_(other.signature_),
      domain_size_(other.domain_size_),
      relations_(other.relations_),
      constants_(other.constants_),
      generation_(other.generation_),
      uid_(NextUid()),
      stats_cache_(other.stats_cache_.load(std::memory_order_acquire)) {}

Structure& Structure::operator=(const Structure& other) {
  if (this == &other) {
    return *this;
  }
  signature_ = other.signature_;
  domain_size_ = other.domain_size_;
  relations_ = other.relations_;
  constants_ = other.constants_;
  generation_ = other.generation_;
  uid_ = NextUid();
  stats_cache_.store(other.stats_cache_.load(std::memory_order_acquire),
                     std::memory_order_release);
  return *this;
}

Structure::Structure(Structure&& other) noexcept
    : signature_(std::move(other.signature_)),
      domain_size_(other.domain_size_),
      relations_(std::move(other.relations_)),
      constants_(std::move(other.constants_)),
      generation_(other.generation_),
      uid_(NextUid()),
      stats_cache_(other.stats_cache_.load(std::memory_order_acquire)) {}

Structure& Structure::operator=(Structure&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  signature_ = std::move(other.signature_);
  domain_size_ = other.domain_size_;
  relations_ = std::move(other.relations_);
  constants_ = std::move(other.constants_);
  generation_ = other.generation_;
  uid_ = NextUid();
  stats_cache_.store(other.stats_cache_.load(std::memory_order_acquire),
                     std::memory_order_release);
  return *this;
}

StructureStats Structure::Stats() const {
  std::shared_ptr<const StructureStats> cached =
      stats_cache_.load(std::memory_order_acquire);
  if (cached != nullptr && cached->generation == generation_) {
    return *cached;
  }
  auto fresh = std::make_shared<StructureStats>(ComputeStructureStats(*this));
  stats_cache_.store(fresh, std::memory_order_release);
  return *fresh;
}

const Relation& Structure::relation(std::size_t index) const {
  FMTK_CHECK(index < relations_.size()) << "relation index out of range";
  return relations_[index];
}

Result<std::size_t> Structure::RelationIndex(std::string_view name) const {
  std::optional<std::size_t> index = signature_->FindRelation(name);
  if (!index.has_value()) {
    return Status::SignatureMismatch("unknown relation symbol: " +
                                     std::string(name));
  }
  return *index;
}

bool Structure::AddTuple(std::size_t index, Tuple tuple) {
  FMTK_CHECK(index < relations_.size()) << "relation index out of range";
  for (Element e : tuple) {
    FMTK_CHECK(e < domain_size_)
        << "element " << e << " outside domain of size " << domain_size_;
  }
  ++generation_;
  return relations_[index].Add(std::move(tuple));
}

bool Structure::AddTuple(std::string_view name, Tuple tuple) {
  Result<std::size_t> index = RelationIndex(name);
  FMTK_CHECK(index.ok()) << index.status().ToString();
  return AddTuple(*index, std::move(tuple));
}

Status Structure::TryAddTuple(std::string_view name, Tuple tuple) {
  FMTK_ASSIGN_OR_RETURN(std::size_t index, RelationIndex(name));
  if (tuple.size() != relations_[index].arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " does not match " +
        std::string(name) + "/" + std::to_string(relations_[index].arity()));
  }
  for (Element e : tuple) {
    if (e >= domain_size_) {
      return Status::InvalidArgument(
          "element " + std::to_string(e) + " outside domain of size " +
          std::to_string(domain_size_));
    }
  }
  ++generation_;
  relations_[index].Add(std::move(tuple));
  return Status::OK();
}

void Structure::SetRelation(std::size_t index, Relation relation) {
  FMTK_CHECK(index < relations_.size()) << "relation index out of range";
  FMTK_CHECK(relation.arity() == signature_->relation(index).arity)
      << "relation arity " << relation.arity() << " does not match "
      << signature_->relation(index).name << "/"
      << signature_->relation(index).arity;
  ++generation_;
  relations_[index] = std::move(relation);
}

Relation& Structure::MutableRelation(std::size_t index) {
  FMTK_CHECK(index < relations_.size()) << "relation index out of range";
  // Conservative: hand-out of a mutable reference counts as a mutation.
  ++generation_;
  return relations_[index];
}

void Structure::SetConstant(std::size_t index, Element value) {
  FMTK_CHECK(index < constants_.size()) << "constant index out of range";
  FMTK_CHECK(value < domain_size_) << "constant value outside domain";
  ++generation_;
  constants_[index] = value;
}

std::optional<Element> Structure::constant(std::size_t index) const {
  FMTK_CHECK(index < constants_.size()) << "constant index out of range";
  return constants_[index];
}

std::size_t Structure::TupleCount() const {
  std::size_t total = 0;
  for (const Relation& r : relations_) {
    total += r.size();
  }
  return total;
}

bool operator==(const Structure& a, const Structure& b) {
  return a.domain_size_ == b.domain_size_ &&
         (a.signature_ == b.signature_ || *a.signature_ == *b.signature_) &&
         a.relations_ == b.relations_ && a.constants_ == b.constants_;
}

std::string Structure::ToString() const {
  std::string out = "Structure(|A|=" + std::to_string(domain_size_) + ")";
  for (std::size_t i = 0; i < relations_.size(); ++i) {
    out += "\n  " + signature_->relation(i).name + " = " +
           relations_[i].ToString();
  }
  for (std::size_t i = 0; i < constants_.size(); ++i) {
    out += "\n  " + signature_->constant_name(i) + " = ";
    out += constants_[i].has_value() ? std::to_string(*constants_[i])
                                     : std::string("unset");
  }
  return out;
}

Structure InducedSubstructure(const Structure& s,
                              const std::vector<Element>& subdomain) {
  std::unordered_map<Element, Element> renumber;
  renumber.reserve(subdomain.size());
  for (std::size_t i = 0; i < subdomain.size(); ++i) {
    FMTK_CHECK(subdomain[i] < s.domain_size()) << "subdomain element range";
    bool inserted =
        renumber.emplace(subdomain[i], static_cast<Element>(i)).second;
    FMTK_CHECK(inserted) << "duplicate element in subdomain";
  }
  Structure out(s.signature_ptr(), subdomain.size());
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    for (const Tuple& t : s.relation(r).tuples()) {
      Tuple mapped;
      mapped.reserve(t.size());
      bool keep = true;
      for (Element e : t) {
        auto it = renumber.find(e);
        if (it == renumber.end()) {
          keep = false;
          break;
        }
        mapped.push_back(it->second);
      }
      if (keep) {
        out.AddTuple(r, std::move(mapped));
      }
    }
  }
  for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
    std::optional<Element> value = s.constant(c);
    if (value.has_value()) {
      auto it = renumber.find(*value);
      if (it != renumber.end()) {
        out.SetConstant(c, it->second);
      }
    }
  }
  return out;
}

Result<Structure> DisjointUnion(const Structure& a, const Structure& b) {
  if (!(a.signature() == b.signature())) {
    return Status::SignatureMismatch(
        "disjoint union requires equal signatures: " +
        a.signature().ToString() + " vs " + b.signature().ToString());
  }
  Structure out(a.signature_ptr(), a.domain_size() + b.domain_size());
  const Element shift = static_cast<Element>(a.domain_size());
  for (std::size_t r = 0; r < a.signature().relation_count(); ++r) {
    for (const Tuple& t : a.relation(r).tuples()) {
      out.AddTuple(r, t);
    }
    for (const Tuple& t : b.relation(r).tuples()) {
      Tuple shifted = t;
      for (Element& e : shifted) {
        e += shift;
      }
      out.AddTuple(r, std::move(shifted));
    }
  }
  for (std::size_t c = 0; c < a.signature().constant_count(); ++c) {
    std::optional<Element> value = a.constant(c);
    if (value.has_value()) {
      out.SetConstant(c, *value);
    }
  }
  return out;
}

}  // namespace fmtk
