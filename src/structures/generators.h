#ifndef FMTK_STRUCTURES_GENERATORS_H_
#define FMTK_STRUCTURES_GENERATORS_H_

#include <cstddef>
#include <memory>
#include <random>

#include "structures/structure.h"

namespace fmtk {

/// Generators for the structure families the survey's examples are built
/// from: sets, linear orders, successor chains, cycles, trees, grids, and
/// random structures.

/// A pure set: n elements over the empty vocabulary.
Structure MakeSet(std::size_t n);

/// The n-element linear order L_n over {</2}: i < j for all i < j.
Structure MakeLinearOrder(std::size_t n);

/// A successor chain as a graph: edges i -> i+1 for i < n-1 over {E/2}.
/// (The survey's "successor relation" {(a1,a2),...,(a_{n-1},a_n)}.)
Structure MakeDirectedPath(std::size_t n);

/// A directed cycle of length m over {E/2}: edges i -> (i+1) mod m.
/// m must be >= 1.
Structure MakeDirectedCycle(std::size_t m);

/// k disjoint directed cycles, each of length m, over {E/2}.
Structure MakeDisjointCycles(std::size_t k, std::size_t m);

/// The disjoint union of a path on m nodes and a cycle of length m
/// (the survey's witness that "is a tree" is not FO-definable).
Structure MakePathPlusCycle(std::size_t m);

/// The complete directed graph (all edges i -> j, i != j) over {E/2}.
Structure MakeCompleteGraph(std::size_t n);

/// The edgeless graph over {E/2}.
Structure MakeEmptyGraph(std::size_t n);

/// A full binary tree of the given depth (a single root at element 0,
/// depth 0 = just the root), with parent -> child edges over {E/2}.
/// Domain size is 2^(depth+1) - 1.
Structure MakeFullBinaryTree(std::size_t depth);

/// A w x h directed grid over {E/2}: edges to the right and downward
/// neighbors. Element (x, y) is numbered y*w + x.
Structure MakeGrid(std::size_t w, std::size_t h);

/// G(n, p): each ordered pair (i, j), i != j, is an edge independently with
/// probability p, over {E/2}.
Structure MakeRandomGraph(std::size_t n, double p, std::mt19937_64& rng);

/// A uniform random structure over an arbitrary relational signature: each
/// potential tuple of each relation is included independently with
/// probability p. Constants are assigned uniformly at random (when the
/// domain is nonempty).
Structure MakeRandomStructure(std::shared_ptr<const Signature> signature,
                              std::size_t n, double p, std::mt19937_64& rng);

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_GENERATORS_H_
