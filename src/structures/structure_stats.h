#ifndef FMTK_STRUCTURES_STRUCTURE_STATS_H_
#define FMTK_STRUCTURES_STRUCTURE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fmtk {

class Structure;

/// Cheap whole-structure statistics the meta-planner's cost model consumes:
/// one O(n + m) pass over the Gaifman graph (adjacency build + one BFS per
/// connected component). Memoized on the structure itself
/// (Structure::Stats(), generation-stamped) so repeated routing decisions
/// against an unchanged structure pay nothing.
struct StructureStats {
  /// Structure::generation() at computation time (stamp for the memo).
  std::uint64_t generation = 0;
  std::size_t domain_size = 0;
  /// Total tuples across all relations.
  std::size_t tuple_count = 0;
  std::size_t relation_count = 0;
  /// Size of the largest single relation.
  std::size_t max_relation_size = 0;
  /// Undirected Gaifman edge count (each adjacency pair counted once).
  std::size_t gaifman_edge_count = 0;
  /// Maximum Gaifman degree — the k of "degree-k-bounded class" in the
  /// survey's Thm 3.10/3.11 routing rule (bounded degree => Hanf-local
  /// => linear-time evaluation).
  std::size_t max_degree = 0;
  /// 2 * gaifman_edge_count / domain_size (0 when the domain is empty).
  double avg_degree = 0.0;
  /// Connected components of the Gaifman graph.
  std::size_t component_count = 0;
  /// Upper bound on the Gaifman diameter: max over components of twice the
  /// BFS eccentricity of the component's discovery root (standard
  /// 2-approximation; exact diameter would need all-pairs work).
  std::size_t diameter_bound = 0;

  /// e.g. "n=64 tuples=128 max_deg=2 avg_deg=2.0 comps=1 diam<=64 gen=3".
  std::string ToString() const;
};

/// Computes the statistics from scratch. Prefer Structure::Stats(), which
/// memoizes the result against the structure's mutation generation.
StructureStats ComputeStructureStats(const Structure& s);

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_STRUCTURE_STATS_H_
