#ifndef FMTK_STRUCTURES_IO_H_
#define FMTK_STRUCTURES_IO_H_

#include <string>
#include <string_view>

#include "base/result.h"
#include "structures/structure.h"

namespace fmtk {

/// Parses the toolkit's textual structure format:
///
///   # comments run to end of line
///   domain 5
///   relation E/2 { (0 1) (1 2) (2 0) }
///   relation P/1 { (3) (4) }
///   constant c = 2
///
/// `domain` must come first; relations and constants follow in any order
/// and define the signature in order of appearance. Tuples list their
/// elements separated by whitespace or commas.
Result<Structure> ParseStructure(std::string_view text);

/// Serializes in the same format. Round-trips exactly when every constant
/// is interpreted (the format cannot express an uninterpreted constant, so
/// those are emitted as comments and dropped on re-parse).
std::string SerializeStructure(const Structure& s);

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_IO_H_
