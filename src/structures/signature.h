#ifndef FMTK_STRUCTURES_SIGNATURE_H_
#define FMTK_STRUCTURES_SIGNATURE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fmtk {

/// A relation symbol: a name plus an arity (arity 0 is allowed and denotes a
/// propositional flag).
struct RelationSymbol {
  std::string name;
  std::size_t arity = 0;

  friend bool operator==(const RelationSymbol&,
                         const RelationSymbol&) = default;
};

/// A relational vocabulary: relation symbols plus constant symbols.
///
/// Following the survey's convention ("assume all structures are relational"),
/// function symbols of positive arity are not supported; constants are the
/// only terms besides variables. Signatures are immutable once built and are
/// shared between structures via std::shared_ptr<const Signature>.
class Signature {
 public:
  Signature() = default;

  /// Builder-style mutators (use before sharing the signature).
  /// Adding a duplicate name is a fatal programming error.
  Signature& AddRelation(std::string name, std::size_t arity);
  Signature& AddConstant(std::string name);

  std::size_t relation_count() const { return relations_.size(); }
  std::size_t constant_count() const { return constants_.size(); }

  const RelationSymbol& relation(std::size_t index) const;
  const std::string& constant_name(std::size_t index) const;
  const std::vector<RelationSymbol>& relations() const { return relations_; }
  const std::vector<std::string>& constant_names() const { return constants_; }

  /// Index lookups by name; nullopt when absent.
  std::optional<std::size_t> FindRelation(std::string_view name) const;
  std::optional<std::size_t> FindConstant(std::string_view name) const;

  /// Structural equality (same symbols in the same order).
  friend bool operator==(const Signature& a, const Signature& b) {
    return a.relations_ == b.relations_ && a.constants_ == b.constants_;
  }

  /// e.g. "{E/2, P/1; c}".
  std::string ToString() const;

  /// Common vocabularies used throughout the toolkit.
  /// The graph vocabulary {E/2}.
  static std::shared_ptr<const Signature> Graph();
  /// The linear-order vocabulary {</2}.
  static std::shared_ptr<const Signature> Order();
  /// The empty vocabulary (pure sets).
  static std::shared_ptr<const Signature> Empty();

 private:
  std::vector<RelationSymbol> relations_;
  std::vector<std::string> constants_;
  std::unordered_map<std::string, std::size_t> relation_index_;
  std::unordered_map<std::string, std::size_t> constant_index_;
};

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_SIGNATURE_H_
