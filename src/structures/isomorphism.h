#ifndef FMTK_STRUCTURES_ISOMORPHISM_H_
#define FMTK_STRUCTURES_ISOMORPHISM_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// A partial map between the domains of two structures, as a list of
/// (a, b) pairs. Repeated pairs are allowed; conflicting ones make the map
/// non-functional.
using PartialMap = std::vector<std::pair<Element, Element>>;

/// Decides whether `map` is a partial isomorphism between `a` and `b` in the
/// survey's sense: the induced map must be well-defined and injective, and
/// for every relation symbol R and every tuple over dom(map),
/// R^A(t) iff R^B(map(t)).
///
/// Constants: if a constant is interpreted in both structures and its
/// interpretation appears in the map, the map must respect it. (EF-game
/// positions add constant pairs to the position explicitly, matching the
/// textbook convention that constants are always part of the position.)
bool IsPartialIsomorphism(const Structure& a, const Structure& b,
                          const PartialMap& map);

/// Decides A, ā ≅ B, b̄: existence of an isomorphism h with h(ā_i) = b̄_i.
/// With empty tuples this is plain structure isomorphism. Signatures must be
/// equal for a positive answer. Exact backtracking search with
/// invariant-based pruning; intended for the small structures that arise as
/// neighborhoods and game boards.
bool AreIsomorphic(const Structure& a, const Structure& b,
                   const Tuple& a_distinguished = {},
                   const Tuple& b_distinguished = {});

/// The atomic invariant of element `e` in `s`: tuple-occurrence counts per
/// (relation, position) plus a repeated-entry marker per relation. Equal
/// for elements matched by any isomorphism, and comparable across
/// structures over the same signature — the cheap per-element signature
/// behind the game engine's move pruning and the neighborhood index's
/// candidate pre-filter. Cost: one pass over every tuple of `s`.
std::vector<std::size_t> AtomicInvariantOf(const Structure& s, Element e);

/// An isomorphism-invariant hash of (S, t̄): equal for isomorphic pairs,
/// and a good discriminator in practice (1-dimensional Weisfeiler-Leman
/// color refinement over the Gaifman graph, seeded with atomic invariants
/// and distinguished positions). Use to bucket candidates before the exact
/// AreIsomorphic test.
std::size_t IsomorphismInvariant(const Structure& s,
                                 const Tuple& distinguished = {});

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_ISOMORPHISM_H_
