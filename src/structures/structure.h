#ifndef FMTK_STRUCTURES_STRUCTURE_H_
#define FMTK_STRUCTURES_STRUCTURE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "structures/relation.h"
#include "structures/signature.h"
#include "structures/structure_stats.h"

namespace fmtk {

/// A finite relational structure (= a database instance in the survey's
/// reading): a domain {0, ..., n-1}, one finite relation per relation symbol
/// of the signature, and an element per constant symbol.
class Structure {
 public:
  /// Creates a structure with empty relations and all constants unset.
  /// `signature` must be non-null.
  Structure(std::shared_ptr<const Signature> signature,
            std::size_t domain_size);

  /// Copies share the (immutable) memoized statistics snapshot but get a
  /// fresh identity: uid() differs, so caches keyed by (uid, generation) —
  /// e.g. the planner's per-structure Datalog engine memo, which holds raw
  /// pointers — never confuse a copy with the original.
  Structure(const Structure& other);
  Structure& operator=(const Structure& other);
  /// Moves also take a fresh uid: engines bound to the source's address
  /// must not be served for the moved-to object.
  Structure(Structure&& other) noexcept;
  Structure& operator=(Structure&& other) noexcept;
  ~Structure() = default;

  const Signature& signature() const { return *signature_; }
  const std::shared_ptr<const Signature>& signature_ptr() const {
    return signature_;
  }
  std::size_t domain_size() const { return domain_size_; }

  /// Relation access by symbol index (fatal on out-of-range).
  const Relation& relation(std::size_t index) const;

  /// Relation access by symbol name; error Status when the name is unknown.
  Result<std::size_t> RelationIndex(std::string_view name) const;

  /// Inserts `tuple` into relation `index`. Element range and arity are
  /// CHECKed; use TryAddTuple for unvalidated input.
  /// Returns false when the tuple was already present.
  bool AddTuple(std::size_t index, Tuple tuple);

  /// Convenience: insert by relation name.
  bool AddTuple(std::string_view name, Tuple tuple);

  /// Validated insertion for user-supplied data.
  Status TryAddTuple(std::string_view name, Tuple tuple);

  /// Replaces relation `index` wholesale — the bulk-load and incremental-
  /// maintenance install path (a RelationBuilder output or a rebuilt
  /// relation after deletions). Arity must match the signature; the caller
  /// guarantees every element is < domain_size() (the loaders validate
  /// before building).
  void SetRelation(std::size_t index, Relation relation);

  /// In-place mutable access (fatal on out-of-range) — the incremental-
  /// maintenance deletion path, which compacts a relation with
  /// Relation::EraseRows instead of copying it out and back through
  /// SetRelation. The caller owns keeping the contents consistent with the
  /// signature and domain.
  Relation& MutableRelation(std::size_t index);

  /// Constant interpretations.
  void SetConstant(std::size_t index, Element value);
  std::optional<Element> constant(std::size_t index) const;

  /// Total number of tuples across all relations.
  std::size_t TupleCount() const;

  /// Mutation generation: bumped by every mutator (AddTuple, TryAddTuple,
  /// SetRelation, MutableRelation — conservatively, at access time —
  /// and SetConstant). Generation-stamped caches (Stats(), the planner's
  /// engine memos) use it to detect staleness, the way PR 4 stamps the
  /// locality engine's BFS scratch.
  std::uint64_t generation() const { return generation_; }

  /// Process-unique identity, fresh for every constructed/copied/moved-to
  /// structure (never reused, unlike addresses). (uid, generation) is a
  /// safe key for caches that hold pointers into a structure.
  std::uint64_t uid() const { return uid_; }

  /// Gaifman-graph statistics (size, max degree, diameter bound, ...),
  /// memoized against generation(). Cheap after the first call until the
  /// structure is mutated. Thread-safe against concurrent Stats() calls on
  /// an otherwise unmutated structure (mutation concurrent with any read is
  /// a data race, as everywhere else on Structure).
  StructureStats Stats() const;

  /// Two structures are equal when they share equal signatures, equal domain
  /// sizes, equal relations, and equal constant interpretations.
  friend bool operator==(const Structure& a, const Structure& b);

  /// Multi-line description for debugging and examples.
  std::string ToString() const;

 private:
  static std::uint64_t NextUid();

  std::shared_ptr<const Signature> signature_;
  std::size_t domain_size_;
  std::vector<Relation> relations_;
  std::vector<std::optional<Element>> constants_;
  std::uint64_t generation_ = 0;
  std::uint64_t uid_ = NextUid();
  // Memoized Stats() snapshot (null until first computed; replaced, never
  // mutated, so concurrent readers are safe).
  mutable std::atomic<std::shared_ptr<const StructureStats>> stats_cache_{};
};

/// The substructure of `s` induced by `subdomain` (order gives the new
/// element numbering: subdomain[i] becomes element i). Tuples with any
/// component outside `subdomain` are dropped. Constants interpreted outside
/// `subdomain` become unset. Duplicate elements in `subdomain` are a fatal
/// error.
Structure InducedSubstructure(const Structure& s,
                              const std::vector<Element>& subdomain);

/// Disjoint union: B's elements are shifted by A's domain size. The
/// signatures must be equal; constants are taken from A.
Result<Structure> DisjointUnion(const Structure& a, const Structure& b);

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_STRUCTURE_H_
