#include "structures/graph.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "base/check.h"

namespace fmtk {

namespace {

void CheckBinary(const Structure& s, std::size_t rel_index) {
  FMTK_CHECK(rel_index < s.signature().relation_count())
      << "relation index out of range";
  FMTK_CHECK(s.signature().relation(rel_index).arity == 2)
      << "graph view requires a binary relation, got arity "
      << s.signature().relation(rel_index).arity;
}

void SortUnique(Adjacency& adjacency) {
  for (std::vector<Element>& row : adjacency) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
}

}  // namespace

Adjacency OutAdjacency(const Structure& s, std::size_t rel_index) {
  CheckBinary(s, rel_index);
  Adjacency adjacency(s.domain_size());
  const Relation& rel = s.relation(rel_index);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    const Element* t = rel.TupleData(i);
    adjacency[t[0]].push_back(t[1]);
  }
  SortUnique(adjacency);
  return adjacency;
}

Adjacency UndirectedAdjacency(const Structure& s, std::size_t rel_index) {
  CheckBinary(s, rel_index);
  Adjacency adjacency(s.domain_size());
  const Relation& rel = s.relation(rel_index);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    const Element* t = rel.TupleData(i);
    adjacency[t[0]].push_back(t[1]);
    if (t[0] != t[1]) {
      adjacency[t[1]].push_back(t[0]);
    }
  }
  SortUnique(adjacency);
  return adjacency;
}

std::vector<std::size_t> BfsDistances(const Adjacency& adjacency,
                                      const std::vector<Element>& sources) {
  std::vector<std::size_t> dist(adjacency.size(), kUnreachable);
  std::deque<Element> queue;
  for (Element s : sources) {
    FMTK_CHECK(s < adjacency.size()) << "BFS source out of range";
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    Element v = queue.front();
    queue.pop_front();
    for (Element w : adjacency[v]) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

bool IsConnected(const Adjacency& undirected_adjacency) {
  if (undirected_adjacency.empty()) {
    return true;
  }
  std::vector<std::size_t> dist = BfsDistances(undirected_adjacency, {0});
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == kUnreachable; });
}

std::vector<std::size_t> ConnectedComponents(
    const Adjacency& undirected_adjacency) {
  const std::size_t n = undirected_adjacency.size();
  std::vector<std::size_t> component(n, kUnreachable);
  std::size_t next_id = 0;
  for (Element start = 0; start < n; ++start) {
    if (component[start] != kUnreachable) {
      continue;
    }
    component[start] = next_id;
    std::deque<Element> queue = {start};
    while (!queue.empty()) {
      Element v = queue.front();
      queue.pop_front();
      for (Element w : undirected_adjacency[v]) {
        if (component[w] == kUnreachable) {
          component[w] = next_id;
          queue.push_back(w);
        }
      }
    }
    ++next_id;
  }
  return component;
}

bool IsAcyclicDirected(const Adjacency& out_adjacency) {
  const std::size_t n = out_adjacency.size();
  // Kahn's algorithm: the graph is acyclic iff all nodes are peeled.
  std::vector<std::size_t> indegree(n, 0);
  for (const std::vector<Element>& row : out_adjacency) {
    for (Element w : row) {
      ++indegree[w];
    }
  }
  std::deque<Element> queue;
  for (Element v = 0; v < n; ++v) {
    if (indegree[v] == 0) {
      queue.push_back(v);
    }
  }
  std::size_t peeled = 0;
  while (!queue.empty()) {
    Element v = queue.front();
    queue.pop_front();
    ++peeled;
    for (Element w : out_adjacency[v]) {
      if (--indegree[w] == 0) {
        queue.push_back(w);
      }
    }
  }
  return peeled == n;
}

bool IsAcyclicUndirected(const Adjacency& undirected_adjacency) {
  const std::size_t n = undirected_adjacency.size();
  std::vector<Element> parent(n, static_cast<Element>(-1));
  std::vector<bool> seen(n, false);
  for (Element start = 0; start < n; ++start) {
    if (seen[start]) {
      continue;
    }
    seen[start] = true;
    std::deque<Element> queue = {start};
    while (!queue.empty()) {
      Element v = queue.front();
      queue.pop_front();
      for (Element w : undirected_adjacency[v]) {
        if (w == v) {
          return false;  // A self-loop is a cycle.
        }
        if (!seen[w]) {
          seen[w] = true;
          parent[w] = v;
          queue.push_back(w);
        } else if (parent[v] != w) {
          return false;  // Cross/back edge closes an undirected cycle.
        }
      }
    }
  }
  return true;
}

Relation TransitiveClosure(const Structure& s, std::size_t rel_index) {
  CheckBinary(s, rel_index);
  Adjacency adjacency = OutAdjacency(s, rel_index);
  Relation closure(2);
  for (Element a = 0; a < s.domain_size(); ++a) {
    // BFS over out-edges; a reaches b at distance >= 1.
    std::vector<std::size_t> dist = BfsDistances(adjacency, adjacency[a]);
    for (Element b = 0; b < s.domain_size(); ++b) {
      bool direct = std::binary_search(adjacency[a].begin(),
                                       adjacency[a].end(), b);
      if (direct || dist[b] != kUnreachable) {
        closure.Add({a, b});
      }
    }
  }
  return closure;
}

std::vector<std::size_t> InDegrees(const Structure& s, std::size_t rel_index) {
  CheckBinary(s, rel_index);
  std::vector<std::size_t> degree(s.domain_size(), 0);
  const Relation& rel = s.relation(rel_index);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    ++degree[rel.TupleData(i)[1]];
  }
  return degree;
}

std::vector<std::size_t> OutDegrees(const Structure& s,
                                    std::size_t rel_index) {
  CheckBinary(s, rel_index);
  std::vector<std::size_t> degree(s.domain_size(), 0);
  const Relation& rel = s.relation(rel_index);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    ++degree[rel.TupleData(i)[0]];
  }
  return degree;
}

std::set<std::size_t> DegreeSet(const Structure& s, std::size_t rel_index) {
  std::set<std::size_t> degrees;
  for (std::size_t d : InDegrees(s, rel_index)) {
    degrees.insert(d);
  }
  for (std::size_t d : OutDegrees(s, rel_index)) {
    degrees.insert(d);
  }
  return degrees;
}

std::set<std::size_t> DegreeSet(const Relation& relation,
                                std::size_t domain_size) {
  FMTK_CHECK(relation.arity() == 2) << "degree set requires arity 2";
  std::vector<std::size_t> in(domain_size, 0);
  std::vector<std::size_t> out(domain_size, 0);
  for (std::size_t i = 0; i < relation.size(); ++i) {
    const Element* t = relation.TupleData(i);
    FMTK_CHECK(t[0] < domain_size && t[1] < domain_size)
        << "tuple outside domain";
    ++out[t[0]];
    ++in[t[1]];
  }
  std::set<std::size_t> degrees(in.begin(), in.end());
  degrees.insert(out.begin(), out.end());
  return degrees;
}

Adjacency GaifmanAdjacency(const Structure& s) {
  Adjacency adjacency(s.domain_size());
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const Relation& rel = s.relation(r);
    const std::size_t arity = rel.arity();
    for (std::size_t row = 0; row < rel.size(); ++row) {
      const Element* t = rel.TupleData(row);
      for (std::size_t i = 0; i < arity; ++i) {
        for (std::size_t j = i + 1; j < arity; ++j) {
          if (t[i] != t[j]) {
            adjacency[t[i]].push_back(t[j]);
            adjacency[t[j]].push_back(t[i]);
          }
        }
      }
    }
  }
  SortUnique(adjacency);
  return adjacency;
}

std::size_t MaxDegree(const Structure& s, std::size_t rel_index) {
  std::vector<std::size_t> in = InDegrees(s, rel_index);
  std::vector<std::size_t> out = OutDegrees(s, rel_index);
  std::size_t best = 0;
  for (std::size_t v = 0; v < s.domain_size(); ++v) {
    best = std::max(best, in[v] + out[v]);
  }
  return best;
}

}  // namespace fmtk
