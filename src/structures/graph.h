#ifndef FMTK_STRUCTURES_GRAPH_H_
#define FMTK_STRUCTURES_GRAPH_H_

#include <cstddef>
#include <set>
#include <vector>

#include "base/result.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// Adjacency lists: adjacency[v] = neighbors of v. Directed or undirected
/// depending on how it was built.
using Adjacency = std::vector<std::vector<Element>>;

/// Distance value for unreachable nodes in BFS results.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

/// Out-adjacency of the binary relation `rel_index` of `s` (fatal when the
/// relation does not have arity 2).
Adjacency OutAdjacency(const Structure& s, std::size_t rel_index);

/// Symmetric adjacency of the binary relation (edge orientation forgotten,
/// as in the survey's definition of distance). Parallel entries are deduped.
Adjacency UndirectedAdjacency(const Structure& s, std::size_t rel_index);

/// Multi-source BFS distances from `sources`; kUnreachable where no path.
std::vector<std::size_t> BfsDistances(const Adjacency& adjacency,
                                      const std::vector<Element>& sources);

/// True when the graph is connected in the undirected sense. The empty graph
/// (n = 0) counts as connected; a single node always does.
bool IsConnected(const Adjacency& undirected_adjacency);

/// Weakly-connected component ids (0-based, by discovery order).
std::vector<std::size_t> ConnectedComponents(
    const Adjacency& undirected_adjacency);

/// True when the directed graph has no directed cycle.
bool IsAcyclicDirected(const Adjacency& out_adjacency);

/// True when the *undirected* version of the graph has no cycle (the
/// survey's acyclicity trick uses this reading: a back edge over an
/// even-length order creates an undirected cycle). Parallel/antiparallel
/// edge pairs are treated as a single undirected edge, not a cycle.
bool IsAcyclicUndirected(const Adjacency& undirected_adjacency);

/// Reflexive-free transitive closure of the binary relation: (a, b) included
/// iff there is a directed path of length >= 1 from a to b.
Relation TransitiveClosure(const Structure& s, std::size_t rel_index);

/// In-degree / out-degree of every node under the binary relation.
std::vector<std::size_t> InDegrees(const Structure& s, std::size_t rel_index);
std::vector<std::size_t> OutDegrees(const Structure& s, std::size_t rel_index);

/// degs(G) of the survey: the set of in-degrees and out-degrees realized.
std::set<std::size_t> DegreeSet(const Structure& s, std::size_t rel_index);

/// The same for a standalone binary relation over a given domain size.
std::set<std::size_t> DegreeSet(const Relation& relation,
                                std::size_t domain_size);

/// Maximum total degree (in + out, loops counted once per side) of any node;
/// 0 for the empty graph. Used as the k of bounded-degree classes.
std::size_t MaxDegree(const Structure& s, std::size_t rel_index);

/// The Gaifman graph of an arbitrary relational structure: a and b are
/// adjacent iff a != b and some tuple of some relation contains both.
/// Constants do not contribute edges.
Adjacency GaifmanAdjacency(const Structure& s);

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_GRAPH_H_
