#include "structures/bulk_load.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/interner.h"
#include "structures/relation_builder.h"
#include "structures/signature.h"

namespace fmtk {

namespace {

constexpr std::size_t kChunkBytes = std::size_t{1} << 20;
constexpr char kBinaryMagic[8] = {'F', 'M', 'T', 'K', 'B', 'I', 'N', '1'};

Status Fail(DiagnosticSink* sink, DiagCode code, SourceSpan span,
            std::string message) {
  if (sink != nullptr) {
    sink->Report(code, span, message);
  }
  // The Status carries the FMTK id too, so sink-less callers still see a
  // structured failure, with the code's canonical status code.
  return Status(GetDiagCodeInfo(code).status_code,
                std::string(DiagCodeId(code)) + ": " + std::move(message));
}

void Warn(DiagnosticSink* sink, DiagCode code, std::string message) {
  if (sink != nullptr) {
    sink->Report(code, SourceSpan{}, std::move(message));
  }
}

bool IsSeparator(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == ',';
}

// Streaming edge-list scanner: fed chunk by chunk, carries a partial token
// across chunk boundaries, and hands completed (source, target) rows to the
// RelationBuilder. One pass, no line splitting, no per-line allocation.
class EdgeListLoader {
 public:
  EdgeListLoader(const EdgeListOptions& options, DiagnosticSink* sink)
      : options_(options), sink_(sink), builder_(2) {}

  Status Feed(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i, ++offset_) {
      const char c = data[i];
      if (c == '\n') {
        FMTK_RETURN_IF_ERROR(EndToken());
        FMTK_RETURN_IF_ERROR(EndRecord());
        in_comment_ = false;
        continue;
      }
      if (in_comment_) {
        continue;
      }
      if (c == '#' || c == '%') {
        FMTK_RETURN_IF_ERROR(EndToken());
        in_comment_ = true;
        continue;
      }
      if (IsSeparator(c)) {
        FMTK_RETURN_IF_ERROR(EndToken());
        continue;
      }
      if (token_.empty()) {
        token_start_ = offset_;
      }
      token_.push_back(c);
    }
    return Status::OK();
  }

  Result<LoadedGraph> Finish() {
    // EOF closes the last record like a newline would.
    FMTK_RETURN_IF_ERROR(EndToken());
    FMTK_RETURN_IF_ERROR(EndRecord());

    Relation rel = builder_.Build();
    BulkLoadStats stats;
    stats.records = records_;
    stats.edges = rel.size();
    stats.duplicates = builder_.DuplicatesDropped();
    stats.bytes = offset_;
    if (stats.duplicates > 0 && !options_.undirected) {
      Warn(sink_, DiagCode::kIoDuplicateTuple,
           std::to_string(stats.duplicates) + " duplicate edge(s) collapsed");
    }
    if (rel.empty()) {
      Warn(sink_, DiagCode::kIoEmptyRelation,
           "relation " + options_.relation_name +
               " loaded empty (no data lines in the input)");
    }
    std::size_t domain = 0;
    if (options_.id_mode == EdgeListOptions::IdMode::kIntern) {
      domain = interner_.size();
    } else if (options_.domain_size > 0) {
      domain = options_.domain_size;
    } else if (records_ > 0) {
      domain = static_cast<std::size_t>(max_id_) + 1;
    }
    auto signature = std::make_shared<Signature>();
    signature->AddRelation(options_.relation_name, 2);
    Structure structure(std::move(signature), domain);
    structure.SetRelation(0, std::move(rel));
    LoadedGraph out{std::move(structure), {}, stats};
    if (options_.id_mode == EdgeListOptions::IdMode::kIntern) {
      out.ids = interner_.Names();
    }
    return out;
  }

 private:
  Status EndToken() {
    if (token_.empty()) {
      return Status::OK();
    }
    const SourceSpan span = SourceSpan::Of(token_start_, token_.size());
    if (tokens_in_record_ >= 2) {
      return Fail(sink_, DiagCode::kIoMalformedRecord, span,
                  "edge line has more than two vertex tokens ('" + token_ +
                      "' is extra)");
    }
    Element e = 0;
    if (options_.id_mode == EdgeListOptions::IdMode::kIntern) {
      e = interner_.Intern(token_);
    } else {
      std::uint64_t v = 0;
      for (const char c : token_) {
        if (c < '0' || c > '9') {
          return Fail(sink_, DiagCode::kIoMalformedRecord, span,
                      "vertex id '" + token_ + "' is not a number");
        }
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > 0xffffffffULL) {
          return Fail(sink_, DiagCode::kIoMalformedRecord, span,
                      "vertex id '" + token_ + "' does not fit an element");
        }
      }
      if (options_.domain_size > 0 && v >= options_.domain_size) {
        return Fail(sink_, DiagCode::kIoElementOutOfRange, span,
                    "vertex id " + token_ + " outside the declared domain of " +
                        std::to_string(options_.domain_size));
      }
      e = static_cast<Element>(v);
      max_id_ = std::max(max_id_, e);
    }
    record_[tokens_in_record_++] = e;
    token_.clear();
    return Status::OK();
  }

  Status EndRecord() {
    if (tokens_in_record_ == 0) {
      return Status::OK();  // Blank or comment-only line.
    }
    if (tokens_in_record_ == 1) {
      return Fail(sink_, DiagCode::kIoTruncatedInput,
                  SourceSpan::Of(token_start_, 1),
                  "edge line ends after the source vertex (no target)");
    }
    ++records_;
    builder_.Add(record_);
    if (options_.undirected) {
      const Element reversed[2] = {record_[1], record_[0]};
      builder_.Add(reversed);
    }
    tokens_in_record_ = 0;
    return Status::OK();
  }

  const EdgeListOptions& options_;
  DiagnosticSink* sink_;
  RelationBuilder builder_;
  StringInterner interner_;
  std::string token_;
  std::size_t token_start_ = 0;
  std::size_t offset_ = 0;
  Element record_[2] = {0, 0};
  std::size_t tokens_in_record_ = 0;
  bool in_comment_ = false;
  std::size_t records_ = 0;
  Element max_id_ = 0;
};

// ---- Binary format helpers -------------------------------------------------

void PutU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffULL));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

// Bounds-checked little-endian reader over the input bytes; every overrun
// funnels into one FMTK201 site.
class ByteReader {
 public:
  ByteReader(std::string_view bytes, DiagnosticSink* sink)
      : bytes_(bytes), sink_(sink) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  Status ReadBytes(std::size_t n, std::string_view* out,
                   std::string_view what) {
    if (remaining() < n) {
      return Truncated(what);
    }
    *out = bytes_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadU32(std::uint32_t* out, std::string_view what) {
    std::string_view raw;
    FMTK_RETURN_IF_ERROR(ReadBytes(4, &raw, what));
    *out = DecodeU32(raw.data());
    return Status::OK();
  }

  Status ReadU64(std::uint64_t* out, std::string_view what) {
    std::string_view raw;
    FMTK_RETURN_IF_ERROR(ReadBytes(8, &raw, what));
    *out = static_cast<std::uint64_t>(DecodeU32(raw.data())) |
           (static_cast<std::uint64_t>(DecodeU32(raw.data() + 4)) << 32);
    return Status::OK();
  }

  Status Truncated(std::string_view what) {
    return Fail(sink_, DiagCode::kIoTruncatedInput, SourceSpan::Of(pos_, 1),
                "binary structure input ends inside " + std::string(what) +
                    " (offset " + std::to_string(pos_) + " of " +
                    std::to_string(bytes_.size()) + ")");
  }

  static std::uint32_t DecodeU32(const char* p) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1]))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]))
            << 24);
  }

 private:
  std::string_view bytes_;
  DiagnosticSink* sink_;
  std::size_t pos_ = 0;
};

constexpr std::uint32_t kMaxNameBytes = 1 << 16;
constexpr std::uint32_t kMaxArity = 1 << 10;

}  // namespace

Result<LoadedGraph> LoadEdgeListText(std::string_view text,
                                     const EdgeListOptions& options,
                                     DiagnosticSink* sink) {
  EdgeListLoader loader(options, sink);
  // Feed in bounded chunks so the in-memory path exercises the same
  // boundary handling the file path does.
  for (std::size_t at = 0; at < text.size(); at += kChunkBytes) {
    FMTK_RETURN_IF_ERROR(
        loader.Feed(text.data() + at, std::min(kChunkBytes, text.size() - at)));
  }
  return loader.Finish();
}

Result<LoadedGraph> LoadEdgeListFile(const std::string& path,
                                     const EdgeListOptions& options,
                                     DiagnosticSink* sink) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open " + path);
  }
  EdgeListLoader loader(options, sink);
  std::vector<char> chunk(kChunkBytes);
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), file.get())) > 0) {
    FMTK_RETURN_IF_ERROR(loader.Feed(chunk.data(), n));
  }
  if (std::ferror(file.get()) != 0) {
    return Status::Internal("read error on " + path);
  }
  return loader.Finish();
}

std::string SerializeStructureBinary(const Structure& s) {
  std::string out(kBinaryMagic, sizeof(kBinaryMagic));
  PutU64(out, s.domain_size());
  PutU32(out, static_cast<std::uint32_t>(s.signature().relation_count()));
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const RelationSymbol& symbol = s.signature().relation(r);
    PutU32(out, static_cast<std::uint32_t>(symbol.name.size()));
    out += symbol.name;
    PutU32(out, static_cast<std::uint32_t>(symbol.arity));
    const Relation& rel = s.relation(r);
    PutU64(out, rel.size());
    for (std::size_t i = 0; i < rel.size(); ++i) {
      const Element* row = rel.TupleData(i);
      for (std::size_t c = 0; c < symbol.arity; ++c) {
        PutU32(out, row[c]);
      }
    }
  }
  PutU32(out, static_cast<std::uint32_t>(s.signature().constant_count()));
  for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
    const std::string& name = s.signature().constant_name(c);
    PutU32(out, static_cast<std::uint32_t>(name.size()));
    out += name;
    const std::optional<Element> value = s.constant(c);
    // The explicit presence byte is what the textual format cannot say:
    // an uninterpreted constant round-trips instead of degrading to a
    // comment.
    out.push_back(value.has_value() ? '\1' : '\0');
    if (value.has_value()) {
      PutU32(out, *value);
    }
  }
  return out;
}

Result<Structure> ParseStructureBinary(std::string_view bytes,
                                       DiagnosticSink* sink) {
  ByteReader in(bytes, sink);
  std::string_view magic;
  FMTK_RETURN_IF_ERROR(in.ReadBytes(sizeof(kBinaryMagic), &magic, "the magic"));
  if (std::memcmp(magic.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return Fail(sink, DiagCode::kIoMalformedRecord, SourceSpan::Of(0, 8),
                "not a FMTKBIN1 binary structure (bad magic)");
  }
  std::uint64_t domain = 0;
  FMTK_RETURN_IF_ERROR(in.ReadU64(&domain, "the domain size"));

  auto signature = std::make_shared<Signature>();
  std::uint32_t relation_count = 0;
  FMTK_RETURN_IF_ERROR(in.ReadU32(&relation_count, "the relation count"));
  struct PendingRelation {
    std::size_t arity = 0;
    Relation rel{0};
    std::size_t duplicates = 0;
  };
  std::vector<PendingRelation> pending;
  pending.reserve(relation_count);
  for (std::uint32_t r = 0; r < relation_count; ++r) {
    std::uint32_t name_len = 0;
    FMTK_RETURN_IF_ERROR(in.ReadU32(&name_len, "a relation name length"));
    if (name_len == 0 || name_len > kMaxNameBytes) {
      return Fail(sink, DiagCode::kIoMalformedRecord,
                  SourceSpan::Of(in.pos() - 4, 4),
                  "implausible relation name length " +
                      std::to_string(name_len));
    }
    std::string_view name;
    FMTK_RETURN_IF_ERROR(in.ReadBytes(name_len, &name, "a relation name"));
    if (signature->FindRelation(name).has_value()) {
      return Fail(sink, DiagCode::kIoMalformedRecord,
                  SourceSpan::Of(in.pos() - name_len, name_len),
                  "duplicate relation " + std::string(name));
    }
    std::uint32_t arity = 0;
    FMTK_RETURN_IF_ERROR(in.ReadU32(&arity, "a relation arity"));
    if (arity > kMaxArity) {
      return Fail(sink, DiagCode::kIoMalformedRecord,
                  SourceSpan::Of(in.pos() - 4, 4),
                  "implausible arity " + std::to_string(arity) +
                      " for relation " + std::string(name));
    }
    std::uint64_t tuple_count = 0;
    FMTK_RETURN_IF_ERROR(in.ReadU64(&tuple_count, "a tuple count"));
    signature->AddRelation(std::string(name), arity);
    PendingRelation p;
    p.arity = arity;
    if (arity == 0) {
      if (tuple_count > 1) {
        return Fail(sink, DiagCode::kIoMalformedRecord,
                    SourceSpan::Of(in.pos() - 8, 8),
                    "arity-0 relation " + std::string(name) + " claims " +
                        std::to_string(tuple_count) + " tuples");
      }
      p.rel = Relation(0);
      if (tuple_count == 1) {
        p.rel.Add(Tuple{});
      }
      pending.push_back(std::move(p));
      continue;
    }
    const std::uint64_t row_bytes = std::uint64_t{4} * arity;
    if (tuple_count > in.remaining() / row_bytes) {
      return Fail(sink, DiagCode::kIoTruncatedInput,
                  SourceSpan::Of(in.pos(), 1),
                  "tuple block of relation " + std::string(name) + " claims " +
                      std::to_string(tuple_count) +
                      " tuples but the input has only " +
                      std::to_string(in.remaining()) + " bytes left");
    }
    std::string_view block;
    FMTK_RETURN_IF_ERROR(in.ReadBytes(
        static_cast<std::size_t>(tuple_count * row_bytes), &block,
        "a tuple block"));
    RelationBuilder builder(arity);
    std::vector<Element> row(arity);
    for (std::uint64_t i = 0; i < tuple_count; ++i) {
      const char* at = block.data() + i * row_bytes;
      for (std::uint32_t c = 0; c < arity; ++c) {
        const Element e = ByteReader::DecodeU32(at + std::size_t{4} * c);
        if (e >= domain) {
          return Fail(
              sink, DiagCode::kIoElementOutOfRange,
              SourceSpan::Of(in.pos() - block.size() +
                                 static_cast<std::size_t>(i * row_bytes),
                             static_cast<std::size_t>(row_bytes)),
              "element " + std::to_string(e) + " of relation " +
                  std::string(name) + " outside the domain of " +
                  std::to_string(domain));
        }
        row[c] = e;
      }
      builder.Add(row.data());
    }
    p.rel = builder.Build();
    p.duplicates = builder.DuplicatesDropped();
    if (p.duplicates > 0) {
      Warn(sink, DiagCode::kIoDuplicateTuple,
           std::to_string(p.duplicates) + " duplicate tuple(s) in relation " +
               std::string(name) + " collapsed");
    }
    pending.push_back(std::move(p));
  }

  struct PendingConstant {
    bool has_value = false;
    Element value = 0;
  };
  std::uint32_t constant_count = 0;
  FMTK_RETURN_IF_ERROR(in.ReadU32(&constant_count, "the constant count"));
  std::vector<PendingConstant> constants;
  constants.reserve(constant_count);
  for (std::uint32_t c = 0; c < constant_count; ++c) {
    std::uint32_t name_len = 0;
    FMTK_RETURN_IF_ERROR(in.ReadU32(&name_len, "a constant name length"));
    if (name_len == 0 || name_len > kMaxNameBytes) {
      return Fail(sink, DiagCode::kIoMalformedRecord,
                  SourceSpan::Of(in.pos() - 4, 4),
                  "implausible constant name length " +
                      std::to_string(name_len));
    }
    std::string_view name;
    FMTK_RETURN_IF_ERROR(in.ReadBytes(name_len, &name, "a constant name"));
    if (signature->FindConstant(name).has_value()) {
      return Fail(sink, DiagCode::kIoMalformedRecord,
                  SourceSpan::Of(in.pos() - name_len, name_len),
                  "duplicate constant " + std::string(name));
    }
    signature->AddConstant(std::string(name));
    std::string_view presence;
    FMTK_RETURN_IF_ERROR(in.ReadBytes(1, &presence, "a presence byte"));
    PendingConstant pc;
    if (presence[0] != '\0' && presence[0] != '\1') {
      return Fail(sink, DiagCode::kIoMalformedRecord,
                  SourceSpan::Of(in.pos() - 1, 1),
                  "constant " + std::string(name) +
                      " has an invalid presence byte");
    }
    if (presence[0] == '\1') {
      std::uint32_t value = 0;
      FMTK_RETURN_IF_ERROR(in.ReadU32(&value, "a constant value"));
      if (value >= domain) {
        return Fail(sink, DiagCode::kIoElementOutOfRange,
                    SourceSpan::Of(in.pos() - 4, 4),
                    "constant " + std::string(name) + " = " +
                        std::to_string(value) + " outside the domain of " +
                        std::to_string(domain));
      }
      pc.has_value = true;
      pc.value = static_cast<Element>(value);
    }
    constants.push_back(pc);
  }
  if (in.remaining() != 0) {
    return Fail(sink, DiagCode::kIoMalformedRecord,
                SourceSpan::Of(in.pos(), in.remaining()),
                std::to_string(in.remaining()) +
                    " trailing byte(s) after the structure");
  }

  Structure s(std::move(signature), static_cast<std::size_t>(domain));
  for (std::size_t r = 0; r < pending.size(); ++r) {
    s.SetRelation(r, std::move(pending[r].rel));
  }
  for (std::size_t c = 0; c < constants.size(); ++c) {
    if (constants[c].has_value) {
      s.SetConstant(c, constants[c].value);
    }
  }
  return s;
}

Status WriteStructureBinaryFile(const Structure& s, const std::string& path) {
  const std::string bytes = SerializeStructureBinary(s);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  if (std::fwrite(bytes.data(), 1, bytes.size(), file.get()) != bytes.size()) {
    return Status::Internal("short write on " + path);
  }
  return Status::OK();
}

Result<Structure> ReadStructureBinaryFile(const std::string& path,
                                          DiagnosticSink* sink) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::string bytes;
  std::vector<char> chunk(kChunkBytes);
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), file.get())) > 0) {
    bytes.append(chunk.data(), n);
  }
  if (std::ferror(file.get()) != 0) {
    return Status::Internal("read error on " + path);
  }
  return ParseStructureBinary(bytes, sink);
}

}  // namespace fmtk
