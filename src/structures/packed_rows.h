#ifndef FMTK_STRUCTURES_PACKED_ROWS_H_
#define FMTK_STRUCTURES_PACKED_ROWS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fmtk {
namespace internal_rows {

/// Sorts packed arity<=2 rows (one u64 per row, column-lexicographic by
/// construction) with an MSD counting sort on the high 32-bit half — one
/// count pass, one scatter — followed by a comparison sort of each
/// equal-high run. Graph-shaped inputs have short runs (a node's
/// out-neighbours), so the run fix-up touches cache-resident slices and
/// the whole sort costs a single linear scatter instead of the two stable
/// LSD passes it would take to sort both halves by counting. That is the
/// bounded-domain regime every structure is in (elements < domain size);
/// sparse inputs (packed hashes, scattered ids) fall back to std::sort.
inline void SortPackedRows(std::vector<std::uint64_t>& keys) {
  const std::size_t n = keys.size();
  if (n < 2048 || n > 0xffffffffu) {  // u32 count cursors below.
    std::sort(keys.begin(), keys.end());
    return;
  }
  std::uint32_t max_hi = 0;
  for (const std::uint64_t k : keys) {
    max_hi = std::max(max_hi, static_cast<std::uint32_t>(k >> 32));
  }
  if (max_hi == 0) {
    // Arity 1: the packed key IS the low half; dense inputs get a single
    // counting pass.
    std::uint32_t max_lo = 0;
    for (const std::uint64_t k : keys) {
      max_lo = std::max(max_lo, static_cast<std::uint32_t>(k));
    }
    const std::size_t span = static_cast<std::size_t>(max_lo) + 1;
    if (span > 4 * n + 2048) {
      std::sort(keys.begin(), keys.end());
      return;
    }
    std::vector<std::uint64_t> scratch(n);
    std::vector<std::uint32_t> counts(span + 1, 0);
    for (const std::uint64_t k : keys) {
      ++counts[static_cast<std::uint32_t>(k) + 1];
    }
    for (std::size_t v = 1; v <= span; ++v) {
      counts[v] += counts[v - 1];
    }
    for (const std::uint64_t k : keys) {
      scratch[counts[static_cast<std::uint32_t>(k)]++] = k;
    }
    keys.swap(scratch);
    return;
  }
  const std::size_t span_hi = static_cast<std::size_t>(max_hi) + 1;
  if (span_hi > 4 * n + 2048) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  std::vector<std::uint64_t> scratch(n);
  std::vector<std::uint32_t> counts(span_hi + 1, 0);
  for (const std::uint64_t k : keys) {
    ++counts[static_cast<std::uint32_t>(k >> 32) + 1];
  }
  for (std::size_t v = 1; v <= span_hi; ++v) {
    counts[v] += counts[v - 1];
  }
  for (const std::uint64_t k : keys) {
    scratch[counts[static_cast<std::uint32_t>(k >> 32)]++] = k;
  }
  // counts[v] now ends each high-value run: sort runs longer than one key
  // (full u64 compare — the low half decides within a run).
  std::size_t begin = 0;
  for (std::size_t v = 0; v < span_hi; ++v) {
    const std::size_t end = counts[v];
    if (end - begin > 1) {
      std::sort(scratch.begin() + begin, scratch.begin() + end);
    }
    begin = end;
  }
  keys.swap(scratch);
}

}  // namespace internal_rows
}  // namespace fmtk

#endif  // FMTK_STRUCTURES_PACKED_ROWS_H_
