#include "structures/relation_builder.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "structures/packed_rows.h"

namespace fmtk {

RelationBuilder::RelationBuilder(std::size_t arity, std::size_t run_rows)
    : arity_(arity), run_rows_(std::max<std::size_t>(run_rows, 2)) {}

void RelationBuilder::Add(const Element* row) {
  ++rows_added_;
  if (arity_ == 0) {
    any_row_ = true;
    return;
  }
  if (arity_ <= 2) {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < arity_; ++i) {
      key = (key << 32) | row[i];
    }
    if (cur_packed_.capacity() == 0) {
      // One up-front reservation per run: a million-row run otherwise
      // pays ~20 geometric regrowths of an 8 MB buffer.
      cur_packed_.reserve(run_rows_);
    }
    cur_packed_.push_back(key);
    if (cur_packed_.size() >= run_rows_) {
      FlushPackedRun();
    }
    return;
  }
  cur_wide_.insert(cur_wide_.end(), row, row + arity_);
  if (cur_wide_.size() >= run_rows_ * arity_) {
    FlushWideRun();
  }
}

void RelationBuilder::Add(const Tuple& tuple) {
  FMTK_CHECK(tuple.size() == arity_)
      << "tuple of size " << tuple.size() << " added to builder of arity "
      << arity_;
  Add(tuple.data());
}

void RelationBuilder::FlushPackedRun() {
  if (cur_packed_.empty()) {
    return;
  }
  internal_rows::SortPackedRows(cur_packed_);
  cur_packed_.erase(std::unique(cur_packed_.begin(), cur_packed_.end()),
                    cur_packed_.end());
  runs_packed_.push_back(std::move(cur_packed_));
  cur_packed_ = {};
}

void RelationBuilder::FlushWideRun() {
  if (cur_wide_.empty()) {
    return;
  }
  const std::size_t rows = cur_wide_.size() / arity_;
  std::vector<std::uint32_t> order(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  const Element* data = cur_wide_.data();
  const std::size_t arity = arity_;
  auto row_less = [data, arity](std::uint32_t a, std::uint32_t b) {
    const Element* ra = data + std::size_t{a} * arity;
    const Element* rb = data + std::size_t{b} * arity;
    return std::lexicographical_compare(ra, ra + arity, rb, rb + arity);
  };
  std::sort(order.begin(), order.end(), row_less);
  std::vector<Element> sorted;
  sorted.reserve(cur_wide_.size());
  const Element* prev = nullptr;
  for (const std::uint32_t i : order) {
    const Element* row = data + std::size_t{i} * arity_;
    if (prev != nullptr && std::equal(row, row + arity_, prev)) {
      continue;
    }
    sorted.insert(sorted.end(), row, row + arity_);
    prev = row;
  }
  runs_wide_.push_back(std::move(sorted));
  cur_wide_ = {};
}

std::vector<std::uint64_t> RelationBuilder::MergePackedRuns() {
  FlushPackedRun();
  if (runs_packed_.empty()) {
    return {};
  }
  if (runs_packed_.size() == 1) {
    return std::move(runs_packed_[0]);
  }
  // K-way merge with a linear scan of the run heads: a 10^7-row ingest at
  // the default run size is ~10 runs, where scanning beats a heap.
  std::size_t total = 0;
  for (const auto& run : runs_packed_) {
    total += run.size();
  }
  std::vector<std::uint64_t> out;
  out.reserve(total);
  std::vector<std::size_t> cursor(runs_packed_.size(), 0);
  while (true) {
    bool any = false;
    std::uint64_t min_key = 0;
    for (std::size_t r = 0; r < runs_packed_.size(); ++r) {
      if (cursor[r] >= runs_packed_[r].size()) {
        continue;
      }
      const std::uint64_t key = runs_packed_[r][cursor[r]];
      if (!any || key < min_key) {
        any = true;
        min_key = key;
      }
    }
    if (!any) {
      break;
    }
    out.push_back(min_key);
    // Advance every run sitting on the minimum: cross-run duplicates
    // collapse here (each run is already internally unique).
    for (std::size_t r = 0; r < runs_packed_.size(); ++r) {
      if (cursor[r] < runs_packed_[r].size() &&
          runs_packed_[r][cursor[r]] == min_key) {
        ++cursor[r];
      }
    }
  }
  runs_packed_.clear();
  return out;
}

std::vector<Element> RelationBuilder::MergeWideRuns() {
  FlushWideRun();
  if (runs_wide_.empty()) {
    return {};
  }
  if (runs_wide_.size() == 1) {
    return std::move(runs_wide_[0]);
  }
  std::size_t total = 0;
  for (const auto& run : runs_wide_) {
    total += run.size();
  }
  std::vector<Element> out;
  out.reserve(total);
  std::vector<std::size_t> cursor(runs_wide_.size(), 0);  // In rows.
  const std::size_t arity = arity_;
  auto row_at = [&](std::size_t r) {
    return runs_wide_[r].data() + cursor[r] * arity;
  };
  while (true) {
    std::size_t min_run = runs_wide_.size();
    for (std::size_t r = 0; r < runs_wide_.size(); ++r) {
      if (cursor[r] * arity >= runs_wide_[r].size()) {
        continue;
      }
      if (min_run == runs_wide_.size()) {
        min_run = r;
        continue;
      }
      const Element* a = row_at(r);
      const Element* b = row_at(min_run);
      if (std::lexicographical_compare(a, a + arity, b, b + arity)) {
        min_run = r;
      }
    }
    if (min_run == runs_wide_.size()) {
      break;
    }
    const Element* min_row = row_at(min_run);
    out.insert(out.end(), min_row, min_row + arity);
    const Element* emitted = out.data() + out.size() - arity;
    for (std::size_t r = 0; r < runs_wide_.size(); ++r) {
      if (cursor[r] * arity < runs_wide_[r].size() &&
          std::equal(emitted, emitted + arity, row_at(r))) {
        ++cursor[r];
      }
    }
  }
  runs_wide_.clear();
  return out;
}

Relation RelationBuilder::Build(bool build_column_indexes) {
  if (arity_ == 0) {
    Relation r(0);
    if (any_row_) {
      r.Add(Tuple{});
    }
    rows_built_ = any_row_ ? 1 : 0;
    any_row_ = false;
    return r;
  }
  if (arity_ <= 2) {
    const std::vector<std::uint64_t> merged = MergePackedRuns();
    rows_built_ = merged.size();
    return Relation::FromSortedPackedRows(arity_, merged,
                                          build_column_indexes);
  }
  std::vector<Element> flat = MergeWideRuns();
  rows_built_ = flat.size() / arity_;
  return Relation::FromSortedRows(arity_, std::move(flat),
                                  build_column_indexes);
}

}  // namespace fmtk
