#include "structures/isomorphism.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>

#include "base/check.h"
#include "base/hash.h"
#include "structures/graph.h"

namespace fmtk {

namespace {

constexpr Element kUnmapped = static_cast<Element>(-1);

// Builds a functional, injective map from the pair list; nullopt when the
// pairs conflict.
std::optional<std::unordered_map<Element, Element>> BuildFunctionalMap(
    const PartialMap& pairs) {
  std::unordered_map<Element, Element> forward;
  std::unordered_map<Element, Element> backward;
  for (const auto& [a, b] : pairs) {
    auto fit = forward.find(a);
    if (fit != forward.end()) {
      if (fit->second != b) {
        return std::nullopt;  // Not a function.
      }
      continue;
    }
    auto bit = backward.find(b);
    if (bit != backward.end()) {
      return std::nullopt;  // Not injective.
    }
    forward.emplace(a, b);
    backward.emplace(b, a);
  }
  return forward;
}

// Enumerates all tuples of the given arity over `domain` and calls `fn`;
// stops early when fn returns false. Returns whether all calls succeeded.
template <typename Fn>
bool ForEachTupleOver(const std::vector<Element>& domain, std::size_t arity,
                      const Fn& fn) {
  Tuple t(arity, 0);
  std::vector<std::size_t> odometer(arity, 0);
  if (arity == 0) {
    return fn(t);
  }
  if (domain.empty()) {
    return true;
  }
  for (std::size_t i = 0; i < arity; ++i) {
    t[i] = domain[0];
  }
  while (true) {
    if (!fn(t)) {
      return false;
    }
    std::size_t pos = arity;
    while (pos > 0) {
      --pos;
      if (odometer[pos] + 1 < domain.size()) {
        ++odometer[pos];
        t[pos] = domain[odometer[pos]];
        break;
      }
      odometer[pos] = 0;
      t[pos] = domain[0];
      if (pos == 0) {
        return true;
      }
    }
  }
}

// Per-element atomic invariant: counts of tuple occurrences per
// (relation, position), plus a marker for tuples with repeats.
std::vector<std::size_t> AtomicInvariant(const Structure& s, Element e) {
  std::vector<std::size_t> inv;
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const std::size_t arity = s.signature().relation(r).arity;
    std::vector<std::size_t> per_position(arity, 0);
    std::size_t with_repeat = 0;
    for (const Tuple& t : s.relation(r).tuples()) {
      bool contains = false;
      for (std::size_t i = 0; i < arity; ++i) {
        if (t[i] == e) {
          ++per_position[i];
          contains = true;
        }
      }
      if (contains) {
        bool repeat = false;
        for (std::size_t i = 0; i < arity && !repeat; ++i) {
          for (std::size_t j = i + 1; j < arity; ++j) {
            if (t[i] == t[j]) {
              repeat = true;
              break;
            }
          }
        }
        if (repeat) {
          ++with_repeat;
        }
      }
    }
    inv.insert(inv.end(), per_position.begin(), per_position.end());
    inv.push_back(with_repeat);
  }
  return inv;
}

// Occurrence lists: for each relation, for each element, the tuples
// containing it.
std::vector<std::vector<std::vector<const Tuple*>>> OccurrenceLists(
    const Structure& s) {
  std::vector<std::vector<std::vector<const Tuple*>>> occ(
      s.signature().relation_count());
  for (std::size_t r = 0; r < occ.size(); ++r) {
    occ[r].resize(s.domain_size());
    for (const Tuple& t : s.relation(r).tuples()) {
      Element last = kUnmapped;
      Tuple sorted = t;
      std::sort(sorted.begin(), sorted.end());
      for (Element e : sorted) {
        if (e != last) {
          occ[r][e].push_back(&t);
          last = e;
        }
      }
    }
  }
  return occ;
}

// Backtracking isomorphism search state.
class IsoSearch {
 public:
  IsoSearch(const Structure& a, const Structure& b)
      : a_(a),
        b_(b),
        n_(a.domain_size()),
        forward_(a.domain_size(), kUnmapped),
        backward_(b.domain_size(), kUnmapped),
        occ_a_(OccurrenceLists(a)),
        occ_b_(OccurrenceLists(b)) {
    // Invariant classes for candidate pruning.
    std::map<std::vector<std::size_t>, std::size_t> classes;
    auto class_of = [&classes](const std::vector<std::size_t>& inv) {
      return classes.emplace(inv, classes.size()).first->second;
    };
    class_a_.resize(a.domain_size());
    for (Element e = 0; e < a.domain_size(); ++e) {
      class_a_[e] = class_of(AtomicInvariant(a, e));
    }
    class_b_.resize(b.domain_size());
    for (Element e = 0; e < b.domain_size(); ++e) {
      class_b_[e] = class_of(AtomicInvariant(b, e));
    }
    adjacency_a_ = GaifmanAdjacency(a);
  }

  // Assigns a -> b if consistent; returns false (and leaves state clean)
  // otherwise.
  bool Assign(Element a, Element b) {
    if (forward_[a] != kUnmapped || backward_[b] != kUnmapped) {
      return forward_[a] == b && backward_[b] == a;
    }
    if (class_a_[a] != class_b_[b]) {
      return false;
    }
    forward_[a] = b;
    backward_[b] = a;
    if (CheckLocal(a, b)) {
      trail_.push_back({a, b});
      return true;
    }
    forward_[a] = kUnmapped;
    backward_[b] = kUnmapped;
    return false;
  }

  void UndoTo(std::size_t mark) {
    while (trail_.size() > mark) {
      auto [a, b] = trail_.back();
      trail_.pop_back();
      forward_[a] = kUnmapped;
      backward_[b] = kUnmapped;
    }
  }

  std::size_t Mark() const { return trail_.size(); }

  bool Solve() {
    // Order: BFS from already-assigned elements over the Gaifman graph, so
    // new assignments are maximally constrained; unreachable elements last.
    std::vector<Element> order = SearchOrder();
    return Extend(order, 0);
  }

 private:
  std::vector<Element> SearchOrder() const {
    std::vector<Element> order;
    std::vector<bool> seen(n_, false);
    std::vector<Element> frontier;
    for (const auto& [a, b] : trail_) {
      (void)b;
      seen[a] = true;
      frontier.push_back(a);
    }
    std::size_t head = 0;
    auto push_component = [&](Element start) {
      if (seen[start]) {
        return;
      }
      seen[start] = true;
      order.push_back(start);
      frontier.push_back(start);
    };
    while (true) {
      while (head < frontier.size()) {
        Element v = frontier[head++];
        for (Element w : adjacency_a_[v]) {
          if (!seen[w]) {
            seen[w] = true;
            order.push_back(w);
            frontier.push_back(w);
          }
        }
      }
      Element next = kUnmapped;
      for (Element v = 0; v < n_; ++v) {
        if (!seen[v]) {
          next = v;
          break;
        }
      }
      if (next == kUnmapped) {
        break;
      }
      push_component(next);
    }
    return order;
  }

  bool Extend(const std::vector<Element>& order, std::size_t index) {
    while (index < order.size() && forward_[order[index]] != kUnmapped) {
      ++index;
    }
    if (index == order.size()) {
      return true;
    }
    Element a = order[index];
    for (Element b = 0; b < b_.domain_size(); ++b) {
      if (backward_[b] != kUnmapped) {
        continue;
      }
      std::size_t mark = Mark();
      if (Assign(a, b) && Extend(order, index + 1)) {
        return true;
      }
      UndoTo(mark);
    }
    return false;
  }

  // Checks all tuples touching the new pair that are fully mapped, in both
  // directions.
  bool CheckLocal(Element a, Element b) {
    for (std::size_t r = 0; r < occ_a_.size(); ++r) {
      for (const Tuple* t : occ_a_[r][a]) {
        Tuple mapped;
        mapped.reserve(t->size());
        bool complete = true;
        for (Element e : *t) {
          if (forward_[e] == kUnmapped) {
            complete = false;
            break;
          }
          mapped.push_back(forward_[e]);
        }
        if (complete && !b_.relation(r).Contains(mapped)) {
          return false;
        }
      }
      for (const Tuple* t : occ_b_[r][b]) {
        Tuple mapped;
        mapped.reserve(t->size());
        bool complete = true;
        for (Element e : *t) {
          if (backward_[e] == kUnmapped) {
            complete = false;
            break;
          }
          mapped.push_back(backward_[e]);
        }
        if (complete && !a_.relation(r).Contains(mapped)) {
          return false;
        }
      }
    }
    return true;
  }

  const Structure& a_;
  const Structure& b_;
  std::size_t n_;
  std::vector<Element> forward_;
  std::vector<Element> backward_;
  std::vector<std::vector<std::vector<const Tuple*>>> occ_a_;
  std::vector<std::vector<std::vector<const Tuple*>>> occ_b_;
  std::vector<std::size_t> class_a_;
  std::vector<std::size_t> class_b_;
  Adjacency adjacency_a_;
  std::vector<std::pair<Element, Element>> trail_;
};

}  // namespace

std::vector<std::size_t> AtomicInvariantOf(const Structure& s, Element e) {
  return AtomicInvariant(s, e);
}

bool IsPartialIsomorphism(const Structure& a, const Structure& b,
                          const PartialMap& map) {
  std::optional<std::unordered_map<Element, Element>> forward =
      BuildFunctionalMap(map);
  if (!forward.has_value()) {
    return false;
  }
  for (const auto& [x, y] : *forward) {
    if (x >= a.domain_size() || y >= b.domain_size()) {
      return false;
    }
  }
  // Constants present in the map must correspond.
  const std::size_t num_constants =
      std::min(a.signature().constant_count(), b.signature().constant_count());
  for (std::size_t c = 0; c < num_constants; ++c) {
    std::optional<Element> ca = a.constant(c);
    std::optional<Element> cb = b.constant(c);
    if (ca.has_value() && cb.has_value()) {
      auto it = forward->find(*ca);
      if (it != forward->end() && it->second != *cb) {
        return false;
      }
    }
  }
  std::vector<Element> domain;
  domain.reserve(forward->size());
  for (const auto& [x, y] : *forward) {
    (void)y;
    domain.push_back(x);
  }
  const std::size_t num_relations = std::min(
      a.signature().relation_count(), b.signature().relation_count());
  for (std::size_t r = 0; r < num_relations; ++r) {
    const std::size_t arity = a.signature().relation(r).arity;
    if (arity != b.signature().relation(r).arity) {
      return false;
    }
    bool preserved = ForEachTupleOver(domain, arity, [&](const Tuple& t) {
      Tuple mapped;
      mapped.reserve(arity);
      for (Element e : t) {
        mapped.push_back(forward->at(e));
      }
      return a.relation(r).Contains(t) == b.relation(r).Contains(mapped);
    });
    if (!preserved) {
      return false;
    }
  }
  return true;
}

bool AreIsomorphic(const Structure& a, const Structure& b,
                   const Tuple& a_distinguished,
                   const Tuple& b_distinguished) {
  if (!(a.signature() == b.signature())) {
    return false;
  }
  if (a.domain_size() != b.domain_size()) {
    return false;
  }
  if (a_distinguished.size() != b_distinguished.size()) {
    return false;
  }
  for (std::size_t r = 0; r < a.signature().relation_count(); ++r) {
    if (a.relation(r).size() != b.relation(r).size()) {
      return false;
    }
  }
  IsoSearch search(a, b);
  for (std::size_t i = 0; i < a_distinguished.size(); ++i) {
    if (a_distinguished[i] >= a.domain_size() ||
        b_distinguished[i] >= b.domain_size()) {
      return false;
    }
    if (!search.Assign(a_distinguished[i], b_distinguished[i])) {
      return false;
    }
  }
  for (std::size_t c = 0; c < a.signature().constant_count(); ++c) {
    std::optional<Element> ca = a.constant(c);
    std::optional<Element> cb = b.constant(c);
    if (ca.has_value() != cb.has_value()) {
      return false;
    }
    if (ca.has_value() && !search.Assign(*ca, *cb)) {
      return false;
    }
  }
  return search.Solve();
}

std::size_t IsomorphismInvariant(const Structure& s,
                                 const Tuple& distinguished) {
  const std::size_t n = s.domain_size();
  // Colors are content hashes so they are canonical across structures
  // (sequential class ids would depend on element enumeration order).
  // Gaifman-distance profiles are folded in because plain 1-WL cannot
  // separate regular graphs (e.g. one 6-cycle vs two 3-cycles).
  Adjacency adjacency = GaifmanAdjacency(s);
  std::vector<std::size_t> color(n);
  for (Element e = 0; e < n; ++e) {
    std::size_t h = 0x517cc1b727220a95ULL;
    for (std::size_t v : AtomicInvariant(s, e)) {
      HashCombine(h, v);
    }
    for (std::size_t i = 0; i < distinguished.size(); ++i) {
      if (distinguished[i] == e) {
        HashCombine(h, i + 1);
      }
    }
    std::vector<std::size_t> profile = BfsDistances(adjacency, {e});
    std::sort(profile.begin(), profile.end());
    for (std::size_t d : profile) {
      HashCombine(h, d);
    }
    color[e] = h;
  }
  // 1-WL refinement over the Gaifman graph. Refining a partition of n
  // elements stabilizes within n rounds; hashed colors alone make detecting
  // that unreliable, so stabilization is checked exactly on the round's
  // per-element signature vectors (color, sorted neighbor colors): the
  // partition is stable once equal-color elements share identical vectors.
  // The remaining rounds then run on the class quotient — after
  // stabilization every class evolves uniformly and classes are exactly
  // the color values, so one representative per class reproduces the full
  // per-element iteration bit for bit, hash collisions included.
  std::size_t round = 0;
  bool stable = false;
  std::vector<std::vector<std::size_t>> sigs(n);
  while (round < n && !stable) {
    for (Element e = 0; e < n; ++e) {
      std::vector<std::size_t>& sig = sigs[e];
      sig.clear();
      sig.reserve(adjacency[e].size() + 1);
      sig.push_back(color[e]);
      for (Element w : adjacency[e]) {
        sig.push_back(color[w]);
      }
      std::sort(sig.begin() + 1, sig.end());
    }
    std::unordered_map<std::size_t, Element> rep_of;
    stable = true;
    for (Element e = 0; e < n && stable; ++e) {
      auto [it, inserted] = rep_of.try_emplace(color[e], e);
      if (!inserted && sigs[e] != sigs[it->second]) {
        stable = false;
      }
    }
    if (stable) {
      break;  // this round and the remaining ones run on the quotient
    }
    for (Element e = 0; e < n; ++e) {
      std::size_t h = sigs[e][0];
      for (std::size_t i = 1; i < sigs[e].size(); ++i) {
        HashCombine(h, sigs[e][i]);
      }
      color[e] = h;
    }
    ++round;
  }
  if (round < n) {
    // Quotient fast-forward. Classes are the distinct color values at
    // stabilization; the color<->class bijection there makes every
    // member's neighbor-class multiset equal to its representative's, so
    // iterating per class computes exactly the per-element values.
    std::unordered_map<std::size_t, std::size_t> class_of_color;
    std::vector<std::size_t> class_color;
    std::vector<Element> rep;
    std::vector<std::size_t> class_of(n);
    for (Element e = 0; e < n; ++e) {
      auto [it, inserted] =
          class_of_color.try_emplace(color[e], class_color.size());
      if (inserted) {
        class_color.push_back(color[e]);
        rep.push_back(e);
      }
      class_of[e] = it->second;
    }
    const std::size_t k = class_color.size();
    std::vector<std::vector<std::size_t>> neighbor_classes(k);
    for (std::size_t c = 0; c < k; ++c) {
      neighbor_classes[c].reserve(adjacency[rep[c]].size());
      for (Element w : adjacency[rep[c]]) {
        neighbor_classes[c].push_back(class_of[w]);
      }
    }
    std::vector<std::size_t> neighbor_colors;
    for (; round < n; ++round) {
      std::vector<std::size_t> next(k);
      for (std::size_t c = 0; c < k; ++c) {
        neighbor_colors.clear();
        for (std::size_t nc : neighbor_classes[c]) {
          neighbor_colors.push_back(class_color[nc]);
        }
        std::sort(neighbor_colors.begin(), neighbor_colors.end());
        std::size_t h = class_color[c];
        for (std::size_t cc : neighbor_colors) {
          HashCombine(h, cc);
        }
        next[c] = h;
      }
      class_color = std::move(next);
    }
    for (Element e = 0; e < n; ++e) {
      color[e] = class_color[class_of[e]];
    }
  }
  // Hash: domain size, relation sizes, sorted color multiset, and the colors
  // of the distinguished positions in order.
  std::size_t seed = n;
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    HashCombine(seed, s.relation(r).size());
  }
  std::vector<std::size_t> sorted_colors = color;
  std::sort(sorted_colors.begin(), sorted_colors.end());
  for (std::size_t c : sorted_colors) {
    HashCombine(seed, c);
  }
  for (Element e : distinguished) {
    HashCombine(seed, e < n ? color[e] : static_cast<std::size_t>(-1));
  }
  return seed;
}

}  // namespace fmtk
