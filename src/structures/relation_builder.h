#ifndef FMTK_STRUCTURES_RELATION_BUILDER_H_
#define FMTK_STRUCTURES_RELATION_BUILDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "structures/relation.h"

namespace fmtk {

/// Bulk relation construction: ingests unsorted (possibly duplicated)
/// tuples into bounded sorted runs and materializes the Relation in one
/// shot — sorted flat store, binary-search membership over it, and every
/// per-column ColumnIndex built by counting sort — instead of N incremental
/// Add() calls each paying a per-tuple allocation, hash-map growth, and a
/// posting append.
///
///   RelationBuilder b(2);
///   for (...) b.Add(row);        // amortized: one append + periodic sort
///   Relation r = b.Build();      // k-way merge of the runs, dedup on the fly
///
/// Arity <= 2 rows pack into one u64 per tuple (the same packed key
/// Relation uses for membership), so a run sort is a flat u64 sort and the
/// merge compares words, not columns. Duplicates across the whole input are
/// eliminated once, at merge time; DuplicatesDropped() reports how many the
/// loaders saw, for the duplicate-edge diagnostic.
class RelationBuilder {
 public:
  /// `run_rows` bounds the in-memory unsorted buffer: when it fills, the
  /// run is sorted, deduplicated, and set aside. ~1M rows keeps run sorts
  /// inside the L3 while 10^7+-row inputs stay streamable.
  explicit RelationBuilder(std::size_t arity,
                           std::size_t run_rows = std::size_t{1} << 20);

  std::size_t arity() const { return arity_; }
  /// Rows accepted so far (duplicates included; they drop at Build).
  std::size_t rows_added() const { return rows_added_; }

  /// Appends one row of arity() elements.
  void Add(const Element* row);
  void Add(const Tuple& tuple);

  /// Merges the runs into the finished Relation and resets the builder.
  /// With `build_column_indexes` every ColumnIndex is materialized eagerly
  /// (the engines' first probe pays nothing); pass false to defer them.
  Relation Build(bool build_column_indexes = true);

  /// Distinct rows the last Build() emitted.
  std::size_t rows_built() const { return rows_built_; }
  /// rows_added - distinct rows, valid after Build().
  std::size_t DuplicatesDropped() const { return rows_added_ - rows_built_; }

 private:
  void FlushPackedRun();
  void FlushWideRun();
  std::vector<std::uint64_t> MergePackedRuns();
  std::vector<Element> MergeWideRuns();

  std::size_t arity_;
  std::size_t run_rows_;
  std::size_t rows_added_ = 0;
  std::size_t rows_built_ = 0;
  bool any_row_ = false;  // arity 0: the single empty tuple seen?

  // Arity <= 2: one packed u64 per row.
  std::vector<std::uint64_t> cur_packed_;
  std::vector<std::vector<std::uint64_t>> runs_packed_;
  // Arity >= 3: arity-strided flat rows.
  std::vector<Element> cur_wide_;
  std::vector<std::vector<Element>> runs_wide_;
};

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_RELATION_BUILDER_H_
