#ifndef FMTK_STRUCTURES_BULK_LOAD_H_
#define FMTK_STRUCTURES_BULK_LOAD_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "base/result.h"
#include "base/status.h"
#include "structures/structure.h"

namespace fmtk {

/// Streaming bulk loaders for big structures: whitespace/comma edge lists
/// (the format every public graph dataset ships in) and a length-prefixed
/// binary structure format. Both read in ~1 MiB chunks — no per-line
/// getline on the hot path — validate as they scan, and construct relations
/// through RelationBuilder's sorted-run path, so a 10^7-edge file becomes a
/// fully indexed Relation without 10^7 incremental Add() resyncs.
///
/// Failure paths report structured FMTK2xx diagnostics (truncated input,
/// malformed records, out-of-range elements) through the optional
/// DiagnosticSink and fail with the matching Status; recoverable oddities
/// (duplicate edges, an empty relation) load fine but leave warnings.
/// These live in the fmtk_bulk library (not fmtk_structures) because they
/// report through the analyzer's sink types.

struct EdgeListOptions {
  /// Name of the binary edge relation of the loaded graph's signature.
  std::string relation_name = "E";

  /// kIntern: vertex tokens are arbitrary strings, mapped to dense elements
  /// in first-appearance order (LoadedGraph::ids keeps the mapping).
  /// kNumeric: tokens must already be decimal element ids.
  enum class IdMode { kIntern, kNumeric };
  IdMode id_mode = IdMode::kIntern;

  /// kNumeric only: the declared domain size. Ids >= it are FMTK203 errors.
  /// 0 means "infer as max id + 1".
  std::size_t domain_size = 0;

  /// Also insert the reversed edge (undirected graph as a symmetric E).
  bool undirected = false;
};

struct BulkLoadStats {
  std::size_t records = 0;     // Non-comment, non-blank input lines.
  std::size_t edges = 0;       // Distinct tuples in the built relation.
  std::size_t duplicates = 0;  // Input rows collapsed by set semantics.
  std::size_t bytes = 0;       // Input bytes consumed.
};

struct LoadedGraph {
  Structure structure;          // Signature {relation_name/2}.
  std::vector<std::string> ids;  // kIntern: element -> original token.
  BulkLoadStats stats;
};

/// Parses an edge list from an in-memory buffer. Lines hold two vertex
/// tokens separated by spaces, tabs, or commas; '#' and '%' start comments.
Result<LoadedGraph> LoadEdgeListText(std::string_view text,
                                     const EdgeListOptions& options = {},
                                     DiagnosticSink* sink = nullptr);

/// Streams an edge list from a file in chunked reads.
Result<LoadedGraph> LoadEdgeListFile(const std::string& path,
                                     const EdgeListOptions& options = {},
                                     DiagnosticSink* sink = nullptr);

/// The length-prefixed binary structure format ("FMTKBIN1"): domain size,
/// then per relation its name, arity, and raw little-endian tuple block,
/// then per constant its name and an explicit presence byte. Unlike the
/// textual format (io.h), uninterpreted constants survive the round trip —
/// SerializeStructureBinary/ParseStructureBinary is lossless for every
/// structure.
std::string SerializeStructureBinary(const Structure& s);
Result<Structure> ParseStructureBinary(std::string_view bytes,
                                       DiagnosticSink* sink = nullptr);
Status WriteStructureBinaryFile(const Structure& s, const std::string& path);
Result<Structure> ReadStructureBinaryFile(const std::string& path,
                                          DiagnosticSink* sink = nullptr);

}  // namespace fmtk

#endif  // FMTK_STRUCTURES_BULK_LOAD_H_
