#include "structures/generators.h"

#include <utility>
#include <vector>

#include "base/check.h"

namespace fmtk {

Structure MakeSet(std::size_t n) {
  return Structure(Signature::Empty(), n);
}

Structure MakeLinearOrder(std::size_t n) {
  Structure s(Signature::Order(), n);
  for (Element i = 0; i < n; ++i) {
    for (Element j = i + 1; j < n; ++j) {
      s.AddTuple(0, {i, j});
    }
  }
  return s;
}

Structure MakeDirectedPath(std::size_t n) {
  Structure s(Signature::Graph(), n);
  for (Element i = 0; i + 1 < n; ++i) {
    s.AddTuple(0, {i, i + 1});
  }
  return s;
}

Structure MakeDirectedCycle(std::size_t m) {
  FMTK_CHECK(m >= 1) << "cycle length must be positive";
  Structure s(Signature::Graph(), m);
  for (Element i = 0; i < m; ++i) {
    s.AddTuple(0, {i, static_cast<Element>((i + 1) % m)});
  }
  return s;
}

Structure MakeDisjointCycles(std::size_t k, std::size_t m) {
  FMTK_CHECK(m >= 1) << "cycle length must be positive";
  Structure s(Signature::Graph(), k * m);
  for (std::size_t c = 0; c < k; ++c) {
    const Element base = static_cast<Element>(c * m);
    for (Element i = 0; i < m; ++i) {
      s.AddTuple(0, {static_cast<Element>(base + i),
                     static_cast<Element>(base + (i + 1) % m)});
    }
  }
  return s;
}

Structure MakePathPlusCycle(std::size_t m) {
  FMTK_CHECK(m >= 1) << "size must be positive";
  Structure s(Signature::Graph(), 2 * m);
  // Path on elements 0..m-1.
  for (Element i = 0; i + 1 < m; ++i) {
    s.AddTuple(0, {i, i + 1});
  }
  // Cycle on elements m..2m-1.
  const Element base = static_cast<Element>(m);
  for (Element i = 0; i < m; ++i) {
    s.AddTuple(0, {static_cast<Element>(base + i),
                   static_cast<Element>(base + (i + 1) % m)});
  }
  return s;
}

Structure MakeCompleteGraph(std::size_t n) {
  Structure s(Signature::Graph(), n);
  for (Element i = 0; i < n; ++i) {
    for (Element j = 0; j < n; ++j) {
      if (i != j) {
        s.AddTuple(0, {i, j});
      }
    }
  }
  return s;
}

Structure MakeEmptyGraph(std::size_t n) {
  return Structure(Signature::Graph(), n);
}

Structure MakeFullBinaryTree(std::size_t depth) {
  const std::size_t n = (std::size_t{1} << (depth + 1)) - 1;
  Structure s(Signature::Graph(), n);
  for (Element v = 0; v < n; ++v) {
    const std::size_t left = 2 * static_cast<std::size_t>(v) + 1;
    const std::size_t right = left + 1;
    if (left < n) {
      s.AddTuple(0, {v, static_cast<Element>(left)});
    }
    if (right < n) {
      s.AddTuple(0, {v, static_cast<Element>(right)});
    }
  }
  return s;
}

Structure MakeGrid(std::size_t w, std::size_t h) {
  Structure s(Signature::Graph(), w * h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const Element v = static_cast<Element>(y * w + x);
      if (x + 1 < w) {
        s.AddTuple(0, {v, static_cast<Element>(v + 1)});
      }
      if (y + 1 < h) {
        s.AddTuple(0, {v, static_cast<Element>(v + w)});
      }
    }
  }
  return s;
}

Structure MakeRandomGraph(std::size_t n, double p, std::mt19937_64& rng) {
  std::bernoulli_distribution edge(p);
  Structure s(Signature::Graph(), n);
  for (Element i = 0; i < n; ++i) {
    for (Element j = 0; j < n; ++j) {
      if (i != j && edge(rng)) {
        s.AddTuple(0, {i, j});
      }
    }
  }
  return s;
}

namespace {

// Enumerates all tuples in {0..n-1}^arity and inserts each with prob. p.
void FillRelationRandomly(Structure& s, std::size_t rel, std::size_t arity,
                          std::size_t n, double p, std::mt19937_64& rng) {
  std::bernoulli_distribution include(p);
  Tuple t(arity, 0);
  while (true) {
    if (include(rng)) {
      s.AddTuple(rel, t);
    }
    // Advance the odometer.
    std::size_t pos = arity;
    while (pos > 0) {
      --pos;
      if (t[pos] + 1 < n) {
        ++t[pos];
        break;
      }
      t[pos] = 0;
      if (pos == 0) {
        return;
      }
    }
    if (arity == 0) {
      return;
    }
  }
}

}  // namespace

Structure MakeRandomStructure(std::shared_ptr<const Signature> signature,
                              std::size_t n, double p, std::mt19937_64& rng) {
  FMTK_CHECK(signature != nullptr) << "null signature";
  Structure s(std::move(signature), n);
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    const std::size_t arity = s.signature().relation(r).arity;
    if (arity > 0 && n == 0) {
      continue;  // No tuples exist over an empty domain.
    }
    FillRelationRandomly(s, r, arity, n, p, rng);
  }
  if (n > 0) {
    std::uniform_int_distribution<Element> pick(0,
                                                static_cast<Element>(n - 1));
    for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
      s.SetConstant(c, pick(rng));
    }
  }
  return s;
}

}  // namespace fmtk
