#include "structures/signature.h"

#include <utility>

#include "base/check.h"

namespace fmtk {

Signature& Signature::AddRelation(std::string name, std::size_t arity) {
  FMTK_CHECK(relation_index_.find(name) == relation_index_.end())
      << "duplicate relation symbol: " << name;
  relation_index_.emplace(name, relations_.size());
  relations_.push_back(RelationSymbol{std::move(name), arity});
  return *this;
}

Signature& Signature::AddConstant(std::string name) {
  FMTK_CHECK(constant_index_.find(name) == constant_index_.end())
      << "duplicate constant symbol: " << name;
  constant_index_.emplace(name, constants_.size());
  constants_.push_back(std::move(name));
  return *this;
}

const RelationSymbol& Signature::relation(std::size_t index) const {
  FMTK_CHECK(index < relations_.size()) << "relation index out of range";
  return relations_[index];
}

const std::string& Signature::constant_name(std::size_t index) const {
  FMTK_CHECK(index < constants_.size()) << "constant index out of range";
  return constants_[index];
}

std::optional<std::size_t> Signature::FindRelation(
    std::string_view name) const {
  auto it = relation_index_.find(std::string(name));
  if (it == relation_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<std::size_t> Signature::FindConstant(
    std::string_view name) const {
  auto it = constant_index_.find(std::string(name));
  if (it == constant_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Signature::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += relations_[i].name;
    out += "/";
    out += std::to_string(relations_[i].arity);
  }
  if (!constants_.empty()) {
    out += "; ";
    for (std::size_t i = 0; i < constants_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += constants_[i];
    }
  }
  out += "}";
  return out;
}

std::shared_ptr<const Signature> Signature::Graph() {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2);
  return sig;
}

std::shared_ptr<const Signature> Signature::Order() {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("<", 2);
  return sig;
}

std::shared_ptr<const Signature> Signature::Empty() {
  return std::make_shared<Signature>();
}

}  // namespace fmtk
