#include "structures/relation.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "structures/packed_rows.h"

namespace fmtk {

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      flat_(other.flat_),
      row_count_(other.row_count_),
      sorted_upto_(other.sorted_upto_),
      packed_index_(other.packed_index_),
      index_(other.index_),
      tuples_(other.tuples_) {
  rows_synced_.store(tuples_.size(), std::memory_order_relaxed);
}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    arity_ = other.arity_;
    flat_ = other.flat_;
    row_count_ = other.row_count_;
    sorted_upto_ = other.sorted_upto_;
    packed_index_ = other.packed_index_;
    index_ = other.index_;
    tuples_ = other.tuples_;
    rows_synced_.store(tuples_.size(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(column_mutex_);
    column_indexes_.clear();
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      flat_(std::move(other.flat_)),
      row_count_(other.row_count_),
      sorted_upto_(other.sorted_upto_),
      packed_index_(std::move(other.packed_index_)),
      index_(std::move(other.index_)),
      tuples_(std::move(other.tuples_)),
      column_indexes_(std::move(other.column_indexes_)) {
  rows_synced_.store(tuples_.size(), std::memory_order_relaxed);
  other.row_count_ = 0;
  other.sorted_upto_ = 0;
  other.rows_synced_.store(0, std::memory_order_relaxed);
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    arity_ = other.arity_;
    flat_ = std::move(other.flat_);
    row_count_ = other.row_count_;
    sorted_upto_ = other.sorted_upto_;
    packed_index_ = std::move(other.packed_index_);
    index_ = std::move(other.index_);
    tuples_ = std::move(other.tuples_);
    rows_synced_.store(tuples_.size(), std::memory_order_relaxed);
    other.row_count_ = 0;
    other.sorted_upto_ = 0;
    other.rows_synced_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(column_mutex_);
    column_indexes_ = std::move(other.column_indexes_);
  }
  return *this;
}

Relation Relation::FromSortedRows(std::size_t arity, std::vector<Element> rows,
                                  bool build_column_indexes) {
  FMTK_CHECK(arity > 0) << "bulk construction needs positive arity";
  FMTK_CHECK(rows.size() % arity == 0)
      << "flat row data of " << rows.size() << " elements for arity " << arity;
  Relation r(arity);
  r.flat_ = std::move(rows);
  r.row_count_ = r.flat_.size() / arity;
  r.sorted_upto_ = r.row_count_;
  if (build_column_indexes) {
    r.BuildColumnIndexesBulk();
  }
  return r;
}

Relation Relation::FromSortedPackedRows(std::size_t arity,
                                        const std::vector<std::uint64_t>& keys,
                                        bool build_column_indexes) {
  FMTK_CHECK(arity == 1 || arity == 2)
      << "packed rows hold at most two 32-bit columns, got arity " << arity;
  Relation r(arity);
  const std::size_t n = keys.size();
  r.flat_.resize(n * arity);
  r.row_count_ = n;
  r.sorted_upto_ = n;
  Element* dst = r.flat_.data();
  if (!build_column_indexes || n == 0) {
    for (const std::uint64_t key : keys) {
      if (arity == 2) {
        *dst++ = static_cast<Element>(key >> 32);
      }
      *dst++ = static_cast<Element>(key);
    }
    return r;
  }
  auto col0 = std::make_shared<ColumnIndex>();
  if (arity == 1) {
    // Unique rows make every column-0 run a singleton: values are the keys
    // themselves and the offsets are the identity ramp.
    col0->bulk_values.resize(n);
    col0->offsets.resize(n + 1);
    col0->offsets[0] = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Element e = static_cast<Element>(keys[i]);
      dst[i] = e;
      col0->bulk_values[i] = e;
      col0->offsets[i + 1] = static_cast<std::uint32_t>(i + 1);
    }
  } else {
    // One fused pass: unpack both columns and close a column-0 run whenever
    // the high half changes. The run pre-count keeps the output arrays at
    // exact capacity.
    std::size_t distinct = 1;
    for (std::size_t i = 1; i < n; ++i) {
      distinct += (keys[i] >> 32) != (keys[i - 1] >> 32);
    }
    col0->bulk_values.reserve(distinct);
    col0->offsets.reserve(distinct + 1);
    col0->offsets.push_back(0);
    Element run_value = static_cast<Element>(keys[0] >> 32);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = keys[i];
      const Element hi = static_cast<Element>(key >> 32);
      *dst++ = hi;
      *dst++ = static_cast<Element>(key);
      if (hi != run_value) {
        col0->bulk_values.push_back(run_value);
        col0->offsets.push_back(static_cast<std::uint32_t>(i));
        run_value = hi;
      }
    }
    col0->bulk_values.push_back(run_value);
    col0->offsets.push_back(static_cast<std::uint32_t>(n));
  }
  col0->positions.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    col0->positions[i] = static_cast<std::uint32_t>(i);
  }
  col0->bulk_rows = n;
  col0->values = col0->bulk_values;
  col0->indexed_upto = n;
  r.column_indexes_.assign(arity, nullptr);
  r.column_indexes_[0] = std::move(col0);
  if (arity == 2) {
    auto col1 = std::make_shared<ColumnIndex>();
    r.BuildColumnIndexBulk(1, col1.get());
    r.column_indexes_[1] = std::move(col1);
  }
  return r;
}

Relation Relation::FromRowsUnique(std::size_t arity,
                                  const std::vector<Element>& rows) {
  FMTK_CHECK(arity > 0) << "bulk construction needs positive arity";
  FMTK_CHECK(rows.size() % arity == 0)
      << "flat row data of " << rows.size() << " elements for arity " << arity;
  Relation r(arity);
  const std::size_t n = rows.size() / arity;
  r.flat_.reserve(rows.size());
  if (arity <= 2) {
    r.packed_index_.Reserve(n);
  } else {
    r.index_.Reserve(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Element* row = rows.data() + i * arity;
    const auto position = static_cast<std::uint32_t>(r.row_count_);
    const bool inserted =
        arity <= 2
            ? r.packed_index_.TryEmplace(PackedKey(row, arity), position)
                  .second
            : r.index_.TryEmplace(Tuple(row, row + arity), position).second;
    if (inserted) {
      r.flat_.insert(r.flat_.end(), row, row + arity);
      ++r.row_count_;
    }
  }
  return r;
}

std::size_t Relation::SortedPrefixFind(const Element* row) const {
  constexpr std::size_t kMiss = static_cast<std::size_t>(-1);
  if (arity_ <= 2) {
    const std::uint64_t key = PackedKey(row, arity_);
    std::size_t lo = 0;
    std::size_t hi = sorted_upto_;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (PackedKey(flat_.data() + mid * arity_, arity_) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < sorted_upto_ &&
                   PackedKey(flat_.data() + lo * arity_, arity_) == key
               ? lo
               : kMiss;
  }
  std::size_t lo = 0;
  std::size_t hi = sorted_upto_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const Element* at = flat_.data() + mid * arity_;
    if (std::lexicographical_compare(at, at + arity_, row, row + arity_)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < sorted_upto_ &&
                 std::equal(row, row + arity_, flat_.data() + lo * arity_)
             ? lo
             : kMiss;
}

bool Relation::SortedPrefixContains(const Element* row) const {
  return SortedPrefixFind(row) != static_cast<std::size_t>(-1);
}

bool Relation::ContainsRow(const Element* row) const {
  if (sorted_upto_ > 0 && SortedPrefixContains(row)) {
    return true;
  }
  if (arity_ <= 2) {
    return packed_index_.Contains(PackedKey(row, arity_));
  }
  // Arity > 2 falls back to the vector-keyed map; build the probe key once.
  return index_.Contains(Tuple(row, row + arity_));
}

bool Relation::Add(Tuple tuple) {
  FMTK_CHECK(tuple.size() == arity_)
      << "tuple of size " << tuple.size() << " added to relation of arity "
      << arity_;
  if (sorted_upto_ > 0 && SortedPrefixContains(tuple.data())) {
    return false;
  }
  const auto position = static_cast<std::uint32_t>(row_count_);
  const bool inserted =
      arity_ <= 2
          ? packed_index_.TryEmplace(PackedKey(tuple.data(), arity_), position)
                .second
          : index_.TryEmplace(tuple, position).second;
  if (inserted) {
    // Column indexes are left as-is (generation-tagged at indexed_upto);
    // the next column_index() call appends postings for the new suffix.
    flat_.insert(flat_.end(), tuple.begin(), tuple.end());
    ++row_count_;
    // The tuples() cache is extended only while it is already complete —
    // a lazily materialized (bulk-built) relation catches up on demand.
    if (tuples_.size() + 1 == row_count_) {
      tuples_.push_back(std::move(tuple));
      rows_synced_.store(row_count_, std::memory_order_release);
    }
  }
  return inserted;
}

bool Relation::AddCopy(const Tuple& tuple) {
  FMTK_CHECK(tuple.size() == arity_)
      << "tuple of size " << tuple.size() << " added to relation of arity "
      << arity_;
  if (sorted_upto_ > 0 && SortedPrefixContains(tuple.data())) {
    return false;
  }
  const auto position = static_cast<std::uint32_t>(row_count_);
  // TryEmplace copies the key only on actual insert, so the (hot) reject
  // path of a fixpoint loop allocates nothing.
  const bool inserted =
      arity_ <= 2
          ? packed_index_.TryEmplace(PackedKey(tuple.data(), arity_), position)
                .second
          : index_.TryEmplace(tuple, position).second;
  if (inserted) {
    flat_.insert(flat_.end(), tuple.begin(), tuple.end());
    ++row_count_;
    if (tuples_.size() + 1 == row_count_) {
      tuples_.push_back(tuple);
      rows_synced_.store(row_count_, std::memory_order_release);
    }
  }
  return inserted;
}

void Relation::MaterializeTuples() const {
  std::lock_guard<std::mutex> lock(column_mutex_);
  tuples_.reserve(row_count_);
  for (std::size_t i = tuples_.size(); i < row_count_; ++i) {
    const Element* row = flat_.data() + i * arity_;
    tuples_.emplace_back(row, row + arity_);
  }
  rows_synced_.store(row_count_, std::memory_order_release);
}

Relation::ColumnIndex::View Relation::ColumnIndex::Find(Element e) const {
  View view;
  if (!bulk_values.empty()) {
    const auto it =
        std::lower_bound(bulk_values.begin(), bulk_values.end(), e);
    if (it != bulk_values.end() && *it == e) {
      const std::size_t k =
          static_cast<std::size_t>(it - bulk_values.begin());
      view.bulk = positions.data() + offsets[k];
      view.bulk_size = offsets[k + 1] - offsets[k];
    }
  }
  view.tail = postings.Find(e);
  return view;
}

void Relation::BuildColumnIndexBulk(std::size_t column,
                                    ColumnIndex* out) const {
  if (row_count_ == 0) {
    out->indexed_upto = 0;
    return;
  }
  if (column == 0 && sorted_upto_ == row_count_) {
    // A store that is lexicographically sorted end to end is already
    // ordered by column 0: the CSR falls out of one sequential scan —
    // positions are the identity permutation and offsets are the run
    // boundaries. No count array, no scatter pass. A pre-count of the runs
    // sizes the output arrays exactly, so the scan never reallocates.
    std::size_t distinct = 1;
    for (std::size_t i = 1; i < row_count_; ++i) {
      distinct += flat_[i * arity_] != flat_[(i - 1) * arity_];
    }
    out->bulk_values.reserve(distinct);
    out->offsets.reserve(distinct + 1);
    out->offsets.push_back(0);
    for (std::size_t i = 0; i < row_count_;) {
      const Element e = flat_[i * arity_];
      std::size_t j = i;
      while (j < row_count_ && flat_[j * arity_] == e) {
        ++j;
      }
      out->bulk_values.push_back(e);
      out->offsets.push_back(static_cast<std::uint32_t>(j));
      i = j;
    }
    out->positions.resize(row_count_);
    for (std::size_t i = 0; i < row_count_; ++i) {
      out->positions[i] = static_cast<std::uint32_t>(i);
    }
    out->bulk_rows = row_count_;
    out->values = out->bulk_values;
    out->indexed_upto = row_count_;
    return;
  }
  Element max_value = 0;
  for (std::size_t i = 0; i < row_count_; ++i) {
    max_value = std::max(max_value, flat_[i * arity_ + column]);
  }
  // Counting sort wants a dense value range. Structure elements are always
  // an initial segment of the naturals, so this holds for every relation an
  // engine builds; a pathological sparse relation falls back to the
  // hash-tail path below rather than allocating a huge count array.
  const std::size_t span = static_cast<std::size_t>(max_value) + 1;
  if (span > 4 * row_count_ + 1024) {
    std::vector<Element> fresh;
    for (std::size_t i = 0; i < row_count_; ++i) {
      const Element e = flat_[i * arity_ + column];
      std::vector<std::uint32_t>& list = out->postings[e];
      if (list.empty()) {
        fresh.push_back(e);
      }
      list.push_back(static_cast<std::uint32_t>(i));
    }
    std::sort(fresh.begin(), fresh.end());
    out->values = std::move(fresh);
    out->indexed_upto = row_count_;
    return;
  }
  // Count pass -> prefix sums -> scatter pass: three flat arrays, no
  // per-value allocation no matter how many distinct values the column has.
  // 32-bit counts (row positions fit u32 by the membership-index layout)
  // halve the count array's footprint, which is what keeps the scatter's
  // random reads cache-resident on million-row relations.
  std::vector<std::uint32_t> counts(span, 0);
  for (std::size_t i = 0; i < row_count_; ++i) {
    ++counts[flat_[i * arity_ + column]];
  }
  std::size_t distinct = 0;
  for (const std::uint32_t n : counts) {
    distinct += n != 0;
  }
  out->bulk_values.reserve(distinct);
  out->offsets.reserve(distinct + 1);
  out->offsets.push_back(0);
  // Repurpose counts[v] as the running write cursor for value v.
  std::size_t running = 0;
  for (std::size_t v = 0; v < span; ++v) {
    if (counts[v] != 0) {
      out->bulk_values.push_back(static_cast<Element>(v));
      const std::uint32_t n = counts[v];
      counts[v] = static_cast<std::uint32_t>(running);
      running += n;
      out->offsets.push_back(static_cast<std::uint32_t>(running));
    }
  }
  out->positions.resize(row_count_);
  for (std::size_t i = 0; i < row_count_; ++i) {
    out->positions[counts[flat_[i * arity_ + column]]++] =
        static_cast<std::uint32_t>(i);
  }
  out->bulk_rows = row_count_;
  out->values = out->bulk_values;
  out->indexed_upto = row_count_;
}

void Relation::BuildColumnIndexesBulk() {
  column_indexes_.assign(arity_, nullptr);
  for (std::size_t c = 0; c < arity_; ++c) {
    auto built = std::make_shared<ColumnIndex>();
    BuildColumnIndexBulk(c, built.get());
    built->indexed_upto = row_count_;
    column_indexes_[c] = std::move(built);
  }
}

const Relation::ColumnIndex& Relation::column_index(std::size_t column) const {
  FMTK_CHECK(column < arity_)
      << "column " << column << " out of range for arity " << arity_;
  std::lock_guard<std::mutex> lock(column_mutex_);
  if (column_indexes_.size() != arity_) {
    column_indexes_.assign(arity_, nullptr);
  }
  if (column_indexes_[column] == nullptr) {
    column_indexes_[column] = std::make_shared<ColumnIndex>();
  }
  ColumnIndex& built = *column_indexes_[column];
  if (built.indexed_upto == 0 && row_count_ > 0) {
    // First build: one counting-sort pass into the CSR part, whether the
    // relation was bulk-constructed or grown through Add().
    BuildColumnIndexBulk(column, &built);
    return built;
  }
  if (built.indexed_upto < row_count_) {
    // Incremental sync: append postings for the rows added since the last
    // sync into the tail map and merge any first-seen elements into the
    // sorted value list.
    std::vector<Element> fresh;
    for (std::size_t i = built.indexed_upto; i < row_count_; ++i) {
      const Element e = flat_[i * arity_ + column];
      std::vector<std::uint32_t>& list = built.postings[e];
      if (list.empty() &&
          !std::binary_search(built.bulk_values.begin(),
                              built.bulk_values.end(), e)) {
        fresh.push_back(e);
      }
      list.push_back(static_cast<std::uint32_t>(i));
    }
    if (!fresh.empty()) {
      std::sort(fresh.begin(), fresh.end());
      const std::size_t mid = built.values.size();
      built.values.insert(built.values.end(), fresh.begin(), fresh.end());
      std::inplace_merge(built.values.begin(), built.values.begin() + mid,
                         built.values.end());
    }
    built.indexed_upto = row_count_;
  }
  return built;
}

std::vector<std::size_t> Relation::MatchesAt(std::size_t column,
                                             Element e) const {
  const ColumnIndex::View view = column_index(column).Find(e);
  std::vector<std::size_t> out;
  out.reserve(view.size());
  out.insert(out.end(), view.bulk, view.bulk + view.bulk_size);
  if (view.tail != nullptr) {
    out.insert(out.end(), view.tail->begin(), view.tail->end());
  }
  return out;
}

std::size_t Relation::EraseRows(const Relation& doomed) {
  FMTK_CHECK(doomed.arity_ == arity_)
      << "EraseRows with arity " << doomed.arity_ << " against " << arity_;
  if (doomed.row_count_ == 0 || row_count_ == 0) {
    return 0;
  }
  if (arity_ == 0) {
    // Both relations hold the single empty tuple.
    const std::size_t removed = row_count_;
    row_count_ = 0;
    packed_index_.clear();
    tuples_.clear();
    rows_synced_.store(0, std::memory_order_release);
    std::lock_guard<std::mutex> lock(column_mutex_);
    column_indexes_.clear();
    return removed;
  }
  constexpr std::size_t kMiss = static_cast<std::size_t>(-1);
  // Resolve each doomed row to its position: the hash values double as a
  // row -> position map (stored at insert and kept accurate by the fix-ups
  // below), and sorted-prefix rows resolve by binary search. This keeps
  // the whole operation O(batch) resolution + targeted row moves, with no
  // per-row predicate over the full store.
  std::vector<std::size_t> positions;
  positions.reserve(doomed.row_count_);
  for (std::size_t i = 0; i < doomed.row_count_; ++i) {
    const Element* row = doomed.TupleData(i);
    std::size_t pos = kMiss;
    if (arity_ <= 2) {
      if (const std::uint32_t* p = packed_index_.Find(PackedKey(row, arity_))) {
        pos = *p;
      } else if (sorted_upto_ > 0) {
        pos = SortedPrefixFind(row);
      }
    } else {
      if (const std::uint32_t* p = index_.Find(Tuple(row, row + arity_))) {
        pos = *p;
      } else if (sorted_upto_ > 0) {
        pos = SortedPrefixFind(row);
      }
    }
    if (pos != kMiss) {
      positions.push_back(pos);
    }
  }
  if (positions.empty()) {
    return 0;
  }
  const std::size_t removed = positions.size();
  auto erase_entry = [&](const Element* row) {
    if (arity_ <= 2) {
      packed_index_.Erase(PackedKey(row, arity_));
    } else {
      index_.Erase(Tuple(row, row + arity_));
    }
  };
  auto store_position = [&](const Element* row, std::size_t pos) {
    if (arity_ <= 2) {
      *packed_index_.Find(PackedKey(row, arity_)) =
          static_cast<std::uint32_t>(pos);
    } else {
      *index_.Find(Tuple(row, row + arity_)) = static_cast<std::uint32_t>(pos);
    }
  };
  if (sorted_upto_ == 0) {
    // Fully hashed store: swap-with-last, O(batch) total. Processing the
    // positions in descending order guarantees the row swapped in is never
    // itself pending deletion. Insertion order is not preserved (relations
    // are sets; callers holding delta ranges re-pin them after pruning).
    std::sort(positions.begin(), positions.end(),
              std::greater<std::size_t>());
    for (const std::size_t pos : positions) {
      const std::size_t last = row_count_ - 1;
      erase_entry(flat_.data() + pos * arity_);
      if (pos != last) {
        const Element* src = flat_.data() + last * arity_;
        std::copy(src, src + arity_, flat_.begin() + pos * arity_);
        store_position(flat_.data() + pos * arity_, pos);
      }
      --row_count_;
    }
    flat_.resize(row_count_ * arity_);
  } else {
    // Sorted-prefix store: order-preserving compaction of the gaps between
    // the doomed positions, so the prefix stays sorted. Only old-suffix
    // rows have hash entries; survivors get their stored positions
    // refreshed after the move.
    std::sort(positions.begin(), positions.end());
    std::size_t doomed_sorted = 0;
    for (const std::size_t pos : positions) {
      if (pos < sorted_upto_) {
        ++doomed_sorted;
      } else {
        erase_entry(flat_.data() + pos * arity_);
      }
    }
    std::size_t write = positions[0];
    for (std::size_t k = 0; k < positions.size(); ++k) {
      const std::size_t gap_begin = positions[k] + 1;
      const std::size_t gap_end =
          k + 1 < positions.size() ? positions[k + 1] : row_count_;
      const Element* src = flat_.data() + gap_begin * arity_;
      const std::size_t count = (gap_end - gap_begin) * arity_;
      std::copy(src, src + count, flat_.begin() + write * arity_);
      write += gap_end - gap_begin;
    }
    row_count_ = write;
    sorted_upto_ -= doomed_sorted;
    flat_.resize(row_count_ * arity_);
    for (std::size_t i = sorted_upto_; i < row_count_; ++i) {
      store_position(flat_.data() + i * arity_, i);
    }
  }
  tuples_.clear();
  rows_synced_.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lock(column_mutex_);
  column_indexes_.clear();
  return removed;
}

void Relation::Consolidate() {
  if (arity_ == 0 || row_count_ == sorted_upto_) {
    return;  // Arity 0 has no row order; otherwise already consolidated.
  }
  if (arity_ <= 2) {
    std::vector<std::uint64_t> keys(row_count_);
    for (std::size_t i = 0; i < row_count_; ++i) {
      keys[i] = PackedKey(flat_.data() + i * arity_, arity_);
    }
    internal_rows::SortPackedRows(keys);
    for (std::size_t i = 0; i < row_count_; ++i) {
      const std::uint64_t key = keys[i];
      Element* row = flat_.data() + i * arity_;
      if (arity_ == 2) {
        row[0] = static_cast<Element>(key >> 32);
        row[1] = static_cast<Element>(key);
      } else {
        row[0] = static_cast<Element>(key);
      }
    }
    packed_index_.clear();
  } else {
    std::vector<std::uint32_t> order(row_count_);
    for (std::size_t i = 0; i < row_count_; ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    const Element* data = flat_.data();
    const std::size_t arity = arity_;
    std::sort(order.begin(), order.end(),
              [data, arity](std::uint32_t a, std::uint32_t b) {
                const Element* ra = data + std::size_t{a} * arity;
                const Element* rb = data + std::size_t{b} * arity;
                return std::lexicographical_compare(ra, ra + arity, rb,
                                                    rb + arity);
              });
    std::vector<Element> sorted;
    sorted.reserve(flat_.size());
    for (const std::uint32_t i : order) {
      const Element* row = data + std::size_t{i} * arity_;
      sorted.insert(sorted.end(), row, row + arity_);
    }
    flat_ = std::move(sorted);
    index_.clear();
  }
  sorted_upto_ = row_count_;
  tuples_.clear();
  rows_synced_.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lock(column_mutex_);
  column_indexes_.clear();
}

std::string Relation::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < row_count_; ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "(";
    const Element* row = flat_.data() + i * arity_;
    for (std::size_t j = 0; j < arity_; ++j) {
      if (j > 0) {
        out += ",";
      }
      out += std::to_string(row[j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace fmtk
