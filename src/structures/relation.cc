#include "structures/relation.h"

#include <utility>

#include "base/check.h"

namespace fmtk {

bool Relation::Add(Tuple tuple) {
  FMTK_CHECK(tuple.size() == arity_)
      << "tuple of size " << tuple.size() << " added to relation of arity "
      << arity_;
  auto [it, inserted] = index_.insert(tuple);
  if (inserted) {
    tuples_.push_back(std::move(tuple));
  }
  return inserted;
}

std::string Relation::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "(";
    for (std::size_t j = 0; j < tuples_[i].size(); ++j) {
      if (j > 0) {
        out += ",";
      }
      out += std::to_string(tuples_[i][j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace fmtk
