#include "structures/relation.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace fmtk {

Relation::Relation(const Relation& other)
    : arity_(other.arity_), tuples_(other.tuples_), index_(other.index_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    arity_ = other.arity_;
    tuples_ = other.tuples_;
    index_ = other.index_;
    std::lock_guard<std::mutex> lock(column_mutex_);
    column_indexes_.clear();
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      tuples_(std::move(other.tuples_)),
      index_(std::move(other.index_)) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    arity_ = other.arity_;
    tuples_ = std::move(other.tuples_);
    index_ = std::move(other.index_);
    std::lock_guard<std::mutex> lock(column_mutex_);
    column_indexes_.clear();
  }
  return *this;
}

bool Relation::Add(Tuple tuple) {
  FMTK_CHECK(tuple.size() == arity_)
      << "tuple of size " << tuple.size() << " added to relation of arity "
      << arity_;
  auto [it, inserted] = index_.insert(tuple);
  if (inserted) {
    tuples_.push_back(std::move(tuple));
    std::lock_guard<std::mutex> lock(column_mutex_);
    column_indexes_.clear();
  }
  return inserted;
}

const Relation::ColumnIndex& Relation::column_index(std::size_t column) const {
  FMTK_CHECK(column < arity_)
      << "column " << column << " out of range for arity " << arity_;
  std::lock_guard<std::mutex> lock(column_mutex_);
  if (column_indexes_.size() != arity_) {
    column_indexes_.assign(arity_, nullptr);
  }
  if (column_indexes_[column] == nullptr) {
    auto built = std::make_shared<ColumnIndex>();
    for (std::size_t i = 0; i < tuples_.size(); ++i) {
      built->postings[tuples_[i][column]].push_back(i);
    }
    built->values.reserve(built->postings.size());
    for (const auto& [element, unused] : built->postings) {
      built->values.push_back(element);
    }
    std::sort(built->values.begin(), built->values.end());
    column_indexes_[column] = std::move(built);
  }
  return *column_indexes_[column];
}

const std::vector<std::size_t>& Relation::MatchesAt(std::size_t column,
                                                    Element e) const {
  static const std::vector<std::size_t>* const kEmpty =
      new std::vector<std::size_t>();
  const ColumnIndex& index = column_index(column);
  auto it = index.postings.find(e);
  return it == index.postings.end() ? *kEmpty : it->second;
}

std::string Relation::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "(";
    for (std::size_t j = 0; j < tuples_[i].size(); ++j) {
      if (j > 0) {
        out += ",";
      }
      out += std::to_string(tuples_[i][j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace fmtk
