#include "structures/relation.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace fmtk {

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      tuples_(other.tuples_),
      flat_(other.flat_),
      packed_index_(other.packed_index_),
      index_(other.index_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    arity_ = other.arity_;
    tuples_ = other.tuples_;
    flat_ = other.flat_;
    packed_index_ = other.packed_index_;
    index_ = other.index_;
    std::lock_guard<std::mutex> lock(column_mutex_);
    column_indexes_.clear();
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      tuples_(std::move(other.tuples_)),
      flat_(std::move(other.flat_)),
      packed_index_(std::move(other.packed_index_)),
      index_(std::move(other.index_)) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    arity_ = other.arity_;
    tuples_ = std::move(other.tuples_);
    flat_ = std::move(other.flat_);
    packed_index_ = std::move(other.packed_index_);
    index_ = std::move(other.index_);
    std::lock_guard<std::mutex> lock(column_mutex_);
    column_indexes_.clear();
  }
  return *this;
}

bool Relation::Add(Tuple tuple) {
  FMTK_CHECK(tuple.size() == arity_)
      << "tuple of size " << tuple.size() << " added to relation of arity "
      << arity_;
  const auto position = static_cast<std::uint32_t>(tuples_.size());
  const bool inserted =
      arity_ <= 2 ? packed_index_.TryEmplace(PackedKey(tuple), position).second
                  : index_.TryEmplace(tuple, position).second;
  if (inserted) {
    // Column indexes are left as-is (generation-tagged at indexed_upto);
    // the next column_index() call appends postings for the new suffix.
    flat_.insert(flat_.end(), tuple.begin(), tuple.end());
    tuples_.push_back(std::move(tuple));
  }
  return inserted;
}

bool Relation::AddCopy(const Tuple& tuple) {
  FMTK_CHECK(tuple.size() == arity_)
      << "tuple of size " << tuple.size() << " added to relation of arity "
      << arity_;
  const auto position = static_cast<std::uint32_t>(tuples_.size());
  const bool inserted =
      arity_ <= 2 ? packed_index_.TryEmplace(PackedKey(tuple), position).second
                  : index_.TryEmplace(tuple, position).second;
  if (inserted) {
    flat_.insert(flat_.end(), tuple.begin(), tuple.end());
    tuples_.push_back(tuple);
  }
  return inserted;
}

const Relation::ColumnIndex& Relation::column_index(std::size_t column) const {
  FMTK_CHECK(column < arity_)
      << "column " << column << " out of range for arity " << arity_;
  std::lock_guard<std::mutex> lock(column_mutex_);
  if (column_indexes_.size() != arity_) {
    column_indexes_.assign(arity_, nullptr);
  }
  if (column_indexes_[column] == nullptr) {
    column_indexes_[column] = std::make_shared<ColumnIndex>();
  }
  ColumnIndex& built = *column_indexes_[column];
  if (built.indexed_upto < tuples_.size()) {
    // Incremental sync: append postings for the tuples added since the last
    // sync and merge any first-seen elements into the sorted value list.
    std::vector<Element> fresh;
    for (std::size_t i = built.indexed_upto; i < tuples_.size(); ++i) {
      std::vector<std::size_t>& list = built.postings[tuples_[i][column]];
      if (list.empty()) {
        fresh.push_back(tuples_[i][column]);
      }
      list.push_back(i);
    }
    if (!fresh.empty()) {
      std::sort(fresh.begin(), fresh.end());
      const std::size_t mid = built.values.size();
      built.values.insert(built.values.end(), fresh.begin(), fresh.end());
      std::inplace_merge(built.values.begin(), built.values.begin() + mid,
                         built.values.end());
    }
    built.indexed_upto = tuples_.size();
  }
  return built;
}

const std::vector<std::size_t>& Relation::MatchesAt(std::size_t column,
                                                    Element e) const {
  static const std::vector<std::size_t>* const kEmpty =
      new std::vector<std::size_t>();
  const ColumnIndex& index = column_index(column);
  const std::vector<std::size_t>* list = index.postings.Find(e);
  return list == nullptr ? *kEmpty : *list;
}

std::string Relation::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "(";
    for (std::size_t j = 0; j < tuples_[i].size(); ++j) {
      if (j > 0) {
        out += ",";
      }
      out += std::to_string(tuples_[i][j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace fmtk
