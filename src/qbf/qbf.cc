#include "qbf/qbf.h"

#include <cctype>
#include <map>
#include <set>

#include "base/check.h"

namespace fmtk {

Qbf Qbf::Make(Node node) {
  return Qbf(std::make_shared<const Node>(std::move(node)));
}

Qbf Qbf::Var(std::string name) {
  return Make({Kind::kVar, std::move(name), {}});
}

Qbf Qbf::Not(Qbf f) { return Make({Kind::kNot, {}, {std::move(f)}}); }

Qbf Qbf::And(std::vector<Qbf> fs) {
  return Make({Kind::kAnd, {}, std::move(fs)});
}

Qbf Qbf::And(Qbf a, Qbf b) {
  return And(std::vector<Qbf>{std::move(a), std::move(b)});
}

Qbf Qbf::Or(std::vector<Qbf> fs) {
  return Make({Kind::kOr, {}, std::move(fs)});
}

Qbf Qbf::Or(Qbf a, Qbf b) {
  return Or(std::vector<Qbf>{std::move(a), std::move(b)});
}

Qbf Qbf::Exists(std::string variable, Qbf body) {
  return Make({Kind::kExists, std::move(variable), {std::move(body)}});
}

Qbf Qbf::Forall(std::string variable, Qbf body) {
  return Make({Kind::kForall, std::move(variable), {std::move(body)}});
}

namespace {

int Precedence(Qbf::Kind kind) {
  switch (kind) {
    case Qbf::Kind::kOr:
      return 3;
    case Qbf::Kind::kAnd:
      return 4;
    case Qbf::Kind::kNot:
    case Qbf::Kind::kExists:
    case Qbf::Kind::kForall:
      return 5;
    default:
      return 6;
  }
}

bool ExtendsRight(const Qbf& f) {
  switch (f.kind()) {
    case Qbf::Kind::kExists:
    case Qbf::Kind::kForall:
      return true;
    case Qbf::Kind::kNot:
      return ExtendsRight(f.child(0));
    default:
      return false;
  }
}

void Print(const Qbf& f, int parent, bool protect_right, std::string& out) {
  const int prec = Precedence(f.kind());
  const bool parens =
      prec < parent || (protect_right && ExtendsRight(f));
  if (parens) {
    protect_right = false;
    out += "(";
  }
  switch (f.kind()) {
    case Qbf::Kind::kVar:
      out += f.variable();
      break;
    case Qbf::Kind::kNot:
      out += "!";
      Print(f.child(0), prec + 1, protect_right, out);
      break;
    case Qbf::Kind::kAnd:
    case Qbf::Kind::kOr: {
      if (f.children().empty()) {
        out += f.kind() == Qbf::Kind::kAnd ? "true" : "false";
        break;
      }
      const char* op = f.kind() == Qbf::Kind::kAnd ? " & " : " | ";
      for (std::size_t i = 0; i < f.children().size(); ++i) {
        if (i > 0) {
          out += op;
        }
        const bool last = (i + 1 == f.children().size());
        Print(f.child(i), prec + 1, last ? protect_right : true, out);
      }
      break;
    }
    case Qbf::Kind::kExists:
    case Qbf::Kind::kForall:
      out += f.kind() == Qbf::Kind::kExists ? "exists " : "forall ";
      out += f.variable();
      out += ". ";
      Print(f.child(0), prec, false, out);
      break;
  }
  if (parens) {
    out += ")";
  }
}

}  // namespace

std::string Qbf::ToString() const {
  std::string out;
  Print(*this, 0, false, out);
  return out;
}

std::size_t Qbf::NodeCount() const {
  std::size_t total = 1;
  for (const Qbf& c : node_->children) {
    total += c.NodeCount();
  }
  return total;
}

namespace {

class QbfParser {
 public:
  explicit QbfParser(std::string_view text) : text_(text) {}

  Result<Qbf> Parse() {
    FMTK_ASSIGN_OR_RETURN(Qbf f, ParseOr());
    SkipSpace();
    if (pos_ < text_.size()) {
      return Error("trailing input");
    }
    return f;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_));
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseName() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (start == pos_) {
      return Error("expected a name");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Qbf> ParseOr() {
    FMTK_ASSIGN_OR_RETURN(Qbf left, ParseAnd());
    while (Eat('|')) {
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
      }
      FMTK_ASSIGN_OR_RETURN(Qbf right, ParseAnd());
      left = Qbf::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Qbf> ParseAnd() {
    FMTK_ASSIGN_OR_RETURN(Qbf left, ParseUnary());
    while (Eat('&')) {
      if (pos_ < text_.size() && text_[pos_] == '&') {
        ++pos_;
      }
      FMTK_ASSIGN_OR_RETURN(Qbf right, ParseUnary());
      left = Qbf::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Qbf> ParseUnary() {
    SkipSpace();
    if (Eat('!') || Eat('~')) {
      FMTK_ASSIGN_OR_RETURN(Qbf f, ParseUnary());
      return Qbf::Not(std::move(f));
    }
    if (Eat('(')) {
      FMTK_ASSIGN_OR_RETURN(Qbf f, ParseOr());
      if (!Eat(')')) {
        return Error("expected ')'");
      }
      return f;
    }
    FMTK_ASSIGN_OR_RETURN(std::string name, ParseName());
    if (name == "exists" || name == "forall" || name == "ex" ||
        name == "all") {
      std::vector<std::string> vars;
      while (true) {
        SkipSpace();
        if (pos_ < text_.size() &&
            (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
             text_[pos_] == '_')) {
          FMTK_ASSIGN_OR_RETURN(std::string v, ParseName());
          vars.push_back(std::move(v));
          Eat(',');
          continue;
        }
        break;
      }
      if (vars.empty()) {
        return Error("quantifier without variables");
      }
      if (!Eat('.') && !Eat(':')) {
        return Error("expected '.' after quantified variables");
      }
      FMTK_ASSIGN_OR_RETURN(Qbf body, ParseOr());
      const bool is_exists = (name == "exists" || name == "ex");
      for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
        body = is_exists ? Qbf::Exists(*it, std::move(body))
                         : Qbf::Forall(*it, std::move(body));
      }
      return body;
    }
    if (name == "true") {
      return Qbf::And({});
    }
    if (name == "false") {
      return Qbf::Or({});
    }
    return Qbf::Var(std::move(name));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Free propositional variables.
void CollectFree(const Qbf& f, std::set<std::string>& bound,
                 std::set<std::string>& free) {
  switch (f.kind()) {
    case Qbf::Kind::kVar:
      if (bound.find(f.variable()) == bound.end()) {
        free.insert(f.variable());
      }
      return;
    case Qbf::Kind::kExists:
    case Qbf::Kind::kForall: {
      const bool was_bound = bound.count(f.variable()) > 0;
      bound.insert(f.variable());
      CollectFree(f.child(0), bound, free);
      if (!was_bound) {
        bound.erase(f.variable());
      }
      return;
    }
    default:
      for (const Qbf& c : f.children()) {
        CollectFree(c, bound, free);
      }
  }
}

Result<bool> Solve(const Qbf& f, std::map<std::string, bool>& env,
                   QbfStats* stats) {
  switch (f.kind()) {
    case Qbf::Kind::kVar: {
      auto it = env.find(f.variable());
      if (it == env.end()) {
        return Status::InvalidArgument("free variable " + f.variable() +
                                       " (QBF must be closed)");
      }
      return it->second;
    }
    case Qbf::Kind::kNot: {
      FMTK_ASSIGN_OR_RETURN(bool inner, Solve(f.child(0), env, stats));
      return !inner;
    }
    case Qbf::Kind::kAnd: {
      for (const Qbf& c : f.children()) {
        FMTK_ASSIGN_OR_RETURN(bool v, Solve(c, env, stats));
        if (!v) {
          return false;
        }
      }
      return true;
    }
    case Qbf::Kind::kOr: {
      for (const Qbf& c : f.children()) {
        FMTK_ASSIGN_OR_RETURN(bool v, Solve(c, env, stats));
        if (v) {
          return true;
        }
      }
      return false;
    }
    case Qbf::Kind::kExists:
    case Qbf::Kind::kForall: {
      const bool is_exists = f.kind() == Qbf::Kind::kExists;
      auto it = env.find(f.variable());
      std::optional<bool> shadowed;
      if (it != env.end()) {
        shadowed = it->second;
      }
      bool outcome = !is_exists;
      Status error = Status::OK();
      for (bool value : {false, true}) {
        if (stats != nullptr) {
          ++stats->assignments_tried;
        }
        env[f.variable()] = value;
        Result<bool> v = Solve(f.child(0), env, stats);
        if (!v.ok()) {
          error = v.status();
          break;
        }
        if (*v == is_exists) {
          outcome = is_exists;
          break;
        }
      }
      if (shadowed.has_value()) {
        env[f.variable()] = *shadowed;
      } else {
        env.erase(f.variable());
      }
      FMTK_RETURN_IF_ERROR(error);
      return outcome;
    }
  }
  return Status::Internal("unreachable QBF kind");
}

Result<Formula> QbfToFo(const Qbf& f) {
  switch (f.kind()) {
    case Qbf::Kind::kVar:
      return Formula::Atom("T", {V(f.variable())});
    case Qbf::Kind::kNot: {
      FMTK_ASSIGN_OR_RETURN(Formula inner, QbfToFo(f.child(0)));
      return Formula::Not(std::move(inner));
    }
    case Qbf::Kind::kAnd:
    case Qbf::Kind::kOr: {
      std::vector<Formula> children;
      children.reserve(f.children().size());
      for (const Qbf& c : f.children()) {
        FMTK_ASSIGN_OR_RETURN(Formula fc, QbfToFo(c));
        children.push_back(std::move(fc));
      }
      return f.kind() == Qbf::Kind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case Qbf::Kind::kExists: {
      FMTK_ASSIGN_OR_RETURN(Formula body, QbfToFo(f.child(0)));
      return Formula::Exists(f.variable(), std::move(body));
    }
    case Qbf::Kind::kForall: {
      FMTK_ASSIGN_OR_RETURN(Formula body, QbfToFo(f.child(0)));
      return Formula::Forall(f.variable(), std::move(body));
    }
  }
  return Status::Internal("unreachable QBF kind");
}

}  // namespace

Result<Qbf> ParseQbf(std::string_view text) {
  return QbfParser(text).Parse();
}

Result<bool> SolveQbf(const Qbf& f, QbfStats* stats) {
  std::map<std::string, bool> env;
  return Solve(f, env, stats);
}

Result<QbfAsModelChecking> ReduceToModelChecking(const Qbf& f) {
  std::set<std::string> bound;
  std::set<std::string> free;
  CollectFree(f, bound, free);
  if (!free.empty()) {
    return Status::InvalidArgument("QBF must be closed, found free variable " +
                                   *free.begin());
  }
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("T", 1);
  Structure two(sig, 2);
  two.AddTuple(0, {1});
  FMTK_ASSIGN_OR_RETURN(Formula sentence, QbfToFo(f));
  return QbfAsModelChecking{std::move(two), std::move(sentence)};
}

Qbf MakeRandomQbf(std::size_t quantifiers, std::size_t clauses,
                  std::mt19937_64& rng) {
  FMTK_CHECK(quantifiers >= 1) << "need at least one variable";
  std::vector<std::string> vars;
  for (std::size_t i = 0; i < quantifiers; ++i) {
    vars.push_back("p" + std::to_string(i + 1));
  }
  std::uniform_int_distribution<std::size_t> pick_var(0, quantifiers - 1);
  std::bernoulli_distribution flip(0.5);
  std::vector<Qbf> clause_list;
  for (std::size_t c = 0; c < clauses; ++c) {
    std::vector<Qbf> literals;
    const std::size_t width = 3;
    for (std::size_t l = 0; l < width; ++l) {
      Qbf literal = Qbf::Var(vars[pick_var(rng)]);
      if (flip(rng)) {
        literal = Qbf::Not(std::move(literal));
      }
      literals.push_back(std::move(literal));
    }
    clause_list.push_back(Qbf::Or(std::move(literals)));
  }
  Qbf matrix = Qbf::And(std::move(clause_list));
  // Alternate quantifiers ∃ p1 ∀ p2 ∃ p3 ...
  for (std::size_t i = quantifiers; i > 0; --i) {
    const bool exists = (i % 2) == 1;
    matrix = exists ? Qbf::Exists(vars[i - 1], std::move(matrix))
                    : Qbf::Forall(vars[i - 1], std::move(matrix));
  }
  return matrix;
}

}  // namespace fmtk
