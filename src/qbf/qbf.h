#ifndef FMTK_QBF_QBF_H_
#define FMTK_QBF_QBF_H_

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

/// Quantified Boolean formulas — the survey's canonical PSPACE-complete
/// problem, whose reduction to FO model checking witnesses the
/// PSPACE-hardness of combined complexity.
class Qbf {
 public:
  enum class Kind { kVar, kNot, kAnd, kOr, kExists, kForall };

  Qbf() : Qbf(Var("p")) {}

  Kind kind() const { return node_->kind; }
  const std::string& variable() const { return node_->variable; }
  const std::vector<Qbf>& children() const { return node_->children; }
  const Qbf& child(std::size_t i) const { return node_->children[i]; }

  static Qbf Var(std::string name);
  static Qbf Not(Qbf f);
  static Qbf And(std::vector<Qbf> fs);
  static Qbf And(Qbf a, Qbf b);
  static Qbf Or(std::vector<Qbf> fs);
  static Qbf Or(Qbf a, Qbf b);
  static Qbf Exists(std::string variable, Qbf body);
  static Qbf Forall(std::string variable, Qbf body);

  std::string ToString() const;
  std::size_t NodeCount() const;

 private:
  struct Node {
    Kind kind;
    std::string variable;  // kVar / quantifiers.
    std::vector<Qbf> children;
  };
  explicit Qbf(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  static Qbf Make(Node node);

  std::shared_ptr<const Node> node_;
};

/// Parses "exists p. forall q. (p | !q) & (q | !p)" — same surface
/// operators as the FO parser, with propositional variables as atoms.
Result<Qbf> ParseQbf(std::string_view text);

/// Work counter for the solver.
struct QbfStats {
  std::uint64_t assignments_tried = 0;
};

/// Decides a closed QBF by the textbook recursive PSPACE algorithm.
/// Free (unquantified) variables are an error.
Result<bool> SolveQbf(const Qbf& f, QbfStats* stats = nullptr);

/// The survey's reduction QBF ≤ FO-MC: a fixed 2-element structure
/// ({0,1} with T = {1}) plus an FO sentence such that the QBF is true iff
/// the structure satisfies the sentence (propositions become first-order
/// variables tested by T).
struct QbfAsModelChecking {
  Structure structure;
  Formula sentence;
};
Result<QbfAsModelChecking> ReduceToModelChecking(const Qbf& f);

/// A random closed QBF with `quantifiers` alternating quantifiers over that
/// many variables and a random 3-ish-CNF style matrix — workload generator
/// for the E2 bench.
Qbf MakeRandomQbf(std::size_t quantifiers, std::size_t clauses,
                  std::mt19937_64& rng);

}  // namespace fmtk

#endif  // FMTK_QBF_QBF_H_
