#ifndef FMTK_BASE_POPCOUNT_H_
#define FMTK_BASE_POPCOUNT_H_

#include <cstddef>
#include <cstdint>

#include "base/simd.h"

namespace fmtk {

/// Bulk population count over a word array — the kernel behind
/// ElementBitset::Count() and the locality engine's ball-size histograms,
/// where the per-element "how big is the r-ball" question turns into one
/// popcount over the frontier bitset per BFS level.
///
/// The AVX2 path is the classic nibble-LUT reduction (Mula): a shuffle
/// looks up per-nibble counts for 32 bytes at a time and _mm256_sad_epu8
/// folds them into four 64-bit lanes, so the loop retires 4 words per
/// iteration with no cross-lane traffic until the final fold. Compiled with
/// -DFMTK_SIMD=0 (or without AVX2) it falls back to an unrolled
/// __builtin_popcountll loop, which SSE2/NEON targets already execute as a
/// native instruction per word.
inline std::uint64_t PopcountWords(const std::uint64_t* words, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
#if defined(FMTK_SIMD_AVX2)
  if (n >= 8) {
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + i));
      const __m256i lo = _mm256_and_si256(v, low_mask);
      const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
      const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                          _mm256_shuffle_epi8(lut, hi));
      // Horizontal add of 32 byte counts into 4 u64 lanes; byte counts max
      // out at 8 so no saturation concern at any n.
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  }
#endif
  for (; i + 4 <= n; i += 4) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(words[i])) +
             static_cast<std::uint64_t>(__builtin_popcountll(words[i + 1])) +
             static_cast<std::uint64_t>(__builtin_popcountll(words[i + 2])) +
             static_cast<std::uint64_t>(__builtin_popcountll(words[i + 3]));
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(words[i]));
  }
  return total;
}

}  // namespace fmtk

#endif  // FMTK_BASE_POPCOUNT_H_
