#ifndef FMTK_BASE_RESULT_H_
#define FMTK_BASE_RESULT_H_

#include <utility>
#include <variant>

#include "base/check.h"
#include "base/status.h"

namespace fmtk {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// could not be produced (Arrow's arrow::Result, absl::StatusOr).
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring Arrow).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error. `status` must be non-OK.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    FMTK_CHECK(!std::get<Status>(rep_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the error, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Value accessors. It is a fatal error to call these on an error Result.
  const T& value() const& {
    FMTK_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    FMTK_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    FMTK_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace fmtk

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define FMTK_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  FMTK_ASSIGN_OR_RETURN_IMPL_(                                      \
      FMTK_MACRO_CONCAT_(fmtk_result_, __LINE__), lhs, rexpr)

#define FMTK_MACRO_CONCAT_INNER_(x, y) x##y
#define FMTK_MACRO_CONCAT_(x, y) FMTK_MACRO_CONCAT_INNER_(x, y)

#define FMTK_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) {                                   \
    return result.status();                             \
  }                                                     \
  lhs = std::move(result).value()

#endif  // FMTK_BASE_RESULT_H_
