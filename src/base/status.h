#ifndef FMTK_BASE_STATUS_H_
#define FMTK_BASE_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace fmtk {

/// Error categories used across the toolkit. Modelled after Arrow's
/// StatusCode: a small closed set, with the human-readable detail carried in
/// the message.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed (bad arity, unknown name, ...).
  kInvalidArgument,
  /// An object was used against a signature/structure it does not belong to.
  kSignatureMismatch,
  /// Text could not be parsed (FO formulas, QBF, Datalog programs).
  kParseError,
  /// A configured resource limit (nodes, samples, recursion) was exceeded.
  kResourceExhausted,
  /// The operation is not defined for this input (e.g. exact enumeration of
  /// structures over a domain too large to enumerate).
  kUnsupported,
  /// An invariant that should be unreachable was violated.
  kInternal,
};

/// Returns a stable, human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value, cheap to copy in the success case.
///
/// fmtk follows the session's database-C++ convention (Google style, Arrow
/// idiom): no exceptions cross API boundaries; fallible operations return
/// Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status SignatureMismatch(std::string msg) {
    return Status(StatusCode::kSignatureMismatch, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string();
    return rep_ ? rep_->message : *kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace fmtk

/// Propagates a non-OK Status from the current function.
#define FMTK_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::fmtk::Status fmtk_status_macro_s = (expr);  \
    if (!fmtk_status_macro_s.ok()) {              \
      return fmtk_status_macro_s;                 \
    }                                             \
  } while (false)

#endif  // FMTK_BASE_STATUS_H_
