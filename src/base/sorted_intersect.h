#ifndef FMTK_BASE_SORTED_INTERSECT_H_
#define FMTK_BASE_SORTED_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/simd.h"

// Intersection kernels for sorted duplicate-free integer lists (posting
// lists, column value lists). Three strategies:
//
//   - scalar merge        — baseline two-pointer walk;
//   - galloping           — when one list is much shorter, gallop through
//                           the longer one (doubling probe + binary search);
//   - SIMD linear         — broadcast one element of the shorter list and
//                           compare against a full vector lane of the longer
//                           (SSE2/AVX2/NEON for 32-bit keys, AVX2 for 64-bit
//                           keys; falls back to the scalar merge otherwise).
//
// IntersectSorted() dispatches between galloping and linear on the size
// ratio. All kernels produce identical output: the common elements in
// ascending order. Inputs must be strictly increasing.

namespace fmtk {

/// Size ratio (longer/shorter) above which galloping wins over the linear
/// kernels.
inline constexpr std::size_t kGallopRatio = 16;

/// Baseline two-pointer merge intersection. `out` must have room for
/// min(na, nb) elements; returns the number written.
template <typename T>
inline std::size_t IntersectSortedScalar(const T* a, std::size_t na,
                                         const T* b, std::size_t nb, T* out) {
  std::size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[k++] = a[i];
      ++i;
      ++j;
    }
  }
  return k;
}

/// Galloping intersection: for each element of `a`, advance in `b` with a
/// doubling probe then binary-search the final window. Intended for
/// na << nb; correct for any sizes. Returns the number written to `out`.
template <typename T>
inline std::size_t IntersectSortedGalloping(const T* a, std::size_t na,
                                            const T* b, std::size_t nb,
                                            T* out) {
  std::size_t j = 0, k = 0;
  for (std::size_t i = 0; i < na && j < nb; ++i) {
    const T x = a[i];
    if (b[j] < x) {
      std::size_t step = 1;
      while (j + step < nb && b[j + step] < x) {
        step <<= 1;
      }
      // b[j + step/2] < x and (j + step >= nb or b[j + step] >= x), so the
      // insertion point lies in (j + step/2, j + step].
      const std::size_t lo = j + (step >> 1);
      const std::size_t hi = std::min(j + step, nb);
      j = static_cast<std::size_t>(std::lower_bound(b + lo, b + hi, x) - b);
    }
    if (j < nb && b[j] == x) {
      out[k++] = x;
      ++j;
    }
  }
  return k;
}

namespace intersect_detail {

/// Linear intersection with SIMD block compares where available: broadcast
/// a[i] and compare against a lane-width block of b, advancing whichever
/// side is behind. Identical output to the scalar merge.
template <typename T>
inline std::size_t IntersectLinear(const T* a, std::size_t na, const T* b,
                                   std::size_t nb, T* out) {
  std::size_t i = 0, j = 0, k = 0;
#if FMTK_SIMD_LEVEL > 0
  if constexpr (sizeof(T) == 4) {
#if defined(FMTK_SIMD_AVX2)
    while (i < na && j + 8 <= nb) {
      const __m256i probe = _mm256_set1_epi32(static_cast<int>(a[i]));
      const __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(probe, block)) != 0) {
        out[k++] = a[i];
      }
      if (a[i] > b[j + 7]) {
        j += 8;
      } else {
        ++i;
      }
    }
#elif defined(FMTK_SIMD_SSE2)
    while (i < na && j + 4 <= nb) {
      const __m128i probe = _mm_set1_epi32(static_cast<int>(a[i]));
      const __m128i block =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      if (_mm_movemask_epi8(_mm_cmpeq_epi32(probe, block)) != 0) {
        out[k++] = a[i];
      }
      if (a[i] > b[j + 3]) {
        j += 4;
      } else {
        ++i;
      }
    }
#elif defined(FMTK_SIMD_NEON)
    while (i < na && j + 4 <= nb) {
      const uint32x4_t probe = vdupq_n_u32(static_cast<std::uint32_t>(a[i]));
      const uint32x4_t block =
          vld1q_u32(reinterpret_cast<const std::uint32_t*>(b + j));
      if (vmaxvq_u32(vceqq_u32(probe, block)) != 0) {
        out[k++] = a[i];
      }
      if (a[i] > b[j + 3]) {
        j += 4;
      } else {
        ++i;
      }
    }
#endif
  } else if constexpr (sizeof(T) == 8) {
#if defined(FMTK_SIMD_AVX2)
    while (i < na && j + 4 <= nb) {
      const __m256i probe =
          _mm256_set1_epi64x(static_cast<long long>(a[i]));
      const __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(probe, block)) != 0) {
        out[k++] = a[i];
      }
      if (a[i] > b[j + 3]) {
        j += 4;
      } else {
        ++i;
      }
    }
#endif
  }
#endif  // FMTK_SIMD_LEVEL > 0
  return k + IntersectSortedScalar(a + i, na - i, b + j, nb - j, out + k);
}

}  // namespace intersect_detail

/// Intersects two sorted duplicate-free lists into `out` (room for
/// min(na, nb) elements); returns the number written. Picks galloping when
/// the size ratio exceeds kGallopRatio, the SIMD/scalar linear kernel
/// otherwise.
template <typename T>
inline std::size_t IntersectSorted(const T* a, std::size_t na, const T* b,
                                   std::size_t nb, T* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) {
    return 0;
  }
  if (nb / na >= kGallopRatio) {
    return IntersectSortedGalloping(a, na, b, nb, out);
  }
  return intersect_detail::IntersectLinear(a, na, b, nb, out);
}

/// Vector convenience wrapper: out = a ∩ b.
template <typename T>
inline void IntersectSorted(const std::vector<T>& a, const std::vector<T>& b,
                            std::vector<T>& out) {
  out.resize(std::min(a.size(), b.size()));
  out.resize(IntersectSorted(a.data(), a.size(), b.data(), b.size(),
                             out.data()));
}

/// acc = acc ∩ b, using `scratch` as the output buffer (swapped into acc).
template <typename T>
inline void IntersectSortedInPlace(std::vector<T>& acc, const std::vector<T>& b,
                                   std::vector<T>& scratch) {
  IntersectSorted(acc, b, scratch);
  acc.swap(scratch);
}

}  // namespace fmtk

#endif  // FMTK_BASE_SORTED_INTERSECT_H_
