#ifndef FMTK_BASE_BITSET_H_
#define FMTK_BASE_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/check.h"
#include "base/popcount.h"

namespace fmtk {

/// Word-packed bitset over a dense domain {0, ..., n-1}.
///
/// The engines use it for set algebra over domain elements: quantifier
/// candidate sets in the compiled FO evaluator (AND of guard-atom columns)
/// and duplicator-response buckets in the game solvers. All bulk operations
/// (AndWith/OrWith/AndNotWith/Count) run a word at a time so the compiler
/// can vectorise them; ForEachSetBit visits members in ascending order via
/// count-trailing-zeros, which keeps iteration order identical to the
/// sorted vectors the kernels replace.
///
/// Invariant: bits at positions >= size() are always zero, so Count() and
/// word-wise equality need no tail masking.
class ElementBitset {
 public:
  ElementBitset() = default;
  explicit ElementBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  /// Resizes to `size` bits, clearing everything.
  void Reset(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  void Set(std::size_t i) {
    FMTK_CHECK(i < size_) << "bit " << i << " out of range " << size_;
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void Clear(std::size_t i) {
    FMTK_CHECK(i < size_) << "bit " << i << " out of range " << size_;
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  bool Test(std::size_t i) const {
    return i < size_ &&
           (words_[i >> 6] >> (i & 63)) & std::uint64_t{1};
  }

  void SetAll() {
    if (size_ == 0) {
      return;
    }
    for (std::uint64_t& w : words_) {
      w = ~std::uint64_t{0};
    }
    const std::size_t tail = size_ & 63;
    if (tail != 0) {
      words_.back() = (std::uint64_t{1} << tail) - 1;
    }
  }

  void ClearAll() {
    for (std::uint64_t& w : words_) {
      w = 0;
    }
  }

  /// Number of set bits (vectorized bulk popcount; no tail masking needed
  /// because bits >= size() are always zero).
  std::size_t Count() const {
    return static_cast<std::size_t>(PopcountWords(words_.data(), words_.size()));
  }

  /// The backing words, low bit = element 0. Word-level consumers (the
  /// locality engine's packed BFS) union rows and popcount frontiers
  /// without going through per-bit accessors.
  const std::uint64_t* words() const { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

  bool Any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) {
        return true;
      }
    }
    return false;
  }

  /// this &= other. Sizes must match.
  void AndWith(const ElementBitset& other) {
    FMTK_CHECK(size_ == other.size_) << "bitset size mismatch";
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
    }
  }

  /// this |= other. Sizes must match.
  void OrWith(const ElementBitset& other) {
    FMTK_CHECK(size_ == other.size_) << "bitset size mismatch";
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  /// this &= ~other. Sizes must match.
  void AndNotWith(const ElementBitset& other) {
    FMTK_CHECK(size_ == other.size_) << "bitset size mismatch";
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
  }

  /// Calls fn(i) for every set bit i, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const std::size_t bit = static_cast<std::size_t>(__builtin_ctzll(w));
        fn(wi * 64 + bit);
        w &= w - 1;
      }
    }
  }

  /// Calls fn(i) for set bits i in ascending order until fn returns true;
  /// returns whether any call did (early-exit search).
  template <typename Fn>
  bool ForEachSetBitUntil(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const std::size_t bit = static_cast<std::size_t>(__builtin_ctzll(w));
        if (fn(wi * 64 + bit)) {
          return true;
        }
        w &= w - 1;
      }
    }
    return false;
  }

  /// Appends the set bits to `out`, ascending.
  template <typename T>
  void AppendSetBits(std::vector<T>& out) const {
    ForEachSetBit([&out](std::size_t i) { out.push_back(static_cast<T>(i)); });
  }

  /// Builds a bitset of `size` bits from a list of member positions
  /// (each < size; duplicates allowed).
  template <typename T>
  static ElementBitset FromList(std::size_t size, const std::vector<T>& list) {
    ElementBitset b(size);
    for (T v : list) {
      b.Set(static_cast<std::size_t>(v));
    }
    return b;
  }

  friend bool operator==(const ElementBitset& a, const ElementBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fmtk

#endif  // FMTK_BASE_BITSET_H_
