#ifndef FMTK_BASE_STRING_UTIL_H_
#define FMTK_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fmtk {

/// Joins `parts` with `sep` ("a", "b" -> "a,b" for sep ",").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace fmtk

#endif  // FMTK_BASE_STRING_UTIL_H_
