#ifndef FMTK_BASE_SOURCE_SPAN_H_
#define FMTK_BASE_SOURCE_SPAN_H_

#include <cstddef>

namespace fmtk {

/// A half-open byte range [offset, offset + length) into the source text a
/// formula or Datalog program was parsed from. Parsers attach spans so the
/// static analyzer (analysis/) can point diagnostics at real source text;
/// programmatically built ASTs carry no spans and render without locations.
struct SourceSpan {
  /// kNoOffset marks "no source location available".
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  std::size_t offset = kNoOffset;
  std::size_t length = 0;

  bool valid() const { return offset != kNoOffset; }

  static SourceSpan Of(std::size_t offset, std::size_t length) {
    return SourceSpan{offset, length};
  }

  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
};

}  // namespace fmtk

#endif  // FMTK_BASE_SOURCE_SPAN_H_
