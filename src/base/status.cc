#include "base/status.h"

namespace fmtk {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kSignatureMismatch:
      return "SignatureMismatch";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace fmtk
