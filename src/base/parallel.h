#ifndef FMTK_BASE_PARALLEL_H_
#define FMTK_BASE_PARALLEL_H_

#include <cstddef>

namespace fmtk {

/// Controls the optional std::thread fan-out used by the exhaustive search
/// engines (the outermost quantifier of a compiled sentence, the first-round
/// spoiler moves of a game solver). Off by default; the searches are then
/// fully deterministic and single-threaded. When enabled, verdicts still
/// match the sequential search — parallelism only changes which branch
/// discovers a decisive answer first, never the answer itself.
struct ParallelPolicy {
  bool enabled = false;
  /// 0 = std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Fan out only when at least this many top-level work items exist;
  /// smaller problems run sequentially.
  std::size_t min_domain = 64;
};

}  // namespace fmtk

#endif  // FMTK_BASE_PARALLEL_H_
