#ifndef FMTK_BASE_CHECK_H_
#define FMTK_BASE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fmtk {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the FMTK_CHECK macro; programming errors are fatal
/// (Google style: invariant violations do not report through Status).
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "FMTK_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed expression to void so it can sit in the false arm of
/// the FMTK_CHECK ternary (glog's LogMessageVoidify).
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_check
}  // namespace fmtk

/// Aborts with a message when `condition` is false; extra context may be
/// streamed: FMTK_CHECK(n > 0) << "need a nonempty domain";
/// For programming errors only — user-input errors go through Status/Result.
#define FMTK_CHECK(condition)                                     \
  (condition) ? (void)0                                           \
              : ::fmtk::internal_check::Voidify() &               \
                    ::fmtk::internal_check::CheckFailureStream(   \
                        #condition, __FILE__, __LINE__)

#endif  // FMTK_BASE_CHECK_H_
