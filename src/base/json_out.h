#ifndef FMTK_BASE_JSON_OUT_H_
#define FMTK_BASE_JSON_OUT_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace fmtk {

/// The one JSON string escaper (PR 9): server responses, diagnostic
/// --json output, planner --explain and the bench emitters all render
/// through it, so every producer agrees on the rules:
///
///   * '"' and '\\' get their short escapes, as do \b \f \n \r \t;
///   * other control bytes < 0x20 become \u00xx (JSON strings must not
///     contain raw control characters);
///   * 0x7f (DEL) and valid UTF-8 multi-byte sequences pass through
///     unchanged — JSON is UTF-8, escaping them is optional and keeping
///     them readable is worth more;
///   * bytes that do NOT form valid UTF-8 (stray continuation bytes,
///     overlong encodings, surrogate code points, sequences past
///     U+10FFFF, truncated tails) are replaced one byte at a time with
///     � (U+FFFD REPLACEMENT CHARACTER), so the output is always
///     valid UTF-8 JSON no matter what the input was. The seed escapers
///     passed such bytes through raw, which made fmtk_lint --json emit
///     byte-invalid documents for non-UTF-8 inputs.

namespace internal_json {

/// Length of the valid UTF-8 sequence starting at text[i], or 0 when the
/// bytes at i do not start one (checks continuation bytes, overlong forms,
/// surrogates and the U+10FFFF ceiling).
inline std::size_t Utf8SequenceLength(std::string_view text, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(text[k]);
  };
  const unsigned char b0 = byte(i);
  if (b0 < 0x80) {
    return 1;
  }
  std::size_t len;
  std::uint32_t cp;
  if ((b0 & 0xe0) == 0xc0) {
    len = 2;
    cp = b0 & 0x1f;
  } else if ((b0 & 0xf0) == 0xe0) {
    len = 3;
    cp = b0 & 0x0f;
  } else if ((b0 & 0xf8) == 0xf0) {
    len = 4;
    cp = b0 & 0x07;
  } else {
    return 0;  // continuation byte or 0xf8..0xff lead
  }
  if (i + len > text.size()) {
    return 0;  // truncated tail
  }
  for (std::size_t k = 1; k < len; ++k) {
    if ((byte(i + k) & 0xc0) != 0x80) {
      return 0;
    }
    cp = (cp << 6) | (byte(i + k) & 0x3f);
  }
  if (len == 2 && cp < 0x80) {
    return 0;  // overlong
  }
  if (len == 3 && cp < 0x800) {
    return 0;
  }
  if (len == 4 && cp < 0x10000) {
    return 0;
  }
  if (cp >= 0xd800 && cp <= 0xdfff) {
    return 0;  // surrogate code point
  }
  if (cp > 0x10ffff) {
    return 0;
  }
  return len;
}

}  // namespace internal_json

/// Appends the escaped content of `text` (no surrounding quotes).
inline void JsonAppendEscaped(std::string& out, std::string_view text) {
  for (std::size_t i = 0; i < text.size();) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\b':
        out += "\\b";
        ++i;
        continue;
      case '\f':
        out += "\\f";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
      continue;
    }
    const std::size_t len = internal_json::Utf8SequenceLength(text, i);
    if (len == 0) {
      out += "\\ufffd";
      ++i;
      continue;
    }
    out.append(text.substr(i, len));
    i += len;
  }
}

/// Appends `text` as a quoted JSON string.
inline void JsonAppendString(std::string& out, std::string_view text) {
  out += '"';
  JsonAppendEscaped(out, text);
  out += '"';
}

/// `text` as a quoted JSON string.
inline std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  JsonAppendString(out, text);
  return out;
}

/// A finite double as a JSON number ("%.17g" round-trips exactly); NaN and
/// infinities — which JSON has no literals for — render as 0 / +-1e308
/// sentinels rather than producing an invalid document.
inline std::string JsonNumber(double value) {
  if (value != value) {
    return "0";
  }
  if (value > 1.7e308) {
    return "1e308";
  }
  if (value < -1.7e308) {
    return "-1e308";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace fmtk

#endif  // FMTK_BASE_JSON_OUT_H_
