#ifndef FMTK_BASE_HASH_H_
#define FMTK_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace fmtk {

/// Mixes `value`'s hash into `seed` (boost::hash_combine's mixer).
template <typename T>
void HashCombine(std::size_t& seed, const T& value) {
  std::hash<T> hasher;
  seed ^= hasher(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a vector of hashable elements; usable as an unordered_map hasher.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    std::size_t seed = v.size();
    for (const T& x : v) {
      HashCombine(seed, x);
    }
    return seed;
  }
};

/// Hashes a pair of hashable elements.
template <typename A, typename B>
struct PairHash {
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = 0;
    HashCombine(seed, p.first);
    HashCombine(seed, p.second);
    return seed;
  }
};

}  // namespace fmtk

#endif  // FMTK_BASE_HASH_H_
