#ifndef FMTK_BASE_HASH_H_
#define FMTK_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace fmtk {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer. Every bit of the
/// input affects every bit of the output, so sequential keys (libstdc++'s
/// std::hash<int> is the identity) land in unrelated buckets.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hashes a single value: integers and enums go through Mix64 (std::hash is
/// the identity for them on libstdc++, which clusters sequential element
/// IDs); everything else defers to std::hash.
template <typename T>
std::size_t ScalarHash(const T& value) {
  if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
    return static_cast<std::size_t>(
        Mix64(static_cast<std::uint64_t>(value)));
  } else {
    return std::hash<T>{}(value);
  }
}

/// Mixes `value` into `seed` (boost::hash_combine's shape). Integers are
/// diffused with one odd-constant multiply — enough to spread sequential
/// IDs across the combine, while full avalanche is deferred to the final
/// Mix64 the vector/pair hashers (and FlatHashMap internally) apply. This
/// keeps the per-element cost of hashing a tuple at one multiply instead of
/// a full finalizer.
template <typename T>
void HashCombine(std::size_t& seed, const T& value) {
  std::size_t h;
  if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
    h = static_cast<std::size_t>(static_cast<std::uint64_t>(value) *
                                 0x9e3779b97f4a7c15ULL);
  } else {
    h = std::hash<T>{}(value);
  }
  seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a vector of hashable elements; usable as an unordered_map hasher.
/// The combined seed is finalized with Mix64 so sequential contents land in
/// unrelated buckets in both the high and low bits.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    std::size_t seed = v.size();
    for (const T& x : v) {
      HashCombine(seed, x);
    }
    return static_cast<std::size_t>(Mix64(seed));
  }
};

/// Hashes a pair of hashable elements; finalized like VectorHash.
template <typename A, typename B>
struct PairHash {
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = 0;
    HashCombine(seed, p.first);
    HashCombine(seed, p.second);
    return static_cast<std::size_t>(Mix64(seed));
  }
};

}  // namespace fmtk

#endif  // FMTK_BASE_HASH_H_
