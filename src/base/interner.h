#ifndef FMTK_BASE_INTERNER_H_
#define FMTK_BASE_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/flat_hash.h"
#include "base/hash.h"

namespace fmtk {

/// Maps distinct strings to dense ids {0, 1, ...} — the bulk loaders use it
/// to turn textual vertex names into structure elements in one pass.
///
/// Interned bytes live in chunked arenas owned by the interner, so the map
/// keys are string_views into stable storage: no per-string heap allocation
/// (a 10^7-edge list with 10^6 distinct ids costs ~tens of arena chunks, not
/// 10^6 mallocs), and lookups hash the caller's transient token directly
/// against them without copying first.
class StringInterner {
 public:
  StringInterner() = default;

  // Views into the arenas would dangle across a copy; the loaders never
  // need one.
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  std::size_t size() const { return by_id_.size(); }

  /// Id for `token`, interning it on first sight.
  std::uint32_t Intern(std::string_view token) {
    if (const std::uint32_t* found = ids_.Find(token)) {
      return *found;
    }
    // The map key must outlive the caller's transient token, so the entry
    // is keyed on the arena copy.
    const std::string_view stored = Store(token);
    const auto id = static_cast<std::uint32_t>(by_id_.size());
    ids_.TryEmplace(stored, id);
    by_id_.push_back(stored);
    return id;
  }

  /// Id for `token` if already interned, else nullptr.
  const std::uint32_t* Find(std::string_view token) const {
    return ids_.Find(token);
  }

  /// The token interned as `id` (valid for the interner's lifetime).
  std::string_view NameOf(std::uint32_t id) const { return by_id_[id]; }

  /// All tokens in id order, copied out (the loaders hand these to callers
  /// that outlive the interner).
  std::vector<std::string> Names() const {
    return std::vector<std::string>(by_id_.begin(), by_id_.end());
  }

 private:
  struct ViewHash {
    std::size_t operator()(std::string_view s) const {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ s.size();
      for (const char c : s) {
        h = Mix64(h ^ static_cast<unsigned char>(c));
      }
      return static_cast<std::size_t>(h);
    }
  };

  std::string_view Store(std::string_view token) {
    if (arenas_.empty() ||
        arenas_.back()->size() + token.size() > arenas_.back()->capacity()) {
      const std::size_t cap = std::max<std::size_t>(kArenaBytes, token.size());
      arenas_.push_back(std::make_unique<std::string>());
      arenas_.back()->reserve(cap);
    }
    std::string& arena = *arenas_.back();
    const std::size_t at = arena.size();
    arena.append(token.data(), token.size());
    return std::string_view(arena.data() + at, token.size());
  }

  static constexpr std::size_t kArenaBytes = 1 << 16;

  FlatHashMap<std::string_view, std::uint32_t, ViewHash> ids_;
  std::vector<std::string_view> by_id_;
  // unique_ptr chunks so growth never moves interned bytes.
  std::vector<std::unique_ptr<std::string>> arenas_;
};

}  // namespace fmtk

#endif  // FMTK_BASE_INTERNER_H_
